"""Bench for Table 9 — ResNet-50 time-to-train across hardware."""

from repro.experiments import table9

from .conftest import SCALE, run_once


def test_table9_resnet_times(benchmark):
    result = run_once(benchmark, table9.run, scale=SCALE)
    print("\n" + result.format())

    for r in result.rows:
        assert 1 / 1.5 < r["ratio"] < 1.5, r

    # the 20-minute headline: 2048 KNLs, 90 epochs
    headline = [r for r in result.rows
                if r["hardware"] == "2048 KNLs" and r["epochs"] == 90][0]
    assert 14 < headline["predicted_time_min"] < 26
    # 64-epoch variant beats Akiba's 15 minutes
    fast = [r for r in result.rows if r["epochs"] == 64][0]
    assert fast["predicted_time_min"] < 15
    # scaling out helps: 2048 KNLs beat 512 KNLs at the same batch
    knl512 = [r for r in result.rows if r["hardware"] == "512 KNLs"][0]
    assert headline["predicted_time_min"] < knl512["predicted_time_min"]
