"""Ablation: the augmentation column of Tables 9/10.

The paper's baseline accuracy depends on the augmentation regime: none
73.0 %, weak 75.3 %, Facebook's heavy 76.2 % (which the paper "failed to
reproduce fully").  We reproduce the ordering on a small-train proxy where
generalisation is actually at stake: none < weak, with heavy ≈ weak.
"""

import numpy as np

from repro.core import SGD
from repro.core.metrics import top1_accuracy
from repro.data import BatchLoader, make_dataset
from repro.experiments.report import format_table
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import micro_resnet

from .conftest import run_once

PAPER = {"none": 0.730, "weak": 0.753, "heavy": 0.762}

_DS = make_dataset(num_classes=8, image_size=12, train_size=192,
                   test_size=512, noise=1.5, seed=7)


def train_with_aug(aug: str, epochs: int = 20, seed: int = 2) -> float:
    model = micro_resnet(num_classes=8, width=8, seed=seed)
    opt = SGD(model.parameters(), momentum=0.9, weight_decay=0.0005)
    loss_fn = SoftmaxCrossEntropy()
    loader = BatchLoader(_DS.x_train, _DS.y_train, batch_size=32,
                         augment=aug, seed=seed, auto_advance=False)
    best = 0.0
    with np.errstate(all="ignore"):
        for batches in loader.epochs(epochs):
            for xb, yb in batches:
                model.train()
                opt.zero_grad()
                logits = model.forward(xb)
                loss_fn.forward(logits, yb)
                model.backward(loss_fn.backward())
                opt.step(0.05)
            model.eval()
            preds = np.concatenate([
                model.forward(_DS.x_test[lo : lo + 256])
                for lo in range(0, len(_DS.x_test), 256)
            ])
            best = max(best, top1_accuracy(preds, _DS.y_test))
    return best


def sweep():
    return [
        {"augmentation": aug, "paper_resnet50_top1": PAPER[aug],
         "proxy_top1": train_with_aug(aug)}
        for aug in ["none", "weak", "heavy"]
    ]


def test_ablation_augmentation(benchmark):
    rows = run_once(benchmark, sweep)
    print("\n== ablation: augmentation regime (small-train proxy) ==")
    print(format_table(["augmentation", "paper_resnet50_top1", "proxy_top1"], rows))

    acc = {r["augmentation"]: r["proxy_top1"] for r in rows}
    # the paper's ordering: augmentation lifts the baseline
    assert acc["weak"] > acc["none"] + 0.05
    # heavy is not a further clear win on the proxy (the paper likewise
    # could not reproduce Facebook's heavy-augmentation margin)
    assert acc["heavy"] > acc["none"]
