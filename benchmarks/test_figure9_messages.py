"""Bench for Figure 9 — message count tracks iteration count."""

from repro.experiments import figure9

from .conftest import SCALE, run_once


def test_figure9_messages(benchmark):
    result = run_once(benchmark, figure9.run, scale=SCALE)
    print("\n" + result.format())

    for r in result.rows:
        # messages proportional to iterations (the paper's claim)
        assert r["messages_simple_model"] % r["iterations"] == 0
    # monotone decreasing in batch size
    msgs = [r["messages_simple_model"] for r in result.rows]
    assert msgs == sorted(msgs, reverse=True)
    # the fabric measurement in the notes confirmed proportionality
    assert "Measured on the simulated fabric" in result.notes
