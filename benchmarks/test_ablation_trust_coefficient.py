"""Ablation: LARS trust-coefficient sensitivity at large batch.

The paper inherits η from the LARS reference implementation; this sweep
shows the usable band is wide (an order of magnitude) — the robustness that
made LARS practical — while extreme values degrade.
"""


from repro.experiments.proxy import (
    RESNET_BASE_BATCH,
    ProxyRun,
    resnet_proxy_batch,
    run_proxy,
)
from repro.experiments.report import format_table

from .conftest import SCALE, run_once

TRUSTS = [0.001, 0.005, 0.01, 0.02, 0.1]


def sweep(scale):
    batch = resnet_proxy_batch(16384)
    peak = 0.05 * batch / RESNET_BASE_BATCH
    rows = []
    for eta in TRUSTS:
        res = run_proxy(
            ProxyRun("resnet", batch, peak, warmup_epochs=2, use_lars=True,
                     trust_coefficient=eta),
            scale,
        )
        rows.append({"trust_coefficient": eta, "accuracy": res.peak_test_accuracy})
    return rows


def test_ablation_trust_coefficient(benchmark):
    rows = run_once(benchmark, sweep, SCALE)
    print("\n== ablation: LARS trust coefficient at 16K-equivalent batch ==")
    print(format_table(["trust_coefficient", "accuracy"], rows))

    accs = {r["trust_coefficient"]: r["accuracy"] for r in rows}
    best = max(accs.values())
    # a wide usable band: at least three settings within 0.15 of the best
    good = [eta for eta, a in accs.items() if a > best - 0.15]
    assert len(good) >= 3
    assert best > 0.8
