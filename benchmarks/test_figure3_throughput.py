"""Bench for Figure 3 — single-GPU throughput vs per-GPU batch."""

from repro.experiments import figure3

from .conftest import SCALE, run_once


def test_figure3_throughput(benchmark):
    result = run_once(benchmark, figure3.run, scale=SCALE)
    print("\n" + result.format())

    rows = {r["batch_per_gpu"]: r for r in result.rows}
    # speed rises with batch while memory lasts
    feasible = [r for r in result.rows if r["status"] == "ok"]
    speeds = [r["images_per_second"] for r in feasible]
    assert speeds == sorted(speeds)
    # batch 512 is the best feasible point; 1024 is out of memory
    assert feasible[-1]["batch_per_gpu"] == 512
    assert rows[1024]["status"] == "OUT OF MEMORY"
