"""Bench for Figure 5 — all LARS batch sizes reach target in fixed epochs."""

from repro.experiments import figure5

from .conftest import SCALE, run_once


def test_figure5_epochwise(benchmark):
    result = run_once(benchmark, figure5.run, scale=SCALE)
    print("\n" + result.format())

    finals = {}
    for pb in {r["paper_batch"] for r in result.rows}:
        pts = [r for r in result.rows if r["paper_batch"] == pb]
        finals[pb] = max(r["test_accuracy"] for r in pts)

    baseline = finals[512]
    # every large-batch LARS run lands in the baseline's band
    for pb, acc in finals.items():
        assert acc > baseline - 0.12, (pb, acc)
    # all four paper batch sizes are present
    assert set(finals) == {512, 4096, 8192, 32768}
