"""Bench for Table 1 — the 14-minute / 74.9 % headline."""

from repro.experiments import table1

from .conftest import SCALE, run_once


def test_table1_headline(benchmark):
    result = run_once(benchmark, table1.run, scale=SCALE)
    print("\n" + result.format())

    ours = result.row_by("work", "ours (perfmodel, 64 ep, 2048 KNLs)")
    # time side: the 64-epoch prediction must beat Akiba's 15 minutes and
    # land near the paper's 14
    assert ours["time_min"] < 15.0
    assert 10.0 < ours["time_min"] < 15.0
    # accuracy side: the shortened-budget proxy run still learns (the
    # paper's 64-epoch run lands just under its 90-epoch accuracy)
    assert ours["accuracy"] is not None and ours["accuracy"] > 0.45
