"""Ablation: per-shard BatchNorm vs SyncBatchNorm on the simulated cluster.

Quantifies the paper-stack behaviour (per-worker BN statistics) against the
synchronised alternative: SyncBN restores exact sequential consistency at
the cost of two small allreduces per BN layer per iteration.
"""

import numpy as np

from repro.cluster import SyncSGDConfig, train_sync_sgd
from repro.core import SGD, ConstantLR, Trainer
from repro.data import gaussian_blobs
from repro.experiments.report import format_table
from repro.nn.models import mlp

from .conftest import run_once

_X, _Y = gaussian_blobs(192, num_classes=3, dim=8, seed=41)
SEED, WORLD, EPOCHS, BATCH = 19, 4, 4, 32


def run_variant(bn_kind):
    def builder():
        return mlp(8, [12], 3, batch_norm=bn_kind, seed=SEED)

    def opt_builder(params):
        return SGD(params, momentum=0.9, weight_decay=0.0005)

    # serial reference with plain BN (= full-batch statistics)
    serial_model = mlp(8, [12], 3, batch_norm=True, seed=SEED)
    serial = Trainer(serial_model, opt_builder(serial_model.parameters()),
                     ConstantLR(0.1), shuffle_seed=SEED)
    serial.fit(_X, _Y, _X[:48], _Y[:48], epochs=EPOCHS, batch_size=BATCH)

    config = SyncSGDConfig(world=WORLD, epochs=EPOCHS, batch_size=BATCH,
                           shuffle_seed=SEED)
    cluster = train_sync_sgd(builder, opt_builder, ConstantLR(0.1),
                             _X, _Y, _X[:48], _Y[:48], config)
    drift = max(
        np.abs(serial_model.state_dict()[k] - cluster.final_state[k]).max()
        for k in cluster.final_state
    )
    return {
        "bn": "SyncBatchNorm" if bn_kind == "sync" else "per-shard BatchNorm",
        "final_accuracy": cluster.final_test_accuracy,
        "drift_vs_serial": drift,
        "messages": cluster.messages,
    }


def sweep():
    return [run_variant(True), run_variant("sync")]


def test_ablation_sync_bn(benchmark):
    rows = run_once(benchmark, sweep)
    print("\n== ablation: per-shard BN vs SyncBatchNorm (4 ranks) ==")
    print(format_table(["bn", "final_accuracy", "drift_vs_serial", "messages"], rows))

    local, sync = rows
    # SyncBN matches the serial full-batch run exactly; per-shard BN drifts
    assert sync["drift_vs_serial"] < 1e-9
    assert local["drift_vs_serial"] > 1e-9
    # the price: extra (small) collective messages per BN layer
    assert sync["messages"] > local["messages"]
    # both still learn
    assert local["final_accuracy"] > 0.7 and sync["final_accuracy"] > 0.7
