"""Bench for Figure 6 — flop budget is batch-independent at fixed epochs."""

from repro.experiments import figure6

from .conftest import SCALE, run_once


def test_figure6_flops(benchmark):
    result = run_once(benchmark, figure6.run, scale=SCALE)
    print("\n" + result.format())

    flops = {r["analytic_total_Pflops"] for r in result.rows}
    assert len(flops) == 1  # constant across batch sizes
    assert all(r["epoch_flops_constant"] for r in result.rows)
