"""Bench for Table 11 — interconnect constants and fabric consistency."""

from repro.experiments import table11

from .conftest import SCALE, run_once


def test_table11_networks(benchmark):
    result = run_once(benchmark, table11.run, scale=SCALE)
    print("\n" + result.format())

    for r in result.rows:
        # profiles match the paper's table exactly
        assert r["alpha_us"] == r["paper_alpha_us"]
        assert r["beta_ns_per_byte"] == r["paper_beta_ns"]
        # the simulated fabric charges exactly alpha + beta*n
        assert abs(r["fabric_1MiB_ms"] - r["model_1MiB_ms"]) < 1e-9
