"""Ablation: SGD vs LARS vs LAMB at very large batch.

LAMB (You et al. 2019) is the line of work this paper's conclusion points
toward; the ablation checks that both layer-wise schemes survive the
32K-equivalent batch that kills plain SGD + linear scaling.
"""

import numpy as np

from repro.core import LAMB, Trainer, iterations_per_epoch, paper_schedule
from repro.experiments.proxy import (
    RESNET_BASE_BATCH,
    ProxyRun,
    SCALES,
    proxy_dataset,
    resnet_proxy_batch,
    run_proxy,
)
from repro.experiments.report import format_table

from .conftest import SCALE, run_once


def lamb_accuracy(batch: int, scale: str) -> float:
    """LAMB run outside ProxyRun (its own LR regime: no linear scaling)."""
    s = SCALES[scale]
    ds = proxy_dataset(scale)
    cfg = ProxyRun("resnet", batch, 0.05)  # model builder reuse
    model = cfg.build_model(s)
    ipe = iterations_per_epoch(ds.n_train, batch)
    sched = paper_schedule(0.02, s.epochs * ipe, 2 * ipe)
    opt = LAMB(model.parameters(), weight_decay=0.0005)
    trainer = Trainer(model, opt, sched, shuffle_seed=1)
    with np.errstate(all="ignore"):
        res = trainer.fit(ds.x_train, ds.y_train, ds.x_test, ds.y_test,
                          epochs=s.epochs, batch_size=batch)
    return res.peak_test_accuracy


def sweep(scale):
    batch = resnet_proxy_batch(32768)
    peak = 0.05 * batch / RESNET_BASE_BATCH
    baseline = run_proxy(ProxyRun("resnet", RESNET_BASE_BATCH, 0.05), scale)
    sgd = run_proxy(ProxyRun("resnet", batch, peak, warmup_epochs=2), scale)
    lars = run_proxy(
        ProxyRun("resnet", batch, peak, warmup_epochs=2, use_lars=True,
                 trust_coefficient=0.01),
        scale,
    )
    lamb = lamb_accuracy(batch, scale)
    return [
        {"optimizer": "SGD small-batch baseline", "batch": RESNET_BASE_BATCH,
         "accuracy": baseline.peak_test_accuracy},
        {"optimizer": "SGD + linear scaling", "batch": batch,
         "accuracy": sgd.peak_test_accuracy},
        {"optimizer": "LARS", "batch": batch, "accuracy": lars.peak_test_accuracy},
        {"optimizer": "LAMB (extension)", "batch": batch, "accuracy": lamb},
    ]


def test_ablation_optimizers(benchmark):
    rows = run_once(benchmark, sweep, SCALE)
    print("\n== ablation: optimisers at the 32K-equivalent batch ==")
    print(format_table(["optimizer", "batch", "accuracy"], rows))

    baseline, sgd, lars, lamb = (r["accuracy"] for r in rows)
    # plain SGD collapses; both layer-wise schemes stay in the game
    assert sgd < baseline - 0.2
    assert lars > sgd + 0.2
    assert lamb > sgd + 0.2
