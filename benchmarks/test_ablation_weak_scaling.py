"""Ablation: weak-scaling efficiency — AlexNet vs GoogLeNet vs ResNet-50.

Table 6's punchline quantified: the comp/comm (scaling) ratio predicts how
far each model weak-scales before the |W|-sized allreduce eats the speedup.
"""

from repro.experiments.report import format_table
from repro.nn.models import paper_model_cost
from repro.perfmodel import device, network, weak_scaling_efficiency

from .conftest import run_once

PROCS = [8, 64, 512, 2048]
MODELS = ["alexnet", "googlenet", "resnet50"]


def sweep():
    rows = []
    for p in PROCS:
        row = {"processors": p}
        for m in MODELS:
            row[m] = weak_scaling_efficiency(
                paper_model_cost(m), p, 64, device("knl"), network("qdr")
            )
        rows.append(row)
    return rows


def test_ablation_weak_scaling(benchmark):
    rows = run_once(benchmark, sweep)
    print("\n== ablation: weak-scaling efficiency at 64 images/device (KNL, QDR IB) ==")
    print(format_table(["processors", *MODELS], rows))

    for r in rows:
        # efficiency ordering follows the scaling ratio everywhere:
        # AlexNet (ratio ~24) < ResNet-50 (~320) < GoogLeNet (~460)
        assert r["alexnet"] < r["resnet50"] <= r["googlenet"] + 0.02, r
        assert 0 < r["alexnet"] <= 1 and 0 < r["googlenet"] <= 1
    # AlexNet pays a visible toll by 2048 procs; ResNet-50 barely notices
    assert rows[-1]["alexnet"] < 0.9
    assert rows[-1]["resnet50"] > 0.85
