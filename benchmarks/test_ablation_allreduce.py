"""Ablation: allreduce algorithm choice (tree / ring / rhd / hierarchical).

Not a paper table — this sweeps the design space behind the paper's
``log(P)·t_comm`` iteration-time term and shows why production stacks pick
ring (bandwidth-bound) or hierarchical (asymmetric fabrics) for |W|-sized
gradients.
"""

import numpy as np
import pytest

from repro.comm import (
    NetworkProfile,
    allreduce_cost,
    hierarchical_cost,
    run_cluster,
)
from repro.experiments.report import format_table
from repro.nn.models import paper_model_cost
from repro.perfmodel import network

from .conftest import run_once

PROCS = [8, 64, 512, 2048]


def sweep():
    nbytes = paper_model_cost("resnet50").model_bytes
    opa = network("opa")
    shm = NetworkProfile(alpha=1e-7, beta=1e-12, name="intra-node")
    rows = []
    for p in PROCS:
        rows.append(
            {
                "processors": p,
                "tree_ms": allreduce_cost(p, nbytes, opa, "tree") * 1e3,
                "ring_ms": allreduce_cost(p, nbytes, opa, "ring") * 1e3,
                "rhd_ms": allreduce_cost(p, nbytes, opa, "rhd") * 1e3,
                "hierarchical_ms": hierarchical_cost(p, nbytes, 64, shm, opa, "ring") * 1e3,
            }
        )
    return rows


def test_ablation_allreduce(benchmark):
    rows = run_once(benchmark, sweep)
    print("\n== ablation: allreduce algorithm cost, ResNet-50 gradients on OPA ==")
    print(format_table(["processors", "tree_ms", "ring_ms", "rhd_ms",
                        "hierarchical_ms"], rows))

    for r in rows:
        # the tree algorithm's log(P) full-message hops are never best at
        # scale for |W|-sized payloads
        if r["processors"] >= 64:
            assert r["ring_ms"] < r["tree_ms"]
            assert r["rhd_ms"] < r["tree_ms"]
        # hierarchical with 64-rank nodes beats the flat tree everywhere
        assert r["hierarchical_ms"] <= r["tree_ms"]

    # simulated-fabric cross-check at small P: ring moves ~2n bytes/rank
    def worker(comm):
        comm.allreduce(np.zeros(1000), algorithm="ring")

    _, fabric = run_cluster(4, worker)
    assert fabric.stats.bytes == pytest.approx(2 * (4 - 1) * 4 * 1000 * 8 / 4, rel=0.01)
