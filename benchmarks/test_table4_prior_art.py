"""Bench for Table 4 — linear scaling + warmup works up to ×8–×32."""

from repro.experiments import table4

from .conftest import SCALE, run_once


def test_table4_prior_art(benchmark):
    result = run_once(benchmark, table4.run, scale=SCALE)
    print("\n" + result.format())

    ours = [r for r in result.rows if r["source"] == "ours"]
    assert len(ours) == 3
    for r in ours:
        # in the prior-art regime the accuracy loss is modest (the paper's
        # Table 4 rows lose at most ~1 point)
        assert r["large_acc"] > r["baseline_acc"] - 0.15, r
    # the paper rows are reproduced verbatim
    fb = result.row_by("team", "Facebook (Goyal 2017)")
    assert fb["large_batch"] == 8192 and fb["large_acc"] == 0.7626
