"""Bench for Table 10 — accuracy vs batch: LARS vs linear scaling."""

from repro.experiments import table10

from .conftest import SCALE, run_once


def test_table10_accuracy_vs_batch(benchmark):
    result = run_once(benchmark, table10.run, scale=SCALE)
    print("\n" + result.format())

    rows = {r["paper_batch"]: r for r in result.rows}
    baseline = rows[256]["lars_proxy"]

    # linear scaling holds at 8K-equivalent but collapses by 32K-equivalent
    assert rows[8192]["linear_scaling_proxy"] > baseline - 0.15
    assert rows[32768]["linear_scaling_proxy"] < baseline - 0.2
    # LARS stays in the baseline's band through 32K-equivalent (the proxy
    # shows a slightly deeper dip than the paper's 0.754-vs-0.753)
    assert rows[32768]["lars_proxy"] > baseline - 0.2
    # at every very-large batch, LARS beats linear scaling (Figure 1's gap)
    for pb in (32768, 65536):
        assert rows[pb]["lars_proxy"] > rows[pb]["linear_scaling_proxy"], pb
    # paper columns encoded verbatim
    assert rows[65536]["facebook_paper"] == 0.660
    assert rows[65536]["ours_paper"] == 0.732
