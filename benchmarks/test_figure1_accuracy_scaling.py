"""Bench for Figure 1 — LARS's accuracy-scaling advantage."""

from repro.experiments import figure1

from .conftest import SCALE, run_once


def test_figure1_accuracy_scaling(benchmark):
    result = run_once(benchmark, figure1.run, scale=SCALE)
    print("\n" + result.format())

    rows = {r["paper_batch"]: r for r in result.rows}
    # small-batch end: the two series roughly coincide
    assert abs(rows[256]["gap_proxy"]) < 0.1
    # very-large-batch end: LARS wins by a clear margin, like the paper's
    # 0.724 vs 0.754 (32K) and 0.660 vs 0.732 (64K)
    assert rows[32768]["gap_proxy"] > 0.1
    assert rows[65536]["gap_proxy"] > 0.1
    # the gap widens with batch beyond the 8K point
    assert rows[32768]["gap_proxy"] > rows[8192]["gap_proxy"]
