"""Bench for Figure 2 — master-worker == allreduce data parallelism."""

from repro.experiments import figure2

from .conftest import SCALE, run_once


def test_figure2_parallelism(benchmark):
    result = run_once(benchmark, figure2.run, scale=SCALE)
    print("\n" + result.format())

    master = result.row_by("mode", "master")
    allreduce = result.row_by("mode", "allreduce")
    # both schemes train and communicate
    assert master["messages"] > 0 and allreduce["messages"] > 0
    # identical weights is asserted inside the experiment (notes carry the
    # max diff); re-check the note claims equality
    assert "identical weights" in result.notes
