"""Ablation: gradient compression vs large batches.

The paper shrinks communication by growing B (fewer |W|-sized messages);
the cited 1-bit SGD line shrinks the messages instead.  This ablation trains
the same model on a 4-rank simulated cluster under both regimes and compares
wire bytes and final accuracy.
"""


from repro.cluster import (
    NoCompression,
    OneBitCompressor,
    TopKCompressor,
    compressed_allreduce,
    epoch_permutation,
    shard_batch,
    unflatten_grads,
    flatten_grads,
)
from repro.comm import run_cluster
from repro.core import SGD, ConstantLR
from repro.core.metrics import top1_accuracy
from repro.data import gaussian_blobs
from repro.experiments.report import format_table
from repro.nn.models import mlp

from .conftest import run_once

WORLD, EPOCHS, BATCH, LR = 4, 6, 32, 0.05
_X, _Y = gaussian_blobs(256, num_classes=3, dim=10, seed=31)


def train_with(compressor_factory):
    """Sync data-parallel SGD with a compressed gradient exchange."""

    def worker(comm):
        model = mlp(10, [16], 3, seed=6)
        opt = SGD(model.parameters(), momentum=0.9, weight_decay=0.0)
        compressor = compressor_factory()
        sched = ConstantLR(LR)
        n = len(_X)
        it = 0
        for epoch in range(EPOCHS):
            order = epoch_permutation(n, epoch, 3)
            for lo in range(0, n, BATCH):
                gidx = order[lo : lo + BATCH]
                lidx = shard_batch(gidx, WORLD, comm.rank)
                model.train()
                opt.zero_grad()
                from repro.nn.losses import SoftmaxCrossEntropy

                loss = SoftmaxCrossEntropy()
                logits = model.forward(_X[lidx])
                loss.forward(logits, _Y[lidx])
                model.backward(loss.backward())
                params = model.parameters()
                flat = flatten_grads(params) * (len(lidx) / len(gidx))
                total = compressed_allreduce(comm, flat, compressor)
                unflatten_grads(total, params)
                opt.step(sched(it))
                it += 1
        if comm.rank == 0:
            model.eval()
            return top1_accuracy(model.forward(_X), _Y)
        return None

    results, fabric = run_cluster(WORLD, worker)
    return results[0], fabric.stats.bytes


def sweep():
    rows = []
    for name, factory in [
        ("full fp64 (baseline)", NoCompression),
        ("1-bit + error feedback", OneBitCompressor),
        ("top-10% + error feedback", lambda: TopKCompressor(k=20)),
    ]:
        acc, nbytes = train_with(factory)
        rows.append({"exchange": name, "train_accuracy": acc, "wire_MB": nbytes / 1e6})
    return rows


def test_ablation_compression(benchmark):
    rows = run_once(benchmark, sweep)
    print("\n== ablation: gradient compression vs full-precision exchange ==")
    print(format_table(["exchange", "train_accuracy", "wire_MB"], rows))

    full, onebit, topk = rows
    # compression slashes wire bytes by an order of magnitude or more
    assert onebit["wire_MB"] < full["wire_MB"] / 10
    assert topk["wire_MB"] < full["wire_MB"] / 3
    # error feedback keeps the compressed runs competitive
    assert full["train_accuracy"] > 0.9
    assert onebit["train_accuracy"] > full["train_accuracy"] - 0.15
    assert topk["train_accuracy"] > full["train_accuracy"] - 0.15
