"""Bench for Figure 7 — large batch reaches target accuracy sooner
(simulated cluster wall-clock)."""

from repro.experiments import figure7

from .conftest import SCALE, run_once


def test_figure7_time_to_accuracy(benchmark):
    result = run_once(benchmark, figure7.run, scale=SCALE)
    print("\n" + result.format())

    small, large = result.rows
    # both configurations learn
    assert small["final_accuracy"] > 0.5
    assert large["final_accuracy"] > 0.5
    # the large-batch run finishes the same epochs in less simulated time
    assert large["sim_seconds_total"] < small["sim_seconds_total"]
    # and reaches the shared target sooner (when both reach it)
    if small["sim_seconds_to_target"] and large["sim_seconds_to_target"]:
        assert large["sim_seconds_to_target"] < small["sim_seconds_to_target"]
