"""Bench for Table 8 — AlexNet time-to-train across hardware."""

from repro.experiments import table8

from .conftest import SCALE, run_once


def test_table8_alexnet_times(benchmark):
    result = run_once(benchmark, table8.run, scale=SCALE)
    print("\n" + result.format())

    for r in result.rows:
        # every predicted time within 1.5x of the measured paper row
        assert 1 / 1.5 < r["ratio"] < 1.5, r

    rows = {(r["batch_size"], r["hardware"]): r for r in result.rows}
    # the 11-minute headline
    headline = rows[(32768, "1024 CPUs")]
    assert headline["predicted_time_min"] < 15
    # large batch beats small batch on the same DGX-1 (Figure 7's premise)
    assert (rows[(4096, "DGX-1 station")]["predicted_time_min"]
            < rows[(512, "DGX-1 station")]["predicted_time_min"] / 2)
