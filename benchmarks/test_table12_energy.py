"""Bench for Table 12 — the 45nm energy table and its consequence."""

from repro.experiments import table12

from .conftest import SCALE, run_once


def test_table12_energy(benchmark):
    result = run_once(benchmark, table12.run, scale=SCALE)
    print("\n" + result.format())

    rows = {r["operation"]: r for r in result.rows}
    assert rows["32 bit DRAM access"]["energy_pJ"] == 640.0
    assert rows["32 bit float multiply"]["energy_pJ"] == 3.7
    # communication rows dominate computation rows of the same width
    assert (rows["32 bit DRAM access"]["energy_pJ"]
            > 100 * rows["32 bit float multiply"]["energy_pJ"])
    assert rows["32 bit SRAM access"]["energy_pJ"] > rows["32 bit float add"]["energy_pJ"]
