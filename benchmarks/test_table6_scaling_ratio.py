"""Bench for Table 6 — model size / flops / scaling ratio."""

from repro.experiments import table6

from .conftest import SCALE, run_once


def test_table6_scaling_ratio(benchmark):
    result = run_once(benchmark, table6.run, scale=SCALE)
    print("\n" + result.format())

    alex = result.row_by("model", "alexnet")
    res = result.row_by("model", "resnet50")
    # parameters within 2% of the paper
    assert abs(alex["parameters_M"] - 61) / 61 < 0.02
    assert abs(res["parameters_M"] - 25.5) / 25 < 0.05
    # flops within ~12% (we count BN/pool too)
    assert abs(alex["flops_per_image_G"] - 1.5) / 1.5 < 0.10
    assert abs(res["flops_per_image_G"] - 7.7) / 7.7 < 0.12
    # the headline factor: ResNet-50 scales ~12.5x more easily
    assert 10 < res["scaling_ratio"] / alex["scaling_ratio"] < 16
