"""Shared benchmark fixtures.

Convergence experiments run at the ``small`` proxy scale (the preset
EXPERIMENTS.md records); they are executed once per session via
``benchmark.pedantic`` — statistical repetition is meaningless for a
15-epoch training sweep and would multiply runtime.  Results are memoised
inside ``repro.experiments.proxy``, so benchmarks that share sweep points
(Table 10, Figure 1, Figure 4) pay for each training run once per session.

Every benchmark prints the regenerated table so
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's artefacts
inline.
"""

import pytest

SCALE = "small"


@pytest.fixture(scope="session")
def scale():
    return SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """benchmark.pedantic with a single round (training sweeps are slow)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
