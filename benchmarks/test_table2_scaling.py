"""Bench for Table 2 — iterations/total-time scaling with batch size."""

from repro.experiments import table2

from .conftest import SCALE, run_once


def test_table2_scaling(benchmark):
    result = run_once(benchmark, table2.run, scale=SCALE)
    print("\n" + result.format())

    rows = {r["batch_size"]: r for r in result.rows}
    # the paper's iteration column, verbatim
    assert rows[512]["iterations"] == 250_000
    assert rows[8192]["iterations"] == 15_625
    assert rows[1_280_000]["iterations"] == 100
    # GPU count grows linearly with batch (512 per machine)
    assert rows[4096]["gpus"] == 8
    # total time falls monotonically as batch (and P) grow
    hours = [r["total_hours"] for r in result.rows]
    assert hours == sorted(hours, reverse=True)
    # near-linear speedup while compute-bound: 512 -> 8192 gives > 8x
    assert rows[512]["total_hours"] / rows[8192]["total_hours"] > 8
