"""Bench for Table 7 — LARS holds AlexNet accuracy across batch sizes."""

from repro.experiments import table7

from .conftest import SCALE, run_once


def test_table7_lars_alexnet(benchmark):
    result = run_once(benchmark, table7.run, scale=SCALE)
    print("\n" + result.format())

    by_batch = {r["paper_batch"]: r for r in result.rows}
    baseline = by_batch[512]["proxy_accuracy"]
    # every LARS row stays within a band of the baseline (the paper's rows
    # are within 0.2 points of each other; the proxy gets a wider but still
    # tight band)
    for pb in (4096, 8192, 32768):
        assert by_batch[pb]["proxy_accuracy"] > baseline - 0.12, pb
    # paper accuracies encoded verbatim
    assert by_batch[32768]["paper_accuracy"] == 0.585
