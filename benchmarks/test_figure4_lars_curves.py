"""Bench for Figure 4 — 16K/32K training curves with and without LARS."""

from repro.experiments import figure4

from .conftest import SCALE, run_once


def test_figure4_lars_curves(benchmark):
    result = run_once(benchmark, figure4.run, scale=SCALE)
    print("\n" + result.format())

    def final(paper_batch, lars):
        pts = [r for r in result.rows
               if r["paper_batch"] == paper_batch and r["lars"] == lars]
        return max(r["test_accuracy"] for r in pts)

    # at both batch sizes LARS ends clearly above the no-LARS run
    assert final(16384, True) > final(16384, False)
    assert final(32768, True) > final(32768, False) + 0.15
    # without LARS, 32K is worse than 16K (the paper's 0.56 < 0.68)
    assert final(32768, False) <= final(16384, False) + 0.02
    # every curve has one point per epoch
    epochs = {r["epoch"] for r in result.rows}
    assert len(epochs) >= 8
