"""Bench for Table 3 — accuracy targets and proxy baselines."""

from repro.experiments import table3

from .conftest import SCALE, run_once


def test_table3_baselines(benchmark):
    result = run_once(benchmark, table3.run, scale=SCALE)
    print("\n" + result.format())

    alex = result.row_by("model", "AlexNet")
    res = result.row_by("model", "ResNet-50")
    # the paper's targets encoded exactly
    assert alex["paper_target_top1"] == 0.58
    assert res["paper_target_top1"] == 0.753
    # proxy baselines learn well above chance (8 classes -> 0.125)
    assert alex["proxy_baseline_top1"] > 0.7
    assert res["proxy_baseline_top1"] > 0.7
    # ResNet proxy >= AlexNet proxy, matching the paper's model ordering
    assert res["proxy_baseline_top1"] >= alex["proxy_baseline_top1"] - 0.05
