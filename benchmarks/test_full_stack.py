"""Full-stack showcase: one large-batch LARS recipe, executed end-to-end.

Everything at once: a paper-style recipe (linear-scaled LR + warmup +
poly(2) + LARS) trains a conv net whose global batch is sharded over 8
simulated ranks, gradients ring-allreduce over an Omni-Path-class α-β
fabric, per-iteration compute time comes from the calibrated KNL profile —
and the result must (a) match the serial memoised proxy run exactly
(sequential consistency), (b) spend simulated time consistent with the
analytic α-β-γ prediction for the same configuration.
"""

import pytest

from repro.cluster import SyncSGDConfig, train_sync_sgd
from repro.comm import allreduce_cost
from repro.core import iterations_per_epoch, paper_schedule
from repro.experiments.proxy import ProxyRun, SCALES, proxy_dataset
from repro.nn.models import paper_model_cost
from repro.perfmodel import device, network
from repro.perfmodel.timemodel import compute_time_per_iteration

from .conftest import SCALE, run_once

WORLD = 8
FACTOR = 16  # 16x the proxy baseline batch


def full_stack_run():
    s = SCALES[SCALE]
    ds = proxy_dataset(SCALE)
    batch = 8 * FACTOR
    cfg = ProxyRun("alexnet_bn", batch, 0.05 * FACTOR, warmup_epochs=1,
                   use_lars=True)
    ipe = iterations_per_epoch(ds.n_train, batch)
    sched = paper_schedule(cfg.peak_lr, s.epochs * ipe, ipe)

    cost = paper_model_cost("alexnet_bn")
    knl = device("knl")

    def compute_time(n_local: int) -> float:
        return compute_time_per_iteration(cost, float(n_local), knl)

    config = SyncSGDConfig(world=WORLD, epochs=s.epochs, batch_size=batch,
                           algorithm="ring", profile=network("opa"),
                           compute_time=compute_time, shuffle_seed=1)
    cluster = train_sync_sgd(lambda: cfg.build_model(s), cfg.build_optimizer,
                             sched, ds.x_train, ds.y_train, ds.x_test,
                             ds.y_test, config)

    # serial reference through the memoised proxy runner (shared with the
    # other benchmarks)
    from repro.experiments.proxy import run_proxy

    serial = run_proxy(cfg, SCALE)
    return cluster, serial, (s, ds, batch, cost, knl)


def test_full_stack(benchmark):
    cluster, serial, (s, ds, batch, cost, knl) = run_once(benchmark, full_stack_run)
    print(f"\n== full stack: LARS x{FACTOR} batch on {WORLD} simulated KNLs ==")
    print(f"cluster final accuracy: {cluster.final_test_accuracy:.4f}")
    print(f"serial  final accuracy: {serial.final_test_accuracy:.4f}")
    print(f"simulated time: {cluster.simulated_seconds:.2f}s, "
          f"{cluster.messages} messages, {cluster.comm_bytes / 1e6:.1f} MB")

    # (a) sequential consistency through the whole stack
    assert cluster.final_test_accuracy == pytest.approx(
        serial.final_test_accuracy, abs=1e-12)

    # (b) simulated time ~ analytic prediction for the same configuration
    iters = s.epochs * iterations_per_epoch(ds.n_train, batch)
    t_comp = compute_time_per_iteration(cost, batch / WORLD, knl)
    grad_bytes = cluster.final_state and sum(
        v.size for v in cluster.final_state.values()) * 8
    t_comm = allreduce_cost(WORLD, grad_bytes, network("opa"), "ring")
    predicted = iters * (t_comp + t_comm)
    assert cluster.simulated_seconds == pytest.approx(predicted, rel=0.05)

    # and the run actually learned
    assert cluster.final_test_accuracy > 0.8
