"""Bench for Figure 8 — iterations fall as 1/B."""

from repro.experiments import figure8

from .conftest import SCALE, run_once


def test_figure8_iterations(benchmark):
    result = run_once(benchmark, figure8.run, scale=SCALE)
    print("\n" + result.format())

    rows = {r["batch_size"]: r for r in result.rows}
    # halving relation across the whole sweep (100-epoch column; ceil(n/B)
    # leaves a sub-percent rounding sliver)
    for b in [512, 1024, 2048, 4096]:
        ratio = rows[b]["iterations_100ep"] / rows[2 * b]["iterations_100ep"]
        assert abs(ratio - 2) < 0.01
    # the paper's 32K numbers: 40 iterations/epoch
    assert rows[32768]["iterations_90ep"] == 3600
