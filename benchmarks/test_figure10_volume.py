"""Bench for Figure 10 — communication volume |W|·E·n/B."""

from repro.experiments import figure10

from .conftest import SCALE, run_once


def test_figure10_volume(benchmark):
    result = run_once(benchmark, figure10.run, scale=SCALE)
    print("\n" + result.format())

    rows = {r["batch_size"]: r for r in result.rows}
    # volume halves as batch doubles
    for b in [512, 1024, 2048]:
        assert abs(rows[b]["alexnet_volume_TB"] / rows[2 * b]["alexnet_volume_TB"] - 2) < 0.05
    # AlexNet (61M params) moves more bytes than ResNet-50 (25.5M) at every
    # batch size, despite ResNet's 5x higher per-image compute — the
    # scaling-ratio asymmetry
    for r in result.rows:
        assert r["alexnet_volume_TB"] > r["resnet50_volume_TB"]
