"""Bench for Table 5 — no LR setting rescues large-batch AlexNet w/o LARS."""

from repro.experiments import table5

from .conftest import SCALE, run_once


def test_table5_lr_sweep(benchmark):
    result = run_once(benchmark, table5.run, scale=SCALE)
    print("\n" + result.format())

    baseline = result.rows[0]["accuracy"]
    sweep = result.rows[1:]
    best_tuned = max(r["accuracy"] for r in sweep)
    linear = result.row_by("role", "linear-scaled LR")["accuracy"]

    # (a) every large-batch setting loses accuracy vs the baseline
    assert best_tuned < baseline - 0.02
    # (b) the linearly-scaled LR is far below the best tuned setting
    #     (the paper's 0.001-vs-0.531 collapse)
    assert linear < best_tuned
    assert linear < baseline - 0.15
