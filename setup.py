"""Setup shim: keeps ``pip install -e .`` working on offline environments
whose setuptools lacks the PEP 660 editable-wheel path (no ``wheel`` pkg)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'ImageNet Training in Minutes' (You et al., ICPP 2018): "
        "LARS large-batch training on a simulated HPC cluster"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
