#!/usr/bin/env python
"""Figure-1 style sweep: accuracy vs batch size, LARS vs linear scaling.

Trains the same model at every batch size with (a) the Goyal-style linear
scaling + warmup recipe and (b) the paper's LARS recipe, then prints the two
accuracy series.  This is the paper's central result at proxy scale: both
recipes match the baseline at moderate batches; beyond ~16-32x only LARS
survives.

Run:  python examples/large_batch_scaling.py
"""

import numpy as np

from repro.core import LARS, SGD, Trainer, iterations_per_epoch, paper_schedule
from repro.data import make_dataset
from repro.nn.models import micro_resnet

EPOCHS = 15
BASE_BATCH, BASE_LR = 4, 0.05
FACTORS = [1, 8, 32, 64, 128]


def train(batch: int, use_lars: bool, ds) -> float:
    model = micro_resnet(num_classes=ds.num_classes, width=8, seed=3)
    peak = BASE_LR * batch / BASE_BATCH
    ipe = iterations_per_epoch(ds.n_train, batch)
    warmup = ipe if batch > BASE_BATCH else 0  # 1-epoch gradual warmup
    schedule = paper_schedule(peak, EPOCHS * ipe, warmup)
    optimizer = (
        LARS(model.parameters(), trust_coefficient=0.02, momentum=0.9,
             weight_decay=0.0005)
        if use_lars
        else SGD(model.parameters(), momentum=0.9, weight_decay=0.0005)
    )
    trainer = Trainer(model, optimizer, schedule, shuffle_seed=1)
    with np.errstate(all="ignore"):  # the divergent runs are the point
        result = trainer.fit(ds.x_train, ds.y_train, ds.x_test, ds.y_test,
                             epochs=EPOCHS, batch_size=batch)
    return result.peak_test_accuracy


def main() -> None:
    ds = make_dataset(num_classes=8, image_size=12, train_size=1024,
                      test_size=256, noise=2.0, seed=42)
    print(f"{'batch':>6} {'factor':>7} {'linear-scaling':>15} {'LARS':>8}")
    for k in FACTORS:
        batch = BASE_BATCH * k
        linear = train(batch, use_lars=False, ds=ds)
        lars = train(batch, use_lars=True, ds=ds)
        marker = "  <-- linear scaling collapses" if lars - linear > 0.15 else ""
        print(f"{batch:>6} {k:>6}x {linear:>15.3f} {lars:>8.3f}{marker}")
    print("\nAt small batches the two coincide; at very large batches only "
          "LARS holds the baseline accuracy (paper Figure 1 / Table 10).")


if __name__ == "__main__":
    main()
