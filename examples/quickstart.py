#!/usr/bin/env python
"""Quickstart: train a small conv net with LARS at a large batch size.

Demonstrates the core API in ~40 lines:

1. generate a synthetic image-classification dataset;
2. build a model from the zoo;
3. assemble the paper's recipe — linear-scaled LR, gradual warmup,
   polynomial decay, LARS;
4. train and print the per-epoch history.

Run:  python examples/quickstart.py
"""

from repro.core import LARS, Trainer, iterations_per_epoch, paper_schedule
from repro.data import make_dataset
from repro.nn.models import micro_alexnet

EPOCHS = 10
BASE_BATCH, BASE_LR = 8, 0.05
BATCH = 128  # 16x the baseline: far beyond where plain SGD+linear-scaling works


def main() -> None:
    ds = make_dataset(num_classes=8, image_size=12, train_size=1024,
                      test_size=256, noise=1.0, seed=0)
    model = micro_alexnet(num_classes=ds.num_classes, image_size=12,
                          width=8, hidden=64, norm="bn", seed=1)
    print(f"model: {model.num_parameters():,} parameters")

    # the paper's recipe: linear scaling rule + warmup + poly(2) decay + LARS
    peak_lr = BASE_LR * BATCH / BASE_BATCH
    ipe = iterations_per_epoch(ds.n_train, BATCH)
    schedule = paper_schedule(peak_lr, EPOCHS * ipe, warmup_iterations=2 * ipe)
    optimizer = LARS(model.parameters(), trust_coefficient=0.01,
                     momentum=0.9, weight_decay=0.0005)

    trainer = Trainer(model, optimizer, schedule, shuffle_seed=0)
    result = trainer.fit(
        ds.x_train, ds.y_train, ds.x_test, ds.y_test,
        epochs=EPOCHS, batch_size=BATCH,
        callback=lambda r: print(
            f"epoch {r.epoch:2d}  loss {r.train_loss:.3f}  "
            f"train {r.train_accuracy:.3f}  test {r.test_accuracy:.3f}  "
            f"lr {r.learning_rate:.3f}"
        ),
    )
    print(f"\npeak top-1 test accuracy: {result.peak_test_accuracy:.3f} "
          f"at global batch {BATCH} ({BATCH // BASE_BATCH}x the baseline)")


if __name__ == "__main__":
    main()
