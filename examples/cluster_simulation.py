#!/usr/bin/env python
"""Simulate the paper's clusters: train on P simulated ranks and predict
ImageNet-scale wall-clock with the calibrated performance model.

Part 1 runs *real* synchronous data-parallel SGD on an 8-rank simulated
cluster (gradient ring-allreduce over an α-β fabric) and shows that the
parallel run reproduces the serial run's accuracy exactly while the fabric
accounts for simulated time and message counts.

Part 2 uses the analytic α-β-γ model to regenerate the paper's headline
wall-clock table: AlexNet in 11 minutes on 1024 Skylakes, ResNet-50 in
20 minutes on 2048 KNLs.

Run:  python examples/cluster_simulation.py
"""

from repro.cluster import SyncSGDConfig, train_sync_sgd
from repro.core import IMAGENET_TRAIN_SIZE, SGD, ConstantLR, Trainer
from repro.data import make_dataset
from repro.nn.models import mlp, paper_model_cost
from repro.perfmodel import device, estimate_training_time, network

WORLD = 8


def part1_simulated_cluster() -> None:
    print("== Part 1: synchronous SGD on an 8-rank simulated cluster ==")
    ds = make_dataset(num_classes=6, image_size=8, train_size=768,
                      test_size=192, noise=1.0, seed=7)

    def builder():
        return mlp(3 * 64, [64], 6, flatten_input=True, seed=5)

    def opt_builder(params):
        return SGD(params, momentum=0.9, weight_decay=0.0005)

    # serial reference
    serial_model = builder()
    serial = Trainer(serial_model, opt_builder(serial_model.parameters()),
                     ConstantLR(0.05), shuffle_seed=9)
    sres = serial.fit(ds.x_train, ds.y_train, ds.x_test, ds.y_test,
                      epochs=5, batch_size=64)

    # the same run, sharded across 8 simulated ranks over Omni-Path
    config = SyncSGDConfig(
        world=WORLD, epochs=5, batch_size=64, algorithm="ring",
        profile=network("opa"), compute_time=lambda k: 1e-4 * k,
        shuffle_seed=9,
    )
    cres = train_sync_sgd(builder, opt_builder, ConstantLR(0.05),
                          ds.x_train, ds.y_train, ds.x_test, ds.y_test, config)

    print(f"serial   final accuracy: {sres.final_test_accuracy:.4f}")
    print(f"cluster  final accuracy: {cres.final_test_accuracy:.4f} "
          f"(sequential consistency)")
    print(f"simulated time: {cres.simulated_seconds:.3f}s, "
          f"{cres.messages} messages, {cres.comm_bytes / 1e6:.1f} MB moved\n")


def part2_paper_headlines() -> None:
    print("== Part 2: the paper's headline wall-clock numbers (predicted) ==")
    rows = [
        ("AlexNet-BN", "alexnet_bn", 100, 32768, 1024, "skylake", "opa", "11 min"),
        ("AlexNet-BN", "alexnet_bn", 100, 32768, 512, "knl", "opa", "24 min"),
        ("ResNet-50", "resnet50", 90, 32768, 2048, "knl", "opa", "20 min"),
        ("ResNet-50", "resnet50", 64, 32768, 2048, "knl", "opa", "14 min"),
        ("ResNet-50", "resnet50", 90, 8192, 256, "p100", "fdr", "1 hour"),
    ]
    print(f"{'model':<11} {'epochs':>6} {'batch':>6} {'procs':>6} "
          f"{'device':>9} {'predicted':>10} {'paper':>8}")
    for label, model, epochs, batch, procs, dev, net, paper in rows:
        est = estimate_training_time(
            paper_model_cost(model), epochs=epochs,
            dataset_size=IMAGENET_TRAIN_SIZE, global_batch=batch,
            processors=procs, device=device(dev), net=network(net),
        )
        print(f"{label:<11} {epochs:>6} {batch:>6} {procs:>6} "
              f"{dev:>9} {est.total_minutes:>8.1f} m {paper:>8}")


if __name__ == "__main__":
    part1_simulated_cluster()
    part2_paper_headlines()
