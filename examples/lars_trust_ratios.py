#!/usr/bin/env python
"""Watch LARS's layer-wise trust ratios during training.

The motivation for LARS: the ratio ‖w‖/‖∇w‖ differs by orders of magnitude
across the layers of one network, so a single global learning rate is either
too hot for the smallest-ratio layer or too cold for the largest.  This
script trains a small conv net at a 32x batch and prints each layer's trust
ratio over time — the per-layer learning rates LARS actually applies.

Run:  python examples/lars_trust_ratios.py
"""

import numpy as np

from repro.core import LARS, iterations_per_epoch, paper_schedule
from repro.data import make_dataset
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import micro_alexnet
from repro.util import sparkline

EPOCHS, BATCH = 8, 256


def main() -> None:
    ds = make_dataset(num_classes=8, image_size=12, train_size=1024,
                      test_size=256, noise=1.0, seed=0)
    model = micro_alexnet(num_classes=8, image_size=12, width=8, hidden=64,
                          norm="bn", seed=1)
    opt = LARS(model.parameters(), trust_coefficient=0.01, momentum=0.9,
               weight_decay=0.0005)
    ipe = iterations_per_epoch(ds.n_train, BATCH)
    sched = paper_schedule(0.05 * 32, EPOCHS * ipe, warmup_iterations=ipe)
    loss_fn = SoftmaxCrossEntropy()

    history: dict[str, list[float]] = {}
    it = 0
    rng = np.random.default_rng(3)
    for epoch in range(EPOCHS):
        order = rng.permutation(ds.n_train)
        for lo in range(0, ds.n_train, BATCH):
            idx = order[lo : lo + BATCH]
            model.train()
            opt.zero_grad()
            logits = model.forward(ds.x_train[idx])
            loss_fn.forward(logits, ds.y_train[idx])
            model.backward(loss_fn.backward())
            ratios = opt.trust_ratios()
            for name, r in ratios.items():
                history.setdefault(name, []).append(r)
            opt.step(sched(it))
            it += 1

    # weights only (excluded params report ratio 1.0 — uninformative)
    rows = [(n, vals) for n, vals in history.items()
            if not np.allclose(vals, 1.0)]
    rows.sort(key=lambda r: -np.mean(r[1]))
    print(f"{'layer':<38}{'mean ratio':>11}   ratio over iterations")
    for name, vals in rows:
        print(f"{name:<38}{np.mean(vals):>11.2f}   {sparkline(vals[:64])}")
    spread = max(np.mean(v) for _, v in rows) / min(np.mean(v) for _, v in rows)
    print(f"\ntrust ratios span a {spread:.0f}x range across layers — the "
          "spread a single global LR cannot serve, and the reason linear "
          "scaling alone collapses at large batch (Table 5) while LARS "
          "does not (Table 7).")


if __name__ == "__main__":
    main()
