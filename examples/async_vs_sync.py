#!/usr/bin/env python
"""Synchronous allreduce SGD vs an asynchronous parameter server.

The paper chooses synchronous SGD because "asynchronous methods using
parameter server are not guaranteed to be stable on large-scale systems".
This example makes that argument concrete on the simulated cluster:

* the sync run is sequentially consistent — identical result at any P;
* the async (Downpour-style) run applies gradients that are ~P−1 updates
  stale; staleness grows with worker count and, at an aggressive learning
  rate, accuracy degrades and eventually diverges.

Run:  python examples/async_vs_sync.py
"""

from repro.cluster import (
    ParamServerConfig,
    SyncSGDConfig,
    train_param_server,
    train_sync_sgd,
)
from repro.core import SGD, ConstantLR, iterations_per_epoch
from repro.data import make_dataset
from repro.nn.models import mlp

LR = 0.2  # aggressive on purpose: stresses the async scheme
EPOCHS, BATCH = 6, 32


def main() -> None:
    ds = make_dataset(num_classes=6, image_size=8, train_size=768,
                      test_size=192, noise=1.0, seed=3)

    def builder():
        return mlp(3 * 64, [48], 6, flatten_input=True, seed=2)

    def opt_builder(params):
        return SGD(params, momentum=0.9, weight_decay=0.0)

    total_updates = EPOCHS * iterations_per_epoch(ds.n_train, BATCH)

    print(f"{'scheme':<28} {'workers':>7} {'accuracy':>9} {'staleness':>10}")
    for workers in (2, 4, 16):
        sync_cfg = SyncSGDConfig(world=workers, epochs=EPOCHS, batch_size=BATCH,
                                 shuffle_seed=4)
        sync = train_sync_sgd(builder, opt_builder, ConstantLR(LR),
                              ds.x_train, ds.y_train, ds.x_test, ds.y_test,
                              sync_cfg)
        async_cfg = ParamServerConfig(workers=workers, total_updates=total_updates,
                                      batch_size=BATCH // 2, compute_time=1.0,
                                      compute_jitter=0.2, seed=5)
        ps = train_param_server(builder, opt_builder, ConstantLR(LR),
                                ds.x_train, ds.y_train, ds.x_test, ds.y_test,
                                async_cfg)
        print(f"{'sync allreduce':<28} {workers:>7} "
              f"{sync.final_test_accuracy:>9.3f} {'0 (exact)':>10}")
        status = "DIVERGED" if ps.diverged else f"{ps.final_test_accuracy:.3f}"
        print(f"{'async parameter server':<28} {workers:>7} {status:>9} "
              f"{ps.mean_staleness:>10.1f}")
    print("\nSync results are identical at every P (sequential consistency); "
          "async staleness grows with P and hurts at aggressive LRs.")


if __name__ == "__main__":
    main()
