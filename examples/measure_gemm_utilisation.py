#!/usr/bin/env python
"""Measure the Figure 3 effect on *this* machine.

The paper's Figure 3 shows single-GPU throughput rising with batch size
because "low-level matrix computation libraries will be more efficient".
The same saturation exists in any BLAS: this script times the dominant GEMM
of an AlexNet-style FC layer at growing batch sizes on the local CPU and
fits the repository's utilisation model util(b) = b/(b+b_half) to the
measurements — the empirical basis for the perfmodel's b_half knob.

Run:  python examples/measure_gemm_utilisation.py
"""

import time

import numpy as np

from repro.util import sparkline

IN_F, OUT_F = 4096, 4096  # AlexNet fc7-sized GEMM
BATCHES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
REPEATS = 5


def measure(batch: int) -> float:
    """Sustained Gflop/s of (batch x IN) @ (IN x OUT) on this machine."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(batch, IN_F))
    w = rng.normal(size=(IN_F, OUT_F))
    x @ w  # warm-up
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        x @ w
        best = min(best, time.perf_counter() - t0)
    flops = 2 * batch * IN_F * OUT_F
    return flops / best / 1e9


def fit_b_half(batches, rates) -> float:
    """Least-squares fit of rate ≈ R∞ · b/(b+h) over a grid of h."""
    batches = np.asarray(batches, dtype=float)
    rates = np.asarray(rates)
    best_h, best_err = 1.0, float("inf")
    for h in np.geomspace(0.25, 256, 200):
        util = batches / (batches + h)
        r_inf = np.sum(rates * util) / np.sum(util * util)
        err = float(np.sum((rates - r_inf * util) ** 2))
        if err < best_err:
            best_h, best_err = h, err
    return best_h


def main() -> None:
    rates = [measure(b) for b in BATCHES]
    peak = max(rates)
    print(f"{'batch':>6} {'Gflop/s':>9} {'of peak':>8}")
    for b, r in zip(BATCHES, rates):
        print(f"{b:>6} {r:>9.1f} {r / peak:>7.1%}")
    print(f"\nthroughput curve: {sparkline(rates)}")
    h = fit_b_half(BATCHES, rates)
    print(f"fitted b_half ≈ {h:.1f} (this machine's BLAS saturation point "
          "for a 4096x4096 FC GEMM)")
    print("The perfmodel uses the same curve shape with b_half calibrated "
          "from the paper's measured rows (P100+AlexNet: 128; see "
          "EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
