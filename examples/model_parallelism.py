#!/usr/bin/env python
"""Model parallelism (Figure 2b): partition a network across simulated
machines and verify it computes exactly the single-machine result.

The paper: "Partitioning the neural network means parallelizing the matrix
operations on the partitioned network.  Thus, model parallelism can get the
same solution as the single-machine case" — and "only those nodes with
edges that cross partition boundaries will need to have their state
communicated".

This example builds a 2-layer MLP twice: once serially, once with its
hidden layer's columns spread over 4 simulated ranks (Megatron-style
column→row pairing, one allreduce per pair), and compares outputs, then
contrasts the communication volumes of model vs data parallelism for the
same network — the reason the paper (and everyone since) picks data
parallelism for ImageNet-scale models.

Run:  python examples/model_parallelism.py
"""

import numpy as np

from repro.cluster import ColumnParallelDense, RowParallelDense
from repro.comm import run_cluster
from repro.nn import Dense
from repro.nn.initializers import xavier, zeros

IN, HIDDEN, OUT, BATCH, WORLD = 32, 256, 10, 64, 4


def serial_reference(x):
    rng1, rng2 = np.random.default_rng(1), np.random.default_rng(2)
    l1 = Dense(IN, HIDDEN, rng=np.random.default_rng(9))
    l1.weight.data[...] = xavier((IN, HIDDEN), rng1)
    l1.bias.data[...] = zeros((HIDDEN,), rng1)
    l2 = Dense(HIDDEN, OUT, rng=np.random.default_rng(9))
    l2.weight.data[...] = xavier((HIDDEN, OUT), rng2)
    l2.bias.data[...] = zeros((OUT,), rng2)
    return l2.forward(np.maximum(l1.forward(x), 0.0))


def main() -> None:
    rng = np.random.default_rng(0)
    x = rng.normal(size=(BATCH, IN))
    expected = serial_reference(x)

    def worker(comm):
        l1 = ColumnParallelDense(comm, IN, HIDDEN, gather_output=False, seed=1)
        l2 = RowParallelDense(comm, HIDDEN, OUT, input_is_partitioned=True, seed=2)
        hidden_local = np.maximum(l1.forward(x), 0.0)
        out = l2.forward(hidden_local)
        return out, hidden_local.shape[1]

    results, fabric = run_cluster(WORLD, worker)
    out0, local_width = results[0]
    err = np.abs(out0 - expected).max()
    print(f"hidden layer: {HIDDEN} units split as {WORLD} x {local_width}")
    print(f"max |model-parallel - serial| = {err:.2e}  (exact to fp)")
    print(f"boundary traffic: {fabric.stats.messages} messages, "
          f"{fabric.stats.bytes / 1e3:.1f} KB for one forward pass")

    # why the paper uses data parallelism: per-iteration bytes comparison
    params = IN * HIDDEN + HIDDEN + HIDDEN * OUT + OUT
    data_parallel_bytes = params * 8  # one gradient allreduce, ~|W|
    activations_bytes = BATCH * OUT * 8 * (WORLD - 1)  # row-layer reduction
    print("\nper-iteration communication, this network:")
    print(f"  data parallelism  ~ |W|        = {data_parallel_bytes / 1e3:8.1f} KB")
    print(f"  model parallelism ~ activations = {activations_bytes / 1e3:8.1f} KB")
    print("For ImageNet-scale inputs the activations term stays small per "
          "boundary, but so few boundaries exist that most matrices would "
          "need only 'one or two machines' (the paper) — data parallelism "
          "is what scales to thousands.")


if __name__ == "__main__":
    main()
