#!/usr/bin/env python
"""The paper's communication analysis, end to end.

Reproduces the quantitative story of Tables 2/6/11/12 and Figures 8-10 for
both models: iteration counts, message counts, byte volumes, allreduce
algorithm choice, weak-scaling efficiency, and the energy split.

Run:  python examples/communication_analysis.py
"""

from repro.comm import allreduce_cost
from repro.core import IMAGENET_TRAIN_SIZE
from repro.nn.models import paper_model_cost
from repro.perfmodel import (
    comm_volume_bytes,
    device,
    iterations,
    network,
    training_energy,
    weak_scaling_efficiency,
)

BATCHES = [512, 4096, 32768]


def main() -> None:
    alex = paper_model_cost("alexnet")
    res = paper_model_cost("resnet50")

    print("== scaling ratios (Table 6) ==")
    for c in (alex, res):
        print(f"  {c.name:<10} |W|={c.parameters / 1e6:6.1f}M "
              f"flops/image={c.flops_per_image / 1e9:5.2f}G "
              f"ratio={c.scaling_ratio:6.1f}")

    print("\n== iterations and gradient traffic at fixed epochs (Figs 8/10) ==")
    for b in BATCHES:
        it = iterations(90, IMAGENET_TRAIN_SIZE, b)
        vol = comm_volume_bytes(res, 90, IMAGENET_TRAIN_SIZE, b)
        print(f"  batch {b:>6}: {it:>7} iterations, "
              f"{vol / 1e12:6.2f} TB of ResNet-50 gradients")

    print("\n== allreduce algorithm choice, 512 ranks, ResNet-50 |W| (Table 11 nets) ==")
    for netname in ("fdr", "qdr", "10gbe"):
        prof = network(netname)
        costs = {a: allreduce_cost(512, res.model_bytes, prof, a)
                 for a in ("tree", "ring", "rhd")}
        best = min(costs, key=costs.get)
        pretty = ", ".join(f"{a}={t * 1e3:7.1f}ms" for a, t in costs.items())
        print(f"  {prof.name:<28} {pretty}  -> best: {best}")

    print("\n== weak-scaling efficiency at 64 images/device (Table 6's punchline) ==")
    for procs in (16, 128, 1024):
        ea = weak_scaling_efficiency(alex, procs, 64, device("knl"), network("qdr"))
        er = weak_scaling_efficiency(res, procs, 64, device("knl"), network("qdr"))
        print(f"  P={procs:>5}: AlexNet {ea:5.1%}   ResNet-50 {er:5.1%}")

    print("\n== energy split of 90-epoch ResNet-50 training (Table 12) ==")
    for b in BATCHES:
        e = training_energy(res, 90, IMAGENET_TRAIN_SIZE, b)
        print(f"  batch {b:>6}: compute {e.compute_joules / 1e6:8.1f} MJ, "
              f"gradient movement {e.comm_joules / 1e3:8.2f} kJ "
              f"({e.comm_fraction:.3%} of total)")


if __name__ == "__main__":
    main()
