"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.core import SGD, Trainer
from repro.data import SyntheticConfig, gaussian_blobs, make_dataset
from repro.nn.models import mlp


def small_cfg(**kw):
    defaults = dict(num_classes=4, image_size=8, train_size=256, test_size=64, seed=1)
    defaults.update(kw)
    return SyntheticConfig(**defaults)


def test_shapes_and_dtypes():
    ds = make_dataset(small_cfg())
    assert ds.x_train.shape == (256, 3, 8, 8)
    assert ds.y_train.shape == (256,)
    assert ds.x_test.shape == (64, 3, 8, 8)
    assert ds.y_train.dtype == np.int64
    assert ds.x_train.dtype == np.float64


def test_labels_in_range_all_classes_present():
    ds = make_dataset(small_cfg(train_size=1000))
    assert ds.y_train.min() >= 0
    assert ds.y_train.max() < 4
    assert len(np.unique(ds.y_train)) == 4


def test_standardised_with_train_stats():
    ds = make_dataset(small_cfg())
    assert abs(ds.x_train.mean()) < 1e-10
    assert abs(ds.x_train.std() - 1.0) < 1e-10


def test_deterministic_by_seed():
    a = make_dataset(small_cfg(seed=7))
    b = make_dataset(small_cfg(seed=7))
    assert np.array_equal(a.x_train, b.x_train)
    c = make_dataset(small_cfg(seed=8))
    assert not np.array_equal(a.x_train, c.x_train)


def test_noise_controls_difficulty():
    """A linear probe separates the easy version better than the hard one."""

    def probe_accuracy(noise):
        ds = make_dataset(small_cfg(noise=noise, train_size=512, test_size=256))
        model = mlp(3 * 64, [], 4, flatten_input=True, seed=0)
        trainer = Trainer(model, SGD(model.parameters(), momentum=0.9,
                                     weight_decay=0.0), 0.05, shuffle_seed=0)
        res = trainer.fit(ds.x_train, ds.y_train, ds.x_test, ds.y_test,
                          epochs=5, batch_size=64)
        return res.final_test_accuracy

    assert probe_accuracy(0.2) > probe_accuracy(3.0)


def test_learnable_but_not_trivial():
    ds = make_dataset(small_cfg(noise=1.0, train_size=512))
    model = mlp(3 * 64, [32], 4, flatten_input=True, seed=0)
    trainer = Trainer(model, SGD(model.parameters(), weight_decay=0.0001),
                      0.05, shuffle_seed=0)
    res = trainer.fit(ds.x_train, ds.y_train, ds.x_test, ds.y_test,
                      epochs=10, batch_size=64)
    assert 0.4 < res.final_test_accuracy <= 1.0


def test_subset():
    ds = make_dataset(small_cfg())
    sub = ds.subset(100, 32)
    assert sub.n_train == 100 and sub.n_test == 32
    assert sub.input_shape == ds.input_shape


def test_config_validation():
    with pytest.raises(ValueError):
        SyntheticConfig(num_classes=1)
    with pytest.raises(ValueError):
        SyntheticConfig(image_size=2)
    with pytest.raises(ValueError):
        SyntheticConfig(train_size=0)
    with pytest.raises(ValueError):
        SyntheticConfig(noise=-1)


def test_cfg_and_kwargs_mutually_exclusive():
    with pytest.raises(TypeError):
        make_dataset(small_cfg(), num_classes=3)


def test_kwargs_form():
    ds = make_dataset(num_classes=3, image_size=8, train_size=64, test_size=16)
    assert ds.num_classes == 3


class TestGaussianBlobs:
    def test_shapes(self):
        x, y = gaussian_blobs(100, num_classes=5, dim=4)
        assert x.shape == (100, 4) and y.shape == (100,)
        assert set(np.unique(y)) <= set(range(5))

    def test_deterministic(self):
        x1, _ = gaussian_blobs(50, seed=3)
        x2, _ = gaussian_blobs(50, seed=3)
        assert np.array_equal(x1, x2)

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_blobs(0)
        with pytest.raises(ValueError):
            gaussian_blobs(10, num_classes=1)
