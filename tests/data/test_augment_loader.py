"""Augmentation and BatchLoader tests."""

import numpy as np
import pytest

from repro.data import (
    AUGMENTATIONS,
    BatchLoader,
    intensity_jitter,
    pipeline,
    random_crop,
    random_flip,
)
from repro.data.datasets import IMAGENET, TARGET_ACCURACY, proxy_dataset


def batch(n=8, c=3, s=8, seed=0):
    return np.random.default_rng(seed).normal(size=(n, c, s, s))


class TestAugment:
    def test_flip_preserves_shape_and_values(self):
        x = batch()
        out = random_flip(x, np.random.default_rng(0))
        assert out.shape == x.shape
        # each example is either identical or exactly mirrored
        for i in range(len(x)):
            same = np.array_equal(out[i], x[i])
            mirrored = np.array_equal(out[i], x[i, :, :, ::-1])
            assert same or mirrored

    def test_flip_does_not_mutate_input(self):
        x = batch()
        x0 = x.copy()
        random_flip(x, np.random.default_rng(1))
        assert np.array_equal(x, x0)

    def test_crop_preserves_shape(self):
        x = batch()
        out = random_crop(pad=2)(x, np.random.default_rng(0))
        assert out.shape == x.shape

    def test_crop_zero_offset_possible(self):
        """Some crop offsets reproduce the original interior."""
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        rng = np.random.default_rng(0)
        outs = {random_crop(1)(x, rng).tobytes() for _ in range(50)}
        assert x.tobytes() in outs  # identity crop occurs
        assert len(outs) > 1  # and so do shifted crops

    def test_jitter_bounded(self):
        x = np.ones((4, 1, 4, 4))
        out = intensity_jitter(0.2)(x, np.random.default_rng(0))
        assert np.all(out > 0.5) and np.all(out < 1.5)

    def test_pipeline_composition(self):
        x = batch()
        p = pipeline(random_flip, random_crop(1))
        out = p(x, np.random.default_rng(0))
        assert out.shape == x.shape

    def test_registry_regimes(self):
        assert set(AUGMENTATIONS) == {"none", "weak", "heavy"}
        x = batch()
        assert np.array_equal(AUGMENTATIONS["none"](x, np.random.default_rng(0)), x)

    def test_deterministic_given_rng(self):
        x = batch()
        a = AUGMENTATIONS["heavy"](x, np.random.default_rng(5))
        b = AUGMENTATIONS["heavy"](x, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestBatchLoader:
    def data(self, n=100):
        rng = np.random.default_rng(0)
        return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 4, size=n)

    def test_covers_every_example_once(self):
        x, y = self.data()
        loader = BatchLoader(x, y, batch_size=32, seed=1, auto_advance=False)
        seen = sum(len(yb) for _, yb in loader)
        assert seen == 100

    def test_batches_per_epoch(self):
        x, y = self.data(100)
        assert BatchLoader(x, y, 32).batches_per_epoch == 4
        assert len(BatchLoader(x, y, 25)) == 4

    def test_epochs_reshuffle(self):
        x, y = self.data()
        loader = BatchLoader(x, y, batch_size=100, seed=1, auto_advance=False)
        (b1,), (b2,) = (list(b) for b in loader.epochs(2))
        assert not np.array_equal(b1[0], b2[0])  # different epoch order
        assert loader.epoch == 2  # epochs() leaves the loader past the last

    def test_same_epoch_is_deterministic(self):
        """Iterating without advancing replays the identical epoch."""
        x, y = self.data()
        loader = BatchLoader(x, y, batch_size=32, seed=1, augment="heavy",
                             auto_advance=False)
        first = [(xb.copy(), yb.copy()) for xb, yb in loader]
        second = list(loader)
        assert loader.epoch == 0
        for (x1, y1), (x2, y2) in zip(first, second):
            assert np.array_equal(x1, x2) and np.array_equal(y1, y2)

    def test_set_epoch_matches_epochs_iterator(self):
        x, y = self.data()
        a = BatchLoader(x, y, batch_size=32, seed=5, auto_advance=False)
        b = BatchLoader(x, y, batch_size=32, seed=5, auto_advance=False)
        via_epochs = [yb for batches in a.epochs(3) for _, yb in batches]
        via_set = []
        for epoch in range(3):
            b.set_epoch(epoch)
            via_set.extend(yb for _, yb in b)
        assert all(np.array_equal(p, q) for p, q in zip(via_epochs, via_set))

    def test_implicit_advance_warns_once(self):
        import warnings

        x, y = self.data()
        loader = BatchLoader(x, y, batch_size=100, seed=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            list(loader)
            list(loader)
        assert loader.epoch == 2  # legacy behaviour preserved by the shim
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1

    def test_auto_advance_true_is_silent(self):
        import warnings

        x, y = self.data()
        loader = BatchLoader(x, y, batch_size=100, seed=1, auto_advance=True)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            list(loader)
        assert loader.epoch == 1
        assert not [w for w in caught if w.category is DeprecationWarning]

    def test_set_epoch_validates(self):
        x, y = self.data()
        loader = BatchLoader(x, y, batch_size=32)
        with pytest.raises(ValueError):
            loader.set_epoch(-1)

    def test_no_shuffle_is_sequential(self):
        x, y = self.data()
        loader = BatchLoader(x, y, batch_size=40, shuffle=False,
                             auto_advance=False)
        xb, yb = next(iter(loader))
        assert np.array_equal(xb, x[:40])

    def test_sharding_partitions_batch(self):
        x, y = self.data(64)
        loaders = [BatchLoader(x, y, 32, world=4, rank=r, seed=2,
                               auto_advance=False) for r in range(4)]
        batches = [list(ldr) for ldr in loaders]
        # each rank sees 8 examples per global batch
        assert all(len(b[0][1]) == 8 for b in batches)
        total = sum(len(yb) for b in batches for _, yb in b)
        assert total == 64

    def test_shards_are_disjoint(self):
        x = np.arange(40, dtype=float).reshape(40, 1)
        y = np.arange(40)
        seen = []
        for r in range(4):
            for _, yb in BatchLoader(x, y, 20, world=4, rank=r, seed=3,
                                     auto_advance=False):
                seen.extend(yb.tolist())
        assert sorted(seen) == list(range(40))

    def test_augmentation_applied(self):
        x, y = self.data()
        plain = BatchLoader(x, y, 100, augment="none", seed=4, auto_advance=False)
        augd = BatchLoader(x, y, 100, augment="heavy", seed=4, auto_advance=False)
        (xp, _), = list(plain)
        (xa, _), = list(augd)
        assert not np.array_equal(xp, xa)

    def test_validation(self):
        x, y = self.data()
        with pytest.raises(ValueError):
            BatchLoader(x, y[:10], 32)
        with pytest.raises(ValueError):
            BatchLoader(x, y, 0)
        with pytest.raises(ValueError):
            BatchLoader(x, y, 32, world=2, rank=2)
        with pytest.raises(KeyError):
            BatchLoader(x, y, 32, augment="mixup")


class TestDatasetSpecs:
    def test_imagenet_constants(self):
        assert IMAGENET.train_images == 1_281_167
        assert IMAGENET.val_images == 50_000
        assert IMAGENET.classes == 1000

    def test_table3_targets(self):
        assert TARGET_ACCURACY["alexnet"] == 0.58
        assert TARGET_ACCURACY["resnet50"] == 0.753

    def test_proxy_datasets_build(self):
        ds = proxy_dataset("tiny")
        assert ds.n_train == 512

    def test_unknown_proxy_raises(self):
        with pytest.raises(KeyError):
            proxy_dataset("huge")


class TestReusedBatchBuffers:
    """reuse_buffers=True gathers via np.take(out=...) into one persistent
    buffer; batch values must be identical to the fancy-indexed default."""

    def data(self, n=100):
        rng = np.random.default_rng(7)
        return rng.normal(size=(n, 3, 8, 8)), rng.integers(0, 4, size=n)

    def test_values_identical_to_fancy_indexing(self):
        x, y = self.data()
        plain = BatchLoader(x, y, 32, seed=3, auto_advance=False)
        reused = BatchLoader(x, y, 32, seed=3, auto_advance=False,
                             reuse_buffers=True)
        for (xa, ya), (xb, yb) in zip(plain, reused, strict=True):
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)

    def test_batches_share_one_buffer(self):
        x, y = self.data()
        loader = BatchLoader(x, y, 25, seed=3, auto_advance=False,
                             reuse_buffers=True)
        bases = {xb.base is None and id(xb) or id(xb.base) for xb, _ in loader}
        assert len(bases) == 1  # every batch is a view of the same buffer

    def test_short_final_batch_is_prefix_view(self):
        x, y = self.data(70)  # 32 + 32 + 6
        loader = BatchLoader(x, y, 32, seed=1, auto_advance=False,
                             reuse_buffers=True)
        sizes = [len(yb) for _, yb in loader]
        assert sizes == [32, 32, 6]
        plain = BatchLoader(x, y, 32, seed=1, auto_advance=False)
        for (xa, ya), (xb, yb) in zip(plain, loader, strict=True):
            np.testing.assert_array_equal(xa, xb)
            np.testing.assert_array_equal(ya, yb)

    def test_augmented_epochs_match(self):
        # augmentation draws from the same rng stream either way
        x, y = self.data()
        plain = BatchLoader(x, y, 32, seed=5, augment="heavy",
                            auto_advance=False)
        reused = BatchLoader(x, y, 32, seed=5, augment="heavy",
                             auto_advance=False, reuse_buffers=True)
        for ea, eb in zip(plain.epochs(2), reused.epochs(2), strict=True):
            for (xa, ya), (xb, yb) in zip(ea, eb, strict=True):
                np.testing.assert_array_equal(xa, xb)
                np.testing.assert_array_equal(ya, yb)
