"""Nonblocking primitive layer: request handles and progress-driven iallreduce.

The contracts under test are the MPI ones the overlap machinery relies on:
``test`` never blocks, ``wait`` returns the payload exactly once, requests
complete in any order as long as every rank *launches* collectives in the
same program order, and the simulated cost of a nonblocking collective
matches the analytic α-β critical path of its blocking twin.
"""

import numpy as np
import pytest

from repro.comm import FabricTimeout, NetworkProfile, SimulatedFabric, run_cluster
from repro.comm.collectives import allreduce_cost
from repro.comm.communicator import Communicator
from repro.faults import FaultInjector, FaultPlan

_PROFILE = NetworkProfile(alpha=1e-5, beta=1e-8)


def _rank_data(rank: int, n: int = 256) -> np.ndarray:
    return np.random.default_rng(rank).normal(size=n)


def _expected_sum(world: int, n: int = 256) -> np.ndarray:
    return sum(_rank_data(r, n) for r in range(world))


class TestRequestContracts:
    def test_isend_request_immediately_done(self):
        f = SimulatedFabric(2)
        req = Communicator(f, 0).isend(1, np.zeros(4))
        assert req.done
        assert req.test()
        req.wait()  # idempotent no-op

    def test_irecv_test_polls_without_blocking(self):
        f = SimulatedFabric(2)
        c0, c1 = Communicator(f, 0), Communicator(f, 1)
        req = c1.irecv(0, tag=3)
        assert not req.test()  # nothing posted yet, returns immediately
        assert not req.done
        c0.isend(1, np.arange(5.0), tag=3)
        assert req.test()
        assert np.array_equal(req.payload, np.arange(5.0))

    def test_irecv_wait_returns_payload_and_merges_clock(self):
        f = SimulatedFabric(2, _PROFILE)
        c0, c1 = Communicator(f, 0), Communicator(f, 1)
        c0.isend(1, np.zeros(100))
        got = c1.irecv(0).wait()
        assert got.shape == (100,)
        # the receiver's clock absorbed the α-β arrival time
        assert f.time_of(1) == pytest.approx(_PROFILE.transfer_time(800))

    def test_irecv_wait_timeout(self):
        f = SimulatedFabric(2)
        req = Communicator(f, 1).irecv(0)
        with pytest.raises(FabricTimeout):
            req.wait(timeout=0.05)


class TestIallreduce:
    @pytest.mark.parametrize("algorithm", ["tree", "ring", "rhd"])
    def test_values_match_blocking(self, algorithm):
        def worker(comm):
            return comm.iallreduce(_rank_data(comm.rank),
                                   algorithm=algorithm).wait()

        results, _ = run_cluster(4, worker)
        expected = _expected_sum(4)
        for got in results:
            np.testing.assert_allclose(got, expected, rtol=1e-12)

    @pytest.mark.parametrize("algorithm", ["tree", "ring", "rhd"])
    def test_simulated_cost_matches_analytic(self, algorithm):
        """With zero compute, the makespan of one iallreduce is exactly the
        α-β critical path of the blocking collective."""
        n = 4096

        def worker(comm):
            comm.iallreduce(_rank_data(comm.rank, n), algorithm=algorithm).wait()

        _, fabric = run_cluster(8, worker, profile=_PROFILE)
        expected = allreduce_cost(8, n * 8, _PROFILE, algorithm=algorithm)
        assert fabric.makespan == pytest.approx(expected, rel=1e-12)

    def test_out_of_order_completion(self):
        """A later-launched small collective may be waited before an earlier
        big one — completion order is free, launch order is the contract."""
        def worker(comm):
            big = comm.iallreduce(_rank_data(comm.rank, 65536))
            small = comm.iallreduce(_rank_data(comm.rank + 100, 16))
            s = small.wait()
            b = big.wait()
            return s, b

        results, _ = run_cluster(4, worker)
        exp_small = sum(_rank_data(r + 100, 16) for r in range(4))
        exp_big = _expected_sum(4, 65536)
        for s, b in results:
            np.testing.assert_allclose(s, exp_small, rtol=1e-12)
            np.testing.assert_allclose(b, exp_big, rtol=1e-12)

    def test_multiple_in_flight(self):
        def worker(comm):
            reqs = [comm.iallreduce(_rank_data(comm.rank * 10 + i, 64))
                    for i in range(4)]
            return [r.wait() for r in reqs]

        results, _ = run_cluster(4, worker)
        for i in range(4):
            expected = sum(_rank_data(r * 10 + i, 64) for r in range(4))
            for got in results:
                np.testing.assert_allclose(got[i], expected, rtol=1e-12)

    def test_overlap_hides_comm_under_compute(self):
        """iallreduce → compute → wait costs max(compute, comm), not the sum."""
        n = 4096
        cost = allreduce_cost(4, n * 8, _PROFILE, algorithm="tree")
        budget = 10 * cost

        def worker(comm):
            req = comm.iallreduce(_rank_data(comm.rank, n))
            comm.compute(budget)
            req.wait()
            return comm.time

        results, fabric = run_cluster(4, worker, profile=_PROFILE)
        assert fabric.makespan == pytest.approx(budget, rel=1e-9)
        assert all(t == pytest.approx(budget, rel=1e-9) for t in results)

    def test_ring_copy_false_reduces_in_place(self):
        def worker(comm):
            buf = _rank_data(comm.rank)
            req = comm.iallreduce(buf, algorithm="ring", copy=False)
            out = req.wait()
            return np.array_equal(out, buf)

        results, _ = run_cluster(4, worker)
        assert all(results)

    def test_world_one_short_circuit(self):
        def worker(comm):
            return comm.iallreduce(np.arange(8.0)).wait()

        results, _ = run_cluster(1, worker)
        np.testing.assert_array_equal(results[0], np.arange(8.0))

    def test_rhd_requires_power_of_two(self):
        def worker(comm):
            comm.iallreduce(np.zeros(8), algorithm="rhd").wait()

        with pytest.raises(ValueError):
            run_cluster(3, worker)

    def test_unknown_algorithm_rejected(self):
        def worker(comm):
            comm.iallreduce(np.zeros(8), algorithm="butterfly")

        with pytest.raises(ValueError):
            run_cluster(2, worker)


class TestFaultsOnInFlight:
    def test_message_loss_on_in_flight_collective(self):
        """The injector prices retransmits into each posted message of an
        in-flight iallreduce: values bitwise-identical to the fault-free
        run, time strictly larger, every loss accounted."""
        def worker(comm):
            return comm.iallreduce(_rank_data(comm.rank)).wait()

        clean, clean_fabric = run_cluster(4, worker, profile=_PROFILE)
        injector = FaultInjector(FaultPlan(seed=3, drop_prob=0.4))
        lossy, lossy_fabric = run_cluster(4, worker, profile=_PROFILE,
                                          injector=injector)
        for a, b in zip(clean, lossy):
            np.testing.assert_array_equal(a, b)
        assert injector.stats.messages_dropped > 0
        assert lossy_fabric.makespan > clean_fabric.makespan
