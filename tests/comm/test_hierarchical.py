"""Two-level (hierarchical) allreduce tests."""

import numpy as np
import pytest

from repro.comm import (
    NetworkProfile,
    allreduce_cost,
    hierarchical_cost,
    node_groups,
    run_cluster,
)


def rank_array(rank: int, n: int = 10) -> np.ndarray:
    return np.random.default_rng(500 + rank).normal(size=n)


def expected_sum(size: int, n: int = 10) -> np.ndarray:
    return np.sum([rank_array(r, n) for r in range(size)], axis=0)


class TestNodeGroups:
    def test_even_partition(self):
        assert node_groups(8, 4) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_ragged_last_node(self):
        assert node_groups(7, 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_single_node(self):
        assert node_groups(4, 8) == [[0, 1, 2, 3]]

    def test_invalid_node_size(self):
        with pytest.raises(ValueError):
            node_groups(4, 0)


class TestHierarchicalAllreduce:
    @pytest.mark.parametrize("size,node_size", [(4, 2), (8, 4), (6, 3), (7, 3), (5, 2)])
    def test_sum_correct(self, size, node_size):
        def worker(comm):
            return comm.allreduce_hierarchical(rank_array(comm.rank), node_size)

        results, _ = run_cluster(size, worker)
        ref = expected_sum(size)
        for r in results:
            assert np.allclose(r, ref, atol=1e-12)

    def test_bitwise_identical_across_ranks(self):
        def worker(comm):
            return comm.allreduce_hierarchical(rank_array(comm.rank, 23), 2)

        results, _ = run_cluster(6, worker)
        for r in results[1:]:
            assert np.array_equal(r, results[0])

    def test_node_size_covering_all_ranks(self):
        """One node == plain intra reduce+bcast, no inter phase."""

        def worker(comm):
            return comm.allreduce_hierarchical(rank_array(comm.rank), 8)

        results, _ = run_cluster(4, worker)
        assert np.allclose(results[0], expected_sum(4), atol=1e-12)

    def test_unknown_inter_algorithm(self):
        def worker(comm):
            return comm.allreduce_hierarchical(np.zeros(4), 2, inter_algorithm="mesh")

        with pytest.raises(ValueError):
            run_cluster(4, worker)

    def test_back_to_back_with_flat_allreduce(self):
        """Hierarchical and flat collectives interleave without cross-talk."""

        def worker(comm):
            a = comm.allreduce_hierarchical(np.array([1.0]), 2)
            b = comm.allreduce(np.array([10.0]))
            return (a[0], b[0])

        results, _ = run_cluster(4, worker)
        assert all(r == (4.0, 40.0) for r in results)


class TestHierarchicalCost:
    def test_asymmetric_links_beat_flat_slow_network(self):
        """With fast intra-node links, two-level beats a flat ring on the
        slow fabric once nodes hold several ranks."""
        fast = NetworkProfile(alpha=1e-7, beta=1e-12, name="shm")
        slow = NetworkProfile(alpha=7.2e-6, beta=0.9e-9, name="10gbe")
        nbytes = 100 * 2**20
        flat = allreduce_cost(64, nbytes, slow, "tree")
        two_level = hierarchical_cost(64, nbytes, 8, fast, slow, "tree")
        assert two_level < flat

    def test_single_rank_free(self):
        prof = NetworkProfile(1.0, 1.0)
        assert hierarchical_cost(1, 100, 4, prof, prof) == 0.0

    def test_reduces_inter_node_hops(self):
        """Inter phase sees P/node_size participants."""
        prof = NetworkProfile(alpha=1.0, beta=0.0)
        free = NetworkProfile.ideal()
        # intra free, inter alpha-only: cost = allreduce over 8 leaders
        cost = hierarchical_cost(64, 8, 8, free, prof, "tree")
        assert cost == pytest.approx(allreduce_cost(8, 8, prof, "tree"))

    def test_measured_structure_matches(self):
        """On the simulated fabric, hierarchical sends fewer total messages
        than a flat ring at the same rank count."""

        def hier(comm):
            comm.allreduce_hierarchical(np.zeros(64), 4, inter_algorithm="tree")

        def flat(comm):
            comm.allreduce(np.zeros(64), algorithm="ring")

        _, fh = run_cluster(8, hier)
        _, ff = run_cluster(8, flat)
        assert fh.stats.messages < ff.stats.messages
