"""Nonblocking send and the communication/computation overlap model."""

import numpy as np
import pytest

from repro.comm import NetworkProfile, SimulatedFabric, run_cluster
from repro.nn.models import paper_model_cost
from repro.perfmodel import (
    device,
    iteration_breakdown,
    network,
    overlapped_iteration_time,
)


class TestIsend:
    def test_sender_charged_alpha_only(self):
        prof = NetworkProfile(alpha=1.0, beta=1.0)
        f = SimulatedFabric(2, prof)
        f.isend(0, 1, np.zeros(100))  # 800 bytes
        assert f.time_of(0) == pytest.approx(1.0)  # alpha, not alpha+800*beta

    def test_receiver_still_waits_full_transfer(self):
        prof = NetworkProfile(alpha=1.0, beta=1.0)
        f = SimulatedFabric(2, prof)
        f.isend(0, 1, np.zeros(100))
        f.recv(1, 0)
        assert f.time_of(1) == pytest.approx(1.0 + 800.0)

    def test_overlap_hides_transfer_under_compute(self):
        """The overlap pattern: isend, compute, partner receives — the
        receiver's arrival time is bounded by transfer, not compute+transfer."""
        prof = NetworkProfile(alpha=0.0, beta=1e-3)

        def worker(comm):
            if comm.rank == 0:
                comm.isend(1, np.zeros(1000))  # 8 s transfer
                comm.compute(8.0)  # overlapped compute
                return comm.time
            comm.recv(0)
            return comm.time

        results, _ = run_cluster(2, worker, profile=prof)
        # sender: max(compute) = 8; receiver: transfer completes at 8
        assert results[0] == pytest.approx(8.0)
        assert results[1] == pytest.approx(8.0)
        # with blocking send the receiver would have been at 16

    def test_values_identical_to_send(self):
        f = SimulatedFabric(2)
        f.isend(0, 1, np.arange(5.0), tag=3)
        assert np.array_equal(f.recv(1, 0, tag=3), np.arange(5.0))

    def test_self_isend_rejected(self):
        with pytest.raises(ValueError):
            SimulatedFabric(2).isend(0, 0, np.zeros(1))


class TestOverlapModel:
    def setup_method(self):
        self.cost = paper_model_cost("alexnet")
        self.dev = device("p100")
        self.net = network("10gbe")  # slow fabric: comm matters

    def test_overlap_reduces_exposed_comm(self):
        plain = iteration_breakdown(self.cost, 4096, 64, self.dev, self.net)
        overlapped = overlapped_iteration_time(self.cost, 4096, 64, self.dev,
                                               self.net)
        assert overlapped.comm_seconds < plain.comm_seconds
        assert overlapped.total_seconds < plain.total_seconds

    def test_full_overlap_can_hide_everything(self):
        """On a fast fabric with heavy compute, exposed comm goes to ~0."""
        fast = network("nvlink")
        overlapped = overlapped_iteration_time(
            paper_model_cost("resnet50"), 256, 8, device("p100"), fast,
            overlap_fraction=1.0)
        assert overlapped.comm_seconds == pytest.approx(0.0, abs=1e-6)

    def test_zero_overlap_fraction_still_buckets(self):
        plain = iteration_breakdown(self.cost, 4096, 64, self.dev, self.net,
                                    algorithm="ring")
        none = overlapped_iteration_time(self.cost, 4096, 64, self.dev,
                                         self.net, algorithm="ring",
                                         overlap_fraction=0.0, buckets=1)
        assert none.comm_seconds == pytest.approx(plain.comm_seconds, rel=0.01)

    def test_more_buckets_more_latency_messages(self):
        a = overlapped_iteration_time(self.cost, 4096, 64, self.dev, self.net,
                                      buckets=4)
        b = overlapped_iteration_time(self.cost, 4096, 64, self.dev, self.net,
                                      buckets=32)
        assert b.messages_per_iteration > a.messages_per_iteration

    def test_validation(self):
        with pytest.raises(ValueError):
            overlapped_iteration_time(self.cost, 64, 4, self.dev, self.net,
                                      overlap_fraction=1.5)
        with pytest.raises(ValueError):
            overlapped_iteration_time(self.cost, 64, 4, self.dev, self.net,
                                      buckets=0)
