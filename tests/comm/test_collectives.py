"""Collective-algorithm correctness across rank counts and algorithms.

The key invariant (DESIGN.md §5.2): every allreduce algorithm returns exactly
the arithmetic sum on every rank, bit-identical across ranks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import NetworkProfile, run_cluster
from repro.comm.collectives import (
    allreduce_cost,
    allreduce_message_count,
    bcast_cost,
)


def rank_array(rank: int, n: int = 12) -> np.ndarray:
    """Deterministic distinct contribution per rank."""
    rng = np.random.default_rng(1000 + rank)
    return rng.normal(size=n)


def expected_sum(size: int, n: int = 12) -> np.ndarray:
    return np.sum([rank_array(r, n) for r in range(size)], axis=0)


ALGOS_ANY_P = ["tree", "ring"]
SIZES = [1, 2, 3, 4, 5, 7, 8]
POW2_SIZES = [1, 2, 4, 8]


class TestAllreduce:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("algorithm", ALGOS_ANY_P)
    def test_sum_correct_all_sizes(self, size, algorithm):
        results, _ = run_cluster(
            size, lambda c: c.allreduce(rank_array(c.rank), algorithm=algorithm)
        )
        ref = expected_sum(size)
        for r in results:
            assert np.allclose(r, ref, atol=1e-12)

    @pytest.mark.parametrize("size", POW2_SIZES)
    def test_rhd_sum_correct(self, size):
        results, _ = run_cluster(
            size, lambda c: c.allreduce(rank_array(c.rank), algorithm="rhd")
        )
        ref = expected_sum(size)
        for r in results:
            assert np.allclose(r, ref, atol=1e-12)

    def test_rhd_requires_power_of_two(self):
        with pytest.raises(ValueError):
            run_cluster(3, lambda c: c.allreduce(rank_array(c.rank), algorithm="rhd"))

    @pytest.mark.parametrize("algorithm", ["tree", "ring", "rhd"])
    def test_bitwise_identical_across_ranks(self, algorithm):
        """Sequential consistency needs replicas to agree exactly, not
        approximately."""
        results, _ = run_cluster(
            4, lambda c: c.allreduce(rank_array(c.rank, 37), algorithm=algorithm)
        )
        for r in results[1:]:
            assert np.array_equal(r, results[0])

    def test_preserves_shape(self):
        results, _ = run_cluster(
            4, lambda c: c.allreduce(rank_array(c.rank, 24).reshape(2, 3, 4), algorithm="ring")
        )
        assert results[0].shape == (2, 3, 4)

    def test_ring_array_smaller_than_ranks(self):
        """np.array_split handles n < P (some chunks empty)."""
        results, _ = run_cluster(
            5, lambda c: c.allreduce(np.array([float(c.rank)]), algorithm="ring")
        )
        assert all(np.allclose(r, 10.0) for r in results)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            run_cluster(2, lambda c: c.allreduce(np.zeros(2), algorithm="nccl"))

    @given(size=st.integers(1, 6), n=st.integers(1, 50))
    @settings(max_examples=15, deadline=None)
    def test_tree_allreduce_property(self, size, n):
        results, _ = run_cluster(
            size, lambda c: c.allreduce(rank_array(c.rank, n), algorithm="tree")
        )
        assert np.allclose(results[0], expected_sum(size, n), atol=1e-10)


class TestOtherCollectives:
    @pytest.mark.parametrize("size", SIZES)
    def test_bcast_from_root0(self, size):
        payload = np.arange(5.0)

        def worker(c):
            return c.bcast(payload if c.rank == 0 else None, root=0)

        results, _ = run_cluster(size, worker)
        for r in results:
            assert np.array_equal(r, payload)

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_bcast_nonzero_root(self, root):
        def worker(c):
            return c.bcast("hello" if c.rank == root else None, root=root)

        results, _ = run_cluster(3, worker)
        assert results == ["hello"] * 3

    @pytest.mark.parametrize("size", SIZES)
    def test_reduce_to_root(self, size):
        def worker(c):
            return c.reduce(rank_array(c.rank), root=0)

        results, _ = run_cluster(size, worker)
        assert np.allclose(results[0], expected_sum(size), atol=1e-12)
        assert all(r is None for r in results[1:])

    def test_reduce_nonzero_root(self):
        def worker(c):
            return c.reduce(np.array([1.0]), root=2)

        results, _ = run_cluster(4, worker)
        assert results[2][0] == pytest.approx(4.0)
        assert results[0] is None

    @pytest.mark.parametrize("size", [1, 2, 5])
    def test_allgather_order(self, size):
        results, _ = run_cluster(size, lambda c: c.allgather(np.array([float(c.rank)])))
        for r in results:
            assert [chunk[0] for chunk in r] == list(range(size))

    def test_gather_at_root(self):
        results, _ = run_cluster(4, lambda c: c.gather(c.rank * 10, root=1))
        assert results[1] == [0, 10, 20, 30]
        assert results[0] is None

    def test_scatter_from_root(self):
        def worker(c):
            values = [f"item{i}" for i in range(c.size)] if c.rank == 0 else None
            return c.scatter(values, root=0)

        results, _ = run_cluster(4, worker)
        assert results == [f"item{i}" for i in range(4)]

    def test_scatter_wrong_length_raises(self):
        def worker(c):
            values = [1] if c.rank == 0 else None
            return c.scatter(values, root=0)

        with pytest.raises(ValueError):
            run_cluster(2, worker)

    def test_barrier_completes(self):
        def worker(c):
            c.barrier()
            return c.rank

        results, _ = run_cluster(5, worker)
        assert results == list(range(5))

    def test_back_to_back_collectives_do_not_cross_match(self):
        """Successive allreduces use disjoint tag namespaces."""

        def worker(c):
            a = c.allreduce(np.array([1.0]), algorithm="ring")
            b = c.allreduce(np.array([10.0]), algorithm="ring")
            return (a[0], b[0])

        results, _ = run_cluster(4, worker)
        assert all(r == (4.0, 40.0) for r in results)


class TestTiming:
    """Simulated fabric time equals the analytic α-β critical path."""

    def test_tree_allreduce_time_matches_model(self):
        prof = NetworkProfile(alpha=1e-3, beta=1e-8)
        n = 1000

        def worker(c):
            c.allreduce(np.zeros(n), algorithm="tree")

        _, fabric = run_cluster(8, worker, profile=prof)
        model = allreduce_cost(8, n * 8, prof, "tree")
        assert fabric.makespan == pytest.approx(model, rel=0.05)

    def test_ring_faster_than_tree_for_large_messages(self):
        """Bandwidth-bound regime: ring's 2n beats tree's 2·log₂P·n."""
        prof = NetworkProfile(alpha=1e-6, beta=1e-7)
        n = 20000

        def run(algorithm):
            def worker(c):
                c.allreduce(np.zeros(n), algorithm=algorithm)

            _, fabric = run_cluster(8, worker, profile=prof)
            return fabric.makespan

        assert run("ring") < run("tree")

    def test_tree_fewer_messages_than_ring(self):
        def run(algorithm):
            def worker(c):
                c.allreduce(np.zeros(100), algorithm=algorithm)

            _, fabric = run_cluster(8, worker, profile=NetworkProfile.ideal())
            return fabric.stats.messages

        assert run("tree") < run("ring")

    def test_cost_model_scaling_in_p(self):
        prof = NetworkProfile(alpha=1e-6, beta=1e-9)
        t2 = allreduce_cost(2, 1000, prof, "tree")
        t16 = allreduce_cost(16, 1000, prof, "tree")
        assert t16 == pytest.approx(4 * t2)  # log2(16)/log2(2)

    def test_cost_zero_for_single_rank(self):
        prof = NetworkProfile(1.0, 1.0)
        for algo in ["tree", "ring", "rhd"]:
            assert allreduce_cost(1, 100, prof, algo) == 0.0
            assert allreduce_message_count(1, algo) == 0

    def test_message_counts(self):
        assert allreduce_message_count(8, "tree") == 6
        assert allreduce_message_count(8, "ring") == 14
        assert allreduce_message_count(8, "rhd") == 6

    def test_bcast_cost_log_p(self):
        prof = NetworkProfile(alpha=1.0, beta=0.0)
        assert bcast_cost(8, 100, prof) == pytest.approx(3.0)

    def test_unknown_algorithm_cost_raises(self):
        with pytest.raises(ValueError):
            allreduce_cost(4, 100, NetworkProfile.ideal(), "butterfly")
