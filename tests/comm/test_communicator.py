"""Communicator / run_cluster harness behaviour."""

import numpy as np
import pytest

from repro.comm import Communicator, NetworkProfile, SimulatedFabric, run_cluster


def test_rank_and_size_exposed():
    def worker(c):
        return (c.rank, c.size)

    results, _ = run_cluster(3, worker)
    assert results == [(0, 3), (1, 3), (2, 3)]


def test_worker_exception_propagates():
    def worker(c):
        if c.rank == 1:
            raise RuntimeError("boom on rank 1")
        return c.rank

    with pytest.raises(RuntimeError, match="boom on rank 1"):
        run_cluster(2, worker)


def test_compute_advances_only_local_clock():
    def worker(c):
        if c.rank == 0:
            c.compute(5.0)
        return c.time

    results, fabric = run_cluster(2, worker)
    assert results[0] == pytest.approx(5.0)
    assert results[1] == pytest.approx(0.0)
    assert fabric.makespan == pytest.approx(5.0)


def test_point_to_point_ping_pong():
    def worker(c):
        if c.rank == 0:
            c.send(1, np.array([3.14]))
            return c.recv(1)[0]
        val = c.recv(0)[0]
        c.send(0, np.array([val * 2]))
        return val

    results, _ = run_cluster(2, worker)
    assert results == [pytest.approx(6.28), pytest.approx(3.14)]


def test_compute_time_included_in_critical_path():
    """recv waits for the sender's compute+transfer time."""
    prof = NetworkProfile(alpha=1.0, beta=0.0)

    def worker(c):
        if c.rank == 0:
            c.compute(10.0)
            c.send(1, np.zeros(1))
        else:
            c.recv(0)
        return c.time

    results, _ = run_cluster(2, worker, profile=prof)
    assert results[1] == pytest.approx(11.0)


def test_invalid_rank_construction():
    fabric = SimulatedFabric(2)
    with pytest.raises(ValueError):
        Communicator(fabric, 5)


def test_single_rank_cluster_trivial_collectives():
    def worker(c):
        a = c.allreduce(np.array([7.0]))
        b = c.bcast(np.array([1.0]))
        c.barrier()
        g = c.gather("x")
        return (a[0], b[0], g)

    results, fabric = run_cluster(1, worker)
    assert results[0] == (7.0, 1.0, ["x"])
    assert fabric.stats.messages == 0


def test_bcast_object_payloads():
    """Lowercase mpi4py-style semantics: arbitrary Python objects travel."""

    def worker(c):
        return c.bcast({"lr": 0.02, "epochs": 100} if c.rank == 0 else None)

    results, _ = run_cluster(3, worker)
    assert all(r == {"lr": 0.02, "epochs": 100} for r in results)


def test_timeout_on_hung_rank():
    def worker(c):
        if c.rank == 0:
            c.recv(1)  # never sent
        return None

    with pytest.raises((TimeoutError,)):
        # fabric recv timeout (60s) is bypassed by run_cluster's own timeout
        run_cluster(2, worker, timeout=0.2)
