"""Transport-level fault tolerance: typed timeouts, death notification,
halt, the failure detector, and fault pricing on the fabric."""

import threading
import time

import numpy as np
import pytest

from repro.comm import (
    ClusterHalted,
    Communicator,
    FabricTimeout,
    FailureDetector,
    NetworkProfile,
    PeerDeadError,
    PeerStatus,
    SimulatedFabric,
    run_cluster,
)
from repro.faults import FaultInjector, FaultPlan


class TestTypedTimeout:
    def test_recv_timeout_is_typed_and_carries_context(self):
        f = SimulatedFabric(2)
        with pytest.raises(FabricTimeout) as exc_info:
            f.recv(1, 0, tag=7, timeout=0.05)
        exc = exc_info.value
        assert exc.dst == 1 and exc.src == 0 and exc.tag == 7
        assert isinstance(exc, TimeoutError)  # old except clauses still work

    def test_communicator_recv_timeout_override(self):
        f = SimulatedFabric(2)
        comm = Communicator(f, 1, recv_timeout=30.0)
        start = time.monotonic()
        with pytest.raises(FabricTimeout):
            comm.recv(0, timeout=0.05)
        assert time.monotonic() - start < 5.0

    def test_communicator_default_recv_timeout(self):
        f = SimulatedFabric(2)
        comm = Communicator(f, 1, recv_timeout=0.05)
        with pytest.raises(FabricTimeout):
            comm.recv(0)


class TestDeathNotification:
    def test_recv_from_dead_peer_fails_fast(self):
        f = SimulatedFabric(2)
        f.mark_dead(0)
        start = time.monotonic()
        with pytest.raises(PeerDeadError):
            f.recv(1, 0, timeout=60.0)  # must not wait the 60 s
        assert time.monotonic() - start < 5.0

    def test_mark_dead_wakes_blocked_receiver(self):
        f = SimulatedFabric(2)
        caught = []

        def receiver():
            try:
                f.recv(1, 0, timeout=60.0)
            except PeerDeadError as exc:
                caught.append(exc)

        t = threading.Thread(target=receiver, daemon=True)
        t.start()
        time.sleep(0.05)
        f.mark_dead(0)
        t.join(5.0)
        assert not t.is_alive()
        assert caught and caught[0].src == 0

    def test_in_flight_messages_drain_before_death_error(self):
        f = SimulatedFabric(2)
        f.send(0, 1, np.arange(3.0))
        f.mark_dead(0)
        assert np.array_equal(f.recv(1, 0, timeout=1.0), np.arange(3.0))
        with pytest.raises(PeerDeadError):
            f.recv(1, 0, timeout=1.0)


class TestHalt:
    def test_halt_wakes_every_blocked_receiver(self):
        f = SimulatedFabric(4)
        outcomes = [None] * 3

        def receiver(rank):
            try:
                f.recv(rank, (rank + 1) % 4, timeout=60.0)
            except ClusterHalted as exc:
                outcomes[rank - 1] = exc

        threads = [threading.Thread(target=receiver, args=(r,), daemon=True)
                   for r in (1, 2, 3)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        f.halt("test abort")
        for t in threads:
            t.join(5.0)
            assert not t.is_alive()
        assert all(isinstance(o, ClusterHalted) for o in outcomes)
        assert "test abort" in str(outcomes[0])

    def test_halt_beats_pending_payload(self):
        f = SimulatedFabric(2)
        f.send(0, 1, 1.0)
        f.halt()
        with pytest.raises(ClusterHalted):
            f.recv(1, 0, timeout=1.0)


class TestFailureDetector:
    def test_transport_death_is_authoritative(self):
        f = SimulatedFabric(3)
        det = FailureDetector(f, rank=0, suspect_after=10.0)
        assert det.diagnose(1) == PeerStatus.ALIVE
        f.mark_dead(1)
        assert det.diagnose(1) == PeerStatus.DEAD
        assert det.dead_peers() == {1}

    def test_silence_makes_a_suspect_not_a_corpse(self):
        f = SimulatedFabric(2, NetworkProfile.ideal())
        det = FailureDetector(f, rank=0, suspect_after=5.0)
        det.observe(1, 1.0)
        f.clocks[0].advance(2.0)
        assert det.diagnose(1) == PeerStatus.ALIVE
        f.clocks[0].advance(10.0)
        assert det.diagnose(1) == PeerStatus.SUSPECT

    def test_observe_feeds_silence(self):
        f = SimulatedFabric(2)
        det = FailureDetector(f, rank=0)
        det.observe(1, 3.0)
        assert det.silence(1, 10.0) == 7.0
        det.observe(1, 2.0)  # stale observation must not move time backwards
        assert det.silence(1, 10.0) == 7.0

    def test_communicator_reports_heartbeats(self):
        def worker(comm):
            comm.detector = FailureDetector(comm.fabric, comm.rank)
            if comm.rank == 0:
                comm.send(1, np.float64(1.0))
                return None
            comm.recv(0)
            return comm.detector.silence(0, comm.time)

        results, _ = run_cluster(2, worker)
        assert results[1] == 0.0  # heard from rank 0 "just now"

    def test_survivors_agree_on_dead_set(self):
        f = SimulatedFabric(4)
        f.mark_dead(2)
        detectors = [FailureDetector(f, r) for r in (0, 1, 3)]
        verdicts = {d.diagnose(2) for d in detectors}
        assert verdicts == {PeerStatus.DEAD}


class TestFaultPricing:
    PROFILE = NetworkProfile(alpha=1e-5, beta=1e-9)

    def _makespan(self, plan: FaultPlan | None) -> tuple[float, object]:
        injector = FaultInjector(plan) if plan else None
        f = SimulatedFabric(2, self.PROFILE, injector=injector)
        for i in range(300):
            f.send(0, 1, np.ones(64), tag=i)
            f.recv(1, 0, tag=i, timeout=5.0)
        return f.makespan, injector

    def test_message_loss_costs_time_not_values(self):
        clean, _ = self._makespan(None)
        lossy, injector = self._makespan(FaultPlan(seed=3, drop_prob=0.05))
        assert lossy > clean
        assert lossy - clean == pytest.approx(
            injector.stats.retransmit_seconds
        )

    def test_delay_faults_push_arrival(self):
        clean, _ = self._makespan(None)
        delayed, injector = self._makespan(
            FaultPlan(seed=3, delay_prob=0.1, delay_seconds=1e-3)
        )
        assert delayed > clean
        assert injector.stats.messages_delayed > 0

    def test_straggler_stretches_compute(self):
        inj = FaultInjector(FaultPlan(stragglers={0: 3.0}))
        f = SimulatedFabric(2, injector=inj)
        slow, fast = Communicator(f, 0), Communicator(f, 1)
        slow.compute(2.0)
        fast.compute(2.0)
        assert slow.time == pytest.approx(6.0)
        assert fast.time == pytest.approx(2.0)
        assert inj.stats.straggler_seconds == pytest.approx(4.0)

    def test_isend_also_pays_fault_delay(self):
        inj = FaultInjector(FaultPlan(seed=0, delay_prob=0.999999,
                                      delay_seconds=2.0))
        f = SimulatedFabric(2, self.PROFILE, injector=inj)
        f.isend(0, 1, np.ones(8))
        f.recv(1, 0, timeout=5.0)
        assert f.time_of(1) >= 2.0

    def test_collectives_survive_loss_bit_identically(self):
        from repro.comm.collectives import ALLREDUCE_ALGORITHMS

        rng = np.random.default_rng(0)
        data = rng.normal(size=(4, 37))
        expected = data.sum(axis=0)
        for name, fn in ALLREDUCE_ALGORITHMS.items():
            def worker(comm, fn=fn):
                return fn(comm, data[comm.rank].copy(), tag=1000)

            results, _ = run_cluster(
                4, worker,
                injector=FaultInjector(FaultPlan(seed=5, drop_prob=0.05)),
                recv_timeout=10.0,
            )
            for out in results:
                np.testing.assert_array_equal(out, results[0])
            np.testing.assert_allclose(results[0], expected, atol=1e-12), name
