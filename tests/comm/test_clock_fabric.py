"""Logical clock and fabric timing/accounting tests."""

import numpy as np
import pytest

from repro.comm import LogicalClock, NetworkProfile, SimulatedFabric


class TestLogicalClock:
    def test_starts_at_zero(self):
        assert LogicalClock().time == 0.0

    def test_advance_accumulates(self):
        c = LogicalClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.time == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock().advance(-1.0)

    def test_merge_only_moves_forward(self):
        c = LogicalClock(5.0)
        c.merge(3.0)
        assert c.time == 5.0
        c.merge(7.0)
        assert c.time == 7.0

    def test_reset(self):
        c = LogicalClock(9.0)
        c.reset()
        assert c.time == 0.0


class TestNetworkProfile:
    def test_transfer_time(self):
        p = NetworkProfile(alpha=1e-6, beta=1e-9)
        assert p.transfer_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_ideal_is_free(self):
        assert NetworkProfile.ideal().transfer_time(10**9) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NetworkProfile(-1.0, 0.0)


class TestFabric:
    def test_send_recv_roundtrip(self):
        f = SimulatedFabric(2)
        f.send(0, 1, np.arange(4.0))
        out = f.recv(1, 0)
        assert np.array_equal(out, np.arange(4.0))

    def test_payload_copied_on_send(self):
        f = SimulatedFabric(2)
        x = np.ones(3)
        f.send(0, 1, x)
        x[:] = 99.0
        assert np.array_equal(f.recv(1, 0), np.ones(3))

    def test_fifo_per_channel(self):
        f = SimulatedFabric(2)
        f.send(0, 1, np.array([1.0]))
        f.send(0, 1, np.array([2.0]))
        assert f.recv(1, 0)[0] == 1.0
        assert f.recv(1, 0)[0] == 2.0

    def test_tags_demultiplex(self):
        f = SimulatedFabric(2)
        f.send(0, 1, np.array([1.0]), tag=7)
        f.send(0, 1, np.array([2.0]), tag=3)
        assert f.recv(1, 0, tag=3)[0] == 2.0
        assert f.recv(1, 0, tag=7)[0] == 1.0

    def test_send_advances_sender_clock(self):
        prof = NetworkProfile(alpha=1.0, beta=0.0)
        f = SimulatedFabric(2, prof)
        f.send(0, 1, np.zeros(10))
        assert f.time_of(0) == pytest.approx(1.0)

    def test_recv_merges_arrival_time(self):
        prof = NetworkProfile(alpha=2.0, beta=0.0)
        f = SimulatedFabric(2, prof)
        f.send(0, 1, np.zeros(1))
        f.recv(1, 0)
        assert f.time_of(1) == pytest.approx(2.0)

    def test_bandwidth_term_scales_with_bytes(self):
        prof = NetworkProfile(alpha=0.0, beta=1.0)
        f = SimulatedFabric(2, prof)
        f.send(0, 1, np.zeros(100))  # 800 bytes float64
        assert f.time_of(0) == pytest.approx(800.0)

    def test_stats_count_messages_and_bytes(self):
        f = SimulatedFabric(3)
        f.send(0, 1, np.zeros(10))
        f.send(0, 2, np.zeros(5))
        assert f.stats.messages == 2
        assert f.stats.bytes == 15 * 8

    def test_makespan_is_max_clock(self):
        prof = NetworkProfile(alpha=1.0, beta=0.0)
        f = SimulatedFabric(3, prof)
        f.send(0, 1, np.zeros(1))
        assert f.makespan == pytest.approx(1.0)

    def test_recv_timeout(self):
        f = SimulatedFabric(2)
        with pytest.raises(TimeoutError):
            f.recv(1, 0, timeout=0.05)

    def test_self_send_rejected(self):
        f = SimulatedFabric(2)
        with pytest.raises(ValueError):
            f.send(0, 0, np.zeros(1))

    def test_rank_range_checked(self):
        f = SimulatedFabric(2)
        with pytest.raises(ValueError):
            f.send(0, 5, np.zeros(1))

    def test_reset_time_clears_clocks_and_stats(self):
        prof = NetworkProfile(alpha=1.0, beta=0.0)
        f = SimulatedFabric(2, prof)
        f.send(0, 1, np.zeros(1))
        f.reset_time()
        assert f.makespan == 0.0
        assert f.stats.messages == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SimulatedFabric(0)
