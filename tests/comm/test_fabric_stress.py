"""Fabric stress and concurrency tests."""

import numpy as np

from repro.comm import NetworkProfile, SimulatedFabric, run_cluster


def test_many_small_messages_all_delivered():
    """FIFO integrity under a burst of 500 messages on one channel."""
    f = SimulatedFabric(2)
    for i in range(500):
        f.send(0, 1, np.array([float(i)]))
    for i in range(500):
        assert f.recv(1, 0)[0] == float(i)


def test_all_to_all_burst():
    """Every rank sends to every other rank concurrently (thread stress)."""

    def worker(comm):
        for dst in range(comm.size):
            if dst != comm.rank:
                comm.send(dst, np.array([float(comm.rank)]), tag=comm.rank)
        got = {}
        for src in range(comm.size):
            if src != comm.rank:
                got[src] = comm.recv(src, tag=src)[0]
        return got

    results, fabric = run_cluster(8, worker)
    for rank, got in enumerate(results):
        assert got == {s: float(s) for s in range(8) if s != rank}
    assert fabric.stats.messages == 8 * 7


def test_interleaved_collectives_many_rounds():
    """50 back-to-back allreduces keep tag isolation and exact values."""

    def worker(comm):
        out = []
        for i in range(50):
            algorithm = ["tree", "ring"][i % 2]
            total = comm.allreduce(np.array([float(i + comm.rank)]),
                                   algorithm=algorithm)
            out.append(total[0])
        return out

    results, _ = run_cluster(4, worker)
    for i in range(50):
        expected = sum(i + r for r in range(4))
        assert all(res[i] == expected for res in results)


def test_clock_monotone_under_concurrency():
    """Logical clocks never run backwards regardless of thread timing."""
    prof = NetworkProfile(alpha=1e-5, beta=1e-9)

    def worker(comm):
        stamps = [comm.time]
        for _ in range(20):
            comm.allreduce(np.zeros(100))
            stamps.append(comm.time)
        return stamps

    results, _ = run_cluster(4, worker, profile=prof)
    for stamps in results:
        assert all(b >= a for a, b in zip(stamps, stamps[1:]))


def test_large_payload_roundtrip():
    """A gradient-sized (8 MB) payload survives unchanged."""
    f = SimulatedFabric(2)
    payload = np.random.default_rng(0).normal(size=10**6)
    f.send(0, 1, payload)
    out = f.recv(1, 0)
    assert np.array_equal(out, payload)
    assert f.stats.bytes == payload.nbytes


def test_mixed_payload_types_on_one_channel():
    f = SimulatedFabric(2)
    f.send(0, 1, {"config": 1})
    f.send(0, 1, np.arange(3.0))
    f.send(0, 1, "token")
    assert f.recv(1, 0) == {"config": 1}
    assert np.array_equal(f.recv(1, 0), np.arange(3.0))
    assert f.recv(1, 0) == "token"
