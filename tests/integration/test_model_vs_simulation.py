"""Cross-validation of the two engines.

The repository produces the paper's numbers two ways: the analytic α-β-γ
model (repro.perfmodel) and actual execution on the simulated fabric
(repro.cluster).  These tests pin them together: for the same configuration,
the fabric's measured makespan must equal the analytic prediction.
"""

import pytest

from repro.cluster import SyncSGDConfig, train_sync_sgd
from repro.comm import NetworkProfile, allreduce_cost
from repro.core import SGD, ConstantLR
from repro.data import gaussian_blobs
from repro.nn.models import mlp

WORLD = 4
N, BATCH, EPOCHS = 128, 32, 2
_X, _Y = gaussian_blobs(N, num_classes=3, dim=6, seed=51)


def builder():
    return mlp(6, [8], 3, seed=3)


def n_params():
    return builder().num_parameters()


def run(algorithm, profile, t_comp_per_example=0.0):
    config = SyncSGDConfig(
        world=WORLD, epochs=EPOCHS, batch_size=BATCH, algorithm=algorithm,
        profile=profile,
        compute_time=(lambda k: t_comp_per_example * k) if t_comp_per_example else None,
        shuffle_seed=5,
    )
    return train_sync_sgd(builder, lambda p: SGD(p, momentum=0.9, weight_decay=0.0),
                          ConstantLR(0.05), _X, _Y, _X[:32], _Y[:32], config)


@pytest.mark.parametrize("algorithm", ["tree", "ring", "rhd"])
def test_fabric_time_matches_analytic_allreduce_cost(algorithm):
    """makespan == iterations x analytic allreduce cost (comm-only run),
    plus the per-epoch 3-float metric reduction (a tree allreduce)."""
    profile = NetworkProfile(alpha=1e-4, beta=1e-9, name="test")
    res = run(algorithm, profile)
    iters = EPOCHS * (N // BATCH)
    grad_bytes = n_params() * 8  # float64 on the simulated wire
    expected = iters * allreduce_cost(WORLD, grad_bytes, profile, algorithm)
    expected += EPOCHS * allreduce_cost(WORLD, 3 * 8, profile, "tree")
    assert res.simulated_seconds == pytest.approx(expected, rel=0.02)


def test_compute_time_adds_linearly():
    profile = NetworkProfile.ideal()
    t = 1e-3
    res = run("tree", profile, t_comp_per_example=t)
    iters = EPOCHS * (N // BATCH)
    local = BATCH / WORLD
    assert res.simulated_seconds == pytest.approx(iters * t * local, rel=0.01)


def test_comm_bytes_match_analytic_volume():
    """Fabric byte counter == per-algorithm analytic bytes (ring)."""
    res = run("ring", NetworkProfile.ideal())
    iters = EPOCHS * (N // BATCH)
    grad_bytes = n_params() * 8
    # ring: each rank sends 2(P-1) chunks of ~n/P per allreduce
    per_iter = WORLD * 2 * (WORLD - 1) * (grad_bytes / WORLD)
    expected = iters * per_iter
    # metric allreduce adds a small constant per epoch
    assert res.comm_bytes == pytest.approx(expected, rel=0.05)


def test_more_ranks_less_compute_time_when_comm_free():
    t = 1e-3

    def run_world(world):
        config = SyncSGDConfig(world=world, epochs=1, batch_size=32,
                               compute_time=lambda k: t * k, shuffle_seed=5)
        return train_sync_sgd(builder, lambda p: SGD(p, momentum=0.0, weight_decay=0.0),
                              ConstantLR(0.05), _X, _Y, _X[:32], _Y[:32], config)

    t2 = run_world(2).simulated_seconds
    t4 = run_world(4).simulated_seconds
    assert t4 == pytest.approx(t2 / 2, rel=0.01)  # perfect strong scaling
