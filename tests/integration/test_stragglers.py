"""Straggler behaviour: the synchronisation barrier the paper discusses.

"after processing each local batch all processors must synchronize their
gradient updates via a barrier" — so one slow rank gates everyone in sync
SGD, while the asynchronous parameter server keeps making progress (its
selling point, bought with staleness).
"""

import numpy as np
import pytest

from repro.cluster import (
    ParamServerConfig,
    SyncSGDConfig,
    train_param_server,
    train_sync_sgd,
)
from repro.core import SGD, ConstantLR
from repro.data import gaussian_blobs
from repro.nn.models import mlp

_X, _Y = gaussian_blobs(128, num_classes=3, dim=6, seed=61)


def builder():
    return mlp(6, [8], 3, seed=7)


def opt_builder(params):
    return SGD(params, momentum=0.9, weight_decay=0.0)


def sync_run(straggler_factor: float):
    """Rank 3 computes ``straggler_factor`` x slower than the others.

    compute_time receives only the local example count, so the straggler is
    identified through the worker thread's name (run_cluster names threads
    "rank-<r>").
    """
    import threading

    def compute_time(k):
        name = threading.current_thread().name  # "rank-<r>"
        rank = int(name.split("-")[1])
        base = 1e-3 * k
        return base * (straggler_factor if rank == 3 else 1.0)

    config = SyncSGDConfig(world=4, epochs=2, batch_size=32,
                           compute_time=compute_time, shuffle_seed=9)
    return train_sync_sgd(builder, opt_builder, ConstantLR(0.05),
                          _X, _Y, _X[:32], _Y[:32], config)


class TestSyncStraggler:
    def test_one_slow_rank_gates_the_whole_run(self):
        """Sync SGD's makespan tracks the slowest rank linearly."""
        fast = sync_run(1.0).simulated_seconds
        slow = sync_run(4.0).simulated_seconds
        assert slow == pytest.approx(4.0 * fast, rel=0.02)

    def test_result_unchanged_by_stragglers(self):
        """Sequential consistency: timing never changes the arithmetic."""
        a = sync_run(1.0)
        b = sync_run(10.0)
        for k in a.final_state:
            assert np.array_equal(a.final_state[k], b.final_state[k])


class TestAsyncStraggler:
    def run_ps(self, jitter):
        config = ParamServerConfig(workers=4, total_updates=40, batch_size=16,
                                   compute_time=1.0, compute_jitter=jitter,
                                   seed=3)
        return train_param_server(builder, opt_builder, ConstantLR(0.05),
                                  _X, _Y, _X[:32], _Y[:32], config)

    def test_async_absorbs_jitter(self):
        """The async server's completion time grows far less than the
        worst-case worker slowdown (no barrier)."""
        even = self.run_ps(0.0).simulated_seconds
        jittery = self.run_ps(0.8).simulated_seconds
        # jitter up to +-80% changes makespan well under 80%
        assert abs(jittery - even) / even < 0.5

    def test_async_still_applies_all_updates(self):
        res = self.run_ps(0.8)
        assert res.updates_applied == 40
