"""Harness unit tests: registration, selection, execution, statistics."""

import numpy as np
import pytest

from repro.bench.harness import (
    AREAS,
    REGISTRY,
    register,
    run_benchmark,
    run_selected,
    select,
)
from repro.util.timing import measure, median, median_abs_deviation


@pytest.fixture
def scratch_registry():
    """Let a test register temporary benchmarks, then restore REGISTRY."""
    before = dict(REGISTRY)
    yield REGISTRY
    REGISTRY.clear()
    REGISTRY.update(before)


def test_median_odd_and_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 2.5


def test_median_abs_deviation():
    assert median_abs_deviation([1.0, 1.0, 1.0]) == 0.0
    # samples 1..5: median 3, |x-3| = [2,1,0,1,2], MAD = 1
    assert median_abs_deviation([1.0, 2.0, 3.0, 4.0, 5.0]) == 1.0


def test_measure_counts_and_validates():
    calls = []
    samples = measure(lambda: calls.append(1), repeats=4, warmup=2)
    assert len(samples) == 4
    assert len(calls) == 6  # warmup runs too, untimed
    assert all(s >= 0 for s in samples)
    with pytest.raises(ValueError):
        measure(lambda: None, repeats=0)
    with pytest.raises(ValueError):
        measure(lambda: None, repeats=1, warmup=-1)


def test_register_rejects_duplicates_and_bad_area(scratch_registry):
    @register("tmp.thing", area="nn")
    def _setup():
        return lambda: None

    with pytest.raises(ValueError, match="twice"):
        register("tmp.thing", area="nn")(lambda: (lambda: None))
    with pytest.raises(ValueError, match="unknown area"):
        register("tmp.other", area="gpu")(lambda: (lambda: None))


def test_select_filters_by_area_and_pattern():
    all_benches = select()
    assert all_benches, "suites registered nothing"
    areas = {b.area for b in all_benches}
    assert areas <= set(AREAS)
    nn_only = select(areas=["nn"])
    assert nn_only and all(b.area == "nn" for b in nn_only)
    conv_only = select(pattern="conv2d.*")
    assert conv_only and all(b.name.startswith("conv2d.") for b in conv_only)
    # deterministic order: area order, then name
    assert [b.name for b in all_benches] == sorted(
        (b.name for b in all_benches),
        key=lambda n: (AREAS.index(REGISTRY[n].area), n),
    )


def test_run_benchmark_quick_uses_quick_counts(scratch_registry):
    ran = []

    @register("tmp.counted", area="nn", repeats=7, warmup=2,
              quick_repeats=3, quick_warmup=1)
    def _setup():
        return lambda: ran.append(1)

    result = run_benchmark(REGISTRY["tmp.counted"], quick=True)
    assert len(result.samples) == 3
    assert result.warmup == 1
    assert len(ran) == 4
    assert result.median_s >= 0
    assert result.min_s <= result.median_s <= result.max_s


def test_run_selected_reports_progress(scratch_registry):
    @register("tmp.progress", area="data")
    def _setup():
        x = np.zeros(10)
        return lambda: x.sum()

    lines = []
    results = run_selected(
        pattern="tmp.progress", quick=True, progress=lines.append
    )
    assert len(results) == 1
    assert len(lines) == 1
    assert "tmp.progress" in lines[0]
