"""Regression-gate tests, including the injected-slowdown exit code."""

import json

import pytest

from repro.bench.compare import (
    Comparison,
    compare_dirs,
    compare_payloads,
    format_report,
)
from repro.bench.harness import BenchResult
from repro.bench.schema import write_area_files
from repro.cli import main


def _write(dirname, medians, area="nn", quick=True):
    """Write one BENCH_<area>.json whose benchmarks have given medians."""
    results = [
        BenchResult(name=name, area=area, params={},
                    samples=[m, m, m], warmup=1)
        for name, m in medians.items()
    ]
    return write_area_files(results, str(dirname), quick=quick)


def test_statuses():
    base = {"ok": 0.010, "slow": 0.010, "fast": 0.010, "gone": 0.010}
    new = {"ok": 0.011, "slow": 0.031, "fast": 0.002, "new": 0.005}
    baseline = {"area": "nn", "results": {k: {"median_s": v} for k, v in base.items()}}
    current = {"area": "nn", "results": {k: {"median_s": v} for k, v in new.items()}}
    by_name = {
        c.name: c.status
        for c in compare_payloads(baseline, current, threshold=1.5)
    }
    assert by_name == {
        "ok": "ok", "slow": "regression", "fast": "improved",
        "gone": "removed", "new": "added",
    }


def test_area_mismatch_rejected():
    with pytest.raises(ValueError, match="area mismatch"):
        compare_payloads(
            {"area": "nn", "results": {}}, {"area": "data", "results": {}}, 1.5
        )


def test_min_seconds_floor_suppresses_noise():
    # 2 us -> 8 us is a 4x blowup but far below the 50 us noise floor.
    baseline = {"area": "nn", "results": {"tiny": {"median_s": 2e-6}}}
    current = {"area": "nn", "results": {"tiny": {"median_s": 8e-6}}}
    (c,) = compare_payloads(baseline, current, threshold=1.5)
    assert c.status == "ok"
    (c,) = compare_payloads(baseline, current, threshold=1.5, min_seconds=0.0)
    assert c.status == "regression"


def test_compare_dirs_matches_areas(tmp_path):
    base_dir, new_dir = tmp_path / "base", tmp_path / "new"
    _write(base_dir, {"a": 0.01}, area="nn")
    _write(base_dir, {"b": 0.01}, area="data")
    _write(new_dir, {"a": 0.05}, area="nn")  # regression; data area removed
    _write(new_dir, {"c": 0.01}, area="comm")  # new area
    statuses = {
        (c.area, c.name): c.status
        for c in compare_dirs(str(base_dir), str(new_dir), threshold=1.5)
    }
    assert statuses == {
        ("nn", "a"): "regression",
        ("data", "b"): "removed",
        ("comm", "c"): "added",
    }


def test_compare_dirs_empty_dir_rejected(tmp_path):
    (tmp_path / "empty").mkdir()
    _write(tmp_path / "new", {"a": 0.01})
    with pytest.raises(FileNotFoundError):
        compare_dirs(str(tmp_path / "empty"), str(tmp_path / "new"), 1.5)


def test_format_report_orders_regressions_first():
    comparisons = [
        Comparison("fine", "nn", 0.01, 0.01, 1.5),
        Comparison("bad", "nn", 0.01, 0.05, 1.5),
    ]
    report = format_report(comparisons)
    assert report.index("bad") < report.index("fine")
    assert "1 regression(s)" in report


def test_cli_compare_identical_exits_zero(tmp_path, capsys):
    _write(tmp_path / "base", {"a": 0.01})
    _write(tmp_path / "new", {"a": 0.0101})
    rc = main(["bench", "compare", str(tmp_path / "base"), str(tmp_path / "new")])
    assert rc == 0
    assert "0 regression(s)" in capsys.readouterr().out


def test_cli_compare_injected_slowdown_exits_nonzero(tmp_path, capsys):
    """The CI gate scenario: a 3x slowdown must fail the command."""
    _write(tmp_path / "base", {"conv": 0.010, "other": 0.010})
    slow_dir = tmp_path / "new"
    _write(slow_dir, {"conv": 0.010, "other": 0.010})
    path = slow_dir / "BENCH_nn.json"
    payload = json.loads(path.read_text())
    payload["results"]["conv"]["median_s"] *= 3.0
    path.write_text(json.dumps(payload))

    rc = main(["bench", "compare", str(tmp_path / "base"), str(slow_dir),
               "--threshold", "1.5"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "1 regression(s)" in out
    # threshold above the injected slowdown passes again
    assert main(["bench", "compare", str(tmp_path / "base"), str(slow_dir),
                 "--threshold", "4.0"]) == 0


def test_cli_compare_rejects_bad_threshold(tmp_path):
    _write(tmp_path / "base", {"a": 0.01})
    with pytest.raises(SystemExit, match="threshold"):
        main(["bench", "compare", str(tmp_path / "base"), str(tmp_path / "base"),
              "--threshold", "0.9"])


def test_cli_run_quick_writes_schema_valid_files(tmp_path, capsys):
    from repro.bench.schema import load_payload

    rc = main(["bench", "run", "--quick", "--out-dir", str(tmp_path),
               "--areas", "cluster", "--filter", "packing.*"])
    assert rc == 0
    payload = load_payload(str(tmp_path / "BENCH_cluster.json"))
    assert payload["quick"] is True
    assert set(payload["results"]) == {
        "packing.flatten_grads", "packing.roundtrip",
    }


def test_cli_run_no_match_exits_nonzero(tmp_path, capsys):
    rc = main(["bench", "run", "--quick", "--out-dir", str(tmp_path),
               "--filter", "no.such.benchmark"])
    assert rc == 1


def test_cli_run_rejects_unknown_area(tmp_path):
    with pytest.raises(SystemExit, match="unknown area"):
        main(["bench", "run", "--areas", "gpu", "--out-dir", str(tmp_path)])
