"""Schema tests: build/write/load round-trip and validation failure modes."""

import json

import pytest

from repro.bench.harness import BenchResult
from repro.bench.schema import (
    SCHEMA_VERSION,
    SchemaError,
    area_filename,
    build_payload,
    load_payload,
    validate_payload,
    write_area_files,
)


def _result(name="conv2d.fwd", area="nn", samples=(0.002, 0.003, 0.0025)):
    return BenchResult(
        name=name, area=area, params={"batch": 32},
        samples=list(samples), warmup=3,
    )


def test_area_filename():
    assert area_filename("nn") == "BENCH_nn.json"


def test_build_payload_schema_valid():
    payload = build_payload("nn", [_result()], quick=False)
    validate_payload(payload)
    entry = payload["results"]["conv2d.fwd"]
    assert entry["repeats"] == 3
    assert entry["median_s"] == 0.0025
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["quick"] is False


def test_build_payload_rejects_wrong_area():
    with pytest.raises(ValueError, match="belongs to area"):
        build_payload("comm", [_result(area="nn")], quick=False)


def test_write_and_load_roundtrip(tmp_path):
    results = [
        _result("a.one", "nn"),
        _result("a.two", "nn", samples=(0.1, 0.2, 0.3)),
        _result("b.one", "data"),
    ]
    paths = write_area_files(results, str(tmp_path), quick=True)
    assert sorted(p.split("/")[-1] for p in paths) == [
        "BENCH_data.json", "BENCH_nn.json",
    ]
    nn = load_payload(str(tmp_path / "BENCH_nn.json"))
    assert set(nn["results"]) == {"a.one", "a.two"}
    assert nn["quick"] is True
    assert nn["env"]["numpy"]


def test_load_rejects_bad_json(tmp_path):
    path = tmp_path / "BENCH_nn.json"
    path.write_text("{not json")
    with pytest.raises(SchemaError, match="not valid JSON"):
        load_payload(str(path))


def test_validate_rejects_missing_keys():
    payload = build_payload("nn", [_result()], quick=False)
    del payload["env"]
    with pytest.raises(SchemaError, match="missing top-level"):
        validate_payload(payload)


def test_validate_rejects_future_schema_version(tmp_path):
    payload = build_payload("nn", [_result()], quick=False)
    payload["schema_version"] = SCHEMA_VERSION + 1
    path = tmp_path / "BENCH_nn.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(SchemaError, match="unsupported"):
        load_payload(str(path))


def test_validate_rejects_bad_entries():
    payload = build_payload("nn", [_result()], quick=False)
    payload["results"]["conv2d.fwd"]["median_s"] = -1.0
    with pytest.raises(SchemaError, match="non-negative"):
        validate_payload(payload)
    payload = build_payload("nn", [_result()], quick=False)
    del payload["results"]["conv2d.fwd"]["mad_s"]
    with pytest.raises(SchemaError, match="missing keys"):
        validate_payload(payload)
    payload = build_payload("nn", [_result()], quick=False)
    payload["results"]["conv2d.fwd"]["repeats"] = 0
    with pytest.raises(SchemaError, match="repeats"):
        validate_payload(payload)
