"""FaultPlan validation and deterministic FaultInjector decisions."""

import pytest

from repro.comm import RetransmitExhausted, RetransmitPolicy
from repro.faults import FaultInjector, FaultPlan


class TestFaultPlan:
    def test_defaults_are_fault_free(self):
        plan = FaultPlan()
        assert not plan.lossy
        assert not plan.any_faults

    @pytest.mark.parametrize("kwargs", [
        dict(drop_prob=-0.1),
        dict(drop_prob=1.0),
        dict(delay_prob=1.5),
        dict(corrupt_prob=-1e-9),
        dict(delay_seconds=-1.0),
        dict(stragglers={0: 0.5}),   # speedups are not faults
        dict(kills={-1: 3}),
        dict(kills={0: -3}),
    ])
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_lossy_and_any_faults_flags(self):
        assert FaultPlan(drop_prob=0.1).lossy
        assert FaultPlan(corrupt_prob=0.1).lossy
        assert FaultPlan(delay_prob=0.1, delay_seconds=1.0).lossy
        assert not FaultPlan(kills={0: 1}).lossy
        assert FaultPlan(kills={0: 1}).any_faults
        assert FaultPlan(stragglers={1: 2.0}).any_faults

    def test_without_rank_renumbers_survivors(self):
        plan = FaultPlan(stragglers={0: 2.0, 2: 3.0}, kills={1: 5, 3: 9})
        shrunk = plan.without_rank({1}, world=4)
        # survivors [0, 2, 3] -> new ids [0, 1, 2]
        assert shrunk.stragglers == {0: 2.0, 1: 3.0}
        assert shrunk.kills == {2: 9}  # rank 1's fired kill is gone

    def test_without_rank_preserves_link_faults(self):
        plan = FaultPlan(seed=3, drop_prob=0.05, corrupt_prob=0.01)
        shrunk = plan.without_rank({0}, world=3)
        assert shrunk.drop_prob == plan.drop_prob
        assert shrunk.corrupt_prob == plan.corrupt_prob
        assert shrunk.seed == plan.seed


class TestRetransmitPolicy:
    def test_backoff_schedule_is_exponential(self):
        policy = RetransmitPolicy(ack_timeout=1.0, backoff=2.0)
        assert policy.delay_before_retry(0) == 1.0
        assert policy.delay_before_retry(3) == 8.0
        assert policy.total_delay(3) == 1.0 + 2.0 + 4.0

    @pytest.mark.parametrize("kwargs", [
        dict(ack_timeout=0.0),
        dict(backoff=0.5),
        dict(max_retries=-1),
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetransmitPolicy(**kwargs)


class TestFaultInjector:
    def test_decisions_are_deterministic_per_channel(self):
        delays_a = [FaultInjector(FaultPlan(seed=7, drop_prob=0.3))
                    .decide_send(0, 1) for _ in range(1)]
        # replay the same channel sequence on a fresh injector
        inj1 = FaultInjector(FaultPlan(seed=7, drop_prob=0.3))
        inj2 = FaultInjector(FaultPlan(seed=7, drop_prob=0.3))
        seq1 = [inj1.decide_send(0, 1) for _ in range(200)]
        seq2 = [inj2.decide_send(0, 1) for _ in range(200)]
        assert seq1 == seq2
        assert inj1.stats.messages_dropped == inj2.stats.messages_dropped
        assert delays_a[0] == seq1[0]

    def test_channels_are_independent(self):
        inj = FaultInjector(FaultPlan(seed=7, drop_prob=0.3))
        a = [inj.decide_send(0, 1) for _ in range(50)]
        inj_b = FaultInjector(FaultPlan(seed=7, drop_prob=0.3))
        # interleaving traffic on another channel must not perturb (0, 1)
        b = []
        for _ in range(50):
            inj_b.decide_send(2, 3)
            b.append(inj_b.decide_send(0, 1))
        assert a == b

    def test_seed_changes_the_sequence(self):
        s1 = [FaultInjector(FaultPlan(seed=1, drop_prob=0.3)).decide_send(0, 1)
              for _ in range(1)]
        inj1 = FaultInjector(FaultPlan(seed=1, drop_prob=0.3))
        inj2 = FaultInjector(FaultPlan(seed=2, drop_prob=0.3))
        seq1 = [inj1.decide_send(0, 1) for _ in range(300)]
        seq2 = [inj2.decide_send(0, 1) for _ in range(300)]
        assert seq1 != seq2
        assert s1[0] == seq1[0]

    def test_loss_rate_roughly_matches_probability(self):
        inj = FaultInjector(FaultPlan(seed=0, drop_prob=0.1))
        for _ in range(4000):
            inj.decide_send(0, 1)
        observed = inj.stats.messages_dropped / 4000
        assert 0.06 < observed < 0.14

    def test_lost_frames_price_backoff_delay(self):
        policy = RetransmitPolicy(ack_timeout=0.5, backoff=2.0, max_retries=10)
        inj = FaultInjector(FaultPlan(seed=0, drop_prob=0.4, retransmit=policy))
        total = sum(inj.decide_send(0, 1) for _ in range(500))
        assert total == pytest.approx(inj.stats.retransmit_seconds)
        assert inj.stats.retransmits == inj.stats.messages_dropped
        assert total > 0

    def test_corruption_counts_separately_from_drops(self):
        inj = FaultInjector(FaultPlan(seed=0, corrupt_prob=0.2))
        for _ in range(1000):
            inj.decide_send(0, 1)
        assert inj.stats.messages_corrupted > 0
        assert inj.stats.messages_dropped == 0

    def test_retransmit_exhaustion_raises(self):
        policy = RetransmitPolicy(max_retries=0)
        inj = FaultInjector(
            FaultPlan(seed=0, drop_prob=0.9, retransmit=policy)
        )
        with pytest.raises(RetransmitExhausted):
            for _ in range(100):
                inj.decide_send(0, 1)

    def test_delay_fault_applies_fixed_latency(self):
        inj = FaultInjector(
            FaultPlan(seed=0, delay_prob=0.5, delay_seconds=3.0)
        )
        delays = [inj.decide_send(0, 1) for _ in range(200)]
        assert set(delays) == {0.0, 3.0}
        assert inj.stats.messages_delayed == sum(d > 0 for d in delays)

    def test_straggler_multiplier(self):
        inj = FaultInjector(FaultPlan(stragglers={1: 2.5}))
        assert inj.compute_multiplier(1) == 2.5
        assert inj.compute_multiplier(0) == 1.0

    def test_kill_fires_exactly_once_at_or_after_target(self):
        inj = FaultInjector(FaultPlan(kills={1: 5}))
        assert not inj.should_kill(1, 4)
        assert not inj.should_kill(0, 5)
        assert inj.should_kill(1, 5)
        assert not inj.should_kill(1, 6)  # already fired
        assert inj.stats.ranks_killed == 1

    def test_kill_fires_late_if_target_was_skipped(self):
        inj = FaultInjector(FaultPlan(kills={0: 3}))
        assert inj.should_kill(0, 7)

    def test_stats_merge_accumulates(self):
        from repro.faults import FaultStats

        a = FaultStats(messages_dropped=2, retransmit_seconds=1.5, recoveries=1)
        b = FaultStats(messages_dropped=3, lost_seconds=2.0)
        a.merge(b)
        assert a.messages_dropped == 5
        assert a.retransmit_seconds == 1.5
        assert a.lost_seconds == 2.0
        assert a.recoveries == 1
        assert "dropped=5" in a.summary()
