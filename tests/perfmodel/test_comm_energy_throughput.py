"""Comm-analysis (Figures 6/8/9/10), energy (Table 12) and throughput
(Figure 3) tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IMAGENET_TRAIN_SIZE
from repro.nn import activation_elements_per_example
from repro.nn.models import build_model, paper_model_cost
from repro.perfmodel import (
    comm_volume_bytes,
    device,
    device_throughput,
    energy_of,
    energy_ratio,
    iterations,
    messages,
    sweep_batch_sizes,
    throughput_curve,
    training_energy,
    training_memory_bytes,
)


class TestCommAnalysis:
    def test_iterations_formula(self):
        """Figure 8: I = E·n/B."""
        assert iterations(100, 1_280_000, 512) == 250_000
        assert iterations(90, IMAGENET_TRAIN_SIZE, 32768) == 90 * 40

    def test_iterations_inverse_in_batch(self):
        i1 = iterations(100, 1_280_000, 1024)
        i2 = iterations(100, 1_280_000, 2048)
        assert i1 == 2 * i2

    def test_messages_track_iterations(self):
        """Figure 9: messages linear in iterations."""
        m_small = messages(100, 1_280_000, 512)
        m_large = messages(100, 1_280_000, 2048)
        assert m_small == 4 * m_large

    def test_comm_volume_formula(self):
        """Figure 10: V = |W|·E·n/B (fp32 bytes)."""
        c = paper_model_cost("alexnet")
        v = comm_volume_bytes(c, 100, 1_280_000, 512)
        assert v == c.parameters * 4 * 250_000

    def test_flops_independent_of_batch(self):
        """Figure 6: fixed epochs fix the computation volume."""
        c = paper_model_cost("resnet50")
        rows = sweep_batch_sizes(c, 90, IMAGENET_TRAIN_SIZE, [256, 8192, 32768])
        flops = {r["total_flops"] for r in rows}
        assert len(flops) == 1

    def test_sweep_monotonicity(self):
        c = paper_model_cost("alexnet")
        rows = sweep_batch_sizes(c, 100, 1_280_000, [512, 4096, 32768])
        iters = [r["iterations"] for r in rows]
        vols = [r["comm_volume_bytes"] for r in rows]
        assert iters == sorted(iters, reverse=True)
        assert vols == sorted(vols, reverse=True)

    @given(b=st.integers(1, 10**6), k=st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_volume_scales_inverse_batch(self, b, k):
        c = paper_model_cost("alexnet")
        v1 = comm_volume_bytes(c, 10, 10**6, b)
        vk = comm_volume_bytes(c, 10, 10**6, b * k)
        assert vk <= v1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            iterations(0, 100, 10)


class TestEnergy:
    def test_lookup(self):
        assert energy_of("32 bit DRAM access").picojoules == 640.0

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            energy_of("64 bit dram access")

    def test_dram_vs_float_multiply_ratio(self):
        """640 / 3.7 ≈ 173x — the paper's comm-costs-more-energy claim."""
        assert energy_ratio("32 bit DRAM access", "32 bit float multiply") == (
            pytest.approx(173.0, rel=0.01)
        )

    def test_training_energy_compute_constant_in_batch(self):
        c = paper_model_cost("resnet50")
        e1 = training_energy(c, 90, IMAGENET_TRAIN_SIZE, 256)
        e2 = training_energy(c, 90, IMAGENET_TRAIN_SIZE, 32768)
        assert e1.compute_joules == pytest.approx(e2.compute_joules)

    def test_training_energy_comm_shrinks_with_batch(self):
        c = paper_model_cost("alexnet")
        e1 = training_energy(c, 100, IMAGENET_TRAIN_SIZE, 512)
        e2 = training_energy(c, 100, IMAGENET_TRAIN_SIZE, 32768)
        assert e2.comm_joules < e1.comm_joules
        assert e2.comm_fraction < e1.comm_fraction

    def test_breakdown_totals(self):
        c = paper_model_cost("alexnet")
        e = training_energy(c, 100, IMAGENET_TRAIN_SIZE, 512)
        assert e.total_joules == pytest.approx(e.compute_joules + e.comm_joules)
        assert 0 <= e.comm_fraction <= 1

    def test_facility_energy_headline(self):
        """2048 KNLs for ~20 minutes is on the order of 100 kWh."""
        from repro.perfmodel import estimate_training_time, facility_energy_kwh, network

        est = estimate_training_time(
            paper_model_cost("resnet50"), epochs=90,
            dataset_size=IMAGENET_TRAIN_SIZE, global_batch=32768,
            processors=2048, device=device("knl"), net=network("opa"))
        kwh = facility_energy_kwh(est, device("knl").tdp_watts)
        assert 80 < kwh < 250

    def test_facility_energy_scales_with_time_and_procs(self):
        from repro.perfmodel import estimate_training_time, facility_energy_kwh, network

        short = estimate_training_time(
            paper_model_cost("resnet50"), epochs=45,
            dataset_size=IMAGENET_TRAIN_SIZE, global_batch=32768,
            processors=2048, device=device("knl"), net=network("opa"))
        full = estimate_training_time(
            paper_model_cost("resnet50"), epochs=90,
            dataset_size=IMAGENET_TRAIN_SIZE, global_batch=32768,
            processors=2048, device=device("knl"), net=network("opa"))
        assert facility_energy_kwh(full, 215) == pytest.approx(
            2 * facility_energy_kwh(short, 215), rel=0.01)

    def test_facility_energy_invalid_tdp(self):
        from repro.perfmodel import estimate_training_time, facility_energy_kwh, network

        est = estimate_training_time(
            paper_model_cost("alexnet"), epochs=1,
            dataset_size=1000, global_batch=100, processors=2,
            device=device("p100"), net=network("fdr"))
        with pytest.raises(ValueError):
            facility_energy_kwh(est, 0)


class TestThroughput:
    """Figure 3: AlexNet on M40 — speed peaks near batch 512, 1024 OOMs."""

    @pytest.fixture(scope="class")
    def alexnet_setup(self):
        cost = paper_model_cost("alexnet")
        act = activation_elements_per_example(build_model("alexnet"), (3, 227, 227))
        return cost, act

    def test_throughput_monotone_while_fitting(self, alexnet_setup):
        cost, act = alexnet_setup
        curve = throughput_curve(cost, device("m40"), act)
        fitting = [p for p in curve if p.fits_in_memory]
        speeds = [p.images_per_second for p in fitting]
        assert speeds == sorted(speeds)

    def test_batch_512_fits_1024_oom_on_m40(self, alexnet_setup):
        """The paper: 'Batch=512 per GPU gives us the highest speed.
        Batch=1024 per GPU is out of memory.'"""
        cost, act = alexnet_setup
        p512 = device_throughput(cost, 512, device("m40"), act)
        p1024 = device_throughput(cost, 1024, device("m40"), act)
        assert p512.fits_in_memory
        assert not p1024.fits_in_memory

    def test_memory_model_linear_in_batch(self, alexnet_setup):
        cost, act = alexnet_setup
        m1 = training_memory_bytes(cost, 1, act)
        m2 = training_memory_bytes(cost, 101, act)
        assert m2 - m1 == pytest.approx(100 * act * 8)

    def test_utilisation_saturates(self, alexnet_setup):
        cost, act = alexnet_setup
        p = device_throughput(cost, 10**6, device("m40"), act)
        assert p.utilisation > 0.99

    def test_invalid_batch(self, alexnet_setup):
        cost, act = alexnet_setup
        with pytest.raises(ValueError):
            device_throughput(cost, 0, device("m40"), act)

    def test_default_curve_covers_powers_of_two(self, alexnet_setup):
        cost, act = alexnet_setup
        curve = throughput_curve(cost, device("m40"), act)
        assert [p.batch_size for p in curve] == [2**k for k in range(11)]


class TestActivationFootprint:
    def test_counts_input_and_layer_outputs(self):
        from repro.nn.models import mlp

        m = mlp(4, [8], 2)
        # input 4 + dense 8 + relu 8 + dense 2
        assert activation_elements_per_example(m, (4,)) == 4 + 8 + 8 + 2

    def test_alexnet_activations_order_of_magnitude(self):
        act = activation_elements_per_example(build_model("alexnet"), (3, 227, 227))
        # AlexNet forward activations are ~1-2 M scalars per example
        assert 5e5 < act < 5e6
