"""Device/network/energy profile tests (Tables 11 and 12 as data)."""

import pytest

from repro.perfmodel import (
    DEVICES,
    ENERGY_TABLE_45NM,
    DeviceProfile,
    device,
    network,
)


class TestDevices:
    def test_paper_peak_flops(self):
        """Peaks quoted in the paper: P100 10.6T, KNL 6T."""
        assert device("p100").peak_flops == pytest.approx(10.6e12)
        assert device("knl").peak_flops == pytest.approx(6.0e12)

    def test_p100_roughly_two_knls(self):
        """'The power of one P100 GPU is roughly equal to two KNLs' —
        in sustained ResNet-50 terms."""
        p100 = device("p100").sustained_flops("resnet50")
        knl = device("knl").sustained_flops("resnet50")
        assert 2.0 < p100 / knl < 4.0

    def test_gamma_p100_matches_table11_caption(self):
        """γ = 0.9e-13 s/flop for P100."""
        assert device("p100").gamma == pytest.approx(0.9434e-13, rel=0.06)

    def test_utilisation_monotone_in_batch(self):
        dev = device("p100")
        u = [dev.utilisation(b, "alexnet") for b in (8, 64, 512)]
        assert u[0] < u[1] < u[2] < 1.0

    def test_alexnet_needs_bigger_batches_than_resnet(self):
        """AlexNet's FC GEMMs demand batch; ResNet-50 saturates early —
        the reason the paper's DGX-1 shows speedup for AlexNet (Table 8)
        but not for ResNet-50 (Table 9)."""
        dev = device("p100")
        assert dev.utilisation(32, "alexnet") < 0.3
        assert dev.utilisation(32, "resnet50") > 0.9

    def test_sustained_without_batch_is_saturated(self):
        dev = device("knl")
        assert dev.sustained_flops("resnet50") == pytest.approx(
            6.0e12 * dev.efficiency("resnet50")
        )

    def test_unknown_model_uses_default(self):
        dev = device("m40")
        assert dev.efficiency("vgg16") == dev.default_efficiency

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile("x", -1, 1)
        with pytest.raises(ValueError):
            DeviceProfile("x", 1, 1, default_efficiency=1.5)
        with pytest.raises(ValueError):
            device("p100").utilisation(0)

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            device("tpu")
        with pytest.raises(KeyError):
            network("ethernet")

    def test_all_paper_devices_present(self):
        for name in ["k20", "m40", "p100", "knl", "skylake"]:
            assert name in DEVICES


class TestNetworks:
    def test_table11_values_verbatim(self):
        fdr = network("fdr")
        assert fdr.alpha == pytest.approx(0.7e-6)
        assert fdr.beta == pytest.approx(0.2e-9)
        qdr = network("qdr")
        assert qdr.alpha == pytest.approx(1.2e-6)
        assert qdr.beta == pytest.approx(0.3e-9)
        gbe = network("10gbe")
        assert gbe.alpha == pytest.approx(7.2e-6)
        assert gbe.beta == pytest.approx(0.9e-9)

    def test_latency_ordering(self):
        """Table 11's rows are ordered fastest to slowest."""
        assert network("fdr").alpha < network("qdr").alpha < network("10gbe").alpha
        assert network("fdr").beta < network("qdr").beta < network("10gbe").beta


class TestEnergyTable:
    def as_dict(self):
        return {e.operation: e for e in ENERGY_TABLE_45NM}

    def test_table12_values_verbatim(self):
        d = self.as_dict()
        assert d["32 bit int add"].picojoules == 0.1
        assert d["32 bit float add"].picojoules == 0.9
        assert d["32 bit register access"].picojoules == 1.0
        assert d["32 bit int multiply"].picojoules == 3.1
        assert d["32 bit float multiply"].picojoules == 3.7
        assert d["32 bit SRAM access"].picojoules == 5.0
        assert d["32 bit DRAM access"].picojoules == 640.0

    def test_kinds_match_paper(self):
        d = self.as_dict()
        assert d["32 bit float add"].kind == "computation"
        assert d["32 bit DRAM access"].kind == "communication"

    def test_communication_costs_more_than_computation(self):
        """The paper's headline claim for Table 12: DRAM access dwarfs any
        arithmetic op."""
        d = self.as_dict()
        dram = d["32 bit DRAM access"].picojoules
        for e in ENERGY_TABLE_45NM:
            if e.kind == "computation":
                assert dram > 100 * e.picojoules
