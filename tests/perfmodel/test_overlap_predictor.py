"""The closed-form overlap predictor against the thread-per-rank simulator.

``repro.perfmodel.overlap`` replays the bucket schedule analytically —
bucket *k* is ready at ``t_fwd + t_bwd·cumfrac_k`` and done after its α-β
allreduce cost — and must agree with the simulated cluster within 5%
across world sizes, algorithms, and bucket sizes (the acceptance bar; in
practice the two are equal to rounding because they share the greedy
partition and the cost model).
"""

import numpy as np
import pytest

from repro.cluster import SyncSGDConfig, train_sync_sgd
from repro.cluster.bucketing import BucketPlan
from repro.comm import NetworkProfile
from repro.comm.collectives import allreduce_cost
from repro.core import SGD, ConstantLR
from repro.nn.models import mlp
from repro.perfmodel.overlap import (
    OverlapStepEstimate,
    greedy_partition,
    predict_run_seconds,
    predict_step_time,
)

_PROFILE = NetworkProfile(alpha=1e-5, beta=1e-8)
_RNG = np.random.default_rng(7)
_X = _RNG.normal(size=(64, 8))
_Y = _RNG.integers(0, 3, size=64)


def _builder():
    return mlp(8, [64] * 4, 3, seed=13)


def _compute_time(k):
    return 2.5e-4 * k


def _simulate(world, algorithm, bucket_bytes, overlap=True):
    config = SyncSGDConfig(
        world=world, epochs=1, batch_size=32, algorithm=algorithm,
        profile=_PROFILE, compute_time=_compute_time,
        bucket_bytes=bucket_bytes, overlap=overlap, shuffle_seed=13,
    )
    return train_sync_sgd(_builder, lambda p: SGD(p, momentum=0.9),
                          ConstantLR(0.1), _X, _Y, _X[:16], _Y[:16], config)


def _predict(world, algorithm, bucket_bytes, overlap=True):
    plan = BucketPlan.from_model(_builder(), bucket_bytes=bucket_bytes)
    return predict_run_seconds(
        world, plan.bucket_nbytes, _PROFILE, _compute_time(32 // world),
        steps=2, epochs=1, algorithm=algorithm, overlap=overlap,
    )


class TestPredictorMatchesSimulator:
    @pytest.mark.parametrize("world", [2, 4, 8])
    @pytest.mark.parametrize("algorithm", ["tree", "ring", "rhd"])
    @pytest.mark.parametrize("bucket_bytes", [4096, 16384])
    def test_overlapped_run_within_5pct(self, world, algorithm, bucket_bytes):
        sim = _simulate(world, algorithm, bucket_bytes).simulated_seconds
        pred = _predict(world, algorithm, bucket_bytes)
        assert pred == pytest.approx(sim, rel=0.05)

    def test_blocking_bucketed_run_within_5pct(self):
        sim = _simulate(4, "tree", 4096, overlap=False).simulated_seconds
        pred = _predict(4, "tree", 4096, overlap=False)
        assert pred == pytest.approx(sim, rel=0.05)


class TestStepModel:
    def test_compute_dominates_only_last_bucket_exposed(self):
        """When compute dwarfs comm, everything hides except the final
        bucket, whose gradients only exist once backward ends."""
        est = predict_step_time(4, [1024] * 8, _PROFILE,
                                compute_seconds=10.0)
        last_cost = allreduce_cost(4, 1024, _PROFILE, "tree")
        assert est.step_seconds == pytest.approx(10.0 + last_cost)
        assert est.exposed_comm_seconds == pytest.approx(last_cost)
        assert est.overlap_efficiency == pytest.approx(7 / 8)

    def test_last_bucket_always_exposed(self):
        """The final bucket is ready when backward ends — its cost can never
        hide, bounding the benefit of overlap."""
        nbytes = [1024] * 4
        est = predict_step_time(4, nbytes, _PROFILE, compute_seconds=1e-4)
        last_cost = allreduce_cost(4, nbytes[-1], _PROFILE, "tree")
        assert est.step_seconds >= 1e-4 + last_cost - 1e-15

    def test_serialized_matches_compute_plus_comm(self):
        nbytes = [1024, 2048]
        est = predict_step_time(4, nbytes, _PROFILE, compute_seconds=1e-3,
                                overlap=False)
        total_comm = sum(allreduce_cost(4, n, _PROFILE, "tree")
                         for n in nbytes)
        assert est.step_seconds == pytest.approx(1e-3 + total_comm)
        assert est.overlap_efficiency == pytest.approx(0.0)

    def test_overlap_beats_serialized(self):
        nbytes = [4096] * 16
        hidden = predict_step_time(8, nbytes, _PROFILE, compute_seconds=5e-3)
        exposed = predict_step_time(8, nbytes, _PROFILE, compute_seconds=5e-3,
                                    overlap=False)
        assert hidden.step_seconds < exposed.step_seconds

    def test_world_one_is_pure_compute(self):
        est = predict_step_time(1, [1024] * 4, _PROFILE, compute_seconds=2.0)
        assert est.step_seconds == pytest.approx(2.0)
        assert est.comm_busy_seconds == pytest.approx(0.0)

    def test_messages_scale_with_buckets(self):
        few = predict_step_time(8, [65536], _PROFILE, 1e-3)
        many = predict_step_time(8, [4096] * 16, _PROFILE, 1e-3)
        assert many.messages_per_step > few.messages_per_step

    def test_estimate_is_dataclass_with_schedule(self):
        est = predict_step_time(4, [1024, 2048], _PROFILE, 1e-3)
        assert isinstance(est, OverlapStepEstimate)
        assert len(est.bucket_times) == 2
        for ready, done in est.bucket_times:
            assert done > ready >= 0.0


class TestPartitionShared:
    def test_plan_and_predictor_use_same_boundaries(self):
        """BucketPlan and the predictor share ``greedy_partition`` — the
        analytic schedule describes exactly the simulated one."""
        model = _builder()
        plan = BucketPlan.from_model(model, bucket_bytes=4096)
        rev_nbytes = [p.data.nbytes for p in model.parameters()[::-1]]
        groups = greedy_partition(rev_nbytes, 4096)
        assert [sum(g) for g in groups] == plan.bucket_nbytes
