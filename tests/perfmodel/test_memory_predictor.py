"""The activation-memory predictor is pinned to the measured arena peak.

``predict_activation_bytes`` replays the planned request stream through a
dry-run arena sharing the live arena's bucket arithmetic, so its numbers
must match a real planned training step — the acceptance bound is 5%, but
by construction the match is exact and that is what we assert.
"""

import numpy as np
import pytest

from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.memory import MemoryContext
from repro.nn.models import build_model
from repro.perfmodel import max_batch_size, predict_activation_bytes
from repro.perfmodel.memory import sweep_batch_sizes

BATCHES = [8, 32, 128]


def _measure_peak(model, in_shape, batch, steps=2):
    """Run planned training steps; return the live arena's high-water mark."""
    loss = SoftmaxCrossEntropy(label_smoothing=0.1)
    mem = MemoryContext()
    model.bind_memory(mem)
    loss.bind_memory(mem)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((batch, *in_shape))
    y = rng.integers(0, 10, size=batch)
    for _ in range(steps):
        model.zero_grad()
        loss.forward(model.forward(x), y)
        model.backward(loss.backward())
    return mem.arena.peak_bytes


@pytest.mark.parametrize("batch", BATCHES)
def test_prediction_matches_measured_peak(batch):
    in_shape = (3, 16, 16)
    est = predict_activation_bytes(
        build_model("micro_resnet", width=8), in_shape, batch,
        loss=SoftmaxCrossEntropy(label_smoothing=0.1))
    measured = _measure_peak(build_model("micro_resnet", width=8),
                             in_shape, batch)
    # acceptance bound is 5%; the shared bucket math makes it exact
    assert abs(est.peak_bytes - measured) <= 0.05 * measured
    assert est.peak_bytes == measured


def test_prediction_matches_for_mlp():
    in_shape = (32,)
    model_kwargs = dict(in_features=32, hidden=[24, 16], num_classes=10,
                        batch_norm=True, flatten_input=False)
    est = predict_activation_bytes(
        build_model("mlp", **model_kwargs), in_shape, 16,
        loss=SoftmaxCrossEntropy(label_smoothing=0.1))
    measured = _measure_peak(build_model("mlp", **model_kwargs), in_shape, 16)
    assert est.peak_bytes == measured


def test_peak_grows_monotonically_with_batch():
    ests = sweep_batch_sizes(lambda: build_model("micro_resnet", width=8),
                             (3, 16, 16), BATCHES)
    peaks = [e.peak_bytes for e in ests]
    assert peaks == sorted(peaks) and peaks[0] < peaks[-1]
    # per-example cost is roughly flat: the plan is batch-linear up to
    # bucket rounding (powers of two admit up to 2x slack per buffer)
    per_ex = [e.bytes_per_example for e in ests]
    assert max(per_ex) < 2.5 * min(per_ex)


def test_estimate_decomposition_is_consistent():
    est = predict_activation_bytes(
        build_model("micro_resnet", width=8), (3, 16, 16), 8)
    assert est.pool_bytes == est.slot_bytes + est.scratch_bucket_bytes
    assert 0 < est.peak_bytes <= est.pool_bytes
    assert est.num_slots > 0


def test_max_batch_size_is_tight():
    builder = lambda: build_model("micro_resnet", width=8)  # noqa: E731
    in_shape = (3, 16, 16)
    b = max_batch_size(builder, in_shape, 64 * 2**20)
    assert b >= 1
    fits = predict_activation_bytes(builder(), in_shape, b,
                                    loss=SoftmaxCrossEntropy())
    over = predict_activation_bytes(builder(), in_shape, b + 1,
                                    loss=SoftmaxCrossEntropy())
    assert fits.pool_bytes <= 64 * 2**20 < over.pool_bytes


def test_max_batch_size_zero_when_nothing_fits():
    assert max_batch_size(lambda: build_model("micro_resnet", width=8),
                          (3, 16, 16), 1024) == 0
