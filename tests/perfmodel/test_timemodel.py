"""Time-model tests: Table 2 structure and Table 8/9 reproduction.

The headline check: the calibrated α-β-γ model must land within 1.5× of
every measured wall-clock row in Tables 8 and 9 (we claim shape, not
testbed-exact numbers; in practice most rows land within 10 %).
"""

import math

import pytest

from repro.core import IMAGENET_TRAIN_SIZE
from repro.nn.models import paper_model_cost
from repro.perfmodel import (
    device,
    estimate_training_time,
    iteration_breakdown,
    network,
    table2_row,
    weak_scaling_efficiency,
)


def estimate(model, epochs, batch, procs, dev, net):
    return estimate_training_time(
        paper_model_cost(model),
        epochs=epochs,
        dataset_size=IMAGENET_TRAIN_SIZE,
        global_batch=batch,
        processors=procs,
        device=device(dev),
        net=network(net),
    )


# (model, epochs, batch, processors, device, network, paper minutes)
TABLE8_ROWS = [
    ("alexnet", 100, 512, 8, "p100", "nvlink", 370),       # DGX-1, 6h10m
    ("alexnet", 100, 4096, 8, "p100", "nvlink", 139),      # DGX-1, 2h19m
    ("alexnet_bn", 100, 32768, 512, "knl", "opa", 24),
    ("alexnet_bn", 100, 32768, 1024, "skylake", "opa", 11),
]

TABLE9_ROWS = [
    ("resnet50", 90, 256, 8, "p100", "nvlink", 21 * 60),
    ("resnet50", 90, 8192, 8, "p100", "nvlink", 21 * 60),
    ("resnet50", 90, 8192, 256, "p100", "fdr", 60),        # Facebook's 1 hour
    ("resnet50", 90, 16384, 1024, "skylake", "opa", 52),
    ("resnet50", 90, 16000, 1600, "skylake", "opa", 31),
    ("resnet50", 90, 32768, 512, "knl", "opa", 60),
    ("resnet50", 90, 32768, 1024, "skylake", "opa", 48),
    ("resnet50", 90, 32768, 2048, "knl", "opa", 20),
]


class TestPaperTimeRows:
    @pytest.mark.parametrize("row", TABLE8_ROWS, ids=lambda r: f"B{r[2]}xP{r[3]}")
    def test_table8_alexnet_times(self, row):
        model, ep, b, p, dev, net, paper_min = row
        est = estimate(model, ep, b, p, dev, net)
        assert paper_min / 1.5 < est.total_minutes < paper_min * 1.5

    @pytest.mark.parametrize("row", TABLE9_ROWS, ids=lambda r: f"B{r[2]}xP{r[3]}")
    def test_table9_resnet_times(self, row):
        model, ep, b, p, dev, net, paper_min = row
        est = estimate(model, ep, b, p, dev, net)
        assert paper_min / 1.5 < est.total_minutes < paper_min * 1.5

    def test_headline_20_minutes(self):
        """2048 KNLs, batch 32K, 90 epochs -> ~20 minutes."""
        est = estimate("resnet50", 90, 32768, 2048, "knl", "opa")
        assert 14 < est.total_minutes < 26

    def test_headline_11_minutes_alexnet(self):
        """1024 CPUs, batch 32K, 100 epochs AlexNet-BN -> ~11 minutes."""
        est = estimate("alexnet_bn", 100, 32768, 1024, "skylake", "opa")
        assert 8 < est.total_minutes < 15

    def test_table1_64_epochs_beats_akiba(self):
        """64-epoch run (74.9 % target) takes ~64/90 of the 90-epoch time —
        the paper's 14-minute headline vs Akiba's 15."""
        e90 = estimate("resnet50", 90, 32768, 2048, "knl", "opa")
        e64 = estimate("resnet50", 64, 32768, 2048, "knl", "opa")
        assert e64.total_seconds == pytest.approx(e90.total_seconds * 64 / 90, rel=0.01)
        assert e64.total_minutes < 15


class TestTable2:
    def test_iterations_halve_as_batch_doubles(self):
        rows = [table2_row(b) for b in (512, 1024, 2048, 4096)]
        iters = [r["iterations"] for r in rows]
        assert iters == [250_000, 125_000, 62_500, 31_250]

    def test_gpu_count_tracks_batch(self):
        assert table2_row(8192)["gpus"] == 16
        assert table2_row(1_280_000)["gpus"] == 2500

    def test_final_row_structure(self):
        r = table2_row(1_280_000)
        assert r["iterations"] == 100
        assert "log(2500)" in r["total_time"]

    def test_indivisible_batch_rejected(self):
        with pytest.raises(ValueError):
            table2_row(1000)


class TestIterationBreakdown:
    def test_compute_dominates_at_small_p(self):
        c = paper_model_cost("resnet50")
        b = iteration_breakdown(c, 256, 1, device("p100"), network("fdr"))
        assert b.comm_fraction == 0.0  # single rank: no allreduce

    def test_comm_grows_with_p_at_fixed_global_batch(self):
        """Strong scaling hits the communication wall."""
        c = paper_model_cost("alexnet")
        fracs = [
            iteration_breakdown(c, 4096, p, device("p100"), network("10gbe")).comm_fraction
            for p in (2, 16, 128)
        ]
        assert fracs[0] < fracs[1] < fracs[2]

    def test_total_equals_sum(self):
        c = paper_model_cost("resnet50")
        b = iteration_breakdown(c, 8192, 64, device("knl"), network("opa"))
        assert b.total_seconds == pytest.approx(b.compute_seconds + b.comm_seconds)

    def test_invalid_args(self):
        c = paper_model_cost("alexnet")
        with pytest.raises(ValueError):
            iteration_breakdown(c, 0, 4, device("p100"), network("fdr"))
        with pytest.raises(ValueError):
            iteration_breakdown(c, 512, 0, device("p100"), network("fdr"))


class TestWeakScaling:
    def test_resnet_scales_better_than_alexnet(self):
        """Table 6's punchline: ResNet-50's 12.5x larger comp/comm ratio
        gives it higher weak-scaling efficiency at the same P."""
        kw = dict(processors=64, batch_per_processor=64,
                  device=device("knl"), net=network("qdr"))
        r = weak_scaling_efficiency(paper_model_cost("resnet50"), **kw)
        a = weak_scaling_efficiency(paper_model_cost("alexnet"), **kw)
        assert r > a

    def test_efficiency_bounded(self):
        e = weak_scaling_efficiency(
            paper_model_cost("resnet50"), 16, 64, device("p100"), network("fdr")
        )
        assert 0 < e <= 1.0

    def test_efficiency_degrades_with_p(self):
        c = paper_model_cost("alexnet")
        e8 = weak_scaling_efficiency(c, 8, 64, device("p100"), network("10gbe"))
        e512 = weak_scaling_efficiency(c, 512, 64, device("p100"), network("10gbe"))
        assert e512 < e8


class TestEstimateProperties:
    def test_images_per_second_positive(self):
        est = estimate("resnet50", 90, 8192, 256, "p100", "fdr")
        assert est.images_per_second > 0

    def test_hours_minutes_consistent(self):
        est = estimate("alexnet", 100, 512, 8, "p100", "nvlink")
        assert est.total_hours * 60 == pytest.approx(est.total_minutes)

    def test_iterations_ceiling(self):
        est = estimate("resnet50", 90, 32768, 2048, "knl", "opa")
        assert est.iterations == math.ceil(IMAGENET_TRAIN_SIZE / 32768) * 90

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            estimate("resnet50", 0, 256, 8, "p100", "fdr")
