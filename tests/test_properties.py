"""Cross-stack property-based tests (hypothesis).

The repository's key invariants, fuzzed over their whole parameter domains
rather than spot-checked.  Heavier generators use small ``max_examples`` to
keep the suite fast; each example still covers a full train/communicate
cycle.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import SyncSGDConfig, train_sync_sgd
from repro.comm import allreduce_cost, run_cluster
from repro.comm.fabric import NetworkProfile
from repro.core import LARS, SGD, ConstantLR, GradualWarmup, PolynomialDecay, Trainer
from repro.data import gaussian_blobs
from repro.nn.models import mlp

_X, _Y = gaussian_blobs(64, num_classes=3, dim=5, seed=101)


class TestSequentialConsistencyProperty:
    """The headline invariant, fuzzed: any world size and batch size."""

    @given(world=st.integers(1, 5), batch=st.integers(5, 64),
           momentum=st.sampled_from([0.0, 0.9]))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cluster_equals_serial(self, world, batch, momentum):
        def builder():
            return mlp(5, [6], 3, seed=17)

        def opt_builder(params):
            return SGD(params, momentum=momentum, weight_decay=0.0005)

        model = builder()
        serial = Trainer(model, opt_builder(model.parameters()),
                         ConstantLR(0.05), shuffle_seed=17)
        serial.fit(_X, _Y, _X[:16], _Y[:16], epochs=1, batch_size=batch)

        config = SyncSGDConfig(world=world, epochs=1,
                               batch_size=max(batch, world), shuffle_seed=17)
        cluster = train_sync_sgd(builder, opt_builder, ConstantLR(0.05),
                                 _X, _Y, _X[:16], _Y[:16], config)
        if max(batch, world) == batch:  # identical batch streams
            ref = model.state_dict()
            for k in ref:
                assert np.allclose(cluster.final_state[k], ref[k], atol=1e-9)


class TestCollectiveProperties:
    @given(size=st.integers(1, 6), n=st.integers(1, 40),
           algorithm=st.sampled_from(["tree", "ring"]))
    @settings(max_examples=15, deadline=None)
    def test_allreduce_linearity(self, size, n, algorithm):
        """allreduce(a*x) == a * allreduce(x): summation is linear."""
        a = 3.5

        def worker_plain(comm):
            x = np.random.default_rng(comm.rank).normal(size=n)
            return comm.allreduce(x, algorithm=algorithm)

        def worker_scaled(comm):
            x = np.random.default_rng(comm.rank).normal(size=n)
            return comm.allreduce(a * x, algorithm=algorithm)

        plain, _ = run_cluster(size, worker_plain)
        scaled, _ = run_cluster(size, worker_scaled)
        assert np.allclose(scaled[0], a * plain[0], atol=1e-9)

    @given(p=st.integers(2, 4096), nbytes=st.integers(1, 10**9),
           algorithm=st.sampled_from(["tree", "ring", "rhd"]))
    @settings(max_examples=50, deadline=None)
    def test_cost_positive_and_monotone_in_bytes(self, p, nbytes, algorithm):
        prof = NetworkProfile(alpha=1e-6, beta=1e-9)
        c1 = allreduce_cost(p, nbytes, prof, algorithm)
        c2 = allreduce_cost(p, 2 * nbytes, prof, algorithm)
        assert 0 < c1 <= c2


class TestOptimizerProperties:
    @given(lr=st.floats(1e-4, 10.0), scale=st.floats(1e-3, 1e3))
    @settings(max_examples=30, deadline=None)
    def test_lars_step_norm_bound(self, lr, scale):
        """Without decay/momentum, ‖Δw‖ == lr·η·‖w‖ for any gradient scale."""
        from repro.nn import Parameter

        rng = np.random.default_rng(3)
        p = Parameter(rng.normal(size=6))
        p.grad[:] = rng.normal(size=6) * scale
        w_norm = np.linalg.norm(p.data)
        before = p.data.copy()
        LARS([p], trust_coefficient=0.01, momentum=0.0, weight_decay=0.0).step(lr)
        assert np.linalg.norm(before - p.data) == pytest.approx(
            lr * 0.01 * w_norm, rel=1e-9)

    @given(k=st.floats(0.1, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_sgd_update_linear_in_gradient(self, k):
        from repro.nn import Parameter

        def step(scale):
            p = Parameter(np.zeros(4))
            p.grad[:] = scale * np.array([1.0, -2.0, 3.0, -4.0])
            SGD([p], momentum=0.0, weight_decay=0.0).step(0.1)
            return -p.data

        assert np.allclose(step(k), k * step(1.0), rtol=1e-12)


class TestScheduleProperties:
    @given(base=st.floats(1e-4, 10.0), total=st.integers(2, 5000),
           power=st.floats(0.5, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_poly_bounded_and_monotone(self, base, total, power):
        s = PolynomialDecay(base, total, power=power)
        prev = s(0)
        assert prev == pytest.approx(base)
        for t in np.linspace(0, total, 20, dtype=int):
            cur = s(int(t))
            assert 0.0 <= cur <= base + 1e-12
            assert cur <= prev + 1e-12
            prev = cur

    @given(warmup=st.integers(1, 200), base=st.floats(1e-3, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_warmup_never_overshoots_peak(self, warmup, base):
        s = GradualWarmup(PolynomialDecay(base, 1000), warmup)
        peak = max(s(t) for t in range(warmup + 5))
        assert peak <= base * (1 + 1e-9)


class TestShardingProperty:
    @given(n=st.integers(1, 300), batch=st.integers(1, 64),
           world=st.integers(1, 9), epoch=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_epoch_coverage_exact(self, n, batch, world, epoch):
        """Across all ranks and all batches of an epoch, every example
        appears exactly once — the fixed-epoch bookkeeping every formula
        (I = E·n/B, Figure 6) rests on."""
        from repro.cluster import epoch_permutation, shard_batch

        order = epoch_permutation(n, epoch, seed=1)
        seen = []
        for lo in range(0, n, batch):
            gidx = order[lo : lo + batch]
            for r in range(world):
                seen.extend(shard_batch(gidx, world, r).tolist())
        assert sorted(seen) == list(range(n))
