"""Gradient compression tests: round-trips, error feedback, wire accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    NoCompression,
    OneBitCompressor,
    TopKCompressor,
    UniformQuantizer,
    compressed_allreduce,
)
from repro.comm import run_cluster


def grad(n=64, seed=0):
    return np.random.default_rng(seed).normal(size=n)


class TestNoCompression:
    def test_roundtrip_exact(self):
        g = grad()
        assert np.array_equal(NoCompression().roundtrip(g), g)

    def test_ratio_one(self):
        c = NoCompression()
        c.compress(grad())
        assert c.stats.ratio == 1.0


class TestOneBit:
    def test_reconstruction_is_scaled_signs(self):
        c = OneBitCompressor()
        g = grad()
        out = c.roundtrip(g)
        assert set(np.round(np.abs(out), 12)) == {np.round(np.abs(out[0]), 12)}
        assert np.array_equal(np.sign(out), np.sign(g))

    def test_error_feedback_accumulates(self):
        """The residual carries what the bit couldn't express; over repeated
        compressions of the same gradient the *average* reconstruction
        approaches the true gradient (the convergence mechanism)."""
        c = OneBitCompressor()
        g = grad(32, seed=1)
        recon = np.zeros_like(g)
        steps = 500
        for _ in range(steps):
            recon += c.roundtrip(g)
        assert np.allclose(recon / steps, g, atol=0.12)

    def test_compression_ratio_near_64x(self):
        c = OneBitCompressor()
        c.compress(grad(8000))
        # fp64 -> 1 bit: 64x, minus the 8-byte scale
        assert 50 < c.stats.ratio < 64.5

    def test_zero_gradient_safe(self):
        c = OneBitCompressor()
        out = c.roundtrip(np.zeros(16))
        assert np.allclose(out, 0.0)

    def test_payload_nbytes(self):
        c = OneBitCompressor()
        payload = c.compress(grad(64))
        assert c.payload_nbytes(payload) == 8 + 8  # 64 bits + scale


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        c = TopKCompressor(k=3)
        g = np.array([0.1, -5.0, 0.2, 3.0, -0.05, 1.0])
        out = c.roundtrip(g)
        assert set(np.nonzero(out)[0]) == {1, 3, 5}
        assert out[1] == -5.0

    def test_residual_returns_dropped_mass(self):
        c = TopKCompressor(k=2)
        g = np.array([1.0, 2.0, 3.0, 4.0])
        c.compress(g)
        out2 = c.roundtrip(np.zeros(4))
        # second round transmits the previously dropped 1.0 and 2.0
        assert np.allclose(out2, [1.0, 2.0, 0.0, 0.0])

    def test_k_larger_than_tensor(self):
        c = TopKCompressor(k=100)
        g = grad(10)
        assert np.allclose(c.roundtrip(g), g)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKCompressor(0)

    @given(k=st.integers(1, 32), n=st.integers(1, 64))
    @settings(max_examples=25, deadline=None)
    def test_sparsity_property(self, k, n):
        c = TopKCompressor(k=k)
        out = c.roundtrip(grad(n, seed=k))
        assert np.count_nonzero(out) <= min(k, n)


class TestUniformQuantizer:
    def test_8bit_error_bounded_by_step(self):
        c = UniformQuantizer(bits=8)
        g = grad(128, seed=2)
        out = c.roundtrip(g)
        step = (g.max() - g.min()) / 255
        assert np.abs(out - g).max() <= step / 2 + 1e-12

    def test_16bit_nearly_exact(self):
        c = UniformQuantizer(bits=16)
        g = grad(64, seed=3)
        assert np.allclose(c.roundtrip(g), g, atol=1e-3)

    def test_constant_tensor(self):
        c = UniformQuantizer(bits=4)
        out = c.roundtrip(np.full(8, 3.3))
        assert np.allclose(out, 3.3)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            UniformQuantizer(0)
        with pytest.raises(ValueError):
            UniformQuantizer(17)

    @given(bits=st.integers(2, 12))
    @settings(max_examples=15, deadline=None)
    def test_monotone_fidelity_in_bits(self, bits):
        g = grad(100, seed=9)
        coarse = UniformQuantizer(bits=bits).roundtrip(g)
        fine = UniformQuantizer(bits=bits + 2).roundtrip(g)
        assert np.abs(fine - g).max() <= np.abs(coarse - g).max() + 1e-12


class TestCompressedAllreduce:
    def test_identity_compressor_matches_allreduce(self):
        def worker(comm):
            g = grad(20, seed=comm.rank)
            return compressed_allreduce(comm, g, NoCompression())

        results, _ = run_cluster(3, worker)
        expected = sum(grad(20, seed=r) for r in range(3))
        for r in results:
            assert np.allclose(r, expected, atol=1e-12)

    def test_bitwise_identical_across_ranks(self):
        def worker(comm):
            return compressed_allreduce(
                comm, grad(33, seed=comm.rank), OneBitCompressor()
            )

        results, _ = run_cluster(4, worker)
        for r in results[1:]:
            assert np.array_equal(r, results[0])

    def test_one_bit_moves_fewer_bytes(self):
        def make_worker(compressor_cls):
            def worker(comm):
                compressed_allreduce(comm, grad(4096, seed=comm.rank),
                                     compressor_cls())

            return worker

        _, fabric_full = run_cluster(4, make_worker(NoCompression))
        _, fabric_1bit = run_cluster(4, make_worker(OneBitCompressor))
        assert fabric_1bit.stats.bytes < fabric_full.stats.bytes / 20

    def test_shape_preserved(self):
        def worker(comm):
            g = grad(24, seed=comm.rank).reshape(4, 6)
            return compressed_allreduce(comm, g, UniformQuantizer(8))

        results, _ = run_cluster(2, worker)
        assert results[0].shape == (4, 6)


class TestCompressedSyncSGD:
    """compressor_factory integrated into the sync-SGD trainer."""

    def run(self, factory):
        from repro.cluster import SyncSGDConfig, train_sync_sgd
        from repro.core import SGD, ConstantLR
        from repro.data import gaussian_blobs
        from repro.nn.models import mlp

        x, y = gaussian_blobs(96, num_classes=3, dim=6, seed=111)

        def builder():
            return mlp(6, [8], 3, seed=12)

        config = SyncSGDConfig(world=4, epochs=4, batch_size=32,
                               compressor_factory=factory, shuffle_seed=7)
        return train_sync_sgd(builder,
                              lambda p: SGD(p, momentum=0.9, weight_decay=0.0),
                              ConstantLR(0.05), x, y, x[:32], y[:32], config)

    def test_identity_compressor_matches_plain(self):
        plain = self.run(None)
        identity = self.run(NoCompression)
        for k in plain.final_state:
            assert np.allclose(identity.final_state[k], plain.final_state[k],
                               atol=1e-12)

    def test_one_bit_trains_and_saves_bytes(self):
        plain = self.run(None)
        onebit = self.run(OneBitCompressor)
        assert onebit.comm_bytes < plain.comm_bytes / 5
        assert onebit.final_test_accuracy > 0.6

    def test_compression_requires_allreduce_mode(self):
        from repro.cluster import SyncSGDConfig

        with pytest.raises(ValueError):
            SyncSGDConfig(world=2, epochs=1, batch_size=8, mode="master",
                          compressor_factory=OneBitCompressor)
