"""Asynchronous parameter-server baseline tests."""

import numpy as np
import pytest

from repro.cluster import ParamServerConfig, ParamServerResult, train_param_server
from repro.comm import NetworkProfile
from repro.core import SGD, ConstantLR
from repro.nn.models import mlp

_RNG = np.random.default_rng(21)
_CENTRES = _RNG.normal(size=(3, 6)) * 3
_Y = _RNG.integers(0, 3, size=90)
_X = _CENTRES[_Y] + _RNG.normal(size=(90, 6)) * 0.5


def builder():
    return mlp(6, [8], 3, seed=2)


def sgd_builder(params):
    return SGD(params, momentum=0.9, weight_decay=0.0)


def run(workers=2, updates=60, lr=0.05, jitter=0.2, seed=0, **kw):
    config = ParamServerConfig(workers=workers, total_updates=updates,
                               batch_size=16, compute_time=1.0,
                               compute_jitter=jitter, seed=seed, **kw)
    return train_param_server(builder, sgd_builder, ConstantLR(lr),
                              _X, _Y, _X[:30], _Y[:30], config)


def test_applies_requested_updates():
    res = run(updates=40)
    assert res.updates_applied == 40


def test_learns_toy_problem():
    res = run(workers=2, updates=120)
    assert res.final_test_accuracy > 0.7


def test_single_worker_has_zero_staleness():
    """With one worker the scheme degenerates to serial SGD."""
    res = run(workers=1, updates=30)
    assert res.max_staleness == 0


def test_staleness_grows_with_workers():
    """The async pathology: more workers -> staler gradients (the reason the
    paper chooses synchronous SGD at scale)."""
    s2 = run(workers=2, updates=100).mean_staleness
    s8 = run(workers=8, updates=100).mean_staleness
    assert s8 > s2


def test_mean_staleness_roughly_workers_minus_one():
    """FCFS round-robin: each gradient is ~(P-1) updates stale."""
    res = run(workers=4, updates=200, jitter=0.05)
    assert 2.0 < res.mean_staleness < 4.5


def test_deterministic_given_seed():
    a = run(seed=5, updates=50)
    b = run(seed=5, updates=50)
    assert a.staleness == b.staleness
    assert a.final_test_accuracy == b.final_test_accuracy


def test_simulated_time_advances():
    res = run(updates=50)
    assert res.simulated_seconds > 0


def test_network_profile_adds_transfer_time():
    fast = run(updates=20, seed=1).simulated_seconds
    slow = run(updates=20, seed=1,
               profile=NetworkProfile(alpha=0.5, beta=0.0)).simulated_seconds
    assert slow > fast


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_divergence_detected_with_huge_lr():
    res = run(lr=1e6, updates=100)
    assert res.diverged
    assert res.final_test_accuracy == 0.0


def test_accuracy_curve_recorded():
    res = run(updates=40, eval_every=10)
    assert len(res.accuracy_curve) == 4
    assert all(t >= 0 for _, t, _ in res.accuracy_curve)


def test_config_validation():
    with pytest.raises(ValueError):
        ParamServerConfig(workers=0, total_updates=10, batch_size=4)
    with pytest.raises(ValueError):
        ParamServerConfig(workers=2, total_updates=10, batch_size=4,
                          compute_jitter=1.5)


def test_empty_result_properties():
    res = ParamServerResult()
    assert res.mean_staleness == 0.0
    assert res.max_staleness == 0
