"""Checkpoint-restart on the simulated cluster: resumed == uninterrupted."""

import numpy as np
import pytest

from repro.cluster import SyncSGDConfig, train_sync_sgd
from repro.core import LARS, SGD, ConstantLR
from repro.data import gaussian_blobs
from repro.nn.models import mlp

_X, _Y = gaussian_blobs(96, num_classes=3, dim=6, seed=91)
SEED = 33


def builder():
    return mlp(6, [8], 3, seed=SEED)


def sgd_builder(params):
    return SGD(params, momentum=0.9, weight_decay=0.0005)


def lars_builder(params):
    return LARS(params, trust_coefficient=0.02, momentum=0.9, weight_decay=0.0005)


def run(opt_builder, epochs, start_epoch=0, init_model=None, init_opt=None):
    config = SyncSGDConfig(world=2, epochs=epochs, batch_size=32,
                           shuffle_seed=SEED, start_epoch=start_epoch,
                           initial_model_state=init_model,
                           initial_optimizer_state=init_opt)
    return train_sync_sgd(builder, opt_builder, ConstantLR(0.1),
                          _X, _Y, _X[:32], _Y[:32], config)


@pytest.mark.parametrize("opt_builder", [sgd_builder, lars_builder],
                         ids=["sgd", "lars"])
def test_resume_matches_uninterrupted(opt_builder):
    straight = run(opt_builder, epochs=4)
    first_half = run(opt_builder, epochs=2)
    resumed = run(opt_builder, epochs=4, start_epoch=2,
                  init_model=first_half.final_state,
                  init_opt=first_half.final_optimizer_state)
    for k in straight.final_state:
        assert np.allclose(resumed.final_state[k], straight.final_state[k],
                           atol=1e-12), k


def test_resume_without_optimizer_state_differs():
    """Momentum matters: dropping the optimiser state changes the result."""
    straight = run(sgd_builder, epochs=4)
    first_half = run(sgd_builder, epochs=2)
    cold = run(sgd_builder, epochs=4, start_epoch=2,
               init_model=first_half.final_state)
    diff = max(np.abs(cold.final_state[k] - straight.final_state[k]).max()
               for k in straight.final_state)
    assert diff > 1e-9


def test_resume_history_covers_remaining_epochs():
    first_half = run(sgd_builder, epochs=2)
    resumed = run(sgd_builder, epochs=5, start_epoch=2,
                  init_model=first_half.final_state,
                  init_opt=first_half.final_optimizer_state)
    assert [h.epoch for h in resumed.history] == [3, 4, 5]


def test_invalid_start_epoch():
    with pytest.raises(ValueError):
        SyncSGDConfig(world=2, epochs=3, batch_size=8, start_epoch=3)


def test_roundtrip_through_npz(tmp_path):
    """The cluster snapshot survives util.checkpoint serialisation."""
    from repro.util import load_checkpoint, save_checkpoint

    first_half = run(sgd_builder, epochs=2)
    # materialise into a model+optimizer, save, reload
    model = builder()
    model.load_state_dict(first_half.final_state)
    opt = sgd_builder(model.parameters())
    opt.load_state_dict(first_half.final_optimizer_state)
    path = tmp_path / "cluster.npz"
    save_checkpoint(path, model, opt, iteration=6)

    model2 = builder()
    opt2 = sgd_builder(model2.parameters())
    assert load_checkpoint(path, model2, opt2) == 6

    resumed = run(sgd_builder, epochs=4, start_epoch=2,
                  init_model=model2.state_dict(),
                  init_opt=opt2.state_dict())
    straight = run(sgd_builder, epochs=4)
    for k in straight.final_state:
        assert np.allclose(resumed.final_state[k], straight.final_state[k],
                           atol=1e-12)
