"""Sharding and gradient-packing tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    epoch_permutation,
    flatten_grads,
    flatten_params,
    shard_batch,
    shard_sizes,
    shard_slice,
    unflatten_grads,
    unflatten_params,
)
from repro.nn import Parameter


class TestSharding:
    def test_even_split(self):
        assert shard_sizes(8, 4) == [2, 2, 2, 2]

    def test_uneven_split_front_loaded(self):
        assert shard_sizes(10, 4) == [3, 3, 2, 2]

    def test_sizes_sum_to_batch(self):
        assert sum(shard_sizes(17, 5)) == 17

    @given(batch=st.integers(0, 200), world=st.integers(1, 17))
    @settings(max_examples=50, deadline=None)
    def test_shards_partition_batch(self, batch, world):
        """Shards are disjoint, ordered, and cover every index exactly once."""
        indices = np.arange(batch)
        parts = [shard_batch(indices, world, r) for r in range(world)]
        assert np.array_equal(np.concatenate(parts) if parts else indices,
                              indices)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_slice_matches_shard_batch(self):
        indices = np.arange(11) * 7
        for r in range(3):
            sl = shard_slice(11, 3, r)
            assert np.array_equal(indices[sl], shard_batch(indices, 3, r))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            shard_sizes(4, 0)
        with pytest.raises(ValueError):
            shard_slice(4, 2, 5)

    def test_epoch_permutation_deterministic(self):
        a = epoch_permutation(100, 3, seed=5)
        b = epoch_permutation(100, 3, seed=5)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, epoch_permutation(100, 4, seed=5))

    def test_epoch_permutation_matches_serial_trainer(self):
        """The cluster and the serial Trainer must shuffle identically."""
        from repro.core import SGD, Trainer
        from repro.nn.models import mlp

        m = mlp(4, [4], 2)
        t = Trainer(m, SGD(m.parameters()), 0.1, shuffle_seed=9)
        assert np.array_equal(t.epoch_permutation(50, 2), epoch_permutation(50, 2, 9))


class TestPacking:
    def make_params(self):
        p1 = Parameter(np.arange(6, dtype=float).reshape(2, 3), name="a")
        p2 = Parameter(np.arange(4, dtype=float), name="b")
        p1.grad[:] = 1.0
        p2.grad[:] = 2.0
        return [p1, p2]

    def test_flatten_grads_order_and_values(self):
        flat = flatten_grads(self.make_params())
        assert np.array_equal(flat, np.concatenate([np.ones(6), 2 * np.ones(4)]))

    def test_unflatten_grads_roundtrip(self):
        params = self.make_params()
        flat = flatten_grads(params) * 3
        unflatten_grads(flat, params)
        assert np.all(params[0].grad == 3.0)
        assert np.all(params[1].grad == 6.0)

    def test_flatten_params_roundtrip(self):
        params = self.make_params()
        flat = flatten_params(params)
        flat2 = flat + 10
        unflatten_params(flat2, params)
        assert params[0].data[0, 0] == 10.0

    def test_shape_preserved_on_unflatten(self):
        params = self.make_params()
        unflatten_grads(np.zeros(10), params)
        assert params[0].grad.shape == (2, 3)

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            unflatten_grads(np.zeros(3), self.make_params())

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            flatten_grads([])
