"""Overlapped bucketed gradient exchange, end to end through sync-SGD.

Three families of invariants:

* **Parity** — bucketing and overlap are pure schedule transformations.
  For partition-invariant algorithms (tree, rhd) the final weights are
  *bitwise identical* to the monolithic exchange at any bucket size; ring
  reassigns chunk ownership by buffer position, so it agrees to
  summation-reassociation tolerance only (documented caveat).
* **Speed** — on a bandwidth-heavy α-β profile with a many-tensor model
  (the ResNet regime), overlap cuts simulated step time ≥25% at P=8 —
  the acceptance bar — and the exposed/busy accounting shows most comm
  hidden.
* **Faults** — an armed fault plan prices each bucket's messages
  individually: more buckets, more fault draws, values still exact.
"""

import numpy as np
import pytest

from repro.cluster import SyncSGDConfig, train_sync_sgd
from repro.comm import NetworkProfile
from repro.core import SGD, ConstantLR
from repro.faults import FaultPlan
from repro.nn.models import micro_resnet, mlp

SEED = 13
_RNG = np.random.default_rng(7)
_CENTRES = _RNG.normal(size=(3, 8)) * 2.5
_Y = _RNG.integers(0, 3, size=64)
_X = _CENTRES[_Y] + _RNG.normal(size=(64, 8)) * 0.5


def _mlp_builder():
    return mlp(8, [10], 3, seed=SEED)


def _sgd(params):
    return SGD(params, momentum=0.9, weight_decay=0.0005)


def _run(world=4, algorithm="tree", bucket_bytes=None, overlap=False,
         fault_plan=None, profile=None, compute_time=None, epochs=2):
    config = SyncSGDConfig(
        world=world, epochs=epochs, batch_size=32, algorithm=algorithm,
        bucket_bytes=bucket_bytes, overlap=overlap, fault_plan=fault_plan,
        profile=profile, compute_time=compute_time, shuffle_seed=SEED,
        recv_timeout=10.0 if fault_plan is not None else None,
    )
    return train_sync_sgd(_mlp_builder, _sgd, ConstantLR(0.1),
                          _X, _Y, _X[:16], _Y[:16], config)


def _max_diff(state_a, state_b):
    return max(np.abs(state_a[k] - state_b[k]).max() for k in state_a)


class TestParity:
    @pytest.mark.parametrize("algorithm", ["tree", "rhd"])
    @pytest.mark.parametrize("bucket_bytes", [64, 1024, None])
    def test_overlap_bitwise_identical_partition_invariant(
        self, algorithm, bucket_bytes
    ):
        mono = _run(algorithm=algorithm)
        over = _run(algorithm=algorithm, bucket_bytes=bucket_bytes,
                    overlap=True)
        assert _max_diff(mono.final_state, over.final_state) == 0.0

    def test_ring_agrees_to_reassociation_tolerance(self):
        mono = _run(algorithm="ring")
        over = _run(algorithm="ring", bucket_bytes=256, overlap=True)
        assert _max_diff(mono.final_state, over.final_state) < 1e-12

    def test_blocking_bucketed_bitwise_identical(self):
        mono = _run(algorithm="tree")
        bucketed = _run(algorithm="tree", bucket_bytes=128, overlap=False)
        assert _max_diff(mono.final_state, bucketed.final_state) == 0.0

    def test_overlap_accuracy_unchanged(self):
        mono = _run()
        over = _run(bucket_bytes=256, overlap=True)
        assert over.final_test_accuracy == mono.final_test_accuracy


def _resnet_run(overlap: bool, world: int = 8):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 3, 8, 8))
    y = rng.integers(0, 10, size=32)
    config = SyncSGDConfig(
        world=world, epochs=1, batch_size=32, algorithm="tree",
        profile=NetworkProfile(alpha=1e-5, beta=1e-8),
        compute_time=lambda k: 2.5e-3 * k,
        bucket_bytes=(1 << 14) if overlap else None, overlap=overlap,
        shuffle_seed=0,
    )
    return train_sync_sgd(
        lambda: micro_resnet(num_classes=10, seed=1),
        lambda p: SGD(p, momentum=0.9), ConstantLR(0.1),
        x, y, x[:8], y[:8], config,
    )


class TestOverlapSpeedup:
    def test_quarter_step_time_reduction_at_p8(self):
        """The acceptance bar: ≥25% simulated-time reduction for the
        micro-ResNet proxy at P=8 on a non-trivial α-β profile."""
        mono = _resnet_run(overlap=False)
        over = _resnet_run(overlap=True)
        reduction = 1.0 - over.simulated_seconds / mono.simulated_seconds
        assert reduction >= 0.25

    def test_exposed_vs_busy_accounting(self):
        mono = _resnet_run(overlap=False)
        over = _resnet_run(overlap=True)
        # monolithic: every comm second is exposed
        assert mono.exposed_comm_seconds == pytest.approx(
            mono.comm_busy_seconds
        )
        assert mono.overlap_efficiency == pytest.approx(0.0)
        # overlapped: most comm hides under backward
        assert over.exposed_comm_seconds < over.comm_busy_seconds
        assert over.overlap_efficiency > 0.5
        assert over.exposed_comm_seconds < mono.exposed_comm_seconds


class TestFaultsPerBucket:
    def test_fault_plan_sees_per_bucket_messages(self):
        """Splitting the exchange into buckets multiplies the messages an
        armed fault plan draws on — each bucket's wire traffic is priced
        individually (the regression this PR fixes pinned fault decisions
        to one draw per step)."""
        plan = FaultPlan(seed=5, delay_prob=0.99, delay_seconds=1e-6)
        mono = _run(fault_plan=plan)
        bucketed = _run(fault_plan=FaultPlan(seed=5, delay_prob=0.99,
                                             delay_seconds=1e-6),
                        bucket_bytes=128, overlap=True)
        assert mono.fault_stats is not None
        assert bucketed.fault_stats is not None
        # every posted message is delayed; bucketing posts strictly more
        assert bucketed.fault_stats.messages_delayed > \
            mono.fault_stats.messages_delayed
        assert bucketed.messages > mono.messages

    def test_values_exact_under_message_loss(self):
        clean = _run(bucket_bytes=128, overlap=True)
        lossy = _run(bucket_bytes=128, overlap=True,
                     fault_plan=FaultPlan(seed=2, drop_prob=0.1))
        assert _max_diff(clean.final_state, lossy.final_state) == 0.0
        assert lossy.simulated_seconds > clean.simulated_seconds
