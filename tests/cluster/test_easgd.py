"""Elastic Averaging SGD tests."""

import pytest

from repro.cluster import EASGDConfig, train_easgd
from repro.comm import NetworkProfile
from repro.core import SGD, ConstantLR
from repro.data import gaussian_blobs
from repro.nn.models import mlp

_X, _Y = gaussian_blobs(180, num_classes=3, dim=6, seed=71)
_XT, _YT = _X[:60], _Y[:60]


def builder():
    return mlp(6, [10], 3, seed=9)


def opt_builder(params):
    return SGD(params, momentum=0.9, weight_decay=0.0)


def run(world=3, epochs=6, alpha=0.1, tau=4, lr=0.05, seed=0, profile=None):
    config = EASGDConfig(world=world, epochs=epochs, batch_size=16,
                         alpha=alpha, tau=tau, shuffle_seed=seed,
                         profile=profile)
    return train_easgd(builder, opt_builder, ConstantLR(lr),
                       _X, _Y, _XT, _YT, config)


def test_center_learns():
    res = run()
    assert res.center_accuracy > 0.8


def test_workers_also_learn():
    res = run()
    assert all(a > 0.7 for a in res.worker_accuracies)


def test_rounds_counted():
    res = run()
    assert res.rounds > 0


def test_deterministic():
    a, b = run(seed=4), run(seed=4)
    assert a.center_accuracy == b.center_accuracy
    assert a.consensus_distance == pytest.approx(b.consensus_distance)


def test_stronger_elasticity_tightens_consensus():
    """Larger alpha pulls workers closer to the center."""
    loose = run(alpha=0.02, seed=2)
    tight = run(alpha=0.3, seed=2)
    assert tight.consensus_distance < loose.consensus_distance


def test_larger_tau_fewer_messages():
    """Communication period tau is EASGD's bandwidth knob."""
    frequent = run(tau=1, seed=3)
    rare = run(tau=8, seed=3)
    assert rare.messages < frequent.messages


def test_simulated_time_with_profile():
    res = run(profile=NetworkProfile(alpha=1e-4, beta=1e-9))
    assert res.simulated_seconds > 0


def test_uneven_shards_supported():
    """180 examples over 4 workers: shard sizes differ, protocol survives."""
    res = run(world=5, epochs=2)
    assert len(res.worker_accuracies) == 4


def test_config_validation():
    with pytest.raises(ValueError):
        EASGDConfig(world=1, epochs=1, batch_size=8)
    with pytest.raises(ValueError):
        EASGDConfig(world=3, epochs=1, batch_size=8, alpha=0.0)
    with pytest.raises(ValueError):
        EASGDConfig(world=12, epochs=1, batch_size=8, alpha=0.1)  # alpha*P >= 1
    with pytest.raises(ValueError):
        EASGDConfig(world=3, epochs=1, batch_size=8, tau=0)
