"""Synchronous data-parallel SGD: the sequential-consistency invariant.

The paper's central systems claim is that synchronous SGD scales *because*
it is sequentially consistent — P workers on shards of a batch must behave
exactly like one worker on the full batch.  These tests verify that claim
holds in this implementation for SGD, momentum SGD and LARS, in both
allreduce and master-worker modes, across rank counts (including ranks that
don't divide the batch).
"""

import numpy as np
import pytest

from repro.cluster import SyncSGDConfig, train_sync_sgd
from repro.comm import NetworkProfile
from repro.core import LARS, SGD, ConstantLR, PolynomialDecay, Trainer
from repro.nn.models import micro_resnet, mlp

# shared toy dataset ---------------------------------------------------------
_RNG = np.random.default_rng(7)
_CENTRES = _RNG.normal(size=(3, 8)) * 2.5
_Y = _RNG.integers(0, 3, size=96)
_X = _CENTRES[_Y] + _RNG.normal(size=(96, 8)) * 0.5
_YT = _RNG.integers(0, 3, size=30)
_XT = _CENTRES[_YT] + _RNG.normal(size=(30, 8)) * 0.5

SEED = 13


def model_builder():
    return mlp(8, [10], 3, seed=SEED)


def sgd_builder(params):
    return SGD(params, momentum=0.9, weight_decay=0.0005)


def lars_builder(params):
    return LARS(params, trust_coefficient=0.02, momentum=0.9, weight_decay=0.0005)


def serial_reference(opt_builder, epochs=2, batch=32, lr=0.1):
    model = model_builder()
    trainer = Trainer(model, opt_builder(model.parameters()), ConstantLR(lr),
                      shuffle_seed=SEED)
    result = trainer.fit(_X, _Y, _XT, _YT, epochs=epochs, batch_size=batch)
    return model.state_dict(), result


def cluster_run(opt_builder, world, mode="allreduce", algorithm="tree",
                epochs=2, batch=32, lr=0.1):
    config = SyncSGDConfig(world=world, epochs=epochs, batch_size=batch,
                           mode=mode, algorithm=algorithm, shuffle_seed=SEED)
    return train_sync_sgd(model_builder, opt_builder, ConstantLR(lr),
                          _X, _Y, _XT, _YT, config)


def max_param_diff(state_a, state_b):
    return max(np.abs(state_a[k] - state_b[k]).max() for k in state_a)


class TestSequentialConsistency:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_sgd_matches_serial(self, world):
        ref_state, _ = serial_reference(sgd_builder)
        cluster = cluster_run(sgd_builder, world)
        assert max_param_diff(ref_state, cluster.final_state) < 1e-9

    @pytest.mark.parametrize("world", [2, 3])
    def test_world_not_dividing_batch(self, world):
        """Uneven shards (32 % 3 != 0) still reproduce the global-batch mean."""
        ref_state, _ = serial_reference(sgd_builder)
        cluster = cluster_run(sgd_builder, world)
        assert max_param_diff(ref_state, cluster.final_state) < 1e-9

    @pytest.mark.parametrize("algorithm", ["tree", "ring", "rhd"])
    def test_all_allreduce_algorithms(self, algorithm):
        ref_state, _ = serial_reference(sgd_builder)
        cluster = cluster_run(sgd_builder, 4, algorithm=algorithm)
        assert max_param_diff(ref_state, cluster.final_state) < 1e-9

    def test_master_mode_matches_serial(self):
        ref_state, _ = serial_reference(sgd_builder)
        cluster = cluster_run(sgd_builder, 4, mode="master")
        assert max_param_diff(ref_state, cluster.final_state) < 1e-9

    def test_lars_matches_serial(self):
        """LARS is *also* sequentially consistent: trust ratios are computed
        from allreduced gradients, identical on every rank."""
        ref_state, _ = serial_reference(lars_builder)
        cluster = cluster_run(lars_builder, 4)
        assert max_param_diff(ref_state, cluster.final_state) < 1e-9

    def test_lars_master_mode(self):
        ref_state, _ = serial_reference(lars_builder)
        cluster = cluster_run(lars_builder, 2, mode="master")
        assert max_param_diff(ref_state, cluster.final_state) < 1e-9

    def test_poly_schedule_consistency(self):
        """Iteration-indexed schedules tick identically in serial and
        parallel runs."""
        sched = PolynomialDecay(0.2, 6, power=2)

        model = model_builder()
        trainer = Trainer(model, sgd_builder(model.parameters()), sched,
                          shuffle_seed=SEED)
        trainer.fit(_X, _Y, _XT, _YT, epochs=2, batch_size=32)

        config = SyncSGDConfig(world=4, epochs=2, batch_size=32, shuffle_seed=SEED)
        cluster = train_sync_sgd(model_builder, sgd_builder, sched,
                                 _X, _Y, _XT, _YT, config)
        assert max_param_diff(model.state_dict(), cluster.final_state) < 1e-9

    def test_batchnorm_breaks_exact_equivalence(self):
        """Documented caveat: per-shard BN statistics (as in the paper's
        stacks) make P>1 differ from serial — the exception that proves the
        equivalence above is not vacuous."""

        def bn_builder():
            return mlp(8, [10], 3, batch_norm=True, seed=SEED)

        model = bn_builder()
        trainer = Trainer(model, sgd_builder(model.parameters()),
                          ConstantLR(0.1), shuffle_seed=SEED)
        trainer.fit(_X, _Y, _XT, _YT, epochs=1, batch_size=32)

        config = SyncSGDConfig(world=4, epochs=1, batch_size=32, shuffle_seed=SEED)
        cluster = train_sync_sgd(bn_builder, sgd_builder, ConstantLR(0.1),
                                 _X, _Y, _XT, _YT, config)
        assert max_param_diff(model.state_dict(), cluster.final_state) > 1e-9


class TestClusterMechanics:
    def test_history_recorded_per_epoch(self):
        cluster = cluster_run(sgd_builder, 2, epochs=3)
        assert len(cluster.history) == 3
        assert cluster.history[-1].epoch == 3

    def test_learning_happens(self):
        cluster = cluster_run(sgd_builder, 4, epochs=8)
        assert cluster.final_test_accuracy > 0.6

    def test_simulated_time_grows_with_network_cost(self):
        slow = NetworkProfile(alpha=1e-3, beta=1e-8, name="slow")
        config_free = SyncSGDConfig(world=4, epochs=1, batch_size=32, shuffle_seed=SEED)
        config_slow = SyncSGDConfig(world=4, epochs=1, batch_size=32,
                                    profile=slow, shuffle_seed=SEED)
        free = train_sync_sgd(model_builder, sgd_builder, 0.1, _X, _Y, _XT, _YT, config_free)
        cost = train_sync_sgd(model_builder, sgd_builder, 0.1, _X, _Y, _XT, _YT, config_slow)
        assert free.simulated_seconds == 0.0
        assert cost.simulated_seconds > 0.0

    def test_compute_time_included(self):
        config = SyncSGDConfig(world=2, epochs=1, batch_size=32,
                               compute_time=lambda k: 0.01 * k, shuffle_seed=SEED)
        res = train_sync_sgd(model_builder, sgd_builder, 0.1, _X, _Y, _XT, _YT, config)
        # 96 examples, 3 batches, 16 local examples per batch per rank
        assert res.simulated_seconds == pytest.approx(0.01 * 16 * 3, rel=0.01)

    def test_larger_batch_fewer_messages(self):
        """Figure 9 in miniature: message count scales with iteration count."""
        small = cluster_run(sgd_builder, 4, batch=16, epochs=1)
        large = cluster_run(sgd_builder, 4, batch=48, epochs=1)
        assert large.messages < small.messages

    def test_time_curve_monotone(self):
        config = SyncSGDConfig(world=2, epochs=3, batch_size=32,
                               profile=NetworkProfile(1e-4, 1e-9), shuffle_seed=SEED)
        res = train_sync_sgd(model_builder, sgd_builder, 0.1, _X, _Y, _XT, _YT, config)
        times = [t for _, t, _ in res.time_curve]
        assert all(t2 >= t1 for t1, t2 in zip(times, times[1:]))

    def test_time_to_accuracy(self):
        res = cluster_run(sgd_builder, 2, epochs=8)
        tta = res.time_to_accuracy(0.5)
        assert tta is not None or res.final_test_accuracy < 0.5

    def test_eval_every_skips_epochs(self):
        config = SyncSGDConfig(world=2, epochs=4, batch_size=32,
                               eval_every=2, shuffle_seed=SEED)
        res = train_sync_sgd(model_builder, sgd_builder, 0.1, _X, _Y, _XT, _YT, config)
        evals = [r.test_accuracy for r in res.history]
        assert np.isnan(evals[0]) and not np.isnan(evals[1])

    def test_micro_resnet_trains_on_cluster(self):
        """End-to-end smoke: a conv/BN/residual model across 2 ranks."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(24, 3, 8, 8))
        y = rng.integers(0, 3, size=24)

        def builder():
            return micro_resnet(num_classes=3, width=4, seed=1)

        config = SyncSGDConfig(world=2, epochs=1, batch_size=8, shuffle_seed=1)
        res = train_sync_sgd(builder, sgd_builder, 0.05, x, y, x[:8], y[:8], config)
        assert np.isfinite(res.history[-1].train_loss)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyncSGDConfig(world=0, epochs=1, batch_size=4)
        with pytest.raises(ValueError):
            SyncSGDConfig(world=2, epochs=1, batch_size=4, mode="gossip")
        with pytest.raises(ValueError):
            SyncSGDConfig(world=8, epochs=1, batch_size=4)
        with pytest.raises(ValueError):
            SyncSGDConfig(world=2, epochs=1, batch_size=4, algorithm="nccl")
        with pytest.raises(ValueError):
            SyncSGDConfig(world=3, epochs=1, batch_size=6, algorithm="rhd")


class TestStaticMemory:
    """static_memory=True binds a per-rank arena; results must be bitwise
    identical to the eager cluster run (and hence to the serial reference)."""

    def static_run(self, world, epochs=2, batch=32, lr=0.1):
        config = SyncSGDConfig(world=world, epochs=epochs, batch_size=batch,
                               shuffle_seed=SEED, static_memory=True)
        return train_sync_sgd(model_builder, sgd_builder, ConstantLR(lr),
                              _X, _Y, _XT, _YT, config)

    @pytest.mark.parametrize("world", [1, 2])
    def test_matches_eager_cluster_bitwise(self, world):
        eager = cluster_run(sgd_builder, world)
        planned = self.static_run(world)
        assert max_param_diff(eager.final_state, planned.final_state) == 0.0

    def test_matches_serial_reference(self):
        ref_state, _ = serial_reference(sgd_builder)
        planned = self.static_run(2)
        assert max_param_diff(ref_state, planned.final_state) < 1e-9
