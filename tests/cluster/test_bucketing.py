"""BucketPlan partitioning, persistent buffers, and gradient-ready hooks."""

import numpy as np
import pytest

from repro.cluster.bucketing import Bucket, BucketedExchange, BucketPlan
from repro.comm import run_cluster
from repro.nn.models import mlp
from repro.perfmodel.overlap import greedy_partition


class TestGreedyPartition:
    def test_flush_on_fill(self):
        # accumulate until the running total reaches the target, then cut
        assert greedy_partition([100] * 10, 250) == [
            [100, 100, 100], [100, 100, 100], [100, 100, 100], [100]
        ]

    def test_single_bucket_when_target_large(self):
        assert greedy_partition([10, 20, 30], 10_000) == [[10, 20, 30]]

    def test_oversized_tensor_cannot_split(self):
        """A tensor larger than the target lands whole in its bucket — the
        granularity floor is the tensor, not the byte count (the documented
        reason one huge FC layer defeats overlap)."""
        groups = greedy_partition([10, 1000, 10], 100)
        assert groups == [[10, 1000], [10]]

    def test_empty(self):
        assert greedy_partition([], 100) == []


class TestBucketPlan:
    def _params(self):
        return mlp(8, [16, 16], 3, seed=0).parameters()

    def test_reverse_backward_order(self):
        params = self._params()
        plan = BucketPlan(params, bucket_bytes=1)  # one bucket per tensor
        assert len(plan) == len(params)
        # bucket 0 holds the *last* parameter — the first gradient backward
        # finalises
        assert plan.buckets[0].params[0] is params[-1]
        assert plan.buckets[-1].params[0] is params[0]

    def test_covers_every_parameter_once(self):
        params = self._params()
        plan = BucketPlan(params, bucket_bytes=256)
        planned = [p for b in plan.buckets for p in b.params]
        assert len(planned) == len(params)
        assert {id(p) for p in planned} == {id(p) for p in params}
        assert plan.total_size == sum(p.size for p in params)
        assert sum(plan.bucket_nbytes) == sum(p.data.nbytes for p in params)

    def test_bucket_of_maps_param_to_bucket(self):
        params = self._params()
        plan = BucketPlan(params, bucket_bytes=256)
        for b in plan.buckets:
            for p in b.params:
                assert plan.bucket_of[id(p)] == b.index

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            BucketPlan([])

    def test_from_model_default_bytes(self):
        plan = BucketPlan.from_model(mlp(8, [16], 3, seed=0))
        assert len(plan) >= 1


class TestBucketBuffers:
    def test_pack_unpack_roundtrip(self):
        params = mlp(8, [16], 3, seed=0).parameters()
        rng = np.random.default_rng(0)
        for p in params:
            p.grad = rng.normal(size=p.data.shape)
        bucket = Bucket(0, params)
        flat = bucket.pack(weight=0.5)
        expected = np.concatenate([p.grad.reshape(-1) for p in params]) * 0.5
        np.testing.assert_array_equal(flat, expected)
        bucket.unpack(flat * 2.0)
        offset = 0
        for p in params:
            np.testing.assert_array_equal(
                p.grad.reshape(-1), expected[offset:offset + p.size] * 2.0
            )
            offset += p.size

    def test_buffer_persists_across_packs(self):
        params = mlp(8, [16], 3, seed=0).parameters()
        for p in params:
            p.grad = np.ones_like(p.data)
        bucket = Bucket(0, params)
        first = bucket.pack()
        for p in params:
            p.grad = np.full_like(p.data, 2.0)
        second = bucket.pack()
        assert first is second  # same persistent buffer, no reallocation
        assert first is bucket.buffer


class TestGradReadyHooks:
    def test_hooks_fire_in_reverse_layer_order(self):
        model = mlp(8, [16, 16], 3, seed=0)
        fired = []
        hooked = []
        for module in model.modules():
            if any(
                hasattr(v, "grad") and hasattr(v, "data")
                for v in vars(module).values()
            ):
                module.register_grad_ready_hook(
                    lambda m: fired.append(id(m))
                )
                hooked.append(id(module))
        x = np.random.default_rng(0).normal(size=(4, 8))
        out = model.forward(x)
        model.backward(np.ones_like(out))
        # backward finalises the *last* layer's gradients first
        assert fired == hooked[::-1]
        for module in model.modules():
            module.remove_grad_ready_hook()

    def test_remove_restores_class_backward(self):
        model = mlp(8, [16], 3, seed=0)
        module = next(iter(model.modules()))
        original = module.backward
        module.register_grad_ready_hook(lambda m: None)
        assert module.backward is not original
        module.remove_grad_ready_hook()
        # instance override gone: attribute resolves to the bound class method
        assert "backward" not in vars(module)

    def test_exchange_install_hooks_only_on_param_owners(self):
        model = mlp(8, [16], 3, seed=0)
        plan = BucketPlan.from_model(model, bucket_bytes=256)

        def worker(comm):
            exchange = BucketedExchange(comm, plan, overlap=True)
            exchange.install_hooks(model)
            n = len(exchange._hooked)
            exchange.remove_hooks()
            return n

        results, _ = run_cluster(1, worker)
        owners = sum(
            1
            for module in model.modules()
            if any(id(p) in plan.bucket_of for p in vars(module).values()
                   if hasattr(p, "data") and hasattr(p, "grad"))
        )
        assert results[0] == owners > 0

    def test_overlap_plus_compressor_rejected(self):
        model = mlp(8, [16], 3, seed=0)
        plan = BucketPlan.from_model(model)

        def worker(comm):
            BucketedExchange(comm, plan, overlap=True, compressor=object())

        with pytest.raises(ValueError):
            run_cluster(1, worker)
