"""Fault-tolerant synchronous SGD: crash recovery, message-loss survival,
stragglers, abort reports, and bounded termination (deadlock regression).

All scenarios are deterministic (seeded fault plans) and wall-time bounded:
a killed rank must tear the attempt down via the transport dead-set +
timeouts, never by hanging until the test runner gives up.
"""

import os
import time

import numpy as np
import pytest

from repro.cluster import ClusterResult, SyncSGDConfig, train_sync_sgd
from repro.core import SGD, ConstantLR
from repro.data import gaussian_blobs
from repro.faults import FaultPlan, TrainingAborted
from repro.nn.models import mlp

_X, _Y = gaussian_blobs(96, num_classes=3, dim=6, seed=91)
SEED = 33
ITERS_PER_EPOCH = 3  # 96 examples / batch 32


def builder():
    return mlp(6, [8], 3, seed=SEED)


def sgd_builder(params):
    return SGD(params, momentum=0.9, weight_decay=0.0005)


def run(world=3, epochs=4, **kw):
    config = SyncSGDConfig(world=world, epochs=epochs, batch_size=32,
                           shuffle_seed=SEED, **kw)
    return train_sync_sgd(builder, sgd_builder, ConstantLR(0.1),
                          _X, _Y, _X[:32], _Y[:32], config)


@pytest.fixture(scope="module")
def clean() -> ClusterResult:
    return run()


class TestCrashRecovery:
    def test_mid_training_kill_recovers_within_tolerance(self, clean):
        """Acceptance: a rank killed mid-training restores from the latest
        checkpoint, continues with P-1 ranks, and matches the fault-free
        run to floating-point tolerance (the shrunk world regroups the
        gradient summation, so only associativity noise remains)."""
        res = run(fault_plan=FaultPlan(kills={1: 7}), recv_timeout=5.0)
        assert res.recoveries == 1
        assert res.final_world == 2
        for k in clean.final_state:
            np.testing.assert_allclose(res.final_state[k],
                                       clean.final_state[k], atol=1e-12)
        assert [h.epoch for h in res.history] == [1, 2, 3, 4]

    def test_killed_rank_terminates_in_bounded_wall_time(self):
        """Deadlock regression: before the timeout/dead-set machinery a
        dead rank deadlocked the blocking recvs forever."""
        start = time.monotonic()
        res = run(fault_plan=FaultPlan(kills={2: 4}), recv_timeout=3.0)
        assert time.monotonic() - start < 60.0
        assert res.recoveries == 1

    def test_rank_zero_kill_survivable(self, clean):
        """The master of master-mode history/eval can die too; the renumbered
        survivors elect a new rank 0 from the snapshot."""
        res = run(fault_plan=FaultPlan(kills={0: 7}), recv_timeout=5.0)
        assert res.final_world == 2
        for k in clean.final_state:
            np.testing.assert_allclose(res.final_state[k],
                                       clean.final_state[k], atol=1e-12)

    def test_kill_before_first_checkpoint_restarts_from_scratch(self, clean):
        res = run(fault_plan=FaultPlan(kills={1: 1}), recv_timeout=5.0)
        assert res.recoveries == 1
        assert res.fault_reports[0].restarted_from_epoch == 0
        for k in clean.final_state:
            np.testing.assert_allclose(res.final_state[k],
                                       clean.final_state[k], atol=1e-12)

    def test_two_sequential_kills(self, clean):
        res = run(world=4,
                  fault_plan=FaultPlan(kills={3: 4, 1: 8}), recv_timeout=5.0)
        assert res.recoveries == 2
        assert res.final_world == 2
        assert len(res.fault_reports) == 2
        for k in clean.final_state:
            np.testing.assert_allclose(res.final_state[k],
                                       clean.final_state[k], atol=1e-12)

    def test_recovery_report_structure(self):
        res = run(fault_plan=FaultPlan(kills={1: 7}), recv_timeout=5.0)
        report = res.fault_reports[0]
        assert report.outcome == "recovered"
        assert report.dead_ranks == [1]
        assert report.failed_at_iteration == 7
        assert report.world_before == 3 and report.world_after == 2
        assert report.restarted_from_epoch == 2  # kill in epoch 2 (iters 6-8)
        assert "recovered" in report.format()

    def test_disk_checkpoint_recovery_path(self, clean, tmp_path):
        res = run(fault_plan=FaultPlan(kills={1: 7}), recv_timeout=5.0,
                  checkpoint_dir=tmp_path)
        assert res.recoveries == 1
        written = sorted(os.listdir(tmp_path))
        assert any(name.endswith(".npz") for name in written)
        assert not any(name.endswith(".tmp") for name in written)
        for k in clean.final_state:
            np.testing.assert_allclose(res.final_state[k],
                                       clean.final_state[k], atol=1e-12)

    def test_restart_overhead_charged_per_recovery(self):
        cheap = run(fault_plan=FaultPlan(kills={1: 7}), recv_timeout=5.0)
        costly = run(fault_plan=FaultPlan(kills={1: 7}), recv_timeout=5.0,
                     restart_overhead_seconds=123.0)
        assert costly.simulated_seconds == pytest.approx(
            cheap.simulated_seconds + 123.0
        )

    def test_rhd_falls_back_after_odd_shrink(self):
        res = run(world=4, fault_plan=FaultPlan(kills={3: 4}),
                  recv_timeout=5.0, algorithm="rhd")
        assert res.final_world == 3  # not a power of two; tree fallback
        assert res.final_test_accuracy >= 0.9


class TestMessageLossSurvival:
    def test_one_percent_loss_converges_identically(self, clean):
        """Acceptance: 1% message loss, absorbed by retransmit, leaves the
        final model bit-identical to the fault-free run."""
        res = run(fault_plan=FaultPlan(seed=3, drop_prob=0.01),
                  recv_timeout=5.0)
        assert res.recoveries == 0
        for k in clean.final_state:
            np.testing.assert_array_equal(res.final_state[k],
                                          clean.final_state[k])
        stats = res.fault_stats
        assert stats.messages_dropped > 0
        assert stats.retransmits == stats.messages_dropped

    def test_corruption_detected_and_retransmitted(self, clean):
        res = run(fault_plan=FaultPlan(seed=3, corrupt_prob=0.02),
                  recv_timeout=5.0)
        for k in clean.final_state:
            np.testing.assert_array_equal(res.final_state[k],
                                          clean.final_state[k])
        assert res.fault_stats.messages_corrupted > 0

    def test_loss_plus_kill_combined(self, clean):
        res = run(fault_plan=FaultPlan(seed=3, drop_prob=0.01,
                                       kills={1: 7}),
                  recv_timeout=5.0)
        assert res.recoveries == 1
        for k in clean.final_state:
            np.testing.assert_allclose(res.final_state[k],
                                       clean.final_state[k], atol=1e-12)


class TestStragglers:
    def test_straggler_slows_time_but_not_values(self, clean):
        def per_example(n):
            return 1e-3 * n

        fast = run(compute_time=per_example)
        slow = run(compute_time=per_example,
                   fault_plan=FaultPlan(stragglers={2: 4.0}),
                   recv_timeout=5.0)
        assert slow.simulated_seconds > fast.simulated_seconds
        assert slow.fault_stats.straggler_seconds > 0
        for k in clean.final_state:
            np.testing.assert_array_equal(slow.final_state[k],
                                          clean.final_state[k])


class TestAbortPaths:
    def test_on_failure_abort_raises_structured_report(self):
        with pytest.raises(TrainingAborted) as exc_info:
            run(fault_plan=FaultPlan(kills={1: 7}), recv_timeout=5.0,
                on_failure="abort")
        report = exc_info.value.report
        assert report.outcome == "aborted"
        assert report.dead_ranks == [1]
        assert report.world_before == 3
        assert report.stats is not None
        assert "aborted" in str(exc_info.value)

    def test_max_recoveries_exhausted_aborts(self):
        with pytest.raises(TrainingAborted):
            run(world=4, fault_plan=FaultPlan(kills={3: 4, 2: 8}),
                recv_timeout=5.0, max_recoveries=1)

    def test_fault_free_plan_changes_nothing(self, clean):
        res = run(fault_plan=FaultPlan(), recv_timeout=5.0)
        assert res.recoveries == 0
        assert res.fault_stats is not None
        for k in clean.final_state:
            np.testing.assert_array_equal(res.final_state[k],
                                          clean.final_state[k])


class TestResultSurface:
    def test_fault_free_runs_have_no_fault_stats(self, clean):
        assert clean.fault_stats is None
        assert clean.fault_reports == []
        assert clean.recoveries == 0
        assert clean.final_world == 3

    def test_time_curve_is_monotone_across_recovery(self):
        res = run(fault_plan=FaultPlan(kills={1: 7}), recv_timeout=5.0,
                  compute_time=lambda n: 1e-3 * n,
                  restart_overhead_seconds=1.0)
        times = [t for _, t, _ in res.time_curve]
        assert times == sorted(times)
        assert [e for e, _, _ in res.time_curve] == [1, 2, 3, 4]


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs,needle", [
        (dict(world=0, epochs=1, batch_size=8), "world"),
        (dict(world=2, epochs=0, batch_size=8), "epochs"),
        (dict(world=2, epochs=1, batch_size=8, mode="gossip"), "mode"),
        (dict(world=2, epochs=1, batch_size=8, algorithm="nccl"), "algorithm"),
        (dict(world=3, epochs=1, batch_size=8, algorithm="rhd"), "power-of-two"),
        (dict(world=4, epochs=1, batch_size=2), "batch"),
        (dict(world=2, epochs=1, batch_size=8, eval_every=0), "eval_every"),
        (dict(world=2, epochs=1, batch_size=8, checkpoint_every=0),
         "checkpoint_every"),
        (dict(world=2, epochs=1, batch_size=8, on_failure="panic"),
         "on_failure"),
        (dict(world=2, epochs=1, batch_size=8, max_recoveries=-1),
         "max_recoveries"),
        (dict(world=2, epochs=1, batch_size=8, recv_timeout=0.0),
         "recv_timeout"),
        (dict(world=2, epochs=1, batch_size=8,
              restart_overhead_seconds=-1.0), "restart_overhead"),
    ])
    def test_bad_configs_fail_eagerly_with_context(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            SyncSGDConfig(**kwargs)
