"""SyncBatchNorm: restoring exact sequential consistency for BN models.

Plain per-shard BatchNorm is the one documented exception to the
P-workers == serial-large-batch equivalence (see ``test_sync_sgd``).
SyncBatchNorm closes it: with cross-rank statistics, a BN model trained on
P simulated ranks matches the serial full-batch run to fp tolerance.
"""

import numpy as np
import pytest

from repro.cluster import SyncSGDConfig, train_sync_sgd
from repro.comm import run_cluster
from repro.core import SGD, ConstantLR, Trainer
from repro.nn import BatchNorm, SyncBatchNorm
from repro.nn.models import mlp

_RNG = np.random.default_rng(17)
_CENTRES = _RNG.normal(size=(3, 8)) * 2.5
_Y = _RNG.integers(0, 3, size=96)
_X = _CENTRES[_Y] + _RNG.normal(size=(96, 8)) * 0.5

SEED = 23


def sync_builder():
    return mlp(8, [10], 3, batch_norm="sync", seed=SEED)


def local_builder():
    return mlp(8, [10], 3, batch_norm=True, seed=SEED)


def sgd_builder(params):
    return SGD(params, momentum=0.9, weight_decay=0.0005)


def serial_reference(builder, epochs=2, batch=32, lr=0.1):
    model = builder()
    trainer = Trainer(model, sgd_builder(model.parameters()), ConstantLR(lr),
                      shuffle_seed=SEED)
    trainer.fit(_X, _Y, _X[:24], _Y[:24], epochs=epochs, batch_size=batch)
    return model.state_dict()


def cluster_run(builder, world, mode="allreduce", epochs=2, batch=32, lr=0.1):
    config = SyncSGDConfig(world=world, epochs=epochs, batch_size=batch,
                           mode=mode, shuffle_seed=SEED)
    return train_sync_sgd(builder, sgd_builder, ConstantLR(lr),
                          _X, _Y, _X[:24], _Y[:24], config)


def max_diff(a, b):
    return max(np.abs(a[k] - b[k]).max() for k in a)


class TestStatisticsSync:
    def test_forward_stats_match_global_batch(self):
        """P shards with SyncBN normalise exactly like one big batch."""
        rng = np.random.default_rng(0)
        x = rng.normal(2.0, 3.0, size=(32, 5))

        ref_bn = BatchNorm(5)
        ref_out = ref_bn.forward(x)

        def worker(comm):
            bn = SyncBatchNorm(5)
            bn.set_comm(comm)
            shard = x[comm.rank * 8 : (comm.rank + 1) * 8]
            return bn.forward(shard)

        results, _ = run_cluster(4, worker)
        out = np.concatenate(results)
        assert np.allclose(out, ref_out, atol=1e-12)

    def test_running_stats_match_serial(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(32, 4))
        ref = BatchNorm(4)
        ref.forward(x)

        def worker(comm):
            bn = SyncBatchNorm(4)
            bn.set_comm(comm)
            bn.forward(x[comm.rank * 16 : (comm.rank + 1) * 16])
            return bn.running_mean, bn.running_var

        results, _ = run_cluster(2, worker)
        for mean, var in results:
            assert np.allclose(mean, ref.running_mean, atol=1e-12)
            assert np.allclose(var, ref.running_var, atol=1e-10)

    def test_without_comm_behaves_like_local_bn(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(16, 3))
        a, b = BatchNorm(3), SyncBatchNorm(3)
        assert np.allclose(a.forward(x), b.forward(x), atol=1e-12)
        g = rng.normal(size=(16, 3))
        assert np.allclose(a.backward(g.copy()), b.backward(g.copy()), atol=1e-12)

    def test_eval_mode_uses_running_stats_no_comm(self):
        bn = SyncBatchNorm(3, momentum=0.0)
        bn.forward(np.random.default_rng(3).normal(size=(8, 3)))
        bn.eval()
        out = bn.forward(np.ones((4, 3)))  # would deadlock if it tried comm
        assert out.shape == (4, 3)


class TestSequentialConsistencyRestored:
    @pytest.mark.parametrize("world", [2, 4])
    def test_sync_bn_matches_serial(self, world):
        ref = serial_reference(sync_builder)
        cluster = cluster_run(sync_builder, world)
        assert max_diff(ref, cluster.final_state) < 1e-9

    def test_local_bn_still_differs(self):
        """Control: the same model with plain BN does NOT match."""
        ref = serial_reference(local_builder)
        cluster = cluster_run(local_builder, 4)
        assert max_diff(ref, cluster.final_state) > 1e-9

    def test_sync_bn_master_mode(self):
        ref = serial_reference(sync_builder)
        cluster = cluster_run(sync_builder, 2, mode="master")
        assert max_diff(ref, cluster.final_state) < 1e-9

    def test_uneven_shards(self):
        """batch 32 over 3 ranks: shards 11/11/10 — pre-scaling handles it."""
        ref = serial_reference(sync_builder)
        cluster = cluster_run(sync_builder, 3)
        assert max_diff(ref, cluster.final_state) < 1e-9

    def test_serial_equivalence_of_sync_model(self):
        """The sync-BN model run serially (no comm) == plain-BN model."""
        a = serial_reference(sync_builder)
        b = serial_reference(local_builder)
        # identical init (same seed), identical parameter paths, identical
        # serial semantics
        assert set(a) == set(b)
        for k in a:
            assert np.allclose(a[k], b[k], atol=1e-12)

    def test_learning_still_happens(self):
        cluster = cluster_run(sync_builder, 4, epochs=8)
        assert cluster.final_test_accuracy > 0.7
