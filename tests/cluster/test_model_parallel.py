"""Model parallelism (Figure 2b): exact equivalence with the serial layers.

The paper: "model parallelism can get the same solution as the
single-machine case" — verified here to fp tolerance for forward values,
input gradients, and the partitioned parameter gradients/updates.
"""

import numpy as np
import pytest

from repro.cluster import (
    ColumnParallelDense,
    RowParallelDense,
    partition_bounds,
)
from repro.comm import run_cluster
from repro.nn import Dense


def serial_dense(in_f, out_f, seed=0):
    """Reference layer drawing the identical full weight matrix."""
    from repro.nn.initializers import xavier, zeros

    rng = np.random.default_rng(seed)
    layer = Dense(in_f, out_f, rng=np.random.default_rng(99))
    layer.weight.data[...] = xavier((in_f, out_f), rng)
    layer.bias.data[...] = zeros((out_f,), rng)
    return layer


class TestPartitionBounds:
    def test_partition_covers_axis(self):
        blocks = [partition_bounds(10, 3, r) for r in range(3)]
        assert blocks == [(0, 4), (4, 7), (7, 10)]

    def test_even_split(self):
        assert partition_bounds(8, 4, 2) == (4, 6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            partition_bounds(8, 0, 0)
        with pytest.raises(ValueError):
            partition_bounds(8, 2, 2)


class TestColumnParallel:
    @pytest.mark.parametrize("world", [1, 2, 3, 4])
    def test_forward_matches_serial(self, world):
        x = np.random.default_rng(1).normal(size=(5, 6))
        ref = serial_dense(6, 8, seed=7)
        expected = ref.forward(x)

        def worker(comm):
            layer = ColumnParallelDense(comm, 6, 8, seed=7)
            return layer.forward(x)

        results, _ = run_cluster(world, worker)
        for r in results:
            assert np.allclose(r, expected, atol=1e-12)

    def test_backward_dx_matches_serial(self):
        x = np.random.default_rng(2).normal(size=(4, 6))
        g = np.random.default_rng(3).normal(size=(4, 8))
        ref = serial_dense(6, 8, seed=7)
        ref.forward(x)
        expected_dx = ref.backward(g)

        def worker(comm):
            layer = ColumnParallelDense(comm, 6, 8, seed=7)
            layer.forward(x)
            return layer.backward(g)

        results, _ = run_cluster(3, worker)
        for r in results:
            assert np.allclose(r, expected_dx, atol=1e-12)

    def test_weight_gradients_are_the_serial_blocks(self):
        x = np.random.default_rng(2).normal(size=(4, 6))
        g = np.random.default_rng(3).normal(size=(4, 8))
        ref = serial_dense(6, 8, seed=7)
        ref.forward(x)
        ref.backward(g)

        def worker(comm):
            layer = ColumnParallelDense(comm, 6, 8, seed=7)
            layer.forward(x)
            layer.backward(g)
            return (layer.lo, layer.hi, layer.weight.grad, layer.bias.grad)

        results, _ = run_cluster(4, worker)
        for lo, hi, wg, bg in results:
            assert np.allclose(wg, ref.weight.grad[:, lo:hi], atol=1e-12)
            assert np.allclose(bg, ref.bias.grad[lo:hi], atol=1e-12)

    def test_local_output_mode(self):
        def worker(comm):
            layer = ColumnParallelDense(comm, 4, 6, gather_output=False, seed=1)
            out = layer.forward(np.ones((2, 4)))
            return out.shape[1]

        results, _ = run_cluster(3, worker)
        assert sum(results) == 6  # blocks partition the output axis


class TestRowParallel:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_forward_matches_serial(self, world):
        x = np.random.default_rng(4).normal(size=(5, 8))
        ref = serial_dense(8, 3, seed=11)
        expected = ref.forward(x)

        def worker(comm):
            layer = RowParallelDense(comm, 8, 3, seed=11)
            return layer.forward(x)

        results, _ = run_cluster(world, worker)
        for r in results:
            assert np.allclose(r, expected, atol=1e-12)

    def test_backward_matches_serial(self):
        x = np.random.default_rng(5).normal(size=(4, 8))
        g = np.random.default_rng(6).normal(size=(4, 3))
        ref = serial_dense(8, 3, seed=11)
        ref.forward(x)
        expected_dx = ref.backward(g)

        def worker(comm):
            layer = RowParallelDense(comm, 8, 3, seed=11)
            layer.forward(x)
            dx = layer.backward(g)
            return (dx, layer.lo, layer.hi, layer.weight.grad)

        results, _ = run_cluster(2, worker)
        for dx, lo, hi, wg in results:
            assert np.allclose(dx, expected_dx, atol=1e-12)
            assert np.allclose(wg, ref.weight.grad[lo:hi, :], atol=1e-12)


class TestColumnRowComposition:
    """The Megatron-style pairing: column (no gather) -> row (partitioned
    input) with exactly one communication point at the pair's output."""

    def test_two_layer_mlp_matches_serial(self):
        x = np.random.default_rng(7).normal(size=(6, 5))
        g = np.random.default_rng(8).normal(size=(6, 4))

        ref1 = serial_dense(5, 12, seed=21)
        ref2 = serial_dense(12, 4, seed=22)
        h = np.maximum(ref1.forward(x), 0.0)
        expected_y = ref2.forward(h)

        def worker(comm):
            l1 = ColumnParallelDense(comm, 5, 12, gather_output=False, seed=21)
            l2 = RowParallelDense(comm, 12, 4, input_is_partitioned=True, seed=22)
            h_local = np.maximum(l1.forward(x), 0.0)
            return l2.forward(h_local)

        results, _ = run_cluster(3, worker)
        for r in results:
            assert np.allclose(r, expected_y, atol=1e-12)

    def test_boundary_traffic_only(self):
        """The pair communicates once per forward (the row allreduce) —
        Figure 2(b)'s 'state is only sent across the boundary' claim."""
        x = np.ones((2, 4))

        def worker(comm):
            l1 = ColumnParallelDense(comm, 4, 6, gather_output=False, seed=1)
            l2 = RowParallelDense(comm, 6, 2, input_is_partitioned=True, seed=2)
            l2.forward(l1.forward(x))

        _, fabric = run_cluster(2, worker)
        # a single 2-rank tree allreduce: 2 messages (reduce + bcast)
        assert fabric.stats.messages == 2
