"""Mixed-precision (simulated fp16 + loss scaling) tests."""

import numpy as np
import pytest

from repro.core import MixedPrecisionOptimizer, SGD, fp16_roundtrip
from repro.nn import Parameter


def param(values):
    return Parameter(np.asarray(values, dtype=float))


class TestFp16Roundtrip:
    def test_representable_values_survive(self):
        x = np.array([1.0, -2.5, 100.0])
        assert np.allclose(fp16_roundtrip(x), x, rtol=1e-3)

    def test_tiny_gradients_underflow_to_zero(self):
        """The failure mode loss scaling exists to fix."""
        x = np.array([1e-9, -1e-10, 3e-8])
        out = fp16_roundtrip(x)
        assert np.all(out[:2] == 0.0)

    def test_huge_values_overflow_to_inf(self):
        assert not np.isfinite(fp16_roundtrip(np.array([1e6]))).all()

    def test_quantisation_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        assert np.abs(fp16_roundtrip(x) - x).max() < 2e-3  # ~2^-10 rel


class TestLossScaling:
    def test_unscaled_tiny_gradients_are_lost(self):
        p = param([1.0])
        inner = SGD([p], momentum=0.0, weight_decay=0.0)
        opt = MixedPrecisionOptimizer(inner, init_scale=1.0, dynamic=False)
        p.grad[:] = [1e-9]  # underflows in fp16
        opt.step(lr=1.0)
        assert p.data[0] == 1.0  # gradient vanished

    def test_scaling_rescues_tiny_gradients(self):
        p = param([1.0])
        inner = SGD([p], momentum=0.0, weight_decay=0.0)
        opt = MixedPrecisionOptimizer(inner, init_scale=2.0**20, dynamic=False)
        raw = np.array([1e-6])
        p.grad[:] = opt.scale_loss_grad(raw)  # what scaled backprop produces
        opt.step(lr=1.0)
        assert p.data[0] == pytest.approx(1.0 - 1e-6, rel=1e-3)

    def test_overflow_skips_step(self):
        p = param([1.0])
        inner = SGD([p], momentum=0.0, weight_decay=0.0)
        opt = MixedPrecisionOptimizer(inner, init_scale=2.0**30, dynamic=True)
        p.grad[:] = opt.scale_loss_grad(np.array([1.0]))  # scaled -> inf
        scale_before = opt.scale
        opt.step(lr=1.0)
        assert p.data[0] == 1.0  # untouched
        assert opt.skipped_steps == 1
        assert opt.scale == scale_before / 2

    def test_dynamic_growth(self):
        p = param([0.0])
        inner = SGD([p], momentum=0.0, weight_decay=0.0)
        opt = MixedPrecisionOptimizer(inner, init_scale=4.0, dynamic=True,
                                      growth_interval=3)
        for _ in range(3):
            p.grad[:] = opt.scale_loss_grad(np.array([0.01]))
            opt.step(lr=0.1)
        assert opt.scale == 8.0

    def test_scale_bounded(self):
        p = param([0.0])
        inner = SGD([p], momentum=0.0, weight_decay=0.0)
        opt = MixedPrecisionOptimizer(inner, init_scale=2.0, dynamic=True,
                                      growth_interval=1, max_scale=4.0)
        for _ in range(5):
            p.grad[:] = opt.scale_loss_grad(np.array([0.01]))
            opt.step(lr=0.0)
        assert opt.scale == 4.0

    def test_matches_fp32_for_well_scaled_gradients(self):
        """With moderate gradients, mixed precision tracks fp32 closely."""
        p16, p32 = param([1.0, -1.0]), param([1.0, -1.0])
        opt16 = MixedPrecisionOptimizer(
            SGD([p16], momentum=0.9, weight_decay=0.0), init_scale=2.0**8,
            dynamic=False)
        opt32 = SGD([p32], momentum=0.9, weight_decay=0.0)
        rng = np.random.default_rng(1)
        for _ in range(10):
            g = rng.normal(scale=0.1, size=2)
            p16.grad[:] = opt16.scale_loss_grad(g)
            p32.grad[:] = g
            opt16.step(lr=0.05)
            opt32.step(lr=0.05)
        assert np.allclose(p16.data, p32.data, atol=1e-3)

    def test_state_dict_roundtrip(self):
        p = param([1.0])
        opt = MixedPrecisionOptimizer(SGD([p], momentum=0.9, weight_decay=0.0))
        p.grad[:] = opt.scale_loss_grad(np.array([0.1]))
        opt.step(lr=0.1)
        snap = opt.state_dict()
        q = param(p.data.copy())
        opt2 = MixedPrecisionOptimizer(SGD([q], momentum=0.9, weight_decay=0.0))
        opt2.load_state_dict(snap)
        assert opt2.scale == opt.scale
        assert opt2.successful_steps == 1

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            MixedPrecisionOptimizer(SGD([param([1.0])]), init_scale=0.0)
