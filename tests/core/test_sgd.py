"""Momentum SGD tests against hand-computed updates."""

import numpy as np
import pytest

from repro.core import SGD
from repro.nn import Parameter


def param(values, wd=1.0):
    p = Parameter(np.asarray(values, dtype=float), weight_decay=wd)
    return p


def test_vanilla_sgd_step():
    p = param([1.0, 2.0])
    p.grad[:] = [0.5, -0.5]
    opt = SGD([p], momentum=0.0, weight_decay=0.0)
    opt.step(lr=0.1)
    assert np.allclose(p.data, [0.95, 2.05])


def test_weight_decay_added_to_gradient():
    p = param([1.0])
    p.grad[:] = [0.0]
    opt = SGD([p], momentum=0.0, weight_decay=0.1)
    opt.step(lr=1.0)
    # g_eff = 0 + 0.1*1 = 0.1
    assert np.allclose(p.data, [0.9])


def test_weight_decay_respects_parameter_multiplier():
    bias = param([1.0], wd=0.0)
    bias.grad[:] = [0.0]
    opt = SGD([bias], momentum=0.0, weight_decay=0.1)
    opt.step(lr=1.0)
    assert np.allclose(bias.data, [1.0])  # no decay on biases


def test_momentum_accumulates_caffe_style():
    """v <- m v + lr g; w <- w - v (two hand-checked steps)."""
    p = param([0.0])
    opt = SGD([p], momentum=0.9, weight_decay=0.0)
    p.grad[:] = [1.0]
    opt.step(lr=0.1)  # v = 0.1, w = -0.1
    assert np.allclose(p.data, [-0.1])
    p.grad[:] = [1.0]
    opt.step(lr=0.1)  # v = 0.9*0.1 + 0.1 = 0.19, w = -0.29
    assert np.allclose(p.data, [-0.29])


def test_lr_inside_momentum_buffer():
    """Caffe convention: changing lr mid-run does not rescale old momentum."""
    p = param([0.0])
    opt = SGD([p], momentum=0.9, weight_decay=0.0)
    p.grad[:] = [1.0]
    opt.step(lr=1.0)  # v = 1
    p.grad[:] = [0.0]
    opt.step(lr=0.0)  # v = 0.9, w -= 0.9
    assert np.allclose(p.data, [-1.9])


def test_nesterov_differs_from_plain():
    def run(nesterov):
        p = param([0.0])
        opt = SGD([p], momentum=0.9, weight_decay=0.0, nesterov=nesterov)
        for _ in range(3):
            p.grad[:] = [1.0]
            opt.step(lr=0.1)
        return p.data.copy()

    assert not np.allclose(run(True), run(False))


def test_zero_grad_via_optimizer():
    p = param([1.0])
    p.grad[:] = [5.0]
    SGD([p]).zero_grad()
    assert np.all(p.grad == 0)


def test_invalid_hyperparameters():
    p = param([1.0])
    with pytest.raises(ValueError):
        SGD([p], momentum=1.0)
    with pytest.raises(ValueError):
        SGD([p], weight_decay=-1.0)
    with pytest.raises(ValueError):
        SGD([])


def test_invalid_lr_rejected():
    p = param([1.0])
    opt = SGD([p])
    with pytest.raises(ValueError):
        opt.step(lr=-0.1)
    with pytest.raises(ValueError):
        opt.step(lr=float("nan"))


def test_state_dict_roundtrip_preserves_momentum():
    p = param([0.0])
    opt = SGD([p], momentum=0.9, weight_decay=0.0)
    p.grad[:] = [1.0]
    opt.step(lr=0.1)
    snap = opt.state_dict()

    p2 = param([-0.1])
    opt2 = SGD([p2], momentum=0.9, weight_decay=0.0)
    opt2.load_state_dict(snap)
    p.grad[:] = [1.0]
    p2.grad[:] = [1.0]
    opt.step(lr=0.1)
    opt2.step(lr=0.1)
    assert np.allclose(p.data, p2.data)
    assert opt2.step_count == 2


def test_step_count_increments():
    p = param([1.0])
    opt = SGD([p], momentum=0.0, weight_decay=0.0)
    for i in range(3):
        opt.step(lr=0.0)
    assert opt.step_count == 3
