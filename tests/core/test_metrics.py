"""Metric tests."""

import numpy as np
import pytest

from repro.core import RunningMean, top1_accuracy, top_k_accuracy
from repro.core.metrics import EpochRecord


def test_top1_perfect():
    logits = np.eye(4) * 10
    assert top1_accuracy(logits, np.arange(4)) == 1.0


def test_top1_half():
    logits = np.array([[1.0, 0.0], [1.0, 0.0]])
    assert top1_accuracy(logits, np.array([0, 1])) == 0.5


def test_top5_contains_target():
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(20, 10))
    t1 = top_k_accuracy(logits, rng.integers(0, 10, 20), k=1)
    t5 = top_k_accuracy(logits, rng.integers(0, 10, 20), k=5)
    assert 0 <= t1 <= t5 <= 1


def test_top_k_equals_one_when_k_is_num_classes():
    logits = np.random.default_rng(1).normal(size=(8, 5))
    assert top_k_accuracy(logits, np.zeros(8, dtype=int), k=5) == 1.0


def test_top_k_invalid_k():
    with pytest.raises(ValueError):
        top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=4)


def test_shape_validation():
    with pytest.raises(ValueError):
        top1_accuracy(np.zeros((2, 3)), np.zeros(3, dtype=int))


def test_running_mean_weighted():
    rm = RunningMean()
    rm.update(1.0, weight=3)
    rm.update(5.0, weight=1)
    assert rm.mean == pytest.approx(2.0)


def test_running_mean_empty_is_nan():
    # The mean of zero observations is undefined, not 0.0 — a silent zero
    # would be indistinguishable from a genuine 0% accuracy.
    assert np.isnan(RunningMean().mean)


def test_running_mean_reset():
    rm = RunningMean()
    rm.update(10.0)
    rm.reset()
    assert np.isnan(rm.mean)
    rm.update(4.0)
    assert rm.mean == pytest.approx(4.0)


def test_epoch_record_as_dict():
    r = EpochRecord(1, 0.5, 0.8, 0.7, 0.01, 100)
    d = r.as_dict()
    assert d["epoch"] == 1 and d["test_accuracy"] == 0.7
