"""Schedule tests: poly policy, warmup continuity, scaling rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstantLR,
    GradualWarmup,
    PolynomialDecay,
    StepDecay,
    linear_scaled_lr,
    paper_schedule,
    sqrt_scaled_lr,
)


class TestPolynomialDecay:
    def test_starts_at_base(self):
        s = PolynomialDecay(0.2, 1000, power=2)
        assert s(0) == pytest.approx(0.2)

    def test_ends_at_zero(self):
        s = PolynomialDecay(0.2, 1000, power=2)
        assert s(1000) == 0.0
        assert s(5000) == 0.0  # clamped past the horizon

    def test_poly_power_two_midpoint(self):
        s = PolynomialDecay(1.0, 100, power=2)
        assert s(50) == pytest.approx(0.25)  # (1 - 0.5)^2

    @given(t=st.integers(0, 999))
    @settings(max_examples=50, deadline=None)
    def test_monotone_decreasing(self, t):
        s = PolynomialDecay(0.2, 1000, power=2)
        assert s(t) >= s(t + 1)

    def test_power_one_is_linear(self):
        s = PolynomialDecay(1.0, 10, power=1)
        assert s(3) == pytest.approx(0.7)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PolynomialDecay(-1.0, 10)
        with pytest.raises(ValueError):
            PolynomialDecay(1.0, 0)


class TestGradualWarmup:
    def test_ramps_linearly(self):
        base = ConstantLR(1.0)
        s = GradualWarmup(base, warmup_steps=10, start_lr=0.0)
        lrs = [s(t) for t in range(10)]
        diffs = np.diff(lrs)
        assert np.allclose(diffs, diffs[0])
        assert lrs[0] == pytest.approx(0.1)

    def test_continuous_at_handoff(self):
        base = PolynomialDecay(0.32, 1000, power=2)
        s = GradualWarmup(base, warmup_steps=50)
        assert s(49) == pytest.approx(s(50), rel=1e-6)

    def test_reaches_peak_at_handoff(self):
        s = GradualWarmup(ConstantLR(0.5), warmup_steps=20)
        assert s(20) == pytest.approx(0.5)

    def test_nonzero_start_lr(self):
        s = GradualWarmup(ConstantLR(1.0), warmup_steps=10, start_lr=0.5)
        assert 0.5 < s(0) < 1.0

    def test_zero_warmup_is_identity(self):
        base = PolynomialDecay(0.1, 100)
        s = GradualWarmup(base, warmup_steps=0)
        assert s(7) == base(7)

    def test_rebase_shifts_decay_horizon(self):
        base = PolynomialDecay(1.0, 100, power=1)
        s = GradualWarmup(base, warmup_steps=50, rebase=True)
        # at iteration 100 the base has only consumed 50 of its 100 steps
        assert s(100) == pytest.approx(0.5)

    def test_negative_warmup_raises(self):
        with pytest.raises(ValueError):
            GradualWarmup(ConstantLR(1.0), warmup_steps=-1)


class TestScalingRules:
    def test_linear_scaling_512_to_4096(self):
        """Table 5: linear scaling says batch 4096 at base 0.02/512 needs 0.16."""
        assert linear_scaled_lr(0.02, 512, 4096) == pytest.approx(0.16)

    def test_linear_scaling_identity(self):
        assert linear_scaled_lr(0.02, 512, 512) == pytest.approx(0.02)

    @given(k=st.integers(1, 256))
    @settings(max_examples=30, deadline=None)
    def test_linear_homogeneity(self, k):
        assert linear_scaled_lr(0.1, 256, 256 * k) == pytest.approx(0.1 * k)

    def test_sqrt_scaling(self):
        assert sqrt_scaled_lr(0.1, 256, 1024) == pytest.approx(0.2)

    def test_invalid_batches(self):
        with pytest.raises(ValueError):
            linear_scaled_lr(0.1, 0, 256)
        with pytest.raises(ValueError):
            sqrt_scaled_lr(0.1, 256, -1)


class TestStepDecay:
    def test_drops_at_milestones(self):
        s = StepDecay(1.0, [10, 20], gamma=0.1)
        assert s(9) == pytest.approx(1.0)
        assert s(10) == pytest.approx(0.1)
        assert s(20) == pytest.approx(0.01)


class TestPaperSchedule:
    def test_composition_shape(self):
        s = paper_schedule(0.16, total_iterations=1000, warmup_iterations=100)
        lrs = np.array([s(t) for t in range(1000)])
        peak = lrs.argmax()
        assert 90 <= peak <= 110  # peak at warmup handoff
        assert lrs[-1] < 0.01 * lrs.max()  # decayed to ~0

    def test_no_warmup_is_pure_poly(self):
        s = paper_schedule(0.2, 500, 0)
        assert isinstance(s, PolynomialDecay)

    def test_invalid_lr_flagged_on_call(self):
        class Bad(ConstantLR):
            def lr_at(self, t):
                return float("nan")

        with pytest.raises(ValueError):
            Bad(0.1)(0)
