"""Recipe tests: the paper's hyper-parameter tables encoded correctly."""

import pytest

from repro.core import (
    IMAGENET_TRAIN_SIZE,
    LARS,
    PAPER_RECIPES,
    SGD,
    Recipe,
    build_optimizer,
    build_schedule,
    scale_to,
)
from repro.nn import Parameter
import numpy as np


def test_imagenet_size_constant():
    assert IMAGENET_TRAIN_SIZE == 1_281_167


def test_alexnet_baseline_recipe():
    r = PAPER_RECIPES["alexnet-b512-baseline"]
    assert r.batch_size == 512
    assert r.epochs == 100
    assert r.peak_lr == pytest.approx(0.02)
    assert not r.use_lars
    assert r.momentum == 0.9 and r.weight_decay == 0.0005
    assert r.poly_power == 2.0


def test_alexnet_lars_recipes_match_table7():
    """Table 7: warmup 13/8/5 epochs for batch 4096/8192/32768."""
    assert PAPER_RECIPES["alexnet-b4096-lars"].warmup_epochs == 13
    assert PAPER_RECIPES["alexnet-b8192-lars"].warmup_epochs == 8
    assert PAPER_RECIPES["alexnet_bn-b32768-lars"].warmup_epochs == 5
    assert PAPER_RECIPES["alexnet_bn-b32768-lars"].model == "alexnet_bn"


def test_resnet_linear_scaling_peak_lr():
    """Figure 4 caption: base LR 0.2 at batch 256 -> 25.6 at 32K."""
    r = PAPER_RECIPES["resnet50-b32768-lars"]
    assert r.peak_lr == pytest.approx(0.2 * 32768 / 256)


def test_headline_64_epoch_recipe():
    r = PAPER_RECIPES["resnet50-b32768-lars-64ep"]
    assert r.epochs == 64 and r.use_lars


def test_iterations_accounting():
    r = PAPER_RECIPES["alexnet_bn-b32768-lars"]
    assert r.iterations_per_epoch == 40  # ceil(1281167/32768)
    assert r.total_iterations == 4000
    assert r.warmup_iterations == 200  # 5 epochs


def test_build_optimizer_dispatch():
    p = [Parameter(np.ones(3))]
    assert isinstance(build_optimizer(p, PAPER_RECIPES["alexnet-b512-baseline"]), SGD)
    assert isinstance(build_optimizer(p, PAPER_RECIPES["alexnet-b4096-lars"]), LARS)


def test_build_schedule_peak_and_decay():
    r = PAPER_RECIPES["resnet50-b8192-lars"]
    s = build_schedule(r)
    peak_iter = r.warmup_iterations
    assert s(peak_iter) == pytest.approx(r.peak_lr, rel=1e-6)
    assert s(r.total_iterations) < 1e-9


def test_scale_to_preserves_iteration_regime():
    r = PAPER_RECIPES["alexnet_bn-b32768-lars"]
    proxy = scale_to(r, dataset_size=12812)  # 1/100th of ImageNet
    assert proxy.iterations_per_epoch == pytest.approx(r.iterations_per_epoch, abs=1)
    assert proxy.batch_size == 328
    # base_batch rounds from 5.12 to 5, so the ratio moves a few percent
    assert proxy.peak_lr == pytest.approx(r.peak_lr, rel=0.05)


def test_scale_to_min_batch_floor():
    r = PAPER_RECIPES["alexnet-b512-baseline"]
    proxy = scale_to(r, dataset_size=100, min_batch=2)
    assert proxy.batch_size >= 2


def test_recipe_validation():
    with pytest.raises(ValueError):
        Recipe("x", "alexnet", 512, 100, 0.02, lr_rule="cosine")
    with pytest.raises(ValueError):
        Recipe("x", "alexnet", 0, 100, 0.02)
    with pytest.raises(ValueError):
        Recipe("x", "alexnet", 512, 0, 0.02)
    with pytest.raises(ValueError):
        Recipe("x", "alexnet", 512, 100, 0.02, warmup_epochs=-1)


def test_all_recipes_build():
    p = [Parameter(np.ones(4))]
    for name, r in PAPER_RECIPES.items():
        opt = build_optimizer(p, r)
        sched = build_schedule(r)
        assert sched(0) >= 0
        assert opt.params
