"""Serial trainer tests: determinism, convergence, iteration accounting."""

import numpy as np
import pytest

from repro.core import SGD, ConstantLR, Trainer, iterations_per_epoch
from repro.nn.models import mlp


_CENTRES = np.random.default_rng(99).normal(size=(3, 6)) * 3


def toy_problem(n=120, d=6, k=3, seed=0):
    """Linearly separable-ish Gaussian blobs (shared class centres)."""
    rng = np.random.default_rng(seed)
    y = rng.integers(0, k, size=n)
    x = _CENTRES[y, :d] + rng.normal(size=(n, d))
    return x, y


def make_trainer(seed=0, lr=0.1):
    model = mlp(6, [16], 3, seed=seed)
    opt = SGD(model.parameters(), momentum=0.9, weight_decay=0.0001)
    return Trainer(model, opt, ConstantLR(lr), shuffle_seed=seed)


def test_iterations_per_epoch_ceil():
    assert iterations_per_epoch(1_281_167, 32768) == 40
    assert iterations_per_epoch(100, 32) == 4
    assert iterations_per_epoch(96, 32) == 3


def test_iterations_per_epoch_invalid():
    with pytest.raises(ValueError):
        iterations_per_epoch(0, 32)
    with pytest.raises(ValueError):
        iterations_per_epoch(100, 0)


def test_training_reduces_loss_and_learns():
    x, y = toy_problem()
    xt, yt = toy_problem(seed=1)
    trainer = make_trainer()
    result = trainer.fit(x, y, xt, yt, epochs=15, batch_size=32)
    assert result.history[-1].train_loss < result.history[0].train_loss
    assert result.final_test_accuracy > 0.8


def test_determinism_same_seed():
    x, y = toy_problem()
    r1 = make_trainer(seed=3).fit(x, y, x, y, epochs=3, batch_size=16)
    r2 = make_trainer(seed=3).fit(x, y, x, y, epochs=3, batch_size=16)
    assert [h.train_loss for h in r1.history] == [h.train_loss for h in r2.history]


def test_epoch_iteration_count():
    x, y = toy_problem(n=100)
    result = make_trainer().fit(x, y, x, y, epochs=2, batch_size=32)
    assert all(r.iterations == 4 for r in result.history)
    assert result.total_iterations == 8


def test_peak_vs_final_accuracy():
    from repro.core import TrainResult
    from repro.core.metrics import EpochRecord

    res = TrainResult(history=[
        EpochRecord(1, 1.0, 0.3, 0.5, 0.1, 10),
        EpochRecord(2, 0.8, 0.5, 0.9, 0.1, 10),
        EpochRecord(3, 0.7, 0.6, 0.7, 0.1, 10),
    ])
    assert res.peak_test_accuracy == 0.9
    assert res.final_test_accuracy == 0.7
    assert res.epochs_to_accuracy(0.85) == 2
    assert res.epochs_to_accuracy(0.95) is None


def test_empty_result_defaults():
    from repro.core import TrainResult

    res = TrainResult()
    assert res.final_test_accuracy == 0.0
    assert res.peak_test_accuracy == 0.0


def test_float_schedule_accepted():
    x, y = toy_problem(n=32)
    model = mlp(6, [8], 3, seed=0)
    trainer = Trainer(model, SGD(model.parameters()), 0.05)
    loss, acc = trainer.train_step(x, y)
    assert np.isfinite(loss) and 0 <= acc <= 1


def test_evaluate_batched_matches_full():
    x, y = toy_problem(n=100)
    trainer = make_trainer()
    full = trainer.evaluate(x, y, batch_size=1000)
    chunked = trainer.evaluate(x, y, batch_size=7)
    assert full == pytest.approx(chunked)


def test_callback_invoked_per_epoch():
    x, y = toy_problem(n=32)
    seen = []
    make_trainer().fit(x, y, x, y, epochs=3, batch_size=16,
                       callback=lambda r: seen.append(r.epoch))
    assert seen == [1, 2, 3]


def test_epoch_permutation_deterministic_and_distinct():
    t = make_trainer(seed=5)
    p0 = t.epoch_permutation(50, 0)
    assert np.array_equal(p0, t.epoch_permutation(50, 0))
    assert not np.array_equal(p0, t.epoch_permutation(50, 1))
    assert sorted(p0) == list(range(50))


def make_static_trainer(seed=0, lr=0.1):
    model = mlp(6, [16], 3, seed=seed)
    opt = SGD(model.parameters(), momentum=0.9, weight_decay=0.0001)
    return Trainer(model, opt, ConstantLR(lr), shuffle_seed=seed,
                   static_memory=True)


def test_static_memory_fit_is_bitwise_identical():
    x, y = toy_problem()
    eager = make_trainer(seed=5)
    planned = make_static_trainer(seed=5)
    r_e = eager.fit(x, y, x, y, epochs=3, batch_size=32)
    r_p = planned.fit(x, y, x, y, epochs=3, batch_size=32)
    assert [h.train_loss for h in r_e.history] == [h.train_loss for h in r_p.history]
    assert [h.test_accuracy for h in r_e.history] == [h.test_accuracy for h in r_p.history]
    se, sp = eager.model.state_dict(), planned.model.state_dict()
    for k in se:
        np.testing.assert_array_equal(se[k], sp[k])


def test_static_memory_steady_state_allocates_nothing():
    x, y = toy_problem()
    trainer = make_static_trainer()
    trainer.fit(x, y, x, y, epochs=1, batch_size=32)
    trainer.train_step(x[:32], y[:32])  # settle eval-shape churn
    before = trainer.arena_stats()["bytes_allocated"]
    for _ in range(3):
        trainer.train_step(x[:32], y[:32])
    assert trainer.arena_stats()["bytes_allocated"] == before


def test_arena_stats_none_when_eager():
    assert make_trainer().arena_stats() is None
    stats = make_static_trainer().arena_stats()
    assert stats == {k: 0 for k in stats}  # untouched arena, all counters zero
