"""Gradient accumulation (micro-batching) tests."""

import numpy as np
import pytest

from repro.core import LARS, SGD, ConstantLR, Trainer
from repro.nn.models import mlp


def data(n=48, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 6))
    y = rng.integers(0, 3, size=n)
    return x, y


def step_with_chunks(chunk, opt_cls=SGD, seed=1, steps=3, **kw):
    model = mlp(6, [8], 3, seed=seed)
    trainer = Trainer(model, opt_cls(model.parameters(), **kw), ConstantLR(0.1),
                      shuffle_seed=0)
    x, y = data()
    for _ in range(steps):
        trainer.train_step(x, y, micro_batch_size=chunk)
    return model.state_dict()


def test_micro_batching_matches_full_batch():
    """Accumulated micro-batches == one full-batch step, exactly."""
    full = step_with_chunks(None)
    chunked = step_with_chunks(16)
    for k in full:
        assert np.allclose(full[k], chunked[k], atol=1e-12)


def test_uneven_chunks_match():
    """48 examples in chunks of 20 (20+20+8): weighting handles raggedness."""
    full = step_with_chunks(None)
    ragged = step_with_chunks(20)
    for k in full:
        assert np.allclose(full[k], ragged[k], atol=1e-12)


def test_lars_with_accumulation():
    """LARS sees the summed (full-batch) gradient, so trust ratios match."""
    full = step_with_chunks(None, opt_cls=LARS, trust_coefficient=0.02,
                            weight_decay=0.0005)
    chunked = step_with_chunks(8, opt_cls=LARS, trust_coefficient=0.02,
                               weight_decay=0.0005)
    for k in full:
        assert np.allclose(full[k], chunked[k], atol=1e-12)


def test_chunk_of_one():
    full = step_with_chunks(None, steps=1)
    singles = step_with_chunks(1, steps=1)
    for k in full:
        assert np.allclose(full[k], singles[k], atol=1e-10)


def test_loss_and_accuracy_are_batch_means():
    model = mlp(6, [8], 3, seed=2)
    trainer = Trainer(model, SGD(model.parameters()), ConstantLR(0.0))
    x, y = data()
    l_full, a_full = trainer.train_step(x, y)
    model2 = mlp(6, [8], 3, seed=2)
    trainer2 = Trainer(model2, SGD(model2.parameters()), ConstantLR(0.0))
    l_chunk, a_chunk = trainer2.train_step(x, y, micro_batch_size=16)
    assert l_chunk == pytest.approx(l_full)
    assert a_chunk == pytest.approx(a_full)


def test_invalid_chunk_rejected():
    model = mlp(6, [8], 3)
    trainer = Trainer(model, SGD(model.parameters()), ConstantLR(0.1))
    x, y = data()
    with pytest.raises(ValueError):
        trainer.train_step(x, y, micro_batch_size=0)


def test_fit_with_micro_batching_matches():
    """fit(micro_batch_size=k) == fit() for non-BN models."""

    def run(micro):
        model = mlp(6, [8], 3, seed=4)
        trainer = Trainer(model, SGD(model.parameters(), momentum=0.9,
                                     weight_decay=0.0), ConstantLR(0.05),
                          shuffle_seed=2)
        x, y = data(96)
        trainer.fit(x, y, x[:24], y[:24], epochs=2, batch_size=48,
                    micro_batch_size=micro)
        return model.state_dict()

    full, chunked = run(None), run(12)
    for k in full:
        assert np.allclose(full[k], chunked[k], atol=1e-12)


def test_batchnorm_breaks_exactness():
    """Ghost-BN: per-micro-batch statistics make the results differ."""

    def run(chunk):
        model = mlp(6, [8], 3, batch_norm=True, seed=3)
        trainer = Trainer(model, SGD(model.parameters()), ConstantLR(0.1))
        x, y = data()
        trainer.train_step(x, y, micro_batch_size=chunk)
        return model.state_dict()

    full, chunked = run(None), run(12)
    assert any(not np.allclose(full[k], chunked[k], atol=1e-12) for k in full)
