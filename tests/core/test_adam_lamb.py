"""Adam and LAMB (the extension optimisers) tests."""

import numpy as np
import pytest

from repro.core import Adam, LAMB
from repro.nn import Parameter


def param(values, wd=1.0, name="w"):
    return Parameter(np.asarray(values, dtype=float), name=name, weight_decay=wd)


class TestAdam:
    def test_first_step_is_signed_lr(self):
        """With bias correction, the first Adam step is ≈ lr·sign(g)."""
        p = param([1.0, -1.0])
        p.grad[:] = [0.3, -0.7]
        Adam([p], weight_decay=0.0).step(lr=0.01)
        assert np.allclose(p.data, [1.0 - 0.01, -1.0 + 0.01], atol=1e-6)

    def test_adapts_to_gradient_scale(self):
        """Coordinates with persistently large gradients get the same step
        magnitude as small ones — per-coordinate normalisation."""
        p = param([0.0, 0.0])
        opt = Adam([p], weight_decay=0.0)
        for _ in range(50):
            p.grad[:] = [100.0, 0.01]
            opt.step(lr=0.001)
        assert abs(abs(p.data[0]) - abs(p.data[1])) < 1e-3

    def test_decoupled_weight_decay(self):
        p = param([2.0])
        p.grad[:] = [0.0]
        Adam([p], weight_decay=0.5, decoupled=True).step(lr=0.1)
        # pure decay: w -= lr * wd * w
        assert np.allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_l2_form_differs_from_decoupled(self):
        def run(decoupled):
            p = param([2.0])
            opt = Adam([p], weight_decay=0.5, decoupled=decoupled)
            for _ in range(3):
                p.grad[:] = [1.0]
                opt.step(lr=0.1)
            return p.data.copy()

        assert not np.allclose(run(True), run(False))

    def test_zero_decay_on_biases(self):
        b = param([1.0], wd=0.0)
        b.grad[:] = [0.0]
        Adam([b], weight_decay=0.5).step(lr=0.1)
        assert np.allclose(b.data, [1.0])

    def test_validation(self):
        p = param([1.0])
        with pytest.raises(ValueError):
            Adam([p], beta1=1.0)
        with pytest.raises(ValueError):
            Adam([p], eps=0.0)
        with pytest.raises(ValueError):
            Adam([p], weight_decay=-1)

    def test_state_dict_roundtrip(self):
        p = param([1.0])
        opt = Adam([p], weight_decay=0.0)
        p.grad[:] = [1.0]
        opt.step(lr=0.01)
        snap = opt.state_dict()

        q = param(p.data.copy())
        opt2 = Adam([q], weight_decay=0.0)
        opt2.load_state_dict(snap)
        p.grad[:] = [0.5]
        q.grad[:] = [0.5]
        opt.step(lr=0.01)
        opt2.step(lr=0.01)
        assert np.allclose(p.data, q.data)


class TestLAMB:
    def test_trust_ratio_scales_update(self):
        """A layer with large ‖w‖ takes a proportionally larger step."""
        big = param([30.0, 40.0], name="big")  # ||w|| = 50
        small = param([0.3, 0.4], name="small")  # ||w|| = 0.5
        opt = LAMB([big, small], weight_decay=0.0, clip_ratio=1e9)
        big.grad[:] = [1.0, 1.0]
        small.grad[:] = [1.0, 1.0]
        b0, s0 = big.data.copy(), small.data.copy()
        opt.step(lr=0.1)
        big_step = np.linalg.norm(big.data - b0)
        small_step = np.linalg.norm(small.data - s0)
        assert big_step / small_step == pytest.approx(50 / 0.5, rel=0.01)

    def test_clip_ratio_bounds_step(self):
        p = param([1000.0, 0.0])
        p.grad[:] = [1e-9, 0.0]
        opt = LAMB([p], weight_decay=0.0, clip_ratio=5.0)
        before = p.data.copy()
        opt.step(lr=0.1)
        # ratio capped at 5: step norm <= lr * 5 * ||direction|| (~1)
        assert np.linalg.norm(before - p.data) <= 0.1 * 5.0 * 1.5

    def test_excluded_params_take_plain_adam_step(self):
        bias = param([1.0], wd=0.0)
        ref = param([1.0], wd=0.0)
        lamb = LAMB([bias], weight_decay=0.01)
        adam = Adam([ref], weight_decay=0.01, eps=1e-6)
        for _ in range(3):
            bias.grad[:] = [0.3]
            ref.grad[:] = [0.3]
            lamb.step(lr=0.01)
            adam.step(lr=0.01)
        assert np.allclose(bias.data, ref.data)

    def test_zero_weight_safe(self):
        p = param([0.0, 0.0])
        p.grad[:] = [1.0, 1.0]
        LAMB([p], weight_decay=0.0).step(lr=0.1)
        assert np.all(np.isfinite(p.data))

    def test_invalid_clip(self):
        with pytest.raises(ValueError):
            LAMB([param([1.0])], clip_ratio=0.0)

    def test_stable_at_huge_lr_like_lars(self):
        """LAMB inherits LARS's large-LR stability on stiff quadratics."""
        rng = np.random.default_rng(0)
        p1 = Parameter(rng.normal(size=8) * 10, name="l1")
        p2 = Parameter(rng.normal(size=8) * 0.01, name="l2")
        opt = LAMB([p1, p2], weight_decay=0.0)
        for _ in range(50):
            p1.grad[:] = 0.01 * p1.data
            p2.grad[:] = 100.0 * p2.data
            opt.step(lr=0.5)
        assert np.isfinite(p1.data).all() and np.isfinite(p2.data).all()
