"""Batch-size schedules and the grow-batch-instead-of-decay-LR training."""

import numpy as np
import pytest

from repro.core import (
    ConstantBatch,
    ConstantLR,
    SGD,
    SteppedBatchGrowth,
    Trainer,
)
from repro.data import gaussian_blobs
from repro.nn.models import mlp

_X, _Y = gaussian_blobs(192, num_classes=3, dim=6, seed=81)


class TestSchedules:
    def test_constant(self):
        assert ConstantBatch(64)(0) == 64
        assert ConstantBatch(64)(100) == 64

    def test_constant_invalid(self):
        with pytest.raises(ValueError):
            ConstantBatch(0)

    def test_stepped_growth(self):
        s = SteppedBatchGrowth(64, milestones=[30, 60, 80], factor=10)
        assert s(0) == 64
        assert s(30) == 640
        assert s(60) == 6400
        assert s(80) == 64000

    def test_cap(self):
        s = SteppedBatchGrowth(64, milestones=[1, 2], factor=10, max_batch=1000)
        assert s(2) == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            SteppedBatchGrowth(0, [1])
        with pytest.raises(ValueError):
            SteppedBatchGrowth(8, [1], factor=1.0)

    def test_invalid_runtime_batch_flagged(self):
        class Bad(ConstantBatch):
            def batch_at(self, epoch):
                return -1

        with pytest.raises(ValueError):
            Bad(8)(0)


class TestGrowBatchTraining:
    def make_trainer(self, lr_schedule, seed=5):
        model = mlp(6, [10], 3, seed=seed)
        return Trainer(model, SGD(model.parameters(), momentum=0.9,
                                  weight_decay=0.0), lr_schedule,
                       shuffle_seed=seed), model

    def test_constant_schedule_equals_plain_fit(self):
        t1, m1 = self.make_trainer(ConstantLR(0.05))
        r1 = t1.fit(_X, _Y, _X[:48], _Y[:48], epochs=3, batch_size=32)
        t2, m2 = self.make_trainer(ConstantLR(0.05))
        r2 = t2.fit_with_batch_schedule(_X, _Y, _X[:48], _Y[:48], epochs=3,
                                        batch_schedule=ConstantBatch(32))
        for k, v in m1.state_dict().items():
            assert np.array_equal(m2.state_dict()[k], v)
        assert [h.train_loss for h in r1.history] == [h.train_loss for h in r2.history]

    def test_iterations_shrink_as_batch_grows(self):
        t, _ = self.make_trainer(ConstantLR(0.05))
        sched = SteppedBatchGrowth(16, milestones=[2, 4], factor=2)
        res = t.fit_with_batch_schedule(_X, _Y, _X[:48], _Y[:48], epochs=6,
                                        batch_schedule=sched)
        iters = [h.iterations for h in res.history]
        assert iters == [12, 12, 6, 6, 3, 3]

    def test_grow_batch_matches_decayed_lr_quality(self):
        """Smith et al.'s claim in miniature: constant LR + growing batch
        trains as well as the standard decayed-LR fixed-batch recipe."""
        from repro.core import StepDecay

        # A: fixed batch 16, LR 0.1 -> 0.05 -> 0.025 at epochs 2/4
        tA, _ = self.make_trainer(StepDecay(0.1, milestones=[24, 36], gamma=0.5))
        rA = tA.fit(_X, _Y, _X[:48], _Y[:48], epochs=6, batch_size=16)
        # B: constant LR 0.1, batch 16 -> 32 -> 64 at the same epochs
        tB, _ = self.make_trainer(ConstantLR(0.1))
        rB = tB.fit_with_batch_schedule(
            _X, _Y, _X[:48], _Y[:48], epochs=6,
            batch_schedule=SteppedBatchGrowth(16, milestones=[2, 4], factor=2),
        )
        assert rB.final_test_accuracy > rA.final_test_accuracy - 0.1

    def test_schedule_capped_by_dataset(self):
        t, _ = self.make_trainer(ConstantLR(0.05))
        sched = SteppedBatchGrowth(64, milestones=[0], factor=100)
        res = t.fit_with_batch_schedule(_X, _Y, _X[:48], _Y[:48], epochs=1,
                                        batch_schedule=sched)
        assert res.history[0].iterations == 1  # whole dataset in one batch
