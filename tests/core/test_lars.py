"""LARS tests: trust ratio math, scale invariance, exclusion rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LARS, SGD, trust_ratio
from repro.nn import Parameter


def param(values, wd=1.0, name="w"):
    return Parameter(np.asarray(values, dtype=float), name=name, weight_decay=wd)


class TestTrustRatio:
    def test_basic_formula(self):
        # ||w||=2, ||g||=1, beta=0.5 -> 2 / (1 + 1) = 1
        assert trust_ratio(2.0, 1.0, 0.5) == pytest.approx(1.0)

    def test_zero_weight_returns_one(self):
        assert trust_ratio(0.0, 1.0, 0.1) == 1.0

    def test_zero_grad_zero_decay_returns_one(self):
        assert trust_ratio(1.0, 0.0, 0.0) == 1.0

    def test_large_gradient_shrinks_ratio(self):
        assert trust_ratio(1.0, 100.0, 0.0) == pytest.approx(0.01)

    @given(
        w=st.floats(0.01, 100.0),
        g=st.floats(0.01, 100.0),
        beta=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_positive_and_finite(self, w, g, beta):
        r = trust_ratio(w, g, beta)
        assert r > 0 and np.isfinite(r)

    @given(w=st.floats(0.1, 10.0), g=st.floats(0.1, 10.0), k=st.floats(0.1, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_joint_scale_invariance(self, w, g, k):
        """Scaling ||w|| and ||g|| together leaves the ratio unchanged
        (beta=0) — LARS normalises out the layer's scale."""
        assert trust_ratio(k * w, k * g, 0.0) == pytest.approx(trust_ratio(w, g, 0.0))


class TestLARSUpdates:
    def test_update_magnitude_independent_of_gradient_scale(self):
        """The defining LARS property: without weight decay, multiplying the
        gradient by any constant leaves the update unchanged."""

        def one_step(grad_scale):
            p = param([3.0, 4.0])
            p.grad[:] = np.array([0.6, 0.8]) * grad_scale
            opt = LARS([p], trust_coefficient=0.01, momentum=0.0, weight_decay=0.0)
            before = p.data.copy()
            opt.step(lr=1.0)
            return before - p.data

        assert np.allclose(one_step(1.0), one_step(1000.0))
        assert np.allclose(one_step(1.0), one_step(1e-4))

    def test_update_norm_equals_eta_lr_weight_norm(self):
        """‖Δw‖ = lr · η · ‖w‖ when momentum and decay are off."""
        p = param([3.0, 4.0])  # ||w|| = 5
        p.grad[:] = [10.0, -2.0]
        opt = LARS([p], trust_coefficient=0.02, momentum=0.0, weight_decay=0.0)
        before = p.data.copy()
        opt.step(lr=0.5)
        assert np.linalg.norm(before - p.data) == pytest.approx(0.5 * 0.02 * 5.0)

    def test_excluded_parameters_use_plain_sgd(self):
        """Biases/BN params (wd multiplier 0) take the momentum-SGD update."""
        bias = param([1.0], wd=0.0, name="b")
        ref = param([1.0], wd=0.0, name="b")
        lars = LARS([bias], trust_coefficient=0.001, momentum=0.9, weight_decay=0.0005)
        sgd = SGD([ref], momentum=0.9, weight_decay=0.0005)
        for _ in range(3):
            bias.grad[:] = [0.3]
            ref.grad[:] = [0.3]
            lars.step(lr=0.1)
            sgd.step(lr=0.1)
        assert np.allclose(bias.data, ref.data)

    def test_custom_exclusion_predicate(self):
        p = param([3.0, 4.0], name="special")
        opt = LARS([p], trust_coefficient=0.001,
                   exclude_from_adaptation=lambda q: q.name == "special")
        assert opt.local_lr(p) == 1.0

    def test_momentum_carries_between_steps(self):
        p = param([1.0, 0.0])
        opt = LARS([p], trust_coefficient=0.01, momentum=0.9, weight_decay=0.0)
        p.grad[:] = [1.0, 0.0]
        opt.step(lr=1.0)
        d1 = 1.0 - p.data[0]
        p.grad[:] = [0.0, 0.0]
        opt.step(lr=1.0)  # pure momentum coast
        d2 = 1.0 - p.data[0] - d1
        assert d2 == pytest.approx(0.9 * d1)

    def test_weight_decay_enters_both_ratio_and_gradient(self):
        p = param([2.0])
        p.grad[:] = [0.0]
        opt = LARS([p], trust_coefficient=0.1, momentum=0.0, weight_decay=0.5)
        opt.step(lr=1.0)
        # ratio = ||w||/(0 + 0.5 ||w||) = 2; g_eff = 0.5*w = 1; step = 0.1*2*1 = 0.2
        assert np.allclose(p.data, [2.0 - 0.2])

    def test_clip_trust_bounds_local_lr(self):
        p = param([100.0])
        p.grad[:] = [1e-6]
        opt = LARS([p], trust_coefficient=1.0, momentum=0.0, weight_decay=0.0,
                   clip_trust=0.5)
        assert opt.local_lr(p) == 0.5

    def test_zero_gradient_is_safe(self):
        p = param([1.0, 1.0])
        p.grad[:] = 0.0
        opt = LARS([p], momentum=0.0, weight_decay=0.0)
        opt.step(lr=1.0)
        assert np.all(np.isfinite(p.data))
        assert np.allclose(p.data, [1.0, 1.0])

    def test_per_layer_rates_differ(self):
        """Layers with different ||w||/||g|| ratios get different local LRs —
        the whole point of layer-wise adaptation."""
        p1 = param([10.0, 0.0], name="big_w")
        p2 = param([0.1, 0.0], name="small_w")
        p1.grad[:] = [1.0, 0.0]
        p2.grad[:] = [1.0, 0.0]
        opt = LARS([p1, p2], trust_coefficient=0.01, weight_decay=0.0)
        assert opt.local_lr(p1) > opt.local_lr(p2)

    def test_trust_ratios_diagnostic(self):
        p1 = param([10.0, 0.0], name="w1")
        p2 = param([0.1, 0.0], name="w2")
        bias = param([1.0], wd=0.0, name="b")
        p1.grad[:] = [1.0, 0.0]
        p2.grad[:] = [1.0, 0.0]
        bias.grad[:] = [1.0]
        opt = LARS([p1, p2, bias], trust_coefficient=0.01, weight_decay=0.0)
        ratios = opt.trust_ratios()
        assert ratios["w1"] == pytest.approx(10.0)
        assert ratios["w2"] == pytest.approx(0.1)
        assert ratios["b"] == 1.0  # excluded

    def test_trust_ratios_unnamed_params_get_indices(self):
        p = Parameter(np.ones(2))
        p.grad[:] = 1.0
        opt = LARS([p], trust_coefficient=0.01)
        assert "param0" in opt.trust_ratios()

    def test_invalid_hyperparameters(self):
        p = param([1.0])
        with pytest.raises(ValueError):
            LARS([p], trust_coefficient=0.0)
        with pytest.raises(ValueError):
            LARS([p], momentum=1.5)
        with pytest.raises(ValueError):
            LARS([p], weight_decay=-0.1)


class TestLARSStability:
    """The Table 5 vs Table 7 story in miniature: with a huge LR, plain SGD
    diverges on an ill-conditioned quadratic while LARS stays bounded."""

    @staticmethod
    def quadratic_grad(p, scales):
        return scales * p.data

    def run(self, opt_cls, lr, steps=50, **kw):
        rng = np.random.default_rng(0)
        # two "layers" with very different curvature
        p1 = Parameter(rng.normal(size=8) * 10, name="l1.weight")
        p2 = Parameter(rng.normal(size=8) * 0.01, name="l2.weight")
        s1, s2 = 0.01, 100.0
        opt = opt_cls([p1, p2], **kw)
        for _ in range(steps):
            p1.grad[:] = s1 * p1.data
            p2.grad[:] = s2 * p2.data
            opt.step(lr=lr)
            if not (np.isfinite(p1.data).all() and np.isfinite(p2.data).all()):
                return np.inf
        return float(np.linalg.norm(p1.data) + np.linalg.norm(p2.data))

    def test_sgd_diverges_lars_does_not(self):
        lr = 5.0  # >> 2/L for the stiff layer
        sgd_final = self.run(SGD, lr, momentum=0.0, weight_decay=0.0)
        lars_final = self.run(LARS, lr, momentum=0.0, weight_decay=0.0,
                              trust_coefficient=0.01)
        assert sgd_final == np.inf or sgd_final > 1e6
        assert np.isfinite(lars_final)
