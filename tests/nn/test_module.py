"""Module base-class mechanics: naming, state dicts, modes, containers."""

import numpy as np
import pytest

from repro.nn import BatchNorm, Dense, Dropout, Flatten, ReLU, Residual, Sequential
from repro.nn.models import mlp


def small_model():
    return mlp(8, [6, 4], 3, batch_norm=True, seed=0)


def test_parameters_deterministic_order():
    m1, m2 = small_model(), small_model()
    names1 = [p.name for p in m1.parameters()]
    names2 = [p.name for p in m2.parameters()]
    assert names1 == names2
    assert len(names1) == len(set(names1))  # unique


def test_assign_names_produces_dotted_paths():
    m = small_model()
    names = {p.name for p in m.parameters()}
    assert any(name.startswith("mlp.layers.0") for name in names)


def test_state_dict_roundtrip():
    m1, m2 = small_model(), small_model()
    for p in m1.parameters():
        p.data += 1.0
    m2.load_state_dict(m1.state_dict())
    for p1, p2 in zip(m1.parameters(), m2.parameters()):
        assert np.array_equal(p1.data, p2.data)


def test_state_dict_is_a_copy():
    m = small_model()
    sd = m.state_dict()
    first = m.parameters()[0]
    sd[first.name] += 99.0
    assert not np.array_equal(first.data, sd[first.name])


def test_load_state_dict_missing_key_raises():
    m = small_model()
    sd = m.state_dict()
    sd.pop(next(iter(sd)))
    with pytest.raises(KeyError):
        m.load_state_dict(sd)


def test_load_state_dict_shape_mismatch_raises():
    m = small_model()
    sd = m.state_dict()
    k = next(iter(sd))
    sd[k] = np.zeros((1, 1))
    with pytest.raises(ValueError):
        m.load_state_dict(sd)


def test_train_eval_propagates():
    m = Sequential(Dense(4, 4), Dropout(0.5), BatchNorm(4))
    m.eval()
    assert all(not mod.training for mod in m.modules())
    m.train()
    assert all(mod.training for mod in m.modules())


def test_zero_grad_clears_all():
    m = small_model()
    x = np.random.default_rng(0).normal(size=(4, 8))
    out = m.forward(x)
    m.backward(np.ones_like(out))
    assert any(np.any(p.grad != 0) for p in m.parameters())
    m.zero_grad()
    assert all(np.all(p.grad == 0) for p in m.parameters())


def test_sequential_forward_backward_chain():
    m = Sequential(Dense(4, 4, rng=np.random.default_rng(0)), ReLU(),
                   Dense(4, 2, rng=np.random.default_rng(1)))
    x = np.random.default_rng(2).normal(size=(3, 4))
    out = m.forward(x)
    assert out.shape == (3, 2)
    dx = m.backward(np.ones((3, 2)))
    assert dx.shape == (3, 4)


def test_sequential_append_getitem_len():
    m = Sequential(Dense(2, 2))
    m.append(ReLU())
    assert len(m) == 2
    assert isinstance(m[1], ReLU)


def test_num_parameters():
    m = Sequential(Dense(4, 3))  # 4*3 + 3
    assert m.num_parameters() == 15


def test_residual_shape_mismatch_raises():
    block = Residual(Sequential(Dense(4, 5)))
    with pytest.raises(ValueError):
        block.output_shape((4,))


def test_summary_contains_totals():
    m = small_model()
    s = m.summary((8,))
    assert "total" in s
    assert str(m.num_parameters()) in s


def test_flatten_roundtrip():
    f = Flatten()
    x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
    y = f.forward(x)
    assert y.shape == (2, 48)
    assert f.backward(y).shape == x.shape
