"""Activation and dropout tests."""

import numpy as np
import pytest

from repro.nn import Dropout, ReLU, Sigmoid, Tanh
from repro.nn.gradcheck import check_layer_gradients


class TestReLU:
    def test_forward(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        assert np.array_equal(ReLU().forward(x), [[0.0, 0.0, 2.0]])

    def test_gradients(self):
        x = np.random.default_rng(0).normal(size=(4, 6)) + 0.1  # avoid kink
        check_layer_gradients(ReLU(), x, tol=1e-7)

    def test_gradient_blocked_at_negative(self):
        relu = ReLU()
        relu.forward(np.array([[-5.0, 5.0]]))
        dx = relu.backward(np.array([[1.0, 1.0]]))
        assert np.array_equal(dx, [[0.0, 1.0]])


class TestSigmoidTanh:
    def test_sigmoid_range_and_symmetry(self):
        s = Sigmoid()
        x = np.linspace(-10, 10, 21)[None]
        y = s.forward(x)
        assert np.all((y > 0) & (y < 1))
        assert np.allclose(y + y[:, ::-1], 1.0)

    def test_sigmoid_large_negative_stable(self):
        y = Sigmoid().forward(np.array([[-1000.0]]))
        assert np.isfinite(y).all() and y[0, 0] >= 0

    def test_sigmoid_gradients(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        check_layer_gradients(Sigmoid(), x, tol=1e-6)

    def test_tanh_gradients(self):
        x = np.random.default_rng(2).normal(size=(3, 5))
        check_layer_gradients(Tanh(), x, tol=1e-6)


class TestDropout:
    def test_eval_mode_is_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = np.random.default_rng(0).normal(size=(8, 8))
        assert np.array_equal(d.forward(x), x)

    def test_p_zero_is_identity(self):
        d = Dropout(0.0)
        x = np.random.default_rng(0).normal(size=(8, 8))
        assert np.array_equal(d.forward(x), x)

    def test_expected_value_preserved(self):
        d = Dropout(0.3, rng=np.random.default_rng(1))
        x = np.ones((200, 200))
        y = d.forward(x)
        assert abs(y.mean() - 1.0) < 0.02

    def test_mask_reused_in_backward(self):
        d = Dropout(0.5, rng=np.random.default_rng(2))
        x = np.ones((10, 10))
        y = d.forward(x)
        dx = d.backward(np.ones((10, 10)))
        # gradient passes exactly where forward passed
        assert np.array_equal(dx == 0, y == 0)

    def test_reseed_gives_identical_masks(self):
        d1, d2 = Dropout(0.5), Dropout(0.5)
        d1.reseed(77)
        d2.reseed(77)
        x = np.ones((16, 16))
        assert np.array_equal(d1.forward(x), d2.forward(x))

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)
