"""Bitwise eager-vs-planned parity across the model registry.

The static-memory mode (persistent arena slots threaded through ``out=``)
must change *nothing* numerically — every comparison here is exact array
equality over multiple optimiser steps, which catches both arithmetic
drift (a reordered reduction) and state leaks (a stale buffer read).

Two more invariants ride along:

* **zero steady state** — once slots exist (after the first step; the
  second is allowed to add backward-only buffers), further steps perform
  zero fresh arena allocations;
* **exact peak prediction** — :func:`plan_training_step` replays the same
  request stream through a dry-run arena, so its ``peak_bytes`` equals the
  live arena's high-water mark to the byte.
"""

import numpy as np
import pytest

from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.memory import MemoryContext, plan_training_step
from repro.nn.models import build_model

STEPS = 4

CONFIGS = [
    pytest.param(
        "mlp",
        dict(in_features=32, hidden=[24, 16], num_classes=5, batch_norm=True,
             flatten_input=False),
        (32,), 8, id="mlp-bn"),
    pytest.param(
        "micro_alexnet", dict(image_size=16, norm="bn", dropout=0.5),
        (3, 16, 16), 8, id="alexnet-bn-dropout"),
    pytest.param(
        "micro_alexnet", dict(image_size=16, norm="lrn", dropout=0.25),
        (3, 16, 16), 8, id="alexnet-lrn-dropout"),
    pytest.param(
        "micro_resnet", dict(width=8), (3, 16, 16), 8, id="micro_resnet"),
    pytest.param(
        "micro_googlenet", dict(width=8), (3, 16, 16), 8, id="micro_googlenet"),
]


def _data(name, kwargs, in_shape, batch):
    rng = np.random.default_rng(42)
    xs = [rng.standard_normal((batch, *in_shape)) for _ in range(STEPS)]
    ncls = kwargs.get("num_classes", 10)
    ys = [rng.integers(0, ncls, size=batch) for _ in range(STEPS)]
    return xs, ys


def _run(name, kwargs, xs, ys, planned):
    """Train STEPS plain-SGD steps; record everything observable each step."""
    model = build_model(name, **kwargs)
    loss = SoftmaxCrossEntropy(label_smoothing=0.1)
    mem = None
    if planned:
        mem = MemoryContext()
        model.bind_memory(mem)
        loss.bind_memory(mem)
    records, allocs = [], []
    for t in range(STEPS):
        model.zero_grad()
        before = mem.bytes_allocated if mem else 0
        logits = model.forward(xs[t])
        loss_val = loss.forward(logits, ys[t])
        model.backward(loss.backward())
        allocs.append((mem.bytes_allocated - before) if mem else 0)
        grads = {p.name: p.grad.copy() for p in model.parameters()}
        for p in model.parameters():
            p.data -= 0.01 * p.grad
        weights = {p.name: p.data.copy() for p in model.parameters()}
        records.append((loss_val, logits.copy(), grads, weights))
    return records, allocs, mem


@pytest.mark.parametrize("name,kwargs,in_shape,batch", CONFIGS)
def test_planned_is_bitwise_identical_to_eager(name, kwargs, in_shape, batch):
    xs, ys = _data(name, kwargs, in_shape, batch)
    eager, _, _ = _run(name, kwargs, xs, ys, planned=False)
    planned, _, _ = _run(name, kwargs, xs, ys, planned=True)
    for t in range(STEPS):
        loss_e, logits_e, grads_e, weights_e = eager[t]
        loss_p, logits_p, grads_p, weights_p = planned[t]
        assert loss_e == loss_p, f"step {t}: loss differs"
        np.testing.assert_array_equal(logits_e, logits_p, err_msg=f"step {t}")
        for k in grads_e:
            np.testing.assert_array_equal(
                grads_e[k], grads_p[k], err_msg=f"step {t}: grad {k}")
        for k in weights_e:
            np.testing.assert_array_equal(
                weights_e[k], weights_p[k], err_msg=f"step {t}: weight {k}")


@pytest.mark.parametrize("name,kwargs,in_shape,batch", CONFIGS)
def test_steady_state_performs_zero_allocations(name, kwargs, in_shape, batch):
    xs, ys = _data(name, kwargs, in_shape, batch)
    _, allocs, _ = _run(name, kwargs, xs, ys, planned=True)
    assert allocs[0] > 0  # first step populates the slots
    assert allocs[2:] == [0] * (STEPS - 2), (
        f"steady-state steps allocated: {allocs}")


@pytest.mark.parametrize("name,kwargs,in_shape,batch", CONFIGS)
def test_plan_peak_matches_live_arena_exactly(name, kwargs, in_shape, batch):
    xs, ys = _data(name, kwargs, in_shape, batch)
    _, _, mem = _run(name, kwargs, xs, ys, planned=True)
    plan = plan_training_step(build_model(name, **kwargs), in_shape, batch,
                              loss=SoftmaxCrossEntropy(label_smoothing=0.1))
    assert plan.peak_bytes == mem.arena.peak_bytes
    assert plan.pool_bytes == mem.arena.pool_bytes


def test_close_then_rebind_is_still_bitwise_stable():
    # After MemoryContext.close() the pool is warm; a fresh run through the
    # same model must reuse it and stay bitwise identical to eager.
    name, kwargs, in_shape, batch = "micro_resnet", dict(width=8), (3, 16, 16), 4
    xs, ys = _data(name, kwargs, in_shape, batch)
    eager, _, _ = _run(name, kwargs, xs, ys, planned=False)
    model = build_model(name, **kwargs)
    loss = SoftmaxCrossEntropy(label_smoothing=0.1)
    mem = MemoryContext()
    model.bind_memory(mem)
    loss.bind_memory(mem)
    model.zero_grad()
    logits = model.forward(xs[0])
    loss.forward(logits, ys[0])
    model.backward(loss.backward())
    mem.close()
    allocated = mem.bytes_allocated
    # second pass over the same shapes: warm pool, no fresh allocations.
    # Slots were re-dealt from the freelist, so copy the logits before
    # backward — a slot's contents are only pinned until they are consumed.
    model.zero_grad()
    logits = model.forward(xs[0]).copy()
    loss_val = loss.forward(logits, ys[0])
    model.backward(loss.backward())
    assert mem.bytes_allocated == allocated
    assert loss_val == eager[0][0]
    np.testing.assert_array_equal(logits, eager[0][1])
