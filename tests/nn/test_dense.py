"""Dense layer tests."""

import numpy as np
import pytest

from repro.nn import Dense
from repro.nn.gradcheck import check_layer_gradients


def test_forward_matches_matmul():
    layer = Dense(4, 3, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(size=(5, 4))
    expected = x @ layer.weight.data + layer.bias.data
    assert np.allclose(layer.forward(x), expected)


def test_forward_no_bias():
    layer = Dense(4, 3, bias=False, rng=np.random.default_rng(0))
    assert layer.bias is None
    x = np.random.default_rng(1).normal(size=(2, 4))
    assert np.allclose(layer.forward(x), x @ layer.weight.data)


def test_gradients():
    layer = Dense(6, 4, rng=np.random.default_rng(2))
    x = np.random.default_rng(3).normal(size=(3, 6))
    check_layer_gradients(layer, x, tol=1e-7)


def test_gradients_no_bias():
    layer = Dense(6, 4, bias=False, rng=np.random.default_rng(2))
    x = np.random.default_rng(3).normal(size=(3, 6))
    check_layer_gradients(layer, x, tol=1e-7)


def test_bias_has_zero_weight_decay():
    layer = Dense(4, 3)
    assert layer.bias.weight_decay == 0.0
    assert layer.weight.weight_decay == 1.0


def test_output_shape_and_flops():
    layer = Dense(256, 128)
    assert layer.output_shape((256,)) == (128,)
    assert layer.flops_per_example((256,)) == 2 * 256 * 128 + 128
    with pytest.raises(ValueError):
        layer.output_shape((7,))


def test_backward_before_forward_raises():
    with pytest.raises(RuntimeError):
        Dense(3, 2).backward(np.zeros((1, 2)))
