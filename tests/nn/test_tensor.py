"""Tests for Parameter gradient bookkeeping."""

import numpy as np

from repro.nn import Parameter


def test_parameter_stores_float64():
    p = Parameter(np.array([1, 2, 3], dtype=np.int32))
    assert p.data.dtype == np.float64


def test_grad_initialised_to_zero_same_shape():
    p = Parameter(np.ones((3, 4)))
    assert p.grad.shape == (3, 4)
    assert np.all(p.grad == 0)


def test_accumulate_sums_gradients():
    p = Parameter(np.zeros(4))
    p.accumulate(np.ones(4))
    p.accumulate(2 * np.ones(4))
    assert np.allclose(p.grad, 3.0)


def test_zero_grad_resets_in_place():
    p = Parameter(np.zeros(4))
    g = p.grad
    p.accumulate(np.ones(4))
    p.zero_grad()
    assert np.all(p.grad == 0)
    assert p.grad is g  # in place, not reallocated


def test_copy_is_deep():
    p = Parameter(np.ones(3), name="w", weight_decay=0.0)
    p.accumulate(np.ones(3))
    q = p.copy()
    q.data += 1
    q.grad += 1
    assert np.all(p.data == 1) and np.all(p.grad == 1)
    assert q.name == "w" and q.weight_decay == 0.0


def test_shape_and_size_properties():
    p = Parameter(np.zeros((2, 5)))
    assert p.shape == (2, 5)
    assert p.size == 10


def test_default_weight_decay_is_one():
    assert Parameter(np.zeros(1)).weight_decay == 1.0
