"""ConcatBranches layer and GoogLeNet model tests."""

import numpy as np
import pytest

from repro.nn import ConcatBranches, Conv2D, ReLU, Sequential
from repro.nn.gradcheck import check_layer_gradients
from repro.nn.models import (
    build_model,
    inception_module,
    micro_googlenet,
    paper_model_cost,
)


class TestConcatBranches:
    def make(self):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(2)
        return ConcatBranches(
            Sequential(Conv2D(3, 4, 1, rng=rng1), ReLU()),
            Sequential(Conv2D(3, 6, 3, padding=1, rng=rng2), ReLU()),
        )

    def test_channels_add(self):
        assert self.make().output_shape((3, 8, 8)) == (10, 8, 8)

    def test_forward_is_concat(self):
        layer = self.make()
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        out = layer.forward(x)
        b1 = layer.branches[0].forward(x)
        assert np.allclose(out[:, :4], b1)

    def test_gradients(self):
        layer = self.make()
        x = np.random.default_rng(3).normal(size=(2, 3, 6, 6))
        check_layer_gradients(layer, x, tol=1e-6)

    def test_mismatched_spatial_rejected(self):
        layer = ConcatBranches(
            Sequential(Conv2D(3, 4, 1)),
            Sequential(Conv2D(3, 4, 3)),  # no padding: smaller output
        )
        with pytest.raises(ValueError):
            layer.output_shape((3, 8, 8))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ConcatBranches()

    def test_flops_sum_over_branches(self):
        layer = self.make()
        total = sum(b.flops_per_example((3, 8, 8)) for b in layer.branches)
        assert layer.flops_per_example((3, 8, 8)) == total


class TestInceptionModule:
    def test_output_channels(self):
        rng = np.random.default_rng(0)
        mod = inception_module(192, 64, 96, 128, 16, 32, 32, rng)
        assert mod.output_shape((192, 28, 28)) == (64 + 128 + 32 + 32, 28, 28)

    def test_forward_backward(self):
        rng = np.random.default_rng(1)
        mod = inception_module(8, 4, 4, 8, 2, 4, 4, rng)
        x = np.random.default_rng(2).normal(size=(2, 8, 6, 6))
        out = mod.forward(x)
        assert out.shape == (2, 20, 6, 6)
        dx = mod.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()


class TestGoogLeNet:
    def test_paper_cost_numbers(self):
        """Inception-v1: ~6.8-7 M params, ~3 Gflop per 224x224 image."""
        c = paper_model_cost("googlenet")
        assert 6.5e6 < c.parameters < 7.5e6
        assert 2.5e9 < c.flops_per_image < 3.5e9

    def test_highest_scaling_ratio_in_zoo(self):
        """GoogLeNet's tiny |W| gives it an even better comp/comm ratio than
        ResNet-50 — consistent with FireCaffe scaling it first."""
        g = paper_model_cost("googlenet").scaling_ratio
        r = paper_model_cost("resnet50").scaling_ratio
        a = paper_model_cost("alexnet").scaling_ratio
        assert g > r > a

    def test_micro_trains(self):
        model = micro_googlenet(num_classes=4, width=4, seed=1)
        x = np.random.default_rng(0).normal(size=(4, 3, 8, 8))
        out = model.forward(x)
        assert out.shape == (4, 4)
        model.backward(np.ones_like(out))
        assert all(np.isfinite(p.grad).all() for p in model.parameters())

    def test_registry_build(self):
        m = build_model("micro_googlenet", num_classes=3, width=4)
        assert m.num_parameters() > 0
