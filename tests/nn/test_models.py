"""Model zoo tests: shapes, Table 6 cost numbers, gradient spot-checks."""

import numpy as np
import pytest

from repro.nn import SoftmaxCrossEntropy
from repro.nn.gradcheck import check_model_loss_gradients
from repro.nn.models import (
    build_model,
    micro_alexnet,
    micro_resnet,
    mlp,
    paper_model_cost,
)


class TestPaperCosts:
    """Table 6: AlexNet 61 M params / 1.5 Gflop; ResNet-50 25 M / 7.7 Gflop."""

    def test_alexnet_parameters(self):
        c = paper_model_cost("alexnet")
        assert abs(c.parameters - 61e6) / 61e6 < 0.02

    def test_alexnet_flops(self):
        c = paper_model_cost("alexnet")
        assert abs(c.flops_per_image - 1.5e9) / 1.5e9 < 0.10

    def test_resnet50_parameters(self):
        c = paper_model_cost("resnet50")
        assert abs(c.parameters - 25.5e6) / 25.5e6 < 0.02

    def test_resnet50_flops(self):
        # paper counts conv/fc MACs only (7.7G); we add BN/pool/ReLU (~8.2G)
        c = paper_model_cost("resnet50")
        assert abs(c.flops_per_image - 7.7e9) / 7.7e9 < 0.12

    def test_scaling_ratio_factor(self):
        """ResNet-50's comp/comm ratio is ~12.5x AlexNet's (Table 6)."""
        r = paper_model_cost("resnet50").scaling_ratio
        a = paper_model_cost("alexnet").scaling_ratio
        assert 10.0 < r / a < 16.0

    def test_model_bytes_fp32(self):
        c = paper_model_cost("alexnet")
        assert c.model_bytes == 4 * c.parameters

    def test_training_flops_independent_of_batch(self):
        c = paper_model_cost("alexnet")
        assert c.training_flops(1_281_167, 100) == 3 * c.flops_per_image * 1_281_167 * 100

    def test_resnet18_34_param_counts(self):
        assert abs(paper_model_cost("resnet18").parameters - 11.7e6) / 11.7e6 < 0.02
        assert abs(paper_model_cost("resnet34").parameters - 21.8e6) / 21.8e6 < 0.02


class TestProxyModels:
    def test_micro_alexnet_forward_shapes(self):
        for norm in ["bn", "lrn", "none"]:
            m = micro_alexnet(num_classes=7, image_size=16, width=4, hidden=16, norm=norm)
            x = np.random.default_rng(0).normal(size=(2, 3, 16, 16))
            assert m.forward(x).shape == (2, 7)

    def test_micro_alexnet_invalid_norm(self):
        with pytest.raises(ValueError):
            micro_alexnet(norm="groupnorm")

    def test_micro_resnet_forward_shape(self):
        m = micro_resnet(num_classes=5, width=4, blocks_per_stage=1)
        x = np.random.default_rng(1).normal(size=(2, 3, 16, 16))
        assert m.forward(x).shape == (2, 5)

    def test_micro_resnet_trains_end_to_end(self):
        """One backward pass produces finite, nonzero gradients everywhere."""
        m = micro_resnet(num_classes=4, width=4)
        x = np.random.default_rng(2).normal(size=(8, 3, 8, 8))
        y = np.random.default_rng(3).integers(0, 4, size=8)
        loss = SoftmaxCrossEntropy()
        loss.forward(m.forward(x), y)
        m.backward(loss.backward())
        for p in m.parameters():
            assert np.isfinite(p.grad).all()

    def test_micro_resnet_gradcheck(self):
        m = micro_resnet(num_classes=3, width=2, blocks_per_stage=1, seed=5)
        x = np.random.default_rng(4).normal(size=(4, 3, 8, 8))
        y = np.array([0, 1, 2, 1])
        check_model_loss_gradients(m, x, y, tol=5e-4, max_entries=10)

    def test_micro_alexnet_gradcheck_lrn(self):
        m = micro_alexnet(num_classes=3, image_size=8, width=2, hidden=8,
                          norm="lrn", seed=6)
        x = np.random.default_rng(5).normal(size=(3, 3, 8, 8))
        y = np.array([0, 1, 2])
        check_model_loss_gradients(m, x, y, tol=5e-4, max_entries=10)

    def test_mlp_gradcheck(self):
        m = mlp(6, [5], 4, seed=7)
        x = np.random.default_rng(6).normal(size=(5, 6))
        y = np.array([0, 1, 2, 3, 0])
        check_model_loss_gradients(m, x, y, tol=1e-5, max_entries=20)


class TestRegistry:
    def test_build_model_known(self):
        m = build_model("micro_resnet", num_classes=3, width=2)
        assert m.num_parameters() > 0

    def test_build_model_unknown_raises(self):
        with pytest.raises(KeyError):
            build_model("vgg16")

    def test_paper_cost_unknown_raises(self):
        with pytest.raises(KeyError):
            paper_model_cost("micro_resnet")

    def test_paper_cost_cached(self):
        assert paper_model_cost("alexnet") is paper_model_cost("alexnet")


class TestSeedDeterminism:
    def test_same_seed_same_weights(self):
        a = micro_resnet(seed=11)
        b = micro_resnet(seed=11)
        for pa, pb in zip(a.parameters(), b.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = micro_resnet(seed=11)
        b = micro_resnet(seed=12)
        assert any(
            not np.array_equal(pa.data, pb.data)
            for pa, pb in zip(a.parameters(), b.parameters())
        )
