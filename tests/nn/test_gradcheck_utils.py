"""Tests for the gradient-checking utilities themselves."""

import numpy as np
import pytest

from repro.nn import Dense
from repro.nn.gradcheck import (
    check_layer_gradients,
    numeric_gradient,
    relative_error,
)


class TestNumericGradient:
    def test_quadratic(self):
        x = np.array([1.0, -2.0, 3.0])
        g = numeric_gradient(lambda: float(np.sum(x**2)), x)
        assert np.allclose(g, 2 * x, atol=1e-6)

    def test_linear_with_coefficients(self):
        c = np.array([0.5, -1.5])
        x = np.array([2.0, 4.0])
        g = numeric_gradient(lambda: float(c @ x), x)
        assert np.allclose(g, c, atol=1e-8)

    def test_restores_input(self):
        x = np.array([1.0, 2.0])
        x0 = x.copy()
        numeric_gradient(lambda: float(np.sum(np.sin(x))), x)
        assert np.array_equal(x, x0)

    def test_matrix_input(self):
        x = np.arange(6.0).reshape(2, 3)
        g = numeric_gradient(lambda: float(np.sum(x * x)), x)
        assert np.allclose(g, 2 * x, atol=1e-6)


class TestRelativeError:
    def test_zero_for_equal(self):
        a = np.random.default_rng(0).normal(size=5)
        assert relative_error(a, a.copy()) == 0.0

    def test_symmetric(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.1, 2.2])
        assert relative_error(a, b) == relative_error(b, a)

    def test_scale_free(self):
        a, b = np.array([1.0]), np.array([1.01])
        assert relative_error(1000 * a, 1000 * b) == pytest.approx(
            relative_error(a, b), rel=1e-9)

    def test_empty_arrays(self):
        assert relative_error(np.zeros(0), np.zeros(0)) == 0.0


class TestCheckLayerGradients:
    def test_passes_on_correct_layer(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        errs = check_layer_gradients(layer, np.random.default_rng(1).normal(size=(3, 4)))
        assert all(v < 1e-5 for v in errs.values())

    def test_catches_broken_backward(self):
        """A layer with a deliberately wrong backward must fail the check —
        the checker itself is falsifiable."""

        class Broken(Dense):
            def backward(self, grad_out):
                dx = super().backward(grad_out)
                self.weight.grad *= 1.5  # sabotage
                return dx

        layer = Broken(4, 3, rng=np.random.default_rng(0))
        with pytest.raises(AssertionError):
            check_layer_gradients(layer, np.random.default_rng(1).normal(size=(3, 4)))

    def test_catches_broken_input_gradient(self):
        class BrokenDx(Dense):
            def backward(self, grad_out):
                return 0.9 * super().backward(grad_out)

        layer = BrokenDx(4, 3, rng=np.random.default_rng(0))
        with pytest.raises(AssertionError):
            check_layer_gradients(layer, np.random.default_rng(1).normal(size=(3, 4)))
