"""Softmax cross-entropy tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import SoftmaxCrossEntropy, log_softmax, softmax
from repro.nn.gradcheck import numeric_gradient, relative_error


def test_softmax_rows_sum_to_one():
    x = np.random.default_rng(0).normal(size=(5, 7)) * 10
    p = softmax(x)
    assert np.allclose(p.sum(axis=1), 1.0)
    assert np.all(p >= 0)


def test_softmax_stable_for_large_logits():
    p = softmax(np.array([[1e4, 0.0, -1e4]]))
    assert np.isfinite(p).all()
    assert p[0, 0] == pytest.approx(1.0)


def test_log_softmax_consistent_with_softmax():
    x = np.random.default_rng(1).normal(size=(3, 4))
    assert np.allclose(np.exp(log_softmax(x)), softmax(x))


def test_uniform_logits_loss_is_log_k():
    loss = SoftmaxCrossEntropy()
    k = 10
    val = loss.forward(np.zeros((4, k)), np.arange(4) % k)
    assert val == pytest.approx(np.log(k))


def test_perfect_prediction_loss_near_zero():
    loss = SoftmaxCrossEntropy()
    logits = np.full((3, 5), -100.0)
    logits[np.arange(3), [0, 1, 2]] = 100.0
    assert loss.forward(logits, np.array([0, 1, 2])) < 1e-6


def test_gradient_matches_numeric():
    loss = SoftmaxCrossEntropy()
    rng = np.random.default_rng(2)
    logits = rng.normal(size=(4, 6))
    targets = rng.integers(0, 6, size=4)

    loss.forward(logits, targets)
    grad = loss.backward()
    num = numeric_gradient(lambda: loss_eval(logits, targets), logits)
    assert relative_error(grad, num) < 1e-6


def loss_eval(logits, targets):
    return SoftmaxCrossEntropy().forward(logits, targets)


def test_gradient_rows_sum_to_zero():
    """softmax CE gradient is probs - onehot, each row sums to 0."""
    loss = SoftmaxCrossEntropy()
    rng = np.random.default_rng(3)
    loss.forward(rng.normal(size=(8, 5)), rng.integers(0, 5, size=8))
    g = loss.backward()
    assert np.allclose(g.sum(axis=1), 0, atol=1e-12)


def test_gradient_scaled_by_batch_size():
    """Mean reduction: per-example gradient magnitude scales as 1/B."""
    rng = np.random.default_rng(4)
    logits1 = rng.normal(size=(1, 5))
    loss = SoftmaxCrossEntropy()
    loss.forward(logits1, np.array([2]))
    g1 = loss.backward()
    logitsB = np.repeat(logits1, 10, axis=0)
    loss.forward(logitsB, np.full(10, 2))
    gB = loss.backward()
    assert np.allclose(gB[0], g1[0] / 10)


def test_label_smoothing_changes_target_distribution():
    loss = SoftmaxCrossEntropy(label_smoothing=0.1)
    val = loss.forward(np.zeros((2, 4)), np.array([0, 1]))
    assert val == pytest.approx(np.log(4))  # uniform logits: same loss
    g = loss.backward()
    # smoothed target: no entry of the gradient equals probs - 1 exactly
    assert g.min() > (0.25 - 1.0) / 2


def test_invalid_targets_raise():
    loss = SoftmaxCrossEntropy()
    with pytest.raises(ValueError):
        loss.forward(np.zeros((2, 3)), np.array([0, 3]))
    with pytest.raises(ValueError):
        loss.forward(np.zeros((2, 3)), np.array([0]))


def test_invalid_smoothing_raises():
    with pytest.raises(ValueError):
        SoftmaxCrossEntropy(label_smoothing=1.0)


@given(st.integers(2, 8), st.integers(2, 10))
@settings(max_examples=20, deadline=None)
def test_loss_nonnegative_property(n, k):
    rng = np.random.default_rng(n * 100 + k)
    loss = SoftmaxCrossEntropy()
    val = loss.forward(rng.normal(size=(n, k)), rng.integers(0, k, size=n))
    assert val >= 0.0
