"""Pooling layer tests."""

import numpy as np
import pytest

from repro.nn import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from repro.nn.gradcheck import check_layer_gradients, relative_error


def naive_maxpool(x, k, s, p):
    n, c, h, w = x.shape
    if p:
        x = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=-np.inf)
    oh = (h + 2 * p - k) // s + 1
    ow = (w + 2 * p - k) // s + 1
    out = np.empty((n, c, oh, ow))
    for i in range(oh):
        for j in range(ow):
            out[:, :, i, j] = x[:, :, i * s : i * s + k, j * s : j * s + k].max(axis=(2, 3))
    return out


class TestMaxPool:
    @pytest.mark.parametrize("k,s,p", [(2, 2, 0), (3, 2, 0), (3, 2, 1), (3, 1, 1)])
    def test_matches_naive(self, k, s, p):
        x = np.random.default_rng(0).normal(size=(2, 3, 7, 7))
        layer = MaxPool2D(k, s, padding=p)
        assert relative_error(layer.forward(x), naive_maxpool(x, k, s, p)) < 1e-12

    def test_negative_inputs_with_padding(self):
        """Padded zeros must not beat negative activations."""
        x = -np.ones((1, 1, 4, 4))
        layer = MaxPool2D(3, 2, padding=1)
        out = layer.forward(x)
        assert np.all(out == -1.0)

    def test_gradients(self):
        # distinct values so argmax is stable under perturbation
        rng = np.random.default_rng(1)
        x = rng.permutation(np.arange(2 * 2 * 6 * 6, dtype=float)).reshape(2, 2, 6, 6)
        check_layer_gradients(MaxPool2D(2, 2), x, tol=1e-6)

    def test_gradient_routes_to_argmax_only(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer = MaxPool2D(2, 2)
        layer.forward(x)
        dx = layer.backward(np.array([[[[10.0]]]]))
        assert dx[0, 0, 1, 1] == 10.0
        assert dx.sum() == 10.0

    def test_stride_defaults_to_kernel(self):
        assert MaxPool2D(3).stride == 3

    def test_alexnet_pool_shape(self):
        assert MaxPool2D(3, 2).output_shape((96, 55, 55)) == (96, 27, 27)


class TestAvgPool:
    def test_constant_input(self):
        x = np.full((1, 2, 4, 4), 5.0)
        out = AvgPool2D(2, 2).forward(x)
        assert np.allclose(out, 5.0)

    def test_matches_mean(self):
        x = np.random.default_rng(2).normal(size=(2, 3, 6, 6))
        out = AvgPool2D(3, 3).forward(x)
        ref = x.reshape(2, 3, 2, 3, 2, 3).mean(axis=(3, 5))
        assert relative_error(out, ref) < 1e-12

    def test_gradients(self):
        x = np.random.default_rng(3).normal(size=(2, 2, 6, 6))
        check_layer_gradients(AvgPool2D(2, 2), x, tol=1e-7)

    def test_gradient_is_uniform(self):
        layer = AvgPool2D(2, 2)
        layer.forward(np.zeros((1, 1, 4, 4)))
        dx = layer.backward(np.ones((1, 1, 2, 2)))
        assert np.allclose(dx, 0.25)


class TestGlobalAvgPool:
    def test_forward(self):
        x = np.random.default_rng(4).normal(size=(3, 5, 7, 7))
        out = GlobalAvgPool2D().forward(x)
        assert out.shape == (3, 5)
        assert np.allclose(out, x.mean(axis=(2, 3)))

    def test_gradients(self):
        x = np.random.default_rng(5).normal(size=(2, 3, 4, 4))
        check_layer_gradients(GlobalAvgPool2D(), x, tol=1e-8)

    def test_output_shape(self):
        assert GlobalAvgPool2D().output_shape((2048, 7, 7)) == (2048,)
