"""Convolution: im2col/col2im adjointness, reference equivalence, gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Conv2D
from repro.nn.gradcheck import check_layer_gradients, relative_error
from repro.nn.layers.conv import col2im, conv_output_hw, im2col


def naive_conv2d(x, w, b, stride, pad, groups=1):
    """Loop-based reference convolution."""
    n, c, h, w_in = x.shape
    oc, cg, kh, kw = w.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w_in + 2 * pad - kw) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    og = oc // groups
    for ni in range(n):
        for o in range(oc):
            g = o // og
            cin = slice(g * cg, (g + 1) * cg)
            for i in range(oh):
                for j in range(ow):
                    patch = x[ni, cin, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, o, i, j] = np.sum(patch * w[o])
            if b is not None:
                out[ni, o] += b[o]
    return out


def test_conv_output_hw():
    assert conv_output_hw(227, 227, 11, 11, 4, 0) == (55, 55)
    assert conv_output_hw(55, 55, 3, 3, 2, 0) == (27, 27)


def test_conv_output_hw_rejects_too_small():
    with pytest.raises(ValueError):
        conv_output_hw(2, 2, 5, 5, 1, 0)


def test_im2col_shapes():
    x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
    cols, (oh, ow) = im2col(x, 3, 3, 1, 1)
    assert (oh, ow) == (5, 5)
    assert cols.shape == (2, 3 * 9, 25)


def test_im2col_values_centre_pixel():
    x = np.arange(1 * 1 * 3 * 3, dtype=float).reshape(1, 1, 3, 3)
    cols, _ = im2col(x, 3, 3, 1, 0)
    # single output position contains the whole image
    assert np.array_equal(cols[0, :, 0], x.ravel())


@given(
    n=st.integers(1, 3),
    c=st.integers(1, 4),
    hw=st.integers(4, 9),
    k=st.integers(1, 3),
    stride=st.integers(1, 2),
    pad=st.integers(0, 2),
)
@settings(max_examples=25, deadline=None)
def test_col2im_is_adjoint_of_im2col(n, c, hw, k, stride, pad):
    """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(n, c, hw, hw))
    cols, (oh, ow) = im2col(x, k, k, stride, pad)
    y = rng.normal(size=cols.shape)
    lhs = np.sum(cols * y)
    rhs = np.sum(x * col2im(y, x.shape, k, k, stride, pad))
    assert abs(lhs - rhs) < 1e-8 * max(1.0, abs(lhs))


@pytest.mark.parametrize("groups", [1, 2])
@pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 1)])
def test_forward_matches_naive(groups, stride, pad):
    rng = np.random.default_rng(3)
    layer = Conv2D(4, 6, 3, stride=stride, padding=pad, groups=groups,
                   rng=np.random.default_rng(1))
    x = rng.normal(size=(2, 4, 7, 7))
    out = layer.forward(x)
    ref = naive_conv2d(x, layer.weight.data, layer.bias.data, stride, pad, groups)
    assert relative_error(out, ref) < 1e-10


def test_forward_no_bias():
    layer = Conv2D(2, 3, 3, bias=False, rng=np.random.default_rng(1))
    assert layer.bias is None
    x = np.random.default_rng(0).normal(size=(1, 2, 5, 5))
    ref = naive_conv2d(x, layer.weight.data, None, 1, 0)
    assert relative_error(layer.forward(x), ref) < 1e-10


@pytest.mark.parametrize("groups", [1, 2])
def test_gradients(groups):
    layer = Conv2D(2, 4, 3, stride=2, padding=1, groups=groups,
                   rng=np.random.default_rng(5))
    x = np.random.default_rng(6).normal(size=(2, 2, 6, 6))
    check_layer_gradients(layer, x, tol=1e-6)


def test_gradient_accumulation_across_calls():
    layer = Conv2D(2, 2, 3, rng=np.random.default_rng(5))
    x = np.random.default_rng(6).normal(size=(1, 2, 5, 5))
    layer.forward(x)
    layer.backward(np.ones((1, 2, 3, 3)))
    g1 = layer.weight.grad.copy()
    layer.forward(x)
    layer.backward(np.ones((1, 2, 3, 3)))
    assert np.allclose(layer.weight.grad, 2 * g1)


def test_output_shape_validates_channels():
    layer = Conv2D(3, 8, 3)
    with pytest.raises(ValueError):
        layer.output_shape((4, 10, 10))


def test_flops_alexnet_conv1():
    # conv1 of AlexNet: 96 x (3x11x11) over 55x55 output positions
    layer = Conv2D(3, 96, 11, stride=4)
    macs = 55 * 55 * 96 * 3 * 11 * 11
    assert layer.flops_per_example((3, 227, 227)) == 2 * macs + 55 * 55 * 96


def test_backward_before_forward_raises():
    layer = Conv2D(2, 2, 3)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 2, 3, 3)))


def test_invalid_groups_raises():
    with pytest.raises(ValueError):
        Conv2D(3, 8, 3, groups=2)
