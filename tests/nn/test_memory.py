"""Arena and MemoryContext accounting invariants (see repro.nn.memory).

The planner's zero-allocation guarantee rests on the arena's bookkeeping
being exact: every counter here is asserted as an integer equality, and the
error paths (double release, foreign arrays) must fail loudly — a silently
mis-tracked buffer would turn "zero steady-state allocations" into a lie.
"""

import numpy as np
import pytest

from repro.nn.memory import (
    MIN_BUCKET_BYTES,
    Arena,
    MemoryContext,
    bucket_nbytes,
)


def test_bucket_nbytes_rounds_to_powers_of_two():
    assert bucket_nbytes(0) == MIN_BUCKET_BYTES
    assert bucket_nbytes(1) == MIN_BUCKET_BYTES
    assert bucket_nbytes(MIN_BUCKET_BYTES) == MIN_BUCKET_BYTES
    assert bucket_nbytes(MIN_BUCKET_BYTES + 1) == 2 * MIN_BUCKET_BYTES
    assert bucket_nbytes(1000) == 1024
    assert bucket_nbytes(1024) == 1024
    assert bucket_nbytes(1025) == 2048


def test_acquire_shape_dtype_and_accounting():
    arena = Arena()
    a = arena.acquire((3, 5), np.float64)
    assert a.shape == (3, 5) and a.dtype == np.float64
    bucket = bucket_nbytes(3 * 5 * 8)
    s = arena.stats()
    assert s["allocations"] == 1
    assert s["bytes_allocated"] == bucket
    assert s["pool_bytes"] == bucket
    assert s["in_use_bytes"] == bucket
    assert s["peak_bytes"] == bucket


def test_release_and_reacquire_reuses_buffer():
    arena = Arena()
    a = arena.acquire((16, 16))
    arena.release(a)
    assert arena.in_use_bytes == 0
    b = arena.acquire((16, 16))
    # same bucket, same view object: no fresh allocation, coloring preserved
    assert b is a
    s = arena.stats()
    assert s["allocations"] == 1
    assert s["bytes_allocated"] == bucket_nbytes(16 * 16 * 8)
    assert s["acquires"] == 2 and s["releases"] == 1


def test_one_bucket_serves_many_shapes():
    # (8, 8) f64 and (64,) f64 round to the same bucket; after a release the
    # second shape must come from the freelist, not a fresh allocation.
    arena = Arena()
    a = arena.acquire((8, 8))
    arena.release(a)
    b = arena.acquire((64,))
    assert b.shape == (64,)
    assert arena.allocations == 1
    assert arena.bytes_allocated == bucket_nbytes(64 * 8)


def test_peak_tracks_high_water_not_current():
    arena = Arena()
    bucket = bucket_nbytes(32 * 8)
    a = arena.acquire((32,))
    b = arena.acquire((32,))
    assert arena.peak_bytes == 2 * bucket
    arena.release(a)
    arena.release(b)
    assert arena.in_use_bytes == 0
    assert arena.peak_bytes == 2 * bucket  # high-water mark stays
    arena.acquire((32,))
    assert arena.peak_bytes == 2 * bucket  # reuse does not move it


def test_distinct_dtypes_use_distinct_freelists():
    arena = Arena()
    a = arena.acquire((64,), np.float64)
    arena.release(a)
    b = arena.acquire((512,), np.bool_)  # same 512-byte bucket, other dtype
    assert b.dtype == np.bool_
    assert arena.allocations == 2


def test_double_release_raises():
    arena = Arena()
    a = arena.acquire((4, 4))
    arena.release(a)
    with pytest.raises(ValueError, match="double release"):
        arena.release(a)


def test_release_of_foreign_array_raises():
    arena = Arena()
    arena.acquire((4, 4))
    with pytest.raises(ValueError, match="not acquired"):
        arena.release(np.zeros((4, 4)))


def test_release_accepts_reshaped_handle():
    # Callers may hand back a reshape of the acquired view; release resolves
    # it through the base chain to the owning flat buffer.
    arena = Arena()
    a = arena.acquire((4, 8))
    arena.release(a.reshape(8, 4))
    assert arena.in_use_bytes == 0
    assert arena.releases == 1


def test_zero_size_acquire_bypasses_arena():
    arena = Arena()
    a = arena.acquire((0, 7))
    assert a.shape == (0, 7)
    assert arena.stats()["acquires"] == 0 or arena.stats()["allocations"] == 0


def test_memory_context_slots_are_persistent():
    ctx = MemoryContext()
    owner = object()
    a = ctx.slot(owner, "y", (8, 8))
    b = ctx.slot(owner, "y", (8, 8))
    assert b is a  # same (owner, tag, shape, dtype) -> same buffer
    c = ctx.slot(owner, "dx", (8, 8))
    assert c is not a  # distinct tag -> distinct slot
    assert ctx.arena.acquires == 2


def test_memory_context_close_releases_but_keeps_pool_warm():
    ctx = MemoryContext()
    ctx.slot(object(), "y", (16, 16))
    pool = ctx.arena.pool_bytes
    assert ctx.arena.in_use_bytes == pool
    ctx.close()
    assert ctx.arena.in_use_bytes == 0
    assert ctx.arena.pool_bytes == pool  # buffers return to the freelist
    # a fresh slot after close must be served from the warm pool
    ctx.slot(object(), "y", (16, 16))
    assert ctx.arena.allocations == 1


def test_memory_context_scratch_release_roundtrip():
    ctx = MemoryContext()
    buf = ctx.scratch((32,))
    assert ctx.arena.in_use_bytes == bucket_nbytes(32 * 8)
    ctx.release(buf)
    assert ctx.arena.in_use_bytes == 0
    assert ctx.bytes_allocated == bucket_nbytes(32 * 8)
