"""Shape-inference consistency: ``output_shape`` must agree with what
``forward`` actually produces, for every model in the zoo.

The flop counter, the summary table and the throughput model all consume
``output_shape``; a drift between inference and execution would silently
corrupt Table 6 / Figure 3.
"""

import numpy as np
import pytest

from repro.nn import activation_elements_per_example
from repro.nn.models import (
    micro_alexnet,
    micro_googlenet,
    micro_resnet,
    mlp,
)

CASES = [
    ("micro_alexnet_bn", lambda: micro_alexnet(num_classes=5, image_size=12,
                                               width=4, hidden=16, norm="bn"),
     (3, 12, 12)),
    ("micro_alexnet_lrn", lambda: micro_alexnet(num_classes=5, image_size=12,
                                                width=4, hidden=16, norm="lrn"),
     (3, 12, 12)),
    ("micro_resnet", lambda: micro_resnet(num_classes=5, width=4), (3, 16, 16)),
    ("micro_googlenet", lambda: micro_googlenet(num_classes=5, width=4),
     (3, 12, 12)),
    ("mlp", lambda: mlp(10, [8, 6], 5), (10,)),
    ("mlp_flat", lambda: mlp(3 * 64, [8], 5, flatten_input=True), (3, 8, 8)),
]


@pytest.mark.parametrize("name,builder,shape", CASES, ids=[c[0] for c in CASES])
class TestShapeAgreement:
    def test_output_shape_matches_forward(self, name, builder, shape):
        model = builder()
        predicted = model.output_shape(shape)
        x = np.random.default_rng(0).normal(size=(2, *shape))
        out = model.forward(x)
        assert out.shape == (2, *predicted)

    def test_backward_shape_roundtrip(self, name, builder, shape):
        model = builder()
        x = np.random.default_rng(1).normal(size=(2, *shape))
        out = model.forward(x)
        dx = model.backward(np.ones_like(out))
        assert dx.shape == x.shape

    def test_flops_positive(self, name, builder, shape):
        model = builder()
        assert model.flops_per_example(shape) > 0

    def test_activation_count_positive(self, name, builder, shape):
        model = builder()
        act = activation_elements_per_example(model, shape)
        assert act > int(np.prod(shape))  # at least input + something

    def test_summary_renders(self, name, builder, shape):
        model = builder()
        s = model.summary(shape)
        assert "total" in s
        assert str(model.num_parameters()) in s


def test_batch_of_one():
    """Single-example batches must work (BN uses batch statistics, which
    degenerate but stay finite with eps)."""
    model = micro_resnet(num_classes=3, width=4)
    x = np.random.default_rng(2).normal(size=(1, 3, 8, 8))
    out = model.forward(x)
    assert np.isfinite(out).all()


def test_large_batch_shapes():
    model = mlp(6, [4], 2)
    x = np.zeros((512, 6))
    assert model.forward(x).shape == (512, 2)
