"""Tests for weight initialisers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import initializers as init


def rng():
    return np.random.default_rng(42)


def test_fan_in_out_dense():
    assert init.fan_in_out((128, 64)) == (128, 64)


def test_fan_in_out_conv():
    # (out, in, kh, kw) = (96, 3, 11, 11): fan_in = 3*121, fan_out = 96*121
    assert init.fan_in_out((96, 3, 11, 11)) == (3 * 121, 96 * 121)


def test_fan_in_out_scalar_and_vector():
    assert init.fan_in_out(()) == (1, 1)
    assert init.fan_in_out((7,)) == (7, 7)


def test_zeros_ones_constant():
    assert np.all(init.zeros((3, 3)) == 0)
    assert np.all(init.ones((3, 3)) == 1)
    assert np.all(init.constant(0.1)((5,)) == 0.1)


def test_gaussian_statistics():
    w = init.gaussian(std=0.01)((200, 200), rng())
    assert abs(w.mean()) < 1e-3
    assert abs(w.std() - 0.01) < 1e-3


def test_he_normal_std_matches_fan_in():
    shape = (256, 64, 3, 3)
    w = init.he_normal(shape, rng())
    expected = np.sqrt(2.0 / (64 * 9))
    assert abs(w.std() - expected) / expected < 0.05


def test_xavier_bounds():
    shape = (100, 50)
    w = init.xavier(shape, rng())
    a = np.sqrt(3.0 / 100)
    assert w.min() >= -a and w.max() <= a


def test_determinism_same_seed():
    a = init.he_normal((10, 10), np.random.default_rng(7))
    b = init.he_normal((10, 10), np.random.default_rng(7))
    assert np.array_equal(a, b)


@given(
    out_c=st.integers(1, 32),
    in_c=st.integers(1, 32),
    k=st.integers(1, 7),
)
@settings(max_examples=30, deadline=None)
def test_fan_in_out_conv_property(out_c, in_c, k):
    fan_in, fan_out = init.fan_in_out((out_c, in_c, k, k))
    assert fan_in == in_c * k * k
    assert fan_out == out_c * k * k


def test_lecun_and_he_uniform_shapes():
    assert init.lecun_normal((4, 5), rng()).shape == (4, 5)
    assert init.he_uniform((4, 5), rng()).shape == (4, 5)
