"""Bitwise parity of the optimized conv kernels against the general route.

The PR-2 optimizations (workspace-reuse im2col, non-overlapping col2im
branch, 1×1 im2col-free route) must change *nothing* numerically: every
test here asserts exact array equality, not allclose.  The reference for
``im2col``/``col2im`` is a deliberately dumb loop implementation local to
this file; ``Conv2D`` fast paths are compared against the same layer with
``fast_paths=False``, which shares the GEMM primitives but takes the
general im2col route.
"""

import numpy as np
import pytest

from repro.nn import Conv2D
from repro.nn.layers.conv import col2im, conv_output_hw, im2col, im2col_view


def reference_im2col(x, kh, kw, stride, pad):
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    cols = np.zeros((n, c * kh * kw, oh * ow), dtype=x.dtype)
    for ni in range(n):
        col = 0
        for i in range(oh):
            for j in range(ow):
                patch = x[ni, :, i * stride : i * stride + kh,
                          j * stride : j * stride + kw]
                cols[ni, :, col] = patch.ravel()
                col += 1
    return cols, (oh, ow)


def reference_col2im(cols, x_shape, kh, kw, stride, pad):
    # Accumulates per kernel offset (ki, kj), matching the production scatter
    # order — within one offset no two output positions alias, so per-offset
    # accumulation has a bitwise-well-defined result; per-position
    # accumulation would sum the same terms in a different order.
    n, c, h, w = x_shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ki in range(kh):
        for kj in range(kw):
            for i in range(oh):
                for j in range(ow):
                    padded[:, :, i * stride + ki, j * stride + kj] += (
                        cols6[:, :, ki, kj, i, j]
                    )
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


GEOMETRIES = [
    # (kh, kw treated square) kernel, stride, pad — overlapping and not
    (3, 1, 1),
    (3, 2, 1),
    (5, 1, 2),
    (1, 1, 0),
    (1, 2, 0),
    (2, 2, 0),   # non-overlapping col2im branch
    (3, 3, 0),   # non-overlapping, stride == kernel
    (3, 4, 1),   # stride > kernel
]


@pytest.mark.parametrize("kernel,stride,pad", GEOMETRIES)
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_im2col_matches_reference(kernel, stride, pad, dtype):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 3, 9, 9)).astype(dtype)
    cols, hw = im2col(x, kernel, kernel, stride, pad)
    ref, ref_hw = reference_im2col(x, kernel, kernel, stride, pad)
    assert hw == ref_hw
    assert cols.dtype == dtype
    np.testing.assert_array_equal(cols, ref)


@pytest.mark.parametrize("kernel,stride,pad", GEOMETRIES)
def test_im2col_out_buffer_reuse(kernel, stride, pad):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(2, 3, 9, 9))
    expected, _ = im2col(x, kernel, kernel, stride, pad)
    out = np.full_like(expected, np.nan)  # poison: every slot must be written
    cols, _ = im2col(x, kernel, kernel, stride, pad, out=out)
    assert cols is out
    np.testing.assert_array_equal(cols, expected)


def test_im2col_out_shape_validated():
    x = np.zeros((1, 2, 5, 5))
    with pytest.raises(ValueError, match="out"):
        im2col(x, 3, 3, 1, 1, out=np.zeros((1, 2, 3)))


def test_im2col_view_is_readonly():
    x = np.zeros((1, 2, 5, 5))
    patches, _ = im2col_view(x, 3, 3, 1, 0)
    assert not patches.flags.writeable


@pytest.mark.parametrize("kernel,stride,pad", GEOMETRIES)
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_col2im_matches_reference(kernel, stride, pad, dtype):
    x_shape = (2, 3, 9, 9)
    oh, ow = conv_output_hw(9, 9, kernel, kernel, stride, pad)
    rng = np.random.default_rng(2)
    cols = rng.normal(size=(2, 3 * kernel * kernel, oh * ow)).astype(dtype)
    got = col2im(cols, x_shape, kernel, kernel, stride, pad)
    ref = reference_col2im(cols, x_shape, kernel, kernel, stride, pad)
    assert got.dtype == dtype
    np.testing.assert_array_equal(got, ref)


def test_col2im_adjoint_of_im2col():
    # <im2col(x), cols> == <x, col2im(cols)> — the defining adjoint identity.
    rng = np.random.default_rng(3)
    x = rng.normal(size=(2, 3, 8, 8))
    cols_x, (oh, ow) = im2col(x, 3, 3, 2, 1)
    cols = rng.normal(size=cols_x.shape)
    lhs = float(np.sum(cols_x * cols))
    rhs = float(np.sum(x * col2im(cols, x.shape, 3, 3, 2, 1)))
    assert abs(lhs - rhs) < 1e-9 * max(1.0, abs(lhs))


CONV_CASES = [
    # in_c, out_c, kernel, stride, pad, groups
    (3, 8, 3, 1, 1, 1),
    (4, 8, 3, 2, 1, 2),
    (6, 12, 5, 1, 2, 3),
    (8, 8, 1, 1, 0, 1),   # pointwise fast route
    (8, 16, 1, 2, 0, 2),  # strided pointwise, grouped
    (4, 4, 2, 2, 0, 1),   # non-overlapping col2im on backward
]


def _pair(in_c, out_c, kernel, stride, pad, groups):
    """The same layer twice: fast paths on and off, identical weights."""
    fast = Conv2D(in_c, out_c, kernel, stride=stride, padding=pad,
                  groups=groups, rng=np.random.default_rng(7), fast_paths=True)
    slow = Conv2D(in_c, out_c, kernel, stride=stride, padding=pad,
                  groups=groups, rng=np.random.default_rng(7), fast_paths=False)
    np.testing.assert_array_equal(fast.weight.data, slow.weight.data)
    return fast, slow


@pytest.mark.parametrize("in_c,out_c,kernel,stride,pad,groups", CONV_CASES)
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_conv2d_fast_paths_bitwise_identical(
    in_c, out_c, kernel, stride, pad, groups, dtype
):
    fast, slow = _pair(in_c, out_c, kernel, stride, pad, groups)
    rng = np.random.default_rng(11)
    x = rng.normal(size=(2, in_c, 8, 8)).astype(dtype)

    out_fast = fast.forward(x)
    out_slow = slow.forward(x)
    np.testing.assert_array_equal(out_fast, out_slow)

    grad = rng.normal(size=out_fast.shape).astype(dtype)
    dx_fast = fast.backward(grad)
    dx_slow = slow.backward(grad)
    np.testing.assert_array_equal(dx_fast, dx_slow)
    np.testing.assert_array_equal(fast.weight.grad, slow.weight.grad)
    np.testing.assert_array_equal(fast.bias.grad, slow.bias.grad)


def test_conv2d_fast_paths_stable_across_iterations():
    # Workspace reuse must not leak state between successive batches.
    fast, slow = _pair(3, 8, 3, 1, 1, 1)
    rng = np.random.default_rng(13)
    for _ in range(3):
        x = rng.normal(size=(2, 3, 8, 8))
        np.testing.assert_array_equal(fast.forward(x), slow.forward(x))
        grad = rng.normal(size=(2, 8, 8, 8))
        np.testing.assert_array_equal(fast.backward(grad), slow.backward(grad))
        np.testing.assert_array_equal(fast.weight.grad, slow.weight.grad)


def test_conv2d_batch_size_change_reallocates_workspace():
    # Different batch sizes hit different workspace buffers; both must work.
    fast, slow = _pair(3, 8, 3, 1, 1, 1)
    rng = np.random.default_rng(17)
    for n in (4, 2, 4):
        x = rng.normal(size=(n, 3, 8, 8))
        np.testing.assert_array_equal(fast.forward(x), slow.forward(x))


CLIPPED_GEOMETRIES = [
    # clipped scatter requires stride < kernel (otherwise the non-overlapping
    # branch wins) and pad > 0 (otherwise plain col2im never pads)
    (3, 1, 1),
    (3, 2, 1),
    (5, 1, 2),
    (5, 2, 2),
    (5, 3, 1),
]


@pytest.mark.parametrize("kernel,stride,pad", CLIPPED_GEOMETRIES)
def test_col2im_clipped_matches_padded_route(kernel, stride, pad):
    from repro.nn.layers.conv import col2im_clipped

    x_shape = (2, 3, 9, 9)
    oh, ow = conv_output_hw(9, 9, kernel, kernel, stride, pad)
    rng = np.random.default_rng(19)
    cols = rng.normal(size=(2, 3 * kernel * kernel, oh * ow))
    out = np.full(x_shape, np.nan)  # poison: must be fully written
    got = col2im_clipped(cols, x_shape, kernel, kernel, stride, pad, out=out)
    assert got is out
    ref = col2im(cols, x_shape, kernel, kernel, stride, pad)
    np.testing.assert_array_equal(got, ref)


@pytest.mark.parametrize("in_c,out_c,kernel,stride,pad,groups", CONV_CASES)
def test_conv2d_backward_out_buffer(in_c, out_c, kernel, stride, pad, groups):
    # backward(grad, out=buf) must fill buf with exactly the eager dx and
    # leave the parameter gradients untouched by the buffer routing.
    a, b = _pair(in_c, out_c, kernel, stride, pad, groups)
    rng = np.random.default_rng(23)
    x = rng.normal(size=(2, in_c, 8, 8))
    grad = rng.normal(size=(2, *a.output_shape((in_c, 8, 8))))

    a.forward(x)
    b.forward(x)
    dx_ref = b.backward(grad)
    buf = np.full_like(dx_ref, np.nan)
    dx = a.backward(grad, out=buf)
    assert dx is buf
    np.testing.assert_array_equal(dx, dx_ref)
    np.testing.assert_array_equal(a.weight.grad, b.weight.grad)
    np.testing.assert_array_equal(a.bias.grad, b.bias.grad)


def test_conv2d_backward_workspace_reuse_is_stable():
    # Successive buffered backwards reuse the same scratch workspace; results
    # must not drift or pick up stale state from the previous iteration.
    a, b = _pair(3, 8, 3, 1, 1, 1)
    rng = np.random.default_rng(29)
    buf = np.empty((2, 3, 8, 8))
    for _ in range(3):
        x = rng.normal(size=(2, 3, 8, 8))
        a.forward(x)
        b.forward(x)
        grad = rng.normal(size=(2, 8, 8, 8))
        dx_ref = b.backward(grad)
        np.testing.assert_array_equal(a.backward(grad, out=buf), dx_ref)
        np.testing.assert_array_equal(a.weight.grad, b.weight.grad)
