"""BatchNorm and LocalResponseNorm tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import BatchNorm, LocalResponseNorm
from repro.nn.gradcheck import check_layer_gradients, relative_error


class TestBatchNorm:
    def test_training_output_is_normalised_2d(self):
        bn = BatchNorm(5)
        x = np.random.default_rng(0).normal(3.0, 2.0, size=(64, 5))
        y = bn.forward(x)
        assert np.allclose(y.mean(axis=0), 0, atol=1e-8)
        assert np.allclose(y.std(axis=0), 1, atol=1e-3)

    def test_training_output_is_normalised_4d(self):
        bn = BatchNorm(3)
        x = np.random.default_rng(0).normal(-1.0, 5.0, size=(8, 3, 6, 6))
        y = bn.forward(x)
        assert np.allclose(y.mean(axis=(0, 2, 3)), 0, atol=1e-8)
        assert np.allclose(y.var(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_gamma_beta_applied(self):
        bn = BatchNorm(2)
        bn.gamma.data[:] = [2.0, 3.0]
        bn.beta.data[:] = [1.0, -1.0]
        x = np.random.default_rng(1).normal(size=(32, 2))
        y = bn.forward(x)
        assert np.allclose(y.mean(axis=0), [1.0, -1.0], atol=1e-8)

    def test_eval_mode_uses_running_stats(self):
        bn = BatchNorm(4, momentum=0.0)  # running stats = last batch stats
        x = np.random.default_rng(2).normal(2.0, 3.0, size=(128, 4))
        bn.forward(x)
        bn.eval()
        y_eval = bn.forward(x)
        # with momentum 0 the running stats equal the batch stats
        assert np.allclose(y_eval.mean(axis=0), 0.0, atol=1e-2)

    def test_running_stats_updated_only_in_training(self):
        bn = BatchNorm(3)
        rm = bn.running_mean.copy()
        bn.eval()
        bn.forward(np.random.default_rng(0).normal(size=(16, 3)))
        assert np.array_equal(bn.running_mean, rm)

    def test_gradients_2d(self):
        bn = BatchNorm(4)
        x = np.random.default_rng(3).normal(size=(7, 4))
        check_layer_gradients(bn, x, tol=1e-5)

    def test_gradients_4d(self):
        bn = BatchNorm(3)
        x = np.random.default_rng(4).normal(size=(4, 3, 5, 5))
        check_layer_gradients(bn, x, tol=1e-5)

    def test_params_have_zero_weight_decay(self):
        bn = BatchNorm(3)
        assert bn.gamma.weight_decay == 0.0
        assert bn.beta.weight_decay == 0.0

    def test_backward_sums_to_zero(self):
        """BN output is mean-free per channel, so dL/dx sums to ~0 per channel."""
        bn = BatchNorm(3)
        x = np.random.default_rng(5).normal(size=(16, 3))
        bn.forward(x)
        dx = bn.backward(np.random.default_rng(6).normal(size=(16, 3)))
        assert np.allclose(dx.sum(axis=0), 0, atol=1e-10)

    def test_output_shape_validates(self):
        with pytest.raises(ValueError):
            BatchNorm(3).output_shape((4, 5, 5))


class TestLRN:
    def naive_lrn(self, x, size, alpha, beta, k):
        n, c = x.shape[:2]
        half = size // 2
        out = np.empty_like(x)
        for ci in range(c):
            lo, hi = max(0, ci - half), min(c, ci + half + 1)
            ssum = (x[:, lo:hi] ** 2).sum(axis=1)
            out[:, ci] = x[:, ci] * (k + alpha / size * ssum) ** (-beta)
        return out

    @given(c=st.integers(1, 12), size=st.sampled_from([3, 5, 7]))
    @settings(max_examples=20, deadline=None)
    def test_forward_matches_naive(self, c, size):
        lrn = LocalResponseNorm(size=size)
        x = np.random.default_rng(c).normal(size=(2, c, 3, 3))
        ref = self.naive_lrn(x, size, lrn.alpha, lrn.beta, lrn.k)
        assert relative_error(lrn.forward(x), ref) < 1e-10

    def test_gradients(self):
        # larger alpha so the normalisation term actually matters numerically
        lrn = LocalResponseNorm(size=3, alpha=0.5, beta=0.75)
        x = np.random.default_rng(9).normal(size=(2, 6, 3, 3))
        check_layer_gradients(lrn, x, tol=1e-5)

    def test_identity_when_alpha_zero(self):
        lrn = LocalResponseNorm(size=5, alpha=0.0, k=1.0)
        x = np.random.default_rng(1).normal(size=(2, 8, 4, 4))
        assert np.allclose(lrn.forward(x), x)

    def test_shape_preserved(self):
        lrn = LocalResponseNorm()
        assert lrn.output_shape((96, 55, 55)) == (96, 55, 55)

    def test_no_parameters(self):
        assert LocalResponseNorm().parameters() == []
