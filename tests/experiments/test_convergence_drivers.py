"""Structural tests for the convergence (training) experiment drivers.

Run at ``tiny`` scale — fast, seconds per driver — checking row structure,
ranges and internal consistency.  The paper-shape assertions live in
``benchmarks/`` at ``small`` scale where the phenomena are actually visible.
"""

import pytest

from repro.experiments import (
    figure1,
    figure4,
    figure5,
    figure7,
    table1,
    table3,
    table4,
    table5,
    table7,
    table10,
)

SCALE = "tiny"

CONVERGENCE = {
    "table1": table1,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table7": table7,
    "table10": table10,
    "figure1": figure1,
    "figure4": figure4,
    "figure5": figure5,
}


@pytest.mark.parametrize("name", sorted(CONVERGENCE))
def test_driver_structure(name):
    result = CONVERGENCE[name].run(scale=SCALE)
    assert result.experiment == name
    assert result.rows
    for row in result.rows:
        for col in result.columns:
            assert col in row, (name, col)
    assert result.format()


def test_table5_accuracies_are_probabilities():
    for r in table5.run(scale=SCALE).rows:
        assert 0.0 <= r["accuracy"] <= 1.0


def test_table10_has_all_paper_batches():
    batches = {r["paper_batch"] for r in table10.run(scale=SCALE).rows}
    assert batches == {256, 8192, 16384, 32768, 65536}


def test_figure1_gap_consistency():
    """gap column == lars − linear, row by row."""
    for r in figure1.run(scale=SCALE).rows:
        assert r["gap_proxy"] == pytest.approx(
            r["series_lars_proxy"] - r["series_linear_proxy"])


def test_figure4_curves_cover_both_batches_and_modes():
    rows = figure4.run(scale=SCALE).rows
    combos = {(r["paper_batch"], r["lars"]) for r in rows}
    assert combos == {(16384, True), (16384, False), (32768, True), (32768, False)}


def test_figure5_epochs_complete():
    rows = figure5.run(scale=SCALE).rows
    for pb in {r["paper_batch"] for r in rows}:
        epochs = [r["epoch"] for r in rows if r["paper_batch"] == pb]
        assert epochs == sorted(epochs)
        assert epochs[0] == 1


def test_figure7_rows_have_time_and_accuracy():
    result = figure7.run(scale=SCALE)
    assert len(result.rows) == 2
    for r in result.rows:
        assert r["sim_seconds_total"] > 0
        assert 0 <= r["final_accuracy"] <= 1


def test_table1_contains_three_rows():
    rows = table1.run(scale=SCALE).rows
    assert len(rows) == 3
    assert rows[2]["time_min"] < 15.0


def test_table4_has_paper_and_ours_sources():
    sources = {r["source"] for r in table4.run(scale=SCALE).rows}
    assert sources == {"paper", "ours"}


def test_results_memoised_across_drivers():
    """table10 and figure1 share sweep points: second call is instant."""
    import time

    table10.run(scale=SCALE)  # populate
    t0 = time.perf_counter()
    figure1.run(scale=SCALE)
    assert time.perf_counter() - t0 < 1.0
