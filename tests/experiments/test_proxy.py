"""Proxy-runner tests (tiny scale: structural checks, not shape claims)."""

import pytest

from repro.experiments.proxy import (
    ALEXNET_BASE_BATCH,
    RESNET_BASE_BATCH,
    ProxyRun,
    SCALES,
    alexnet_proxy_batch,
    proxy_dataset,
    resnet_proxy_batch,
    run_proxy,
)


class TestBatchMapping:
    def test_alexnet_axis(self):
        assert alexnet_proxy_batch(512) == ALEXNET_BASE_BATCH
        assert alexnet_proxy_batch(4096) == 64
        assert alexnet_proxy_batch(32768) == 512

    def test_resnet_axis(self):
        assert resnet_proxy_batch(256) == RESNET_BASE_BATCH
        assert resnet_proxy_batch(8192) == 128
        assert resnet_proxy_batch(65536) == 1024

    def test_relative_factor_preserved(self):
        # the proxy axis preserves B / B_baseline exactly
        assert alexnet_proxy_batch(32768) / ALEXNET_BASE_BATCH == 32768 / 512
        assert resnet_proxy_batch(32768) / RESNET_BASE_BATCH == 32768 / 256

    def test_floor_at_one(self):
        assert alexnet_proxy_batch(16) == 1


class TestProxyDataset:
    def test_cached(self):
        assert proxy_dataset("tiny") is proxy_dataset("tiny")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            proxy_dataset("huge")

    def test_scales_exist(self):
        assert {"tiny", "small", "medium"} <= set(SCALES)


class TestProxyRun:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProxyRun("vgg", 8, 0.1)
        with pytest.raises(ValueError):
            ProxyRun("resnet", 0, 0.1)

    def test_run_memoised(self):
        cfg = ProxyRun("resnet", 8, 0.05)
        a = run_proxy(cfg, "tiny")
        b = run_proxy(cfg, "tiny")
        assert a is b

    def test_baseline_learns_tiny(self):
        res = run_proxy(ProxyRun("alexnet_bn", 8, 0.05), "tiny")
        assert res.peak_test_accuracy > 0.5  # 4 classes, chance 0.25

    def test_batch_capped_at_dataset(self):
        res = run_proxy(ProxyRun("resnet", 10**6, 0.01), "tiny")
        assert res.history[0].iterations == 1

    def test_lars_config_builds_lars(self):
        from repro.core import LARS

        cfg = ProxyRun("resnet", 8, 0.05, use_lars=True)
        model = cfg.build_model(SCALES["tiny"])
        assert isinstance(cfg.build_optimizer(model.parameters()), LARS)

    def test_divergent_run_returns_finite_history(self):
        res = run_proxy(ProxyRun("alexnet", 64, 1e4), "tiny")
        assert len(res.history) == SCALES["tiny"].epochs
        assert 0 <= res.peak_test_accuracy <= 1
