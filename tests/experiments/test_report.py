"""Report formatting tests."""

import pytest

from repro.experiments.report import ExperimentResult, fmt, format_table


class TestFmt:
    def test_none_is_dash(self):
        assert fmt(None) == "—"

    def test_nan_is_dash(self):
        assert fmt(float("nan")) == "—"

    def test_bool(self):
        assert fmt(True) == "yes" and fmt(False) == "no"

    def test_float_precision(self):
        assert fmt(0.753) == "0.753"
        assert fmt(3.14159) == "3.142"

    def test_extreme_floats_scientific(self):
        assert "e" in fmt(1e7)
        assert "e" in fmt(1e-5)

    def test_int_and_str(self):
        assert fmt(42) == "42"
        assert fmt("hi") == "hi"


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["a", "bb"], [{"a": 1, "bb": 22}, {"a": 333, "bb": 4}])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_missing_cells_dash(self):
        out = format_table(["a", "b"], [{"a": 1}])
        assert "—" in out

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment="tableX",
            title="demo",
            columns=["k", "v"],
            rows=[{"k": "a", "v": 1}, {"k": "b", "v": 2}],
            notes="note!",
        )

    def test_format_includes_everything(self):
        s = self.make().format()
        assert "tableX" in s and "demo" in s and "note!" in s and "a" in s

    def test_column(self):
        assert self.make().column("v") == [1, 2]

    def test_row_by(self):
        assert self.make().row_by("k", "b")["v"] == 2
        with pytest.raises(KeyError):
            self.make().row_by("k", "z")
