"""Experiment-driver tests.

Analytic drivers are checked for exact content; convergence drivers run at
``tiny`` scale and are checked structurally (columns present, rows complete,
values in range).  The paper-shape assertions live in ``benchmarks/`` where
the ``small`` scale runs.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments import (
    figure2,
    figure3,
    figure6,
    figure8,
    figure9,
    figure10,
    table2,
    table6,
    table8,
    table9,
    table11,
    table12,
)

ANALYTIC = {
    "table2": table2,
    "table6": table6,
    "table8": table8,
    "table9": table9,
    "table11": table11,
    "table12": table12,
    "figure2": figure2,
    "figure3": figure3,
    "figure6": figure6,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
}


class TestRegistry:
    def test_all_tables_and_figures_covered(self):
        expected = {f"table{i}" for i in range(1, 13)} | {
            f"figure{i}" for i in list(range(1, 11))
        } | {"scorecard", "fault_sweep"}
        assert set(EXPERIMENTS) == expected

    def test_scorecard_all_green(self):
        from repro.experiments import scorecard

        result = scorecard.run()
        assert all(r["ok"] for r in result.rows), [
            r["claim"] for r in result.rows if not r["ok"]
        ]
        assert len(result.rows) >= 19

    def test_main_module_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table99"])

    def test_main_module_runs_one(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure8", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "figure8" in out


@pytest.mark.parametrize("name", sorted(ANALYTIC))
def test_analytic_driver_structure(name):
    result = ANALYTIC[name].run(scale="tiny")
    assert result.experiment == name
    assert result.rows, name
    for row in result.rows:
        for col in result.columns:
            assert col in row, (name, col)
    assert result.format()  # renders without error


class TestSpecificContents:
    def test_table2_final_row(self):
        r = table2.run().row_by("batch_size", 1_280_000)
        assert r["iterations"] == 100 and r["gpus"] == 2500

    def test_table6_ratio_factor(self):
        res = table6.run()
        alex = res.row_by("model", "alexnet")
        resn = res.row_by("model", "resnet50")
        assert resn["scaling_ratio"] > 10 * alex["scaling_ratio"]

    def test_table8_ratios_within_band(self):
        for r in table8.run().rows:
            assert 0.6 < r["ratio"] < 1.6, r

    def test_table9_headline(self):
        rows = table9.run().rows
        headline = [r for r in rows if r["hardware"] == "2048 KNLs" and r["epochs"] == 90][0]
        assert 14 < headline["predicted_time_min"] < 26

    def test_table11_exact(self):
        for r in table11.run().rows:
            assert r["alpha_us"] == r["paper_alpha_us"]

    def test_figure3_oom_point(self):
        rows = {r["batch_per_gpu"]: r for r in figure3.run().rows}
        assert rows[512]["status"] == "ok"
        assert rows[1024]["status"] == "OUT OF MEMORY"

    def test_figure8_halving(self):
        rows = {r["batch_size"]: r for r in figure8.run().rows}
        ratio = rows[512]["iterations_100ep"] / rows[1024]["iterations_100ep"]
        assert abs(ratio - 2) < 0.01  # ceil(n/B) leaves a rounding sliver

    def test_figure10_model_ordering(self):
        for r in figure10.run().rows:
            assert r["alexnet_volume_TB"] > r["resnet50_volume_TB"]
