"""Event bus: pub/sub, ring buffer, trace mirroring, injector publishing."""

import numpy as np
import pytest

from repro import obs
from repro.comm.errors import RetransmitExhausted
from repro.faults import FaultInjector, FaultPlan
from repro.obs.events import Event, EventBus, get_event_bus, publish, subscribe, unsubscribe


def test_publish_noop_while_disabled():
    assert publish("fault.kill", rank=1) is None
    assert get_event_bus().events() == []


def test_publish_records_and_fans_out():
    bus = EventBus(enabled=True)
    seen = []
    bus.subscribe(seen.append)
    ev = bus.publish("fault.kill", rank=2, iteration=7)
    assert isinstance(ev, Event)
    assert ev.kind == "fault.kill"
    assert ev.fields == {"rank": 2, "iteration": 7}
    assert seen == [ev]
    assert bus.events() == [ev]


def test_kind_prefix_filter():
    bus = EventBus(enabled=True)
    bus.publish("fault.kill")
    bus.publish("fault.message_loss")
    bus.publish("faulty")  # prefix match must be on dotted segments
    bus.publish("checkpoint.save")
    assert {e.kind for e in bus.events("fault")} == {"fault.kill", "fault.message_loss"}
    assert [e.kind for e in bus.events("checkpoint.save")] == ["checkpoint.save"]


def test_ring_buffer_bounded():
    bus = EventBus(enabled=True, maxlen=5)
    for i in range(20):
        bus.publish("tick", i=i)
    evs = bus.events()
    assert len(evs) == 5
    assert [e.fields["i"] for e in evs] == [15, 16, 17, 18, 19]


def test_unsubscribe_stops_delivery():
    bus = EventBus(enabled=True)
    seen = []
    bus.subscribe(seen.append)
    bus.unsubscribe(seen.append)
    bus.publish("tick")
    assert seen == []
    bus.unsubscribe(seen.append)  # double-unsubscribe is harmless


def test_global_subscribe_roundtrip():
    bus = get_event_bus()
    bus.enabled = True
    seen = []
    subscribe(seen.append)
    try:
        publish("detector.verdict", verdict="dead")
    finally:
        unsubscribe(seen.append)
        bus.enabled = False
    assert [e.kind for e in seen] == ["detector.verdict"]


def test_events_mirror_into_trace_as_instants():
    obs.enable()
    publish("fault.straggle", extra_seconds=0.5)
    tracer = obs.get_tracer()
    (mark,) = tracer.instants
    assert mark.name == "fault.straggle"
    assert mark.attrs == {"extra_seconds": 0.5}


def test_no_trace_mirror_when_tracing_off():
    obs.enable(tracing=False)
    publish("fault.straggle", extra_seconds=0.5)
    assert obs.get_tracer().instants == []
    assert [e.kind for e in obs.get_event_bus().events()] == ["fault.straggle"]


def test_injector_publishes_message_loss_and_counts_retransmits():
    obs.enable()
    # High loss rate, generous retransmit budget: the seeded draw recovers
    # some messages after >= 1 lost frame, each publishing a loss event.
    from repro.comm.reliable import RetransmitPolicy

    plan = FaultPlan(seed=0, drop_prob=0.5,
                     retransmit=RetransmitPolicy(max_retries=50))
    injector = FaultInjector(plan)
    for _ in range(30):
        injector.decide_send(0, 1)
    losses = obs.get_event_bus().events("fault.message_loss")
    assert losses, "seeded 50% loss over 30 messages must lose at least one"
    ev = losses[0]
    assert ev.fields["src"] == 0 and ev.fields["dst"] == 1
    assert ev.fields["dropped"] + ev.fields["corrupted"] >= 1
    assert ev.fields["retransmit_delay_s"] > 0
    retrans = obs.get_registry().counter("faults.retransmits").value
    assert retrans == sum(
        e.fields["dropped"] + e.fields["corrupted"] for e in losses
    )


def test_injector_publishes_link_down_on_exhaustion():
    obs.enable()
    from repro.comm.reliable import RetransmitPolicy

    # 0.9 loss with a tiny budget: exhaustion is near-certain and, with a
    # fixed seed, deterministic.
    plan = FaultPlan(seed=0, drop_prob=0.9,
                     retransmit=RetransmitPolicy(max_retries=1))
    injector = FaultInjector(plan)
    saw_exhaustion = False
    for _ in range(20):
        try:
            injector.decide_send(0, 1)
        except RetransmitExhausted:
            saw_exhaustion = True
            break
    assert saw_exhaustion
    downs = obs.get_event_bus().events("fault.link_down")
    assert len(downs) == 1
    assert downs[0].fields["src"] == 0 and downs[0].fields["dst"] == 1
    assert downs[0].fields["retries"] >= 2


def test_injector_publishes_kill_once():
    obs.enable()
    injector = FaultInjector(FaultPlan(seed=0, kills={1: 3}))
    assert not injector.should_kill(1, 2)
    assert injector.should_kill(1, 3)
    assert not injector.should_kill(1, 4)  # fires exactly once
    kills = obs.get_event_bus().events("fault.kill")
    assert len(kills) == 1
    assert kills[0].fields == {"rank": 1, "iteration": 3}
    assert obs.get_registry().counter("faults.kills").value == 1


def test_injector_publishes_straggle():
    obs.enable()
    injector = FaultInjector(FaultPlan(seed=0, stragglers={2: 2.0}))
    assert injector.compute_multiplier(2) == 2.0
    injector.record_straggle(0.125)
    (ev,) = obs.get_event_bus().events("fault.straggle")
    assert ev.fields == {"extra_seconds": 0.125}


def test_fabric_message_counters():
    from repro.comm.fabric import SimulatedFabric

    obs.enable()
    fabric = SimulatedFabric(2)
    fabric.send(0, 1, np.zeros(4), tag=0)
    fabric.isend(1, 0, np.zeros(2), tag=0)
    reg = obs.get_registry()
    assert reg.counter("comm.messages", kind="send").value == 1
    assert reg.counter("comm.messages", kind="isend").value == 1
    assert reg.counter("comm.bytes", kind="send").value == 32
    assert reg.counter("comm.bytes", kind="isend").value == 16
