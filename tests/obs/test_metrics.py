"""Metrics registry: bucket edges, labeled series, snapshot round-trips."""

import json
import math

import pytest

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENT,
    Histogram,
    MetricsRegistry,
    MetricsSchemaError,
    log_spaced_buckets,
    validate_metrics_snapshot,
)


def test_log_spaced_buckets_default_span():
    edges = log_spaced_buckets()
    assert edges[0] == pytest.approx(1e-6)
    assert edges[-1] == pytest.approx(100.0)
    assert len(edges) == 33  # 8 decades x 4 per decade + 1
    assert all(b > a for a, b in zip(edges, edges[1:]))
    assert edges == DEFAULT_BUCKETS


def test_log_spaced_buckets_validation():
    with pytest.raises(ValueError):
        log_spaced_buckets(lo=0.0)
    with pytest.raises(ValueError):
        log_spaced_buckets(lo=1.0, hi=0.5)
    with pytest.raises(ValueError):
        log_spaced_buckets(per_decade=0)


def test_histogram_bucket_edges_exact():
    """Slot semantics: underflow | [e0,e1) ... | overflow, edges inclusive
    on the left — an observation exactly on an edge lands in the bucket the
    edge opens."""
    h = Histogram("lat", {}, edges=(1.0, 10.0, 100.0))
    h.observe(0.5)    # underflow -> slot 0
    h.observe(1.0)    # == edges[0] -> slot 1
    h.observe(9.99)   # slot 1
    h.observe(10.0)   # == edges[1] -> slot 2
    h.observe(100.0)  # == edges[-1] -> overflow slot
    h.observe(1e9)    # overflow
    assert h.counts == [1, 2, 1, 2]
    assert h.count == 6
    assert h.sum == pytest.approx(0.5 + 1.0 + 9.99 + 10.0 + 100.0 + 1e9)


def test_histogram_stats_and_quantile():
    h = Histogram("lat", {}, edges=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.6, 3.0):
        h.observe(v)
    assert h.mean == pytest.approx((0.5 + 1.5 + 1.6 + 3.0) / 4)
    assert h.quantile(0.5) == 2.0  # upper bound of the median's bucket
    assert h.quantile(1.0) == 4.0
    empty = Histogram("e", {})
    assert math.isnan(empty.mean) and math.isnan(empty.quantile(0.5))
    with pytest.raises(ValueError):
        h.quantile(0.0)


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram("h", {}, edges=())
    with pytest.raises(ValueError):
        Histogram("h", {}, edges=(1.0, 1.0))


def test_counter_monotonic():
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("msgs", kind="send")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_min_max():
    reg = MetricsRegistry(enabled=True)
    g = reg.gauge("wait_s", rank=0)
    g.set(2.0)
    g.set(0.5)
    g.inc(3.0)
    d = g.as_dict()
    assert d["value"] == pytest.approx(3.5)
    assert d["min"] == pytest.approx(0.5)
    assert d["max"] == pytest.approx(3.5)
    assert d["count"] == 3


def test_labeled_series_are_independent():
    reg = MetricsRegistry(enabled=True)
    reg.counter("msgs", kind="send").inc()
    reg.counter("msgs", kind="isend").inc(2)
    assert reg.counter("msgs", kind="send").value == 1
    assert reg.counter("msgs", kind="isend").value == 2
    assert len(reg.series()) == 2


def test_kind_mismatch_raises():
    reg = MetricsRegistry(enabled=True)
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_timer_observes_into_histogram():
    reg = MetricsRegistry(enabled=True)
    with reg.timer("step_s"):
        pass
    h = reg.histogram("step_s")
    assert h.count == 1
    assert 0 <= h.sum < 1.0


def test_snapshot_json_round_trip(tmp_path):
    reg = MetricsRegistry(enabled=True)
    reg.counter("msgs", kind="send").inc(3)
    reg.gauge("wait_s", rank=1).set(0.25)
    reg.histogram("lat_s").observe(1e-4)
    path = tmp_path / "metrics.json"
    reg.to_json(str(path))
    payload = json.loads(path.read_text())
    validate_metrics_snapshot(payload)
    assert payload["schema_version"] == 1
    names = [m["name"] for m in payload["metrics"]]
    assert names == sorted(names)
    (hist,) = [m for m in payload["metrics"] if m["type"] == "histogram"]
    assert len(hist["counts"]) == len(hist["edges"]) + 1
    assert sum(hist["counts"]) == hist["count"] == 1


def test_snapshot_csv_round_trip(tmp_path):
    reg = MetricsRegistry(enabled=True)
    reg.counter("msgs", kind="send").inc(3)
    reg.histogram("lat_s", algorithm="ring").observe(0.5)
    path = tmp_path / "metrics.csv"
    reg.to_csv(str(path))
    lines = path.read_text().splitlines()
    assert lines[0] == "name,type,labels,field,value"
    rows = [line.split(",") for line in lines[1:]]
    assert ["msgs", "counter", "kind=send", "value", "3.0"] in rows
    assert any(r[:3] == ["lat_s", "histogram", "algorithm=ring"] and r[3] == "count"
               for r in rows)


def test_validate_rejects_malformed():
    with pytest.raises(MetricsSchemaError):
        validate_metrics_snapshot([])
    with pytest.raises(MetricsSchemaError):
        validate_metrics_snapshot({"schema_version": 99, "metrics": []})
    bad_hist = {
        "schema_version": 1,
        "metrics": [{
            "name": "h", "type": "histogram", "labels": {},
            "edges": [1.0, 2.0], "counts": [0, 1], "count": 1,
        }],
    }
    with pytest.raises(MetricsSchemaError):  # counts must be len(edges)+1
        validate_metrics_snapshot(bad_hist)
    bad_count = {
        "schema_version": 1,
        "metrics": [{
            "name": "h", "type": "histogram", "labels": {},
            "edges": [1.0], "counts": [0, 3], "count": 1,
        }],
    }
    with pytest.raises(MetricsSchemaError):  # count != sum(counts)
        validate_metrics_snapshot(bad_count)


def test_module_helpers_return_null_when_disabled():
    assert metrics_mod.counter("x") is NULL_INSTRUMENT
    assert metrics_mod.gauge("x") is NULL_INSTRUMENT
    assert metrics_mod.histogram("x") is NULL_INSTRUMENT
    metrics_mod.observe("x", 1.0)
    assert metrics_mod.get_registry().series() == []


def test_module_helpers_record_when_enabled():
    reg = metrics_mod.get_registry()
    reg.enabled = True
    try:
        metrics_mod.counter("msgs", kind="send").inc()
        metrics_mod.observe("lat_s", 2e-3)
    finally:
        reg.enabled = False
    assert reg.counter("msgs", kind="send").value == 1
    assert reg.histogram("lat_s").count == 1


def test_reset_drops_series():
    reg = MetricsRegistry(enabled=True)
    reg.counter("x").inc()
    reg.reset()
    assert reg.series() == []
