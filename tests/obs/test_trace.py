"""Span tracer: nesting, exception safety, Chrome export, disabled overhead."""

import json
import threading
import time

import pytest

from repro.obs import trace as trace_mod
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    TraceSchemaError,
    to_chrome_trace,
    validate_chrome_trace,
)


def test_span_records_duration_and_attrs():
    tracer = Tracer(enabled=True)
    with tracer.span("work", batch=32):
        time.sleep(0.001)
    (s,) = tracer.spans
    assert s.name == "work"
    assert s.attrs["batch"] == 32
    assert s.duration_ns >= 1_000_000
    assert s.duration_s == pytest.approx(s.duration_ns * 1e-9)


def test_nesting_parent_and_depth():
    tracer = Tracer(enabled=True)
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["outer"].parent is None and by_name["outer"].depth == 0
    assert by_name["middle"].parent == "outer" and by_name["middle"].depth == 1
    assert by_name["inner"].parent == "middle" and by_name["inner"].depth == 2
    # inner spans finish (and record) before outer ones
    assert [s.name for s in tracer.spans] == ["inner", "middle", "outer"]
    assert [s.name for s in tracer.children_of("outer")] == ["middle"]


def test_sibling_spans_share_parent():
    tracer = Tracer(enabled=True)
    with tracer.span("step"):
        with tracer.span("compute"):
            pass
        with tracer.span("sync"):
            pass
    assert {s.name for s in tracer.children_of("step")} == {"compute", "sync"}


def test_exception_closes_span_and_marks_error():
    tracer = Tracer(enabled=True)
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("fails"):
                raise RuntimeError("boom")
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["fails"].attrs["error"] == "RuntimeError"
    assert by_name["fails"].end_ns is not None
    assert by_name["outer"].attrs["error"] == "RuntimeError"
    # the per-thread stack fully unwound
    assert tracer.current_span() is None


def test_set_updates_running_span():
    tracer = Tracer(enabled=True)
    with tracer.span("s") as live:
        live.set(result="ok", n=3)
    (s,) = tracer.spans
    assert s.attrs == {"result": "ok", "n": 3}


def test_disabled_returns_shared_null_span():
    tracer = Tracer(enabled=False)
    cm = tracer.span("ignored", x=1)
    assert cm is NULL_SPAN
    with cm:
        pass
    cm.set(anything="goes")
    assert tracer.spans == [] and tracer.instants == []


def test_module_helpers_follow_global_switch():
    assert trace_mod.span("off") is NULL_SPAN
    trace_mod.instant("off")
    tracer = trace_mod.get_tracer()
    assert tracer.spans == [] and tracer.instants == []
    tracer.enabled = True
    try:
        with trace_mod.span("on"):
            assert trace_mod.current_span().name == "on"
        trace_mod.instant("mark", rank=1)
    finally:
        tracer.enabled = False
    assert [s.name for s in tracer.spans] == ["on"]
    assert [e.name for e in tracer.instants] == ["mark"]


def test_disabled_overhead_smoke():
    """The disabled path must be within sight of an empty with-block.

    Generous bound (50x an empty context manager) — this is a smoke test
    for an accidentally-enabled allocation or lock, not a benchmark; the
    precise numbers live in the obs.span.disabled bench entry.
    """
    tracer = Tracer(enabled=False)
    n = 2000

    class Empty:
        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

    empty = Empty()
    t0 = time.perf_counter_ns()
    for _ in range(n):
        with empty:
            pass
    empty_ns = time.perf_counter_ns() - t0

    t0 = time.perf_counter_ns()
    for _ in range(n):
        with tracer.span("noop"):
            pass
    disabled_ns = time.perf_counter_ns() - t0
    assert disabled_ns < max(50 * empty_ns, 5_000_000)


def test_threads_get_distinct_tids_and_names():
    tracer = Tracer(enabled=True)

    def work():
        with tracer.span("worker"):
            pass

    t = threading.Thread(target=work, name="rank-7")
    t.start()
    t.join()
    with tracer.span("main"):
        pass
    tids = {s.tid for s in tracer.spans}
    assert len(tids) == 2
    payload = tracer.to_chrome()
    names = {
        ev["args"]["name"]
        for ev in payload["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    assert "rank-7" in names


def test_max_events_bounds_memory():
    tracer = Tracer(enabled=True, max_events=10)
    for i in range(50):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.spans) <= 10


def test_chrome_round_trip_validates(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("outer", epoch=1):
        with tracer.span("inner"):
            pass
    tracer.instant("fault.kill", rank=2)
    path = tmp_path / "trace.json"
    tracer.export_chrome(str(path))
    payload = json.loads(path.read_text())
    validate_chrome_trace(payload)
    phases = {ev["ph"] for ev in payload["traceEvents"]}
    assert "X" in phases and "i" in phases
    complete = [ev for ev in payload["traceEvents"] if ev["ph"] == "X"]
    assert {ev["name"] for ev in complete} == {"outer", "inner"}
    for ev in complete:
        assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert ev["pid"] == 0 and isinstance(ev["tid"], int)
    (mark,) = [ev for ev in payload["traceEvents"] if ev["ph"] == "i"]
    assert mark["name"] == "fault.kill" and mark["args"] == {"rank": 2}


def test_chrome_args_coerced_json_safe():
    spans = [Span("s", start_ns=0, end_ns=10, attrs={"obj": object(), "t": (1, 2)})]
    payload = to_chrome_trace(spans)
    validate_chrome_trace(payload)
    args = payload["traceEvents"][0]["args"]
    assert isinstance(args["obj"], str)
    assert args["t"] == [1, 2]


@pytest.mark.parametrize(
    "payload",
    [
        [],
        {"events": []},
        {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 0, "ts": 0}]},
        {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 1}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": -5, "dur": 1}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0}]},
        {"traceEvents": [{"ph": "i", "name": "x", "pid": 0, "tid": 0, "ts": 0, "s": "q"}]},
        {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 0, "dur": 1,
                          "args": 7}]},
    ],
)
def test_validate_rejects_malformed(payload):
    with pytest.raises(TraceSchemaError):
        validate_chrome_trace(payload)


def test_clear_resets_origin():
    tracer = Tracer(enabled=True)
    with tracer.span("a"):
        pass
    tracer.clear()
    assert tracer.spans == []
    with tracer.span("b"):
        pass
    payload = tracer.to_chrome()
    (ev,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert 0 <= ev["ts"] < 1e6  # starts near zero again
