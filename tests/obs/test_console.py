"""Console: level filtering, quiet/verbose mapping, byte-identical info."""

import pytest

from repro.obs.console import LEVELS, Console, configure_verbosity, get_console


@pytest.fixture(autouse=True)
def restore_level():
    console = get_console()
    prev = console.level
    yield
    console.set_level(prev)


def test_info_is_byte_identical_to_print(capsys):
    message = "  epoch   1  loss  0.1234  test 0.9000"
    print(message)
    expected = capsys.readouterr().out
    Console().info(message)
    assert capsys.readouterr().out == expected


def test_levels_and_streams(capsys):
    c = Console(level="debug")
    c.debug("d")
    c.info("i")
    c.warning("w")
    c.error("e")
    captured = capsys.readouterr()
    assert captured.out == "[debug] d\ni\n"
    assert captured.err == "warning: w\nerror: e\n"


def test_default_level_drops_debug(capsys):
    c = Console()
    c.debug("hidden")
    assert capsys.readouterr().out == ""
    assert c.is_enabled_for("info") and not c.is_enabled_for("debug")


def test_warning_level_drops_info(capsys):
    c = Console(level="warning")
    c.info("hidden")
    c.warning("shown")
    captured = capsys.readouterr()
    assert captured.out == "" and captured.err == "warning: shown\n"


def test_unknown_level_rejected():
    with pytest.raises(ValueError):
        Console(level="chatty")
    with pytest.raises(ValueError):
        Console().set_level("TRACE")


def test_configure_verbosity_mapping():
    assert configure_verbosity().level == "info"
    assert configure_verbosity(verbose=True).level == "debug"
    assert configure_verbosity(quiet=True).level == "warning"
    # quiet wins over verbose (scripted callers want silence)
    assert configure_verbosity(quiet=True, verbose=True).level == "warning"


def test_level_ordering():
    assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]
