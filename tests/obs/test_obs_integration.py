"""End-to-end telemetry: instrumented trainer/cluster runs produce nested
spans, labeled histograms, and fault events on one timeline."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.trace import validate_chrome_trace


def _tiny_serial_run(epochs=2):
    from repro.core import SGD, ConstantLR
    from repro.core.trainer import Trainer
    from repro.data import gaussian_blobs
    from repro.nn.models import mlp

    x, y = gaussian_blobs(48, num_classes=3, dim=6, seed=0)
    model = mlp(6, [8], 3, seed=1)
    trainer = Trainer(model, SGD(model.parameters()), ConstantLR(0.1))
    return trainer.fit(x, y, x[:12], y[:12], epochs=epochs, batch_size=16)


def test_serial_trainer_spans_and_histograms():
    obs.enable()
    result = _tiny_serial_run(epochs=2)
    tracer = obs.get_tracer()
    steps = tracer.spans_named("trainer.train_step")
    assert len(steps) == result.total_iterations == 6
    assert all(s.parent == "trainer.epoch" for s in steps)
    assert len(tracer.spans_named("trainer.epoch")) == 2
    assert len(tracer.spans_named("trainer.evaluate")) == 2
    # the timed() helper fed the matching latency histograms too
    reg = obs.get_registry()
    assert reg.histogram("trainer.train_step_s").count == 6
    assert reg.histogram("trainer.epoch_s").count == 2
    # epoch boundaries published onto the bus
    epochs = obs.get_event_bus().events("trainer.epoch")
    assert [e.fields["epoch"] for e in epochs] == [1, 2]


def test_disabled_run_records_nothing():
    _tiny_serial_run(epochs=1)
    assert obs.get_tracer().spans == []
    assert obs.get_registry().series() == []
    assert obs.get_event_bus().events() == []


def test_traced_sync_sgd_demo_has_nested_spans_and_fault_events(tmp_path):
    """The acceptance path: a fault-armed cluster run exports a valid Chrome
    trace containing nested trainer -> grad_sync -> allreduce spans and at
    least one fault-injector event."""
    from repro.obs.cli import run_traced_demo

    obs.enable()
    result = run_traced_demo(world=4, epochs=1, batch=32, examples=64,
                             drop_prob=0.05, straggler_mult=1.5, seed=0)
    assert result.final_test_accuracy >= 0.0
    tracer = obs.get_tracer()

    steps = tracer.spans_named("trainer.train_step")
    assert steps and all(s.depth == 0 for s in steps)
    syncs = tracer.spans_named("cluster.grad_sync")
    assert syncs and all(s.parent == "trainer.train_step" for s in syncs)
    allreduces = tracer.spans_named("comm.allreduce")
    assert allreduces
    assert any(s.parent == "cluster.grad_sync" for s in allreduces)
    computes = tracer.spans_named("cluster.compute")
    assert computes and all(s.parent == "trainer.train_step" for s in computes)

    # rank threads are distinguishable tracks
    assert len({s.tid for s in steps}) == 4

    # the armed straggler guarantees fault events on the same timeline
    fault_marks = [e for e in tracer.instants if e.name.startswith("fault.")]
    assert fault_marks
    fault_events = obs.get_event_bus().events("fault")
    assert fault_events

    # straggler-wait gauge and per-collective histogram recorded
    reg = obs.get_registry()
    waits = [g for g in reg.series()
             if g.name == "cluster.straggler_wait_s" and g.kind == "gauge"]
    assert len(waits) == 4
    ring = reg.histogram("comm.allreduce_s", algorithm="ring")
    assert ring.count == sum(s.attrs.get("algorithm") == "ring" for s in allreduces)
    assert ring.count > 0

    # exported file passes the Chrome schema and keeps the nesting visible
    path = tmp_path / "trace.json"
    obs.export_trace(str(path))
    payload = json.loads(path.read_text())
    validate_chrome_trace(payload)
    names = {ev["name"] for ev in payload["traceEvents"]}
    assert {"trainer.train_step", "cluster.grad_sync", "comm.allreduce"} <= names
    assert any(ev["ph"] == "i" and ev["name"].startswith("fault.")
               for ev in payload["traceEvents"])


def test_metrics_export_from_traced_run(tmp_path):
    from repro.obs.metrics import validate_metrics_snapshot

    obs.enable()
    _tiny_serial_run(epochs=1)
    json_path = tmp_path / "metrics.json"
    csv_path = tmp_path / "metrics.csv"
    obs.export_metrics(str(json_path))
    obs.export_metrics(str(csv_path), fmt="csv")
    payload = json.loads(json_path.read_text())
    validate_metrics_snapshot(payload)
    assert any(m["name"] == "trainer.train_step_s" for m in payload["metrics"])
    assert "trainer.train_step_s" in csv_path.read_text()
    with pytest.raises(ValueError):
        obs.export_metrics(str(json_path), fmt="xml")


def test_timed_skips_histogram_labels_from_span_attrs():
    obs.enable()
    with obs.timed("op", hist_labels={"algorithm": "ring"}, rank=3, iteration=17):
        pass
    reg = obs.get_registry()
    h = reg.histogram("op_s", algorithm="ring")
    assert h.count == 1
    (s,) = obs.get_tracer().spans_named("op")
    assert s.attrs["rank"] == 3 and s.attrs["iteration"] == 17


def test_timed_metrics_only_mode():
    obs.enable(tracing=False)
    with obs.timed("op"):
        pass
    assert obs.get_tracer().spans == []
    assert obs.get_registry().histogram("op_s").count == 1


def test_loader_batch_fetch_spans():
    from repro.data import BatchLoader

    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 4))
    y = rng.integers(0, 3, 32)
    obs.enable()
    loader = BatchLoader(x, y, batch_size=8, auto_advance=False)
    batches = list(loader)
    fetches = obs.get_tracer().spans_named("data.batch_fetch")
    assert len(fetches) == len(batches) == 4


def test_layer_profiler_emits_spans_and_keeps_table():
    from repro.nn.models import mlp
    from repro.obs.trace import Tracer
    from repro.util.timing import LayerProfiler

    model = mlp(6, [8], 3, seed=0)
    tracer = Tracer(enabled=True)
    prof = LayerProfiler(model, tracer=tracer)
    x = np.random.default_rng(0).normal(size=(4, 6))
    model.forward(x)
    prof.unwrap()
    fwd = tracer.spans_named("layer.forward")
    assert len(fwd) == len(model.layers)
    report = prof.report()
    assert "fwd_s" in report and "TOTAL" in report
    # span labels match the table's layer labels
    labels = {s.attrs["layer"] for s in fwd}
    assert labels == set(prof.forward_time)
