"""Shared fixtures: every test leaves the global obs singletons disabled
and empty, so instrumented hot paths elsewhere in the suite stay no-ops."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
