"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "resnet50" in out and "Omni-Path" in out


def test_predict_headline(capsys):
    assert main(["predict", "--model", "resnet50", "--epochs", "90",
                 "--batch", "32768", "--processors", "2048",
                 "--device", "knl", "--network", "opa"]) == 0
    out = capsys.readouterr().out
    assert "total time" in out
    # the 20-minute headline, within the model's band
    minutes = float(out.split("total time:")[1].split("minutes")[0])
    assert 14 < minutes < 26


def test_train_serial(capsys):
    assert main(["train", "--model", "mlp", "--optimizer", "lars",
                 "--batch", "64", "--epochs", "2", "--dataset", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "peak test accuracy" in out


def test_train_cluster(capsys):
    assert main(["train", "--model", "mlp", "--optimizer", "sgd",
                 "--batch", "64", "--epochs", "1", "--world", "2",
                 "--dataset", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "simulated ranks" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_device_errors():
    with pytest.raises(KeyError):
        main(["predict", "--device", "tpu"])
