"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "resnet50" in out and "Omni-Path" in out


def test_predict_headline(capsys):
    assert main(["predict", "--model", "resnet50", "--epochs", "90",
                 "--batch", "32768", "--processors", "2048",
                 "--device", "knl", "--network", "opa"]) == 0
    out = capsys.readouterr().out
    assert "total time" in out
    # the 20-minute headline, within the model's band
    minutes = float(out.split("total time:")[1].split("minutes")[0])
    assert 14 < minutes < 26


def test_train_serial(capsys):
    assert main(["train", "--model", "mlp", "--optimizer", "lars",
                 "--batch", "64", "--epochs", "2", "--dataset", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "peak test accuracy" in out


def test_train_cluster(capsys):
    assert main(["train", "--model", "mlp", "--optimizer", "sgd",
                 "--batch", "64", "--epochs", "1", "--world", "2",
                 "--dataset", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "simulated ranks" in out


def test_train_trace_export(tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    assert main(["train", "--model", "mlp", "--optimizer", "sgd",
                 "--batch", "64", "--epochs", "1", "--dataset", "tiny",
                 "--trace", str(trace_path),
                 "--metrics-out", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "wrote trace" in out and "wrote metrics" in out
    from repro.obs.metrics import validate_metrics_snapshot
    from repro.obs.trace import validate_chrome_trace

    payload = json.loads(trace_path.read_text())
    validate_chrome_trace(payload)
    assert any(ev["name"] == "trainer.train_step" for ev in payload["traceEvents"])
    validate_metrics_snapshot(json.loads(metrics_path.read_text()))


def test_train_without_trace_leaves_obs_disabled():
    from repro import obs

    assert main(["train", "--model", "mlp", "--optimizer", "sgd",
                 "--batch", "64", "--epochs", "1", "--dataset", "tiny"]) == 0
    assert not obs.is_enabled()
    assert obs.get_tracer().spans == []


def test_quiet_suppresses_info(capsys):
    from repro.obs.console import configure_verbosity

    try:
        assert main(["-q", "info"]) == 0
        assert capsys.readouterr().out == ""
    finally:
        configure_verbosity()


def test_trace_export_validate_summary(tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    assert main(["trace", "export", "--out", str(trace_path),
                 "--metrics-out", str(metrics_path),
                 "--world", "2", "--epochs", "1", "--examples", "64"]) == 0
    capsys.readouterr()
    payload = json.loads(trace_path.read_text())
    names = {ev["name"] for ev in payload["traceEvents"]}
    assert "cluster.grad_sync" in names

    assert main(["trace", "validate", str(trace_path), str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert out.count("ok (") == 2

    assert main(["trace", "summary", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "trainer.train_step" in out


def test_trace_validate_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"not": "a trace"}')
    assert main(["trace", "validate", str(bad)]) == 1
    assert str(bad) in capsys.readouterr().err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_device_errors():
    with pytest.raises(KeyError):
        main(["predict", "--device", "tpu"])


def test_train_check_zero_alloc(capsys):
    assert main(["train", "--model", "mlp", "--optimizer", "sgd",
                 "--batch", "32", "--epochs", "1", "--dataset", "tiny",
                 "--check-zero-alloc"]) == 0
    out = capsys.readouterr().out
    assert "zero-alloc check passed" in out
    assert "train-step plan" in out


def test_train_static_memory_matches_eager(capsys):
    args = ["train", "--model", "mlp", "--optimizer", "sgd",
            "--batch", "32", "--epochs", "2", "--dataset", "tiny"]
    assert main(args) == 0
    eager = capsys.readouterr().out
    assert main([*args, "--static-memory"]) == 0
    planned = capsys.readouterr().out
    # same accuracies line for line: static memory is bitwise-neutral
    pick = lambda s: [ln for ln in s.splitlines() if "epoch" in ln or "peak" in ln]  # noqa: E731
    assert pick(eager) == pick(planned)


def test_check_zero_alloc_rejects_cluster_runs():
    with pytest.raises(SystemExit, match="serial"):
        main(["train", "--model", "mlp", "--world", "2",
              "--dataset", "tiny", "--epochs", "1", "--check-zero-alloc"])
