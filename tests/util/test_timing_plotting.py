"""Timer, LayerProfiler and ascii plotting tests."""

import time

import numpy as np
import pytest

from repro.nn.models import mlp
from repro.util import LayerProfiler, Timer, ascii_plot, sparkline


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        with t:
            time.sleep(0.01)
        assert t.count == 2
        assert t.total >= 0.02
        assert t.mean == pytest.approx(t.total / 2)

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.total == 0.0 and t.count == 0

    def test_mean_empty(self):
        assert Timer().mean == 0.0

    def test_integer_ns_accumulation(self):
        t = Timer()
        with t:
            pass
        assert t.total_ns > 0
        assert t.total == pytest.approx(t.total_ns * 1e-9)
        t.reset()
        assert t.total_ns == 0 and t.total == 0.0

    def test_total_is_read_only(self):
        t = Timer()
        with pytest.raises(AttributeError):
            t.total = 1.0


class TestLayerProfiler:
    def test_records_all_layers(self):
        model = mlp(6, [8], 3)
        prof = LayerProfiler(model)
        x = np.random.default_rng(0).normal(size=(16, 6))
        out = model.forward(x)
        model.backward(np.ones_like(out))
        assert len(prof.forward_time) == len(model.layers)
        assert all(t.count == 1 for t in prof.forward_time.values())

    def test_report_sorted_with_total(self):
        model = mlp(6, [8], 3)
        prof = LayerProfiler(model)
        model.forward(np.zeros((4, 6)))
        rep = prof.report()
        assert "TOTAL" in rep and "mlp.layers" in rep

    def test_hotspot(self):
        model = mlp(6, [64], 3)
        prof = LayerProfiler(model)
        model.forward(np.zeros((64, 6)))
        assert prof.hotspot() is not None

    def test_unwrap_restores(self):
        model = mlp(6, [8], 3)
        originals = [layer.forward for layer in model.layers]
        prof = LayerProfiler(model)
        prof.unwrap()
        assert [layer.forward for layer in model.layers] == originals

    def test_requires_sequential(self):
        from repro.nn import Dense

        with pytest.raises(TypeError):
            LayerProfiler(Dense(3, 3))

    def test_profiled_model_still_correct(self):
        model = mlp(6, [8], 3, seed=3)
        x = np.random.default_rng(1).normal(size=(5, 6))
        expected = model.forward(x)
        prof = LayerProfiler(model)
        assert np.array_equal(model.forward(x), expected)

    def test_tracer_spans_per_layer(self):
        from repro.obs.trace import Tracer

        model = mlp(6, [8], 3)
        tracer = Tracer(enabled=True)
        prof = LayerProfiler(model, tracer=tracer)
        out = model.forward(np.zeros((4, 6)))
        model.backward(np.ones_like(out))
        assert len(tracer.spans_named("layer.forward")) == len(model.layers)
        assert len(tracer.spans_named("layer.backward")) == len(model.layers)
        # timers still accumulate alongside the spans
        assert all(t.count == 1 for t in prof.forward_time.values())

    def test_disabled_tracer_emits_no_spans(self):
        from repro.obs.trace import Tracer

        model = mlp(6, [8], 3)
        tracer = Tracer(enabled=False)
        LayerProfiler(model, tracer=tracer)
        model.forward(np.zeros((4, 6)))
        assert tracer.spans == []


class TestPlotting:
    def test_sparkline_monotone(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert s == "▁▂▃▄▅▆▇█"

    def test_sparkline_constant(self):
        assert len(sparkline([5, 5, 5])) == 3

    def test_sparkline_nan_blank(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "

    def test_ascii_plot_contains_markers_and_legend(self):
        chart = ascii_plot({
            "lars": [(256, 0.75), (32768, 0.75)],
            "sgd": [(256, 0.75), (32768, 0.55)],
        }, logx=True)
        assert "l = lars" in chart and "s = sgd" in chart
        assert "l" in chart.splitlines()[0] + chart.splitlines()[1]

    def test_ascii_plot_empty(self):
        assert ascii_plot({"a": []}) == "(no data)"

    def test_ascii_plot_single_point(self):
        chart = ascii_plot({"x": [(1.0, 1.0)]})
        assert "x = x" in chart

    def test_ascii_plot_logx_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0.0, 1.0)]}, logx=True)

    def test_ascii_plot_filters_nonfinite(self):
        chart = ascii_plot({"a": [(1.0, 1.0), (float("nan"), 2.0), (2.0, 3.0)]})
        assert "a = a" in chart
