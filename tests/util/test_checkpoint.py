"""Checkpoint save/load tests."""

import numpy as np
import pytest

from repro.core import LARS, SGD, Adam, ConstantLR, Trainer
from repro.nn.models import micro_resnet, mlp
from repro.util import load_checkpoint, save_checkpoint


def trained_model_and_opt(opt_cls=SGD, steps=3, **opt_kw):
    model = mlp(6, [8], 3, seed=1)
    opt = opt_cls(model.parameters(), **opt_kw)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(12, 6))
    y = rng.integers(0, 3, size=12)
    trainer = Trainer(model, opt, ConstantLR(0.05), shuffle_seed=0)
    for _ in range(steps):
        trainer.train_step(x, y)
    return model, opt, trainer, (x, y)


def test_model_roundtrip(tmp_path):
    model, opt, trainer, _ = trained_model_and_opt()
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, model, opt, iteration=trainer.iteration)

    fresh = mlp(6, [8], 3, seed=99)  # different weights
    it = load_checkpoint(path, fresh)
    assert it == 3
    for k, v in model.state_dict().items():
        assert np.array_equal(fresh.state_dict()[k], v)


@pytest.mark.parametrize("opt_cls,kw", [
    (SGD, {"momentum": 0.9, "weight_decay": 0.0}),
    (LARS, {"trust_coefficient": 0.01}),
    (Adam, {}),
])
def test_resume_continues_identically(tmp_path, opt_cls, kw):
    """Train 3 steps, checkpoint, train 2 more; vs restore + 2 steps."""
    model, opt, trainer, (x, y) = trained_model_and_opt(opt_cls, **kw)
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, model, opt, iteration=trainer.iteration)
    for _ in range(2):
        trainer.train_step(x, y)
    expected = model.state_dict()

    model2 = mlp(6, [8], 3, seed=1)
    opt2 = opt_cls(model2.parameters(), **kw)
    load_checkpoint(path, model2, opt2)
    trainer2 = Trainer(model2, opt2, ConstantLR(0.05), shuffle_seed=0)
    trainer2.iteration = 3
    for _ in range(2):
        trainer2.train_step(x, y)
    for k, v in expected.items():
        assert np.allclose(model2.state_dict()[k], v, atol=1e-12)


def test_model_only_checkpoint(tmp_path):
    model, opt, trainer, _ = trained_model_and_opt()
    path = tmp_path / "m.npz"
    save_checkpoint(path, model)
    fresh = mlp(6, [8], 3, seed=2)
    assert load_checkpoint(path, fresh) == 0
    with pytest.raises(KeyError):
        load_checkpoint(path, fresh, SGD(fresh.parameters()))


def test_conv_model_checkpoint(tmp_path):
    model = micro_resnet(num_classes=3, width=4, seed=4)
    path = tmp_path / "res.npz"
    save_checkpoint(path, model)
    fresh = micro_resnet(num_classes=3, width=4, seed=5)
    load_checkpoint(path, fresh)
    for k, v in model.state_dict().items():
        assert np.array_equal(fresh.state_dict()[k], v)


def test_shape_mismatch_rejected(tmp_path):
    model, *_ = trained_model_and_opt()
    path = tmp_path / "m.npz"
    save_checkpoint(path, model)
    wrong = mlp(6, [16], 3)
    with pytest.raises((ValueError, KeyError)):
        load_checkpoint(path, wrong)
