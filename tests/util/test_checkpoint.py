"""Checkpoint save/load tests: round-trips for every optimiser,
atomic-write behaviour, and RNG-state serialisation."""

import os

import numpy as np
import pytest

from repro.core import LAMB, LARS, SGD, Adam, ConstantLR, Trainer
from repro.nn.models import micro_resnet, mlp
from repro.util import load_checkpoint, load_rng_state, save_checkpoint


def trained_model_and_opt(opt_cls=SGD, steps=3, **opt_kw):
    model = mlp(6, [8], 3, seed=1)
    opt = opt_cls(model.parameters(), **opt_kw)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(12, 6))
    y = rng.integers(0, 3, size=12)
    trainer = Trainer(model, opt, ConstantLR(0.05), shuffle_seed=0)
    for _ in range(steps):
        trainer.train_step(x, y)
    return model, opt, trainer, (x, y)


def test_model_roundtrip(tmp_path):
    model, opt, trainer, _ = trained_model_and_opt()
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, model, opt, iteration=trainer.iteration)

    fresh = mlp(6, [8], 3, seed=99)  # different weights
    it = load_checkpoint(path, fresh)
    assert it == 3
    for k, v in model.state_dict().items():
        assert np.array_equal(fresh.state_dict()[k], v)


@pytest.mark.parametrize("opt_cls,kw", [
    (SGD, {"momentum": 0.9, "weight_decay": 0.0005}),
    (LARS, {"trust_coefficient": 0.01, "momentum": 0.9}),
    (LAMB, {"weight_decay": 0.0005}),
    (Adam, {"weight_decay": 0.0005}),
])
def test_resume_continues_bit_identically(tmp_path, opt_cls, kw):
    """Train 3 steps, checkpoint, train 2 more; vs restore + 2 steps.
    The restored run must reproduce the uninterrupted one bit for bit —
    any drift means optimiser state (momentum/Adam moments/step count)
    leaked through the round-trip."""
    model, opt, trainer, (x, y) = trained_model_and_opt(opt_cls, **kw)
    path = tmp_path / "ckpt.npz"
    save_checkpoint(path, model, opt, iteration=trainer.iteration)
    for _ in range(2):
        trainer.train_step(x, y)
    expected = model.state_dict()

    model2 = mlp(6, [8], 3, seed=1)
    opt2 = opt_cls(model2.parameters(), **kw)
    load_checkpoint(path, model2, opt2)
    trainer2 = Trainer(model2, opt2, ConstantLR(0.05), shuffle_seed=0)
    trainer2.iteration = 3
    for _ in range(2):
        trainer2.train_step(x, y)
    for k, v in expected.items():
        np.testing.assert_array_equal(model2.state_dict()[k], v)


def test_model_only_checkpoint(tmp_path):
    model, opt, trainer, _ = trained_model_and_opt()
    path = tmp_path / "m.npz"
    save_checkpoint(path, model)
    fresh = mlp(6, [8], 3, seed=2)
    assert load_checkpoint(path, fresh) == 0
    with pytest.raises(KeyError):
        load_checkpoint(path, fresh, SGD(fresh.parameters()))


def test_conv_model_checkpoint(tmp_path):
    model = micro_resnet(num_classes=3, width=4, seed=4)
    path = tmp_path / "res.npz"
    save_checkpoint(path, model)
    fresh = micro_resnet(num_classes=3, width=4, seed=5)
    load_checkpoint(path, fresh)
    for k, v in model.state_dict().items():
        assert np.array_equal(fresh.state_dict()[k], v)


def test_shape_mismatch_rejected(tmp_path):
    model, *_ = trained_model_and_opt()
    path = tmp_path / "m.npz"
    save_checkpoint(path, model)
    wrong = mlp(6, [16], 3)
    with pytest.raises((ValueError, KeyError)):
        load_checkpoint(path, wrong)


class TestAtomicWrite:
    def test_no_tmp_file_left_behind(self, tmp_path):
        model, *_ = trained_model_and_opt()
        save_checkpoint(tmp_path / "ckpt.npz", model)
        assert sorted(os.listdir(tmp_path)) == ["ckpt.npz"]

    def test_npz_extension_appended(self, tmp_path):
        # np.savez's extension convention must survive the tmp+rename path
        model, *_ = trained_model_and_opt()
        save_checkpoint(tmp_path / "ckpt", model)
        assert (tmp_path / "ckpt.npz").exists()

    def test_crashed_save_leaves_old_checkpoint_intact(
        self, tmp_path, monkeypatch
    ):
        """A failure mid-write must neither clobber the previous checkpoint
        nor leave a torn ``.tmp`` on disk."""
        model, opt, trainer, _ = trained_model_and_opt()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, opt, iteration=trainer.iteration)
        before = path.read_bytes()

        def torn_write(fh, **arrays):
            fh.write(b"\x00" * 16)  # partial garbage, then die
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", torn_write)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(path, model, opt, iteration=99)
        monkeypatch.undo()

        assert path.read_bytes() == before  # old checkpoint untouched
        assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))
        fresh = mlp(6, [8], 3, seed=7)
        assert load_checkpoint(path, fresh) == 3  # still loadable

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        model, opt, trainer, _ = trained_model_and_opt()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, opt, iteration=1)
        save_checkpoint(path, model, opt, iteration=2)
        fresh = mlp(6, [8], 3, seed=7)
        assert load_checkpoint(path, fresh, SGD(fresh.parameters())) == 2

    def test_unnamed_parameters_rejected(self, tmp_path):
        model = mlp(6, [8], 3, seed=1)
        for p in model.parameters():
            p.name = ""
        with pytest.raises(ValueError, match="named"):
            save_checkpoint(tmp_path / "c.npz", model)


class TestRngState:
    def test_rng_round_trip_continues_stream(self, tmp_path):
        model, *_ = trained_model_and_opt()
        rng = np.random.default_rng(42)
        rng.normal(size=100)  # advance the stream
        path = tmp_path / "c.npz"
        save_checkpoint(path, model, rng=rng)
        expected = rng.normal(size=10)

        restored = np.random.default_rng(0)
        load_checkpoint(path, mlp(6, [8], 3, seed=1), rng=restored)
        np.testing.assert_array_equal(restored.normal(size=10), expected)

    def test_load_rng_state_reconstructs_generator(self, tmp_path):
        model, *_ = trained_model_and_opt()
        rng = np.random.default_rng(7)
        rng.integers(0, 100, size=33)
        path = tmp_path / "c.npz"
        save_checkpoint(path, model, rng=rng)
        expected = rng.integers(0, 100, size=5)

        clone = load_rng_state(path)
        np.testing.assert_array_equal(clone.integers(0, 100, size=5), expected)

    def test_checkpoint_without_rng(self, tmp_path):
        model, *_ = trained_model_and_opt()
        path = tmp_path / "c.npz"
        save_checkpoint(path, model)
        assert load_rng_state(path) is None
        with pytest.raises(KeyError):
            load_checkpoint(path, mlp(6, [8], 3, seed=1),
                            rng=np.random.default_rng(0))
