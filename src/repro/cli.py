"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``train``
    Train a proxy model with any optimiser/recipe combination, serially or
    on a simulated cluster.
``predict``
    Query the α-β-γ performance model for an ImageNet-scale configuration.
``experiments``
    Alias for ``python -m repro.experiments``.
``info``
    Print the model zoo's cost table and the available devices/networks.
``bench``
    Run the microbenchmark suites (``bench run``) or diff two result sets
    against a regression threshold (``bench compare``); see
    ``docs/benchmarking.md``.
``trace``
    Capture a Chrome trace of a small sync-SGD run (``trace export``),
    summarise or schema-check trace/metrics files; see
    ``docs/observability.md``.

The global ``--quiet``/``--verbose`` flags (before the subcommand) set the
console log level: ``--quiet`` suppresses informational output, ``--verbose``
adds debug lines.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .obs.console import configure_verbosity, get_console


def _add_train_parser(sub) -> None:
    p = sub.add_parser("train", help="train a proxy model")
    p.add_argument("--model", default="micro_resnet",
                   choices=["micro_resnet", "micro_alexnet", "mlp"])
    p.add_argument("--optimizer", default="lars",
                   choices=["sgd", "lars", "lamb", "adam"])
    p.add_argument("--batch", type=int, default=64)
    p.add_argument("--base-batch", type=int, default=8)
    p.add_argument("--base-lr", type=float, default=0.05)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--warmup-epochs", type=float, default=1.0)
    p.add_argument("--trust", type=float, default=0.01)
    p.add_argument("--dataset", default="small", choices=["tiny", "small", "medium"])
    p.add_argument("--world", type=int, default=1,
                   help="simulated ranks (1 = serial)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--bucket-bytes", type=int, default=None, metavar="N",
                   help="split the gradient exchange into ~N-byte buckets "
                        "(cluster runs; see repro.cluster.bucketing)")
    p.add_argument("--overlap", action="store_true",
                   help="overlap bucketed gradient allreduces with backward "
                        "compute (cluster runs; implies 1 MiB buckets unless "
                        "--bucket-bytes is given)")
    fault = p.add_argument_group(
        "fault injection (cluster runs only; see repro.faults)")
    fault.add_argument("--drop-prob", type=float, default=0.0,
                       help="per-message loss probability (reliable link "
                            "retransmits; time is lost, values are not)")
    fault.add_argument("--corrupt-prob", type=float, default=0.0,
                       help="per-message checksum-detected corruption "
                            "probability (treated as a loss)")
    fault.add_argument("--straggler", action="append", default=[],
                       metavar="RANK:MULT",
                       help="slow rank RANK down by MULT x (repeatable)")
    fault.add_argument("--kill", action="append", default=[],
                       metavar="RANK:ITER",
                       help="crash rank RANK at iteration ITER; survivors "
                            "restart from the last checkpoint (repeatable)")
    fault.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the deterministic fault sequence")
    fault.add_argument("--checkpoint-dir", default=None,
                       help="directory for periodic on-disk checkpoints "
                            "(atomic .npz; used by crash recovery)")
    fault.add_argument("--recv-timeout", type=float, default=10.0,
                       help="wall seconds a recv waits before declaring a "
                            "peer unresponsive (fault runs only)")
    mem = p.add_argument_group("static memory (see docs/architecture.md)")
    mem.add_argument("--static-memory", action="store_true",
                     help="plan activation/gradient buffers once and run every "
                          "step out of a persistent arena (bitwise-identical "
                          "results, zero steady-state allocations)")
    mem.add_argument("--check-zero-alloc", action="store_true",
                     help="after training, run two extra steps and fail unless "
                          "the arena performed zero fresh allocations "
                          "(implies --static-memory; serial runs only)")
    obs = p.add_argument_group("telemetry (see docs/observability.md)")
    obs.add_argument("--trace", default=None, metavar="PATH",
                     help="capture spans and write Chrome trace-event JSON "
                          "here (open in chrome://tracing or Perfetto)")
    obs.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write a metrics snapshot (JSON) here after the run")


def _parse_rank_map(pairs: list[str], flag: str, cast) -> dict[int, float | int]:
    """Parse repeated ``RANK:VALUE`` options into a dict."""
    out = {}
    for pair in pairs:
        try:
            rank_s, value_s = pair.split(":", 1)
            out[int(rank_s)] = cast(value_s)
        except ValueError:
            raise SystemExit(
                f"error: {flag} expects RANK:VALUE (got {pair!r})"
            ) from None
    return out


def _add_predict_parser(sub) -> None:
    p = sub.add_parser("predict", help="predict ImageNet training time")
    p.add_argument("--model", default="resnet50",
                   choices=["alexnet", "alexnet_bn", "resnet50", "resnet18", "resnet34"])
    p.add_argument("--epochs", type=int, default=90)
    p.add_argument("--batch", type=int, default=32768)
    p.add_argument("--processors", type=int, default=2048)
    p.add_argument("--device", default="knl")
    p.add_argument("--network", default="opa")
    p.add_argument("--algorithm", default="ring", choices=["tree", "ring", "rhd"])


def cmd_train(args) -> int:
    """``repro train``: train a proxy model, serially or on simulated ranks."""
    from .core import LAMB, LARS, SGD, Adam, iterations_per_epoch, paper_schedule
    from .core.trainer import Trainer
    from .data import proxy_dataset
    from .nn.models import build_model

    console = get_console()
    telemetry = bool(args.trace or args.metrics_out)
    if telemetry:
        from .obs import enable, reset

        enable()
        reset()

    static_memory = bool(args.static_memory or args.check_zero_alloc)
    if args.check_zero_alloc and args.world > 1:
        raise SystemExit("error: --check-zero-alloc requires a serial run "
                         "(--world 1); per-rank arenas are not inspectable "
                         "after a cluster run")

    ds = proxy_dataset(args.dataset)
    kwargs = {"num_classes": ds.num_classes, "seed": args.seed}
    if args.model == "micro_alexnet":
        kwargs["image_size"] = ds.input_shape[-1]
    if args.model == "mlp":
        model = build_model("mlp", in_features=int(np.prod(ds.input_shape)),
                            hidden=[64], num_classes=ds.num_classes,
                            flatten_input=True, seed=args.seed)
    else:
        model = build_model(args.model, **kwargs)

    peak = args.base_lr * args.batch / args.base_batch
    ipe = iterations_per_epoch(ds.n_train, min(args.batch, ds.n_train))
    schedule = paper_schedule(peak, args.epochs * ipe,
                              round(args.warmup_epochs * ipe))
    builders = {
        "sgd": lambda p: SGD(p, momentum=0.9, weight_decay=0.0005),
        "lars": lambda p: LARS(p, trust_coefficient=args.trust,
                               momentum=0.9, weight_decay=0.0005),
        "lamb": lambda p: LAMB(p, weight_decay=0.0005),
        "adam": lambda p: Adam(p, weight_decay=0.0005),
    }
    opt_builder = builders[args.optimizer]

    console.info(f"{args.model}: {model.num_parameters():,} parameters; "
                 f"batch {args.batch} ({args.batch / args.base_batch:.0f}x baseline), "
                 f"peak lr {peak:.3g}, {args.optimizer}")

    if args.world > 1:
        from .cluster import SyncSGDConfig, train_sync_sgd

        model_seed = args.seed

        def builder():
            if args.model == "mlp":
                return build_model("mlp", in_features=int(np.prod(ds.input_shape)),
                                   hidden=[64], num_classes=ds.num_classes,
                                   flatten_input=True, seed=model_seed)
            return build_model(args.model, **kwargs)

        stragglers = _parse_rank_map(args.straggler, "--straggler", float)
        kills = _parse_rank_map(args.kill, "--kill", int)
        fault_plan = None
        if (args.drop_prob > 0 or args.corrupt_prob > 0
                or stragglers or kills):
            from .faults import FaultPlan

            fault_plan = FaultPlan(seed=args.fault_seed,
                                   drop_prob=args.drop_prob,
                                   corrupt_prob=args.corrupt_prob,
                                   stragglers=stragglers, kills=kills)

        config = SyncSGDConfig(world=args.world, epochs=args.epochs,
                               batch_size=args.batch, shuffle_seed=args.seed,
                               bucket_bytes=args.bucket_bytes,
                               overlap=args.overlap,
                               fault_plan=fault_plan,
                               recv_timeout=(args.recv_timeout
                                             if fault_plan else None),
                               checkpoint_dir=args.checkpoint_dir,
                               static_memory=static_memory)
        res = train_sync_sgd(builder, opt_builder, schedule,
                             ds.x_train, ds.y_train, ds.x_test, ds.y_test, config)
        console.info(f"final test accuracy: {res.final_test_accuracy:.4f} "
                     f"({args.world} simulated ranks, {res.messages} messages)")
        if args.overlap or args.bucket_bytes is not None:
            console.info(
                f"gradient exchange: exposed {res.exposed_comm_seconds:.4f}s "
                f"of {res.comm_busy_seconds:.4f}s busy "
                f"(overlap efficiency {res.overlap_efficiency:.1%})")
        if res.fault_stats is not None:
            console.info(f"faults: {res.fault_stats.summary()}")
            for report in res.fault_reports:
                console.info(report.format())
    else:
        trainer = Trainer(model, opt_builder(model.parameters()), schedule,
                          shuffle_seed=args.seed, static_memory=static_memory)
        batch_size = min(args.batch, ds.n_train)
        with np.errstate(all="ignore"):
            res = trainer.fit(ds.x_train, ds.y_train, ds.x_test, ds.y_test,
                              epochs=args.epochs,
                              batch_size=batch_size,
                              callback=lambda r: console.info(
                                  f"  epoch {r.epoch:3d}  loss {r.train_loss:7.4f}  "
                                  f"test {r.test_accuracy:.4f}"))
        console.info(f"peak test accuracy: {res.peak_test_accuracy:.4f}")
        if args.check_zero_alloc:
            from .nn.memory import MemoryPlan

            xb, yb = ds.x_train[:batch_size], ds.y_train[:batch_size]
            with np.errstate(all="ignore"):
                trainer.train_step(xb, yb)  # settle any eval-shape churn
                before = trainer.arena_stats()["bytes_allocated"]
                trainer.train_step(xb, yb)
                trainer.train_step(xb, yb)
                after = trainer.arena_stats()["bytes_allocated"]
            stats = trainer.arena_stats()
            plan = MemoryPlan.build(model, ds.input_shape, batch_size,
                                    loss=trainer.loss)
            console.info(
                f"arena: peak {stats['peak_bytes']:,} bytes over the run "
                f"(train-step plan: {plan.peak_bytes:,}; evaluation batches "
                f"share the arena), "
                f"{after - before:,} bytes allocated over 2 steady-state steps")
            if after != before:
                console.info("zero-alloc check FAILED")
                return 1
            console.info("zero-alloc check passed")

    if telemetry:
        from .obs import disable, export_metrics, export_trace, reset

        if args.trace:
            export_trace(args.trace)
            console.info(f"wrote trace {args.trace} "
                         f"(open in chrome://tracing or ui.perfetto.dev)")
        if args.metrics_out:
            export_metrics(args.metrics_out)
            console.info(f"wrote metrics {args.metrics_out}")
        disable()
        reset()
    return 0


def cmd_predict(args) -> int:
    """``repro predict``: query the performance model for one configuration."""
    from .core import IMAGENET_TRAIN_SIZE
    from .nn.models import paper_model_cost
    from .perfmodel import device, estimate_training_time, network

    est = estimate_training_time(
        paper_model_cost(args.model),
        epochs=args.epochs,
        dataset_size=IMAGENET_TRAIN_SIZE,
        global_batch=args.batch,
        processors=args.processors,
        device=device(args.device),
        net=network(args.network),
        algorithm=args.algorithm,
    )
    b = est.iteration
    console = get_console()
    console.info(f"{args.model}, {args.epochs} epochs, batch {args.batch}, "
                 f"{args.processors}x {est.device}, {args.algorithm} allreduce")
    console.info(f"  iterations:        {est.iterations:,}")
    console.info(f"  local batch:       {b.local_batch:.1f}")
    console.info(f"  t_iter:            {b.total_seconds * 1e3:.1f} ms "
                 f"(compute {b.compute_seconds * 1e3:.1f} + comm {b.comm_seconds * 1e3:.1f})")
    console.info(f"  comm fraction:     {b.comm_fraction:.1%}")
    console.info(f"  throughput:        {est.images_per_second:,.0f} images/s")
    console.info(f"  total time:        {est.total_minutes:.1f} minutes "
                 f"({est.total_hours:.2f} h)")
    return 0


def cmd_info(args) -> int:
    """``repro info``: print the model/device/network tables."""
    from .nn.models import PAPER_INPUT_SHAPES, paper_model_cost
    from .perfmodel import DEVICES, NETWORKS

    console = get_console()
    console.info("== model zoo (full-size paper models) ==")
    for name in PAPER_INPUT_SHAPES:
        c = paper_model_cost(name)
        console.info(f"  {name:<12} {c.parameters / 1e6:7.1f} M params   "
                     f"{c.flops_per_image / 1e9:6.2f} Gflop/image   "
                     f"ratio {c.scaling_ratio:7.1f}")
    console.info("\n== devices ==")
    for key, d in DEVICES.items():
        console.info(f"  {key:<9} {d.name:<28} peak {d.peak_flops / 1e12:5.1f} Tflops")
    console.info("\n== networks ==")
    for key, n in NETWORKS.items():
        console.info(f"  {key:<9} {n.name:<28} alpha {n.alpha * 1e6:5.2f} us  "
                     f"beta {n.beta * 1e9:5.3f} ns/B")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Console entry point (see module docstring for the commands)."""
    from .bench.runner import add_bench_parser, cmd_bench
    from .obs.cli import add_trace_parser, cmd_trace

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only show warnings and errors")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also show debug output")
    sub = parser.add_subparsers(dest="command", required=True)
    _add_train_parser(sub)
    _add_predict_parser(sub)
    sub.add_parser("info", help="print model/device/network tables")
    add_bench_parser(sub)
    add_trace_parser(sub)
    args = parser.parse_args(argv)
    configure_verbosity(quiet=args.quiet, verbose=args.verbose)
    commands = {"train": cmd_train, "predict": cmd_predict, "info": cmd_info,
                "bench": cmd_bench, "trace": cmd_trace}
    return commands[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
