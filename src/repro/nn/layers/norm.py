"""Normalisation layers: BatchNorm (1-D / 2-D) and AlexNet's cross-channel LRN.

The paper's key model tweak is replacing AlexNet's local response
normalisation with batch normalisation ("AlexNet-BN", the refined model by
B. Ginsburg) — that change is what lets LARS push the batch size to 32K.
Both layers are implemented so the benchmark harness can train either
variant.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Parameter
from .base import Module, Shape

__all__ = ["BatchNorm", "SyncBatchNorm", "LocalResponseNorm"]


class BatchNorm(Module):
    """Batch normalisation over the channel axis.

    Works for both 2-D activations ``(N, F)`` (axis 1 = features) and 4-D
    activations ``(N, C, H, W)`` (normalises per channel over N, H, W).

    Scale ``gamma`` and shift ``beta`` are created with ``weight_decay=0``:
    the paper's recipes (and the reference LARS implementation) exempt BN
    parameters from weight decay, and LARS additionally skips its trust-ratio
    scaling for them (dispatch is by parameter name, see ``repro.core.lars``).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.9):
        super().__init__()
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(num_features), weight_decay=0.0)
        self.beta = Parameter(np.zeros(num_features), weight_decay=0.0)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        if input_shape[0] != self.num_features:
            raise ValueError(
                f"{self.name or 'BatchNorm'}: expected {self.num_features} channels, got {input_shape}"
            )
        return tuple(input_shape)

    def flops_per_example(self, input_shape: Shape) -> int:
        # normalise + scale + shift: ~4 flops per element
        return 4 * int(np.prod(input_shape))

    @staticmethod
    def _reduce_axes(ndim: int) -> tuple[int, ...]:
        return (0,) if ndim == 2 else (0, 2, 3)

    def _expand(self, v: np.ndarray, ndim: int) -> np.ndarray:
        return v if ndim == 2 else v[:, None, None]

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._reduce_axes(x.ndim)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean = m * self.running_mean + (1 - m) * mean
            self.running_var = m * self.running_var + (1 - m) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - self._expand(mean, x.ndim)) * self._expand(inv_std, x.ndim)
        out = self._expand(self.gamma.data, x.ndim) * xhat + self._expand(self.beta.data, x.ndim)
        if self.training:
            self._cache = (xhat, inv_std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (training mode)")
        xhat, inv_std = self._cache
        axes = self._reduce_axes(grad_out.ndim)
        m = float(np.prod([grad_out.shape[a] for a in axes]))
        self.gamma.grad += (grad_out * xhat).sum(axis=axes)
        self.beta.grad += grad_out.sum(axis=axes)
        g = self._expand(self.gamma.data, grad_out.ndim)
        dxhat = grad_out * g
        # Standard BN backward: dx = (1/m) * inv_std * (m*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
        sum_dxhat = self._expand(dxhat.sum(axis=axes), grad_out.ndim)
        sum_dxhat_xhat = self._expand((dxhat * xhat).sum(axis=axes), grad_out.ndim)
        dx = (self._expand(inv_std, grad_out.ndim) / m) * (
            m * dxhat - sum_dxhat - xhat * sum_dxhat_xhat
        )
        self._cache = None
        return dx


class SyncBatchNorm(BatchNorm):
    """BatchNorm with statistics synchronised across data-parallel ranks.

    Plain per-shard BatchNorm makes a P-worker run differ from the serial
    large-batch run (each replica normalises with its shard's statistics).
    SyncBatchNorm allreduces the per-channel (count, sum, sum-of-squares)
    in the forward pass and the two reduction terms of the BN backward, so
    the P-worker computation is *exactly* the serial full-batch BN — the
    sequential-consistency exception disappears (verified in
    ``tests/cluster/test_sync_bn.py``).

    Usage: build the model with SyncBatchNorm layers and hand each replica
    its communicator via :meth:`set_comm` (``repro.cluster.train_sync_sgd``
    does this automatically).  With no communicator attached the layer
    behaves exactly like local BatchNorm, so the same model class runs
    serially too.

    Cost note: each layer adds two small allreduces (O(channels) bytes) per
    iteration — this is what production sync-BN implementations pay as
    well; the fabric accounts for it like any other traffic.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.9):
        super().__init__(num_features, eps=eps, momentum=momentum)
        self.comm = None  # set per replica by the cluster launcher

    def set_comm(self, comm) -> None:
        """Attach the rank's communicator (``None`` reverts to local BN)."""
        self.comm = comm

    def _allreduce(self, vec: np.ndarray) -> np.ndarray:
        if self.comm is None or self.comm.size == 1:
            return vec
        return self.comm.allreduce(vec)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training:
            return super().forward(x)
        axes = self._reduce_axes(x.ndim)
        local_count = float(np.prod([x.shape[a] for a in axes])) if x.size else 0.0
        local_sum = x.sum(axis=axes) if x.size else np.zeros(self.num_features)
        local_sq = (x * x).sum(axis=axes) if x.size else np.zeros(self.num_features)
        # one fused allreduce: [count, sum_c..., sumsq_c...]
        packed = np.concatenate(([local_count], local_sum, local_sq))
        total = self._allreduce(packed)
        count = max(total[0], 1.0)
        mean = total[1 : 1 + self.num_features] / count
        var = total[1 + self.num_features :] / count - mean * mean
        var = np.maximum(var, 0.0)
        m = self.momentum
        self.running_mean = m * self.running_mean + (1 - m) * mean
        self.running_var = m * self.running_var + (1 - m) * var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - self._expand(mean, x.ndim)) * self._expand(inv_std, x.ndim)
        out = self._expand(self.gamma.data, x.ndim) * xhat + self._expand(
            self.beta.data, x.ndim
        )
        self._cache = (xhat, inv_std, count)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (training mode)")
        if len(self._cache) == 2:  # eval-mode cache from the parent class
            return super().backward(grad_out)
        xhat, inv_std, count = self._cache
        axes = self._reduce_axes(grad_out.ndim)
        g = self._expand(self.gamma.data, grad_out.ndim)
        dxhat = grad_out * g
        zeros = np.zeros(self.num_features)
        # gamma/beta gradients stay LOCAL — the cluster's ordinary gradient
        # allreduce sums them across ranks like every other parameter, which
        # is exactly the global sum the serial run computes
        self.gamma.grad += (grad_out * xhat).sum(axis=axes) if grad_out.size else zeros
        self.beta.grad += grad_out.sum(axis=axes) if grad_out.size else zeros
        # ...but dx needs the *global* reduction terms of the BN backward
        local = np.concatenate(
            [
                dxhat.sum(axis=axes) if dxhat.size else zeros,
                (dxhat * xhat).sum(axis=axes) if dxhat.size else zeros,
            ]
        )
        total = self._allreduce(local)
        n = self.num_features
        sum_dxhat = self._expand(total[:n], grad_out.ndim)
        sum_dxhat_xhat = self._expand(total[n:], grad_out.ndim)
        dx = (self._expand(inv_std, grad_out.ndim) / count) * (
            count * dxhat - sum_dxhat - xhat * sum_dxhat_xhat
        )
        self._cache = None
        return dx


class LocalResponseNorm(Module):
    """AlexNet's cross-channel local response normalisation.

    ``y_c = x_c / d_c**beta`` with
    ``d_c = k + (alpha/n) * sum_{c' in window(c)} x_{c'}^2`` where the window
    spans ``n`` adjacent channels centred on ``c`` (Krizhevsky et al. 2012).
    Defaults are Caffe's AlexNet values.
    """

    def __init__(self, size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 1.0):
        super().__init__()
        self.size = int(size)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.k = float(k)
        self._cache: tuple | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        return tuple(input_shape)

    def flops_per_example(self, input_shape: Shape) -> int:
        # square + windowed sum + pow + divide: ~ (size + 3) per element
        return (self.size + 3) * int(np.prod(input_shape))

    def _window_sum(self, sq: np.ndarray) -> np.ndarray:
        """Sliding-window sum of ``sq`` over the channel axis (axis=1)."""
        n, c = sq.shape[0], sq.shape[1]
        half = self.size // 2
        # prefix sums over channels, padded with a leading zero
        csum = np.cumsum(sq, axis=1)
        zeros = np.zeros_like(csum[:, :1])
        csum = np.concatenate([zeros, csum], axis=1)  # (n, c+1, ...)
        hi = np.minimum(np.arange(c) + half + 1, c)
        lo = np.maximum(np.arange(c) - half, 0)
        return csum[:, hi] - csum[:, lo]

    def forward(self, x: np.ndarray) -> np.ndarray:
        sq = x * x
        ssum = self._window_sum(sq)
        denom = self.k + (self.alpha / self.size) * ssum
        out = x * denom ** (-self.beta)
        self._cache = (x, denom)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, denom = self._cache
        # y_c = x_c * d_c^{-beta};  d_j depends on x_c iff c in window(j).
        # dx_c = g_c d_c^{-beta}
        #        - 2 beta (alpha/n) x_c * sum_{j: c in win(j)} g_j x_j d_j^{-beta-1}
        # and "c in window(j)" is symmetric to "j in window(c)" for a centred
        # window, so the inner sum is again a sliding-window sum.
        dpow = denom ** (-self.beta)
        t = grad_out * x * dpow / denom  # g_j x_j d_j^{-beta-1}
        tsum = self._window_sum(t)
        dx = grad_out * dpow - 2.0 * self.beta * (self.alpha / self.size) * x * tsum
        self._cache = None
        return dx
