"""Normalisation layers: BatchNorm (1-D / 2-D) and AlexNet's cross-channel LRN.

The paper's key model tweak is replacing AlexNet's local response
normalisation with batch normalisation ("AlexNet-BN", the refined model by
B. Ginsburg) — that change is what lets LARS push the batch size to 32K.
Both layers are implemented so the benchmark harness can train either
variant.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Parameter
from .base import Module, Shape

__all__ = ["BatchNorm", "SyncBatchNorm", "LocalResponseNorm"]


class BatchNorm(Module):
    """Batch normalisation over the channel axis.

    Works for both 2-D activations ``(N, F)`` (axis 1 = features) and 4-D
    activations ``(N, C, H, W)`` (normalises per channel over N, H, W).

    Scale ``gamma`` and shift ``beta`` are created with ``weight_decay=0``:
    the paper's recipes (and the reference LARS implementation) exempt BN
    parameters from weight decay, and LARS additionally skips its trust-ratio
    scaling for them (dispatch is by parameter name, see ``repro.core.lars``).
    """

    _fusion_source = True  # buffered forward writes ``out`` via plain ufuncs

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.9):
        super().__init__()
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(num_features), weight_decay=0.0)
        self.beta = Parameter(np.zeros(num_features), weight_decay=0.0)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        if input_shape[0] != self.num_features:
            raise ValueError(
                f"{self.name or 'BatchNorm'}: expected {self.num_features} channels, got {input_shape}"
            )
        return tuple(input_shape)

    def flops_per_example(self, input_shape: Shape) -> int:
        # normalise + scale + shift: ~4 flops per element
        return 4 * int(np.prod(input_shape))

    @staticmethod
    def _reduce_axes(ndim: int) -> tuple[int, ...]:
        return (0,) if ndim == 2 else (0, 2, 3)

    def _expand(self, v: np.ndarray, ndim: int) -> np.ndarray:
        return v if ndim == 2 else v[:, None, None]

    def _normalize(
        self,
        x: np.ndarray,
        mean: np.ndarray,
        inv_std: np.ndarray,
        out: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply ``gamma * (x - mean) * inv_std + beta``; returns ``(y, xhat)``."""
        nd = x.ndim
        mean_e = self._expand(mean, nd)
        inv_e = self._expand(inv_std, nd)
        g_e = self._expand(self.gamma.data, nd)
        b_e = self._expand(self.beta.data, nd)
        if self._memory is None and out is None:
            xhat = (x - mean_e) * inv_e
            return g_e * xhat + b_e, xhat
        xhat = self._buf("xhat", x.shape, np.float64)
        np.subtract(x, mean_e, out=xhat)
        xhat *= inv_e
        y = out if out is not None else self._buf("y", x.shape, np.float64)
        np.multiply(g_e, xhat, out=y)
        y += b_e
        return y, xhat

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        axes = self._reduce_axes(x.ndim)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean = m * self.running_mean + (1 - m) * mean
            self.running_var = m * self.running_var + (1 - m) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        y, xhat = self._normalize(x, mean, inv_std, out=out)
        if self.training:
            self._cache = (xhat, inv_std)
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (training mode)")
        xhat, inv_std = self._cache
        axes = self._reduce_axes(grad_out.ndim)
        nd = grad_out.ndim
        m = float(np.prod([grad_out.shape[a] for a in axes]))
        if self._memory is None and out is None:
            self.gamma.grad += (grad_out * xhat).sum(axis=axes)
            self.beta.grad += grad_out.sum(axis=axes)
            g = self._expand(self.gamma.data, nd)
            dxhat = grad_out * g
            # Standard BN backward: dx = (1/m) * inv_std * (m*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
            sum_dxhat = self._expand(dxhat.sum(axis=axes), nd)
            sum_dxhat_xhat = self._expand((dxhat * xhat).sum(axis=axes), nd)
            dx = (self._expand(inv_std, nd) / m) * (
                m * dxhat - sum_dxhat - xhat * sum_dxhat_xhat
            )
            self._cache = None
            return dx
        # Same expression tree evaluated into reusable buffers; every binary op
        # keeps the eager operand order (or swaps a commutative multiply, which
        # is bitwise-neutral), so the result is identical.
        t = self._scratch(grad_out.shape, np.float64)
        np.multiply(grad_out, xhat, out=t)
        self.gamma.grad += t.sum(axis=axes)
        self.beta.grad += grad_out.sum(axis=axes)
        g = self._expand(self.gamma.data, nd)
        dxh = self._scratch(grad_out.shape, np.float64)
        np.multiply(grad_out, g, out=dxh)
        sum_dxhat = self._expand(dxh.sum(axis=axes), nd)
        np.multiply(dxh, xhat, out=t)
        sum_dxhat_xhat = self._expand(t.sum(axis=axes), nd)
        dx = out if out is not None else self._buf("dx", grad_out.shape, np.float64)
        np.multiply(dxh, m, out=dx)
        dx -= sum_dxhat
        np.multiply(xhat, sum_dxhat_xhat, out=t)
        dx -= t
        dx *= self._expand(inv_std, nd) / m
        self._drop(dxh)
        self._drop(t)
        self._cache = None
        return dx


class SyncBatchNorm(BatchNorm):
    """BatchNorm with statistics synchronised across data-parallel ranks.

    Plain per-shard BatchNorm makes a P-worker run differ from the serial
    large-batch run (each replica normalises with its shard's statistics).
    SyncBatchNorm allreduces the per-channel (count, sum, sum-of-squares)
    in the forward pass and the two reduction terms of the BN backward, so
    the P-worker computation is *exactly* the serial full-batch BN — the
    sequential-consistency exception disappears (verified in
    ``tests/cluster/test_sync_bn.py``).

    Usage: build the model with SyncBatchNorm layers and hand each replica
    its communicator via :meth:`set_comm` (``repro.cluster.train_sync_sgd``
    does this automatically).  With no communicator attached the layer
    behaves exactly like local BatchNorm, so the same model class runs
    serially too.

    Cost note: each layer adds two small allreduces (O(channels) bytes) per
    iteration — this is what production sync-BN implementations pay as
    well; the fabric accounts for it like any other traffic.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.9):
        super().__init__(num_features, eps=eps, momentum=momentum)
        self.comm = None  # set per replica by the cluster launcher

    def set_comm(self, comm) -> None:
        """Attach the rank's communicator (``None`` reverts to local BN)."""
        self.comm = comm

    def _allreduce(self, vec: np.ndarray) -> np.ndarray:
        if self.comm is None or self.comm.size == 1:
            return vec
        return self.comm.allreduce(vec)

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if not self.training:
            return super().forward(x, out=out)
        axes = self._reduce_axes(x.ndim)
        local_count = float(np.prod([x.shape[a] for a in axes])) if x.size else 0.0
        local_sum = x.sum(axis=axes) if x.size else np.zeros(self.num_features)
        local_sq = (x * x).sum(axis=axes) if x.size else np.zeros(self.num_features)
        # one fused allreduce: [count, sum_c..., sumsq_c...]
        packed = np.concatenate(([local_count], local_sum, local_sq))
        total = self._allreduce(packed)
        count = max(total[0], 1.0)
        mean = total[1 : 1 + self.num_features] / count
        var = total[1 + self.num_features :] / count - mean * mean
        var = np.maximum(var, 0.0)
        m = self.momentum
        self.running_mean = m * self.running_mean + (1 - m) * mean
        self.running_var = m * self.running_var + (1 - m) * var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        y, xhat = self._normalize(x, mean, inv_std, out=out)
        self._cache = (xhat, inv_std, count)
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (training mode)")
        if len(self._cache) == 2:  # eval-mode cache from the parent class
            return super().backward(grad_out, out=out)
        xhat, inv_std, count = self._cache
        axes = self._reduce_axes(grad_out.ndim)
        nd = grad_out.ndim
        if (self._memory is None and out is None) or grad_out.size == 0:
            g = self._expand(self.gamma.data, nd)
            dxhat = grad_out * g
            zeros = np.zeros(self.num_features)
            # gamma/beta gradients stay LOCAL — the cluster's ordinary gradient
            # allreduce sums them across ranks like every other parameter, which
            # is exactly the global sum the serial run computes
            self.gamma.grad += (grad_out * xhat).sum(axis=axes) if grad_out.size else zeros
            self.beta.grad += grad_out.sum(axis=axes) if grad_out.size else zeros
            # ...but dx needs the *global* reduction terms of the BN backward
            local = np.concatenate(
                [
                    dxhat.sum(axis=axes) if dxhat.size else zeros,
                    (dxhat * xhat).sum(axis=axes) if dxhat.size else zeros,
                ]
            )
            total = self._allreduce(local)
            n = self.num_features
            sum_dxhat = self._expand(total[:n], nd)
            sum_dxhat_xhat = self._expand(total[n:], nd)
            dx = (self._expand(inv_std, nd) / count) * (
                count * dxhat - sum_dxhat - xhat * sum_dxhat_xhat
            )
            self._cache = None
            if out is not None:  # empty shard with a bound slot: honour out=
                np.copyto(out, dx)
                return out
            return dx
        t = self._scratch(grad_out.shape, np.float64)
        np.multiply(grad_out, xhat, out=t)
        self.gamma.grad += t.sum(axis=axes)
        self.beta.grad += grad_out.sum(axis=axes)
        g = self._expand(self.gamma.data, nd)
        dxh = self._scratch(grad_out.shape, np.float64)
        np.multiply(grad_out, g, out=dxh)
        np.multiply(dxh, xhat, out=t)
        local = np.concatenate([dxh.sum(axis=axes), t.sum(axis=axes)])
        total = self._allreduce(local)
        n = self.num_features
        sum_dxhat = self._expand(total[:n], nd)
        sum_dxhat_xhat = self._expand(total[n:], nd)
        dx = out if out is not None else self._buf("dx", grad_out.shape, np.float64)
        np.multiply(dxh, count, out=dx)
        dx -= sum_dxhat
        np.multiply(xhat, sum_dxhat_xhat, out=t)
        dx -= t
        dx *= self._expand(inv_std, nd) / count
        self._drop(dxh)
        self._drop(t)
        self._cache = None
        return dx


class LocalResponseNorm(Module):
    """AlexNet's cross-channel local response normalisation.

    ``y_c = x_c / d_c**beta`` with
    ``d_c = k + (alpha/n) * sum_{c' in window(c)} x_{c'}^2`` where the window
    spans ``n`` adjacent channels centred on ``c`` (Krizhevsky et al. 2012).
    Defaults are Caffe's AlexNet values.
    """

    _fusion_source = True  # buffered forward writes ``out`` via plain ufuncs

    def __init__(self, size: int = 5, alpha: float = 1e-4, beta: float = 0.75, k: float = 1.0):
        super().__init__()
        self.size = int(size)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.k = float(k)
        self._cache: tuple | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        return tuple(input_shape)

    def flops_per_example(self, input_shape: Shape) -> int:
        # square + windowed sum + pow + divide: ~ (size + 3) per element
        return (self.size + 3) * int(np.prod(input_shape))

    def _bounds(self, c: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached window bounds into the zero-padded channel prefix sums."""
        cached = self.__dict__.get("_hi_lo")
        if cached is None or cached[0] != c:
            half = self.size // 2
            hi = np.minimum(np.arange(c) + half + 1, c)
            lo = np.maximum(np.arange(c) - half, 0)
            self._hi_lo = (c, hi, lo)
            cached = self._hi_lo
        return cached[1], cached[2]

    def _window_sum(self, sq: np.ndarray) -> np.ndarray:
        """Sliding-window sum of ``sq`` over the channel axis (axis=1)."""
        n, c = sq.shape[0], sq.shape[1]
        half = self.size // 2
        # prefix sums over channels, padded with a leading zero
        csum = np.cumsum(sq, axis=1)
        zeros = np.zeros_like(csum[:, :1])
        csum = np.concatenate([zeros, csum], axis=1)  # (n, c+1, ...)
        hi = np.minimum(np.arange(c) + half + 1, c)
        lo = np.maximum(np.arange(c) - half, 0)
        return csum[:, hi] - csum[:, lo]

    def _window_sum_into(self, sq: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Buffered :meth:`_window_sum`: same prefix-sum/gather/subtract ops."""
        n, c = sq.shape[0], sq.shape[1]
        csum = self._scratch((n, c + 1, *sq.shape[2:]), np.float64)
        csum[:, :1] = 0.0
        np.cumsum(sq, axis=1, out=csum[:, 1:])
        hi, lo = self._bounds(c)
        th = self._scratch(sq.shape, np.float64)
        np.take(csum, hi, axis=1, out=th)
        tl = self._scratch(sq.shape, np.float64)
        np.take(csum, lo, axis=1, out=tl)
        np.subtract(th, tl, out=out)
        self._drop(tl)
        self._drop(th)
        self._drop(csum)
        return out

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._memory is None and out is None:
            sq = x * x
            ssum = self._window_sum(sq)
            denom = self.k + (self.alpha / self.size) * ssum
            out = x * denom ** (-self.beta)
            self._cache = (x, denom)
            return out
        sq = self._scratch(x.shape, np.float64)
        np.multiply(x, x, out=sq)
        ssum = self._scratch(x.shape, np.float64)
        self._window_sum_into(sq, ssum)
        self._drop(sq)
        denom = self._buf("denom", x.shape, np.float64)
        np.multiply(ssum, self.alpha / self.size, out=denom)
        denom += self.k
        self._drop(ssum)
        t = self._scratch(x.shape, np.float64)
        np.power(denom, -self.beta, out=t)
        y = out if out is not None else self._buf("y", x.shape, np.float64)
        np.multiply(x, t, out=y)
        self._drop(t)
        self._cache = (x, denom)
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, denom = self._cache
        # y_c = x_c * d_c^{-beta};  d_j depends on x_c iff c in window(j).
        # dx_c = g_c d_c^{-beta}
        #        - 2 beta (alpha/n) x_c * sum_{j: c in win(j)} g_j x_j d_j^{-beta-1}
        # and "c in window(j)" is symmetric to "j in window(c)" for a centred
        # window, so the inner sum is again a sliding-window sum.
        if self._memory is None and out is None:
            dpow = denom ** (-self.beta)
            t = grad_out * x * dpow / denom  # g_j x_j d_j^{-beta-1}
            tsum = self._window_sum(t)
            dx = grad_out * dpow - 2.0 * self.beta * (self.alpha / self.size) * x * tsum
            self._cache = None
            return dx
        dpow = self._scratch(grad_out.shape, np.float64)
        np.power(denom, -self.beta, out=dpow)
        t = self._scratch(grad_out.shape, np.float64)
        np.multiply(grad_out, x, out=t)
        t *= dpow
        t /= denom
        tsum = self._scratch(grad_out.shape, np.float64)
        self._window_sum_into(t, tsum)
        self._drop(t)
        dx = out if out is not None else self._buf("dx", grad_out.shape, np.float64)
        np.multiply(grad_out, dpow, out=dx)
        self._drop(dpow)
        t2 = self._scratch(grad_out.shape, np.float64)
        # eager folds left: ((scalar * x) * tsum), so build the same tree
        np.multiply(x, 2.0 * self.beta * (self.alpha / self.size), out=t2)
        t2 *= tsum
        dx -= t2
        self._drop(tsum)
        self._drop(t2)
        self._cache = None
        return dx
