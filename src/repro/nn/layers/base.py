"""Module base class and the Sequential container.

Design notes
------------
* **Explicit backprop.**  ``forward`` caches activations on ``self``;
  ``backward`` consumes the cache and returns the gradient w.r.t. the input
  while accumulating parameter gradients.  Each module therefore supports
  exactly one outstanding forward at a time, which is all the trainers need.
* **Shape inference.**  ``output_shape`` propagates *per-example* shapes
  (channels-first, no batch dimension).  The flop counter and the model
  builders both rely on it, so a layer must implement it even when its
  ``forward`` is trivially shape-preserving.
* **Flop accounting.**  ``flops_per_example`` counts multiply-add pairs as
  2 flops, matching the convention behind the paper's "1.5 billion flops per
  AlexNet image / 7.7 billion per ResNet-50 image" (Table 6).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..tensor import Parameter

__all__ = ["Module", "Sequential"]

Shape = tuple[int, ...]


class Module:
    """Base class for all layers and containers."""

    #: bound memory context (class attribute: unbound modules pay nothing).
    #: When set, layers compute into persistent arena slots instead of
    #: allocating; when ``None`` every code path is the original eager one.
    _memory = None

    #: True on layers whose buffered ``forward`` writes ``out`` with plain
    #: ufunc ``out=`` calls and therefore accepts a *non-contiguous* target.
    #: Only such layers may compute straight into a successor's padded-input
    #: slot (see :meth:`input_slot`); layers that stage through
    #: ``out.reshape(...)`` (convolutions, pools) would silently write a
    #: reshape copy instead, so they keep the default ``False``.
    _fusion_source = False

    #: human-readable type name used in summaries
    def __init__(self) -> None:
        self.training = True
        self.name = ""

    # -- interface -----------------------------------------------------------
    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        raise NotImplementedError

    # -- static memory ---------------------------------------------------------
    def bind_memory(self, memory) -> "Module":
        """Bind a :class:`repro.nn.memory.MemoryContext` to this subtree.

        Every descendant computes into persistent arena slots from the next
        forward on; results stay bitwise identical to the unbound paths
        (asserted by ``tests/nn/test_memory_parity.py``).  Returns ``self``.
        """
        for m in self.modules():
            m._memory = memory
        return self

    def unbind_memory(self) -> "Module":
        """Escape hatch: revert the subtree to the allocating code paths."""
        for m in self.modules():
            vars(m).pop("_memory", None)
        return self

    def input_slot(self, x_shape, dtype) -> np.ndarray | None:
        """Persistent buffer a producer may write this layer's input into.

        Containers delegate to the layer that actually consumes the input;
        layers holding a padded persistent input slot (``Conv2D`` with
        ``padding > 0``) return its interior view so the producing layer
        computes straight into it, eliding one interior copy per step.
        ``None`` (the default) means no such buffer — the producer writes
        its own output slot as usual.
        """
        return None

    def _buf(self, tag: str, shape, dtype=np.float64) -> np.ndarray:
        """Persistent slot when a memory context is bound, else a fresh array."""
        mem = self._memory
        if mem is not None:
            # Per-module memo of resolved slots: steady-state shapes are
            # fixed, so repeat requests skip the context's keyed lookup.
            cache = self.__dict__.get("_slot_memo")
            if cache is None or cache[0] is not mem:
                cache = (mem, {})
                self._slot_memo = cache
            entry = cache[1].get(tag)
            if entry is not None and entry[0] == shape and entry[1] == dtype:
                return entry[2]
            buf = mem.slot(self, tag, shape, dtype)
            cache[1][tag] = (tuple(shape), dtype, buf)
            return buf
        return np.empty(shape, dtype=dtype)

    def _scratch(self, shape, dtype=np.float64) -> np.ndarray:
        """Call-scoped buffer; pair with :meth:`_drop` before returning."""
        mem = self._memory
        if mem is not None:
            return mem.scratch(shape, dtype)
        return np.empty(shape, dtype=dtype)

    def _drop(self, buf: np.ndarray) -> None:
        mem = self._memory
        if mem is not None:
            mem.release(buf)

    def parameters(self) -> list[Parameter]:
        """All trainable parameters in this subtree, in deterministic order."""
        params: list[Parameter] = []
        for child in self.children():
            params.extend(child.parameters())
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                params.append(attr)
        return params

    def children(self) -> Iterator["Module"]:
        """Direct submodules, in attribute insertion order."""
        for attr in vars(self).values():
            if isinstance(attr, Module):
                yield attr
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Module):
                        yield item

    def modules(self) -> Iterator["Module"]:
        """This module and every descendant (pre-order)."""
        yield self
        for child in self.children():
            yield from child.modules()

    def output_shape(self, input_shape: Shape) -> Shape:
        """Per-example output shape given per-example ``input_shape``."""
        raise NotImplementedError

    def flops_per_example(self, input_shape: Shape) -> int:
        """Forward flops for one example (multiply+add counted separately)."""
        return 0

    # -- conveniences ----------------------------------------------------------
    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        """Switch this subtree to training mode (BN batch stats, dropout on)."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Switch this subtree to inference mode."""
        for m in self.modules():
            m.training = False
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def register_grad_ready_hook(self, hook) -> "Module":
        """Call ``hook(module)`` after every ``backward`` on this module.

        By that point the module's parameter gradients for the step are
        final (each module supports one outstanding forward, so one
        backward per step), which is exactly the signal a bucketed
        gradient exchange needs to launch a bucket while earlier layers
        are still differentiating.  The wrapper is installed per
        *instance* — other instances of the class are untouched.  Returns
        ``self`` for chaining.
        """
        inner = type(self).backward

        def wrapped(grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
            if out is None:
                grad_in = inner(self, grad_out)
            else:
                grad_in = inner(self, grad_out, out=out)
            hook(self)
            return grad_in

        self.backward = wrapped
        self._grad_ready_hook = hook
        return self

    def remove_grad_ready_hook(self) -> "Module":
        """Undo :meth:`register_grad_ready_hook` (no-op if none installed)."""
        vars(self).pop("backward", None)
        vars(self).pop("_grad_ready_hook", None)
        return self

    def assign_names(self, prefix: str = "") -> None:
        """Assign dotted-path names to every parameter in the subtree.

        Called once by model constructors; the names drive LARS's
        weight/bias distinction and the cluster layer's deterministic
        parameter ordering, so they must be stable across replicas.
        """
        for attr_name, attr in vars(self).items():
            path = f"{prefix}.{attr_name}" if prefix else attr_name
            if isinstance(attr, Parameter):
                attr.name = path
            elif isinstance(attr, Module):
                attr.name = path
                attr.assign_names(path)
            elif isinstance(attr, (list, tuple)):
                for i, item in enumerate(attr):
                    if isinstance(item, Module):
                        item.name = f"{path}.{i}"
                        item.assign_names(f"{path}.{i}")

    def state_dict(self) -> dict[str, np.ndarray]:
        """Name → value snapshot of every parameter (copies)."""
        return {p.name: p.data.copy() for p in self.parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict`; shapes must match."""
        for p in self.parameters():
            if p.name not in state:
                raise KeyError(f"missing parameter {p.name!r} in state dict")
            src = np.asarray(state[p.name])
            if src.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {p.name!r}: {src.shape} vs {p.data.shape}"
                )
            p.data[...] = src

    def summary(self, input_shape: Shape) -> str:
        """Human-readable per-layer table: shapes, params, flops."""
        lines = [f"{'layer':<40}{'output shape':<20}{'params':>12}{'Mflops':>12}"]
        shape = tuple(input_shape)
        total_p = 0
        total_f = 0

        def walk(mod: Module, shape: Shape) -> Shape:
            nonlocal total_p, total_f
            if isinstance(mod, Sequential):
                for child in mod.layers:
                    shape = walk(child, shape)
                return shape
            own = sum(
                p.size for p in vars(mod).values() if isinstance(p, Parameter)
            ) + sum(c.num_parameters() for c in mod.children())
            fl = mod.flops_per_example(shape)
            out = mod.output_shape(shape)
            label = mod.name or type(mod).__name__
            lines.append(f"{label:<40}{str(out):<20}{own:>12}{fl / 1e6:>12.2f}")
            total_p += own
            total_f += fl
            return out

        walk(self, shape)
        lines.append(f"{'total':<40}{'':<20}{total_p:>12}{total_f / 1e6:>12.2f}")
        return "\n".join(lines)


class Sequential(Module):
    """Composition of layers applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: list[Module] = list(layers)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def input_slot(self, x_shape, dtype) -> np.ndarray | None:
        return self.layers[0].input_slot(x_shape, dtype) if self.layers else None

    def _layer_out_shapes(self, x_shape: tuple) -> list[tuple]:
        """Per-layer batched output shapes, memoised on the input shape."""
        cached = self.__dict__.get("_out_shape_cache")
        if cached is not None and cached[0] == x_shape:
            return cached[1]
        shapes = []
        shp = x_shape
        for layer in self.layers:
            shp = (shp[0], *layer.output_shape(tuple(shp[1:])))
            shapes.append(shp)
        self._out_shape_cache = (x_shape, shapes)
        return shapes

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        layers = self.layers
        if self._memory is None:
            if out is None:
                for layer in layers:
                    x = layer.forward(x)
                return x
            if not layers:
                np.copyto(out, x)
                return out
            for layer in layers[:-1]:
                x = layer.forward(x)
            return layers[-1].forward(x, out=out)
        # Memory-bound: when a layer can write a non-contiguous target and
        # its successor exposes a padded-input slot, compute straight into
        # that slot's interior — the successor skips its interior copy.
        if not layers:
            if out is None:
                return x
            np.copyto(out, x)
            return out
        shapes = self._layer_out_shapes(x.shape)
        last = len(layers) - 1
        for i, layer in enumerate(layers):
            if i == last:
                return layer.forward(x, out=out) if out is not None else layer.forward(x)
            tgt = (
                layers[i + 1].input_slot(shapes[i], np.float64)
                if layer._fusion_source
                else None
            )
            x = layer.forward(x, out=tgt) if tgt is not None else layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            for layer in reversed(self.layers):
                grad_out = layer.backward(grad_out)
            return grad_out
        if not self.layers:
            np.copyto(out, grad_out)
            return out
        for layer in reversed(self.layers[1:]):
            grad_out = layer.backward(grad_out)
        return self.layers[0].backward(grad_out, out=out)

    def output_shape(self, input_shape: Shape) -> Shape:
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def flops_per_example(self, input_shape: Shape) -> int:
        shape = tuple(input_shape)
        total = 0
        for layer in self.layers:
            total += layer.flops_per_example(shape)
            shape = layer.output_shape(shape)
        return total
