"""Elementwise activation layers.

Each layer has two code paths: the original eager one (allocates its
result, unchanged numerics) and a buffered one used when a memory context
is bound via ``Module.bind_memory`` or the caller passes ``out=``.  The
buffered paths produce bitwise-identical results for finite inputs — e.g.
``np.maximum(x, 0.0, out=y)`` reproduces ``np.where(x > 0, x, 0.0)``
exactly, including the ``+0.0`` sign at masked-off elements, and
``np.multiply(g, mask, out=dx)`` followed by ``dx += 0.0`` reproduces
``np.where(mask, g, 0.0)`` (the ``+= 0.0`` rewrites the ``-0.0`` a
negative gradient leaves behind; both forms differ from ``np.where`` only
on non-finite inputs, which the eager path would have turned into NaNs one
layer later anyway).
"""

from __future__ import annotations

import numpy as np

from .base import Module, Shape

__all__ = ["ReLU", "Sigmoid", "Tanh"]


class _Elementwise(Module):
    """Shared shape/flop logic for elementwise activations."""

    FLOPS_PER_ELEMENT = 1

    def output_shape(self, input_shape: Shape) -> Shape:
        return tuple(input_shape)

    def flops_per_example(self, input_shape: Shape) -> int:
        return self.FLOPS_PER_ELEMENT * int(np.prod(input_shape))


class ReLU(_Elementwise):
    """max(x, 0)."""

    _fusion_source = True  # buffered forward writes ``out`` via one ufunc

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._memory is None and out is None:
            self._mask = x > 0
            return np.where(self._mask, x, 0.0)
        mask = self._buf("mask", x.shape, np.bool_)
        np.greater(x, 0, out=mask)
        self._mask = mask
        y = out if out is not None else self._buf("y", x.shape, x.dtype)
        np.maximum(x, 0.0, out=y)
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        if self._memory is None and out is None:
            dx = np.where(self._mask, grad_out, 0.0)
            self._mask = None
            return dx
        dx = out if out is not None else self._buf("dx", grad_out.shape, grad_out.dtype)
        np.multiply(grad_out, self._mask, out=dx)
        dx += 0.0
        self._mask = None
        return dx


class Sigmoid(_Elementwise):
    FLOPS_PER_ELEMENT = 4

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._memory is None and out is None:
            # numerically stable logistic: exp only ever sees non-positive args
            y = np.empty_like(x, dtype=np.float64)
            pos = x >= 0
            y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
            ex = np.exp(x[~pos])
            y[~pos] = ex / (1.0 + ex)
            self._y = y
            return self._y
        # Same stable split, computed in place under ufunc ``where=`` masks;
        # per element the operation sequence is identical to the eager path.
        pos = self._buf("pos", x.shape, np.bool_)
        np.greater_equal(x, 0, out=pos)
        neg = self._buf("neg", x.shape, np.bool_)
        np.logical_not(pos, out=neg)
        t = self._scratch(x.shape, np.float64)
        y = out if out is not None else self._buf("y", x.shape, np.float64)
        np.negative(x, out=t, where=pos)
        np.exp(t, out=t, where=pos)
        np.add(t, 1.0, out=t, where=pos)
        np.divide(1.0, t, out=y, where=pos)
        np.exp(x, out=t, where=neg)
        u = self._scratch(x.shape, np.float64)
        np.add(t, 1.0, out=u, where=neg)
        np.divide(t, u, out=y, where=neg)
        self._drop(u)
        self._drop(t)
        self._y = y
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        if self._memory is None and out is None:
            dx = grad_out * self._y * (1.0 - self._y)
            self._y = None
            return dx
        dx = out if out is not None else self._buf("dx", grad_out.shape, grad_out.dtype)
        np.multiply(grad_out, self._y, out=dx)
        t = self._scratch(grad_out.shape, np.float64)
        np.subtract(1.0, self._y, out=t)
        dx *= t
        self._drop(t)
        self._y = None
        return dx


class Tanh(_Elementwise):
    FLOPS_PER_ELEMENT = 4

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._memory is None and out is None:
            self._y = np.tanh(x)
            return self._y
        y = out if out is not None else self._buf("y", x.shape, x.dtype)
        np.tanh(x, out=y)
        self._y = y
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        if self._memory is None and out is None:
            dx = grad_out * (1.0 - self._y * self._y)
            self._y = None
            return dx
        t = self._scratch(grad_out.shape, np.float64)
        np.multiply(self._y, self._y, out=t)
        np.subtract(1.0, t, out=t)
        dx = out if out is not None else self._buf("dx", grad_out.shape, grad_out.dtype)
        np.multiply(grad_out, t, out=dx)
        self._drop(t)
        self._y = None
        return dx
