"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from .base import Module, Shape

__all__ = ["ReLU", "Sigmoid", "Tanh"]


class _Elementwise(Module):
    """Shared shape/flop logic for elementwise activations."""

    FLOPS_PER_ELEMENT = 1

    def output_shape(self, input_shape: Shape) -> Shape:
        return tuple(input_shape)

    def flops_per_example(self, input_shape: Shape) -> int:
        return self.FLOPS_PER_ELEMENT * int(np.prod(input_shape))


class ReLU(_Elementwise):
    """max(x, 0)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        dx = np.where(self._mask, grad_out, 0.0)
        self._mask = None
        return dx


class Sigmoid(_Elementwise):
    FLOPS_PER_ELEMENT = 4

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # numerically stable logistic: exp only ever sees non-positive args
        y = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        y[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        y[~pos] = ex / (1.0 + ex)
        self._y = y
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        dx = grad_out * self._y * (1.0 - self._y)
        self._y = None
        return dx


class Tanh(_Elementwise):
    FLOPS_PER_ELEMENT = 4

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        dx = grad_out * (1.0 - self._y * self._y)
        self._y = None
        return dx
