"""Residual blocks (He et al. 2016), the building unit of ResNet-50.

A :class:`Residual` wraps a main branch and an optional projection shortcut;
the elementwise sum and the final ReLU live here.  Both basic (two 3×3) and
bottleneck (1×1 → 3×3 → 1×1) branch builders are provided in
``repro.nn.models.resnet``.
"""

from __future__ import annotations

import numpy as np

from .base import Module, Shape

__all__ = ["Residual"]


class Residual(Module):
    """``y = ReLU(branch(x) + shortcut(x))``.

    ``shortcut=None`` means identity, which requires the branch to be
    shape-preserving (checked at ``output_shape`` time).
    """

    _fusion_source = True  # buffered forward writes ``out`` via one ufunc

    def __init__(self, branch: Module, shortcut: Module | None = None):
        super().__init__()
        self.branch = branch
        self.shortcut = shortcut
        self._relu_mask: np.ndarray | None = None

    def input_slot(self, x_shape, dtype):
        # Our input is consumed first by the branch's leading layer (the
        # shortcut and the elementwise add only ever *read* it, so sharing
        # that layer's padded-input slot is safe).
        return self.branch.input_slot(x_shape, dtype)

    def output_shape(self, input_shape: Shape) -> Shape:
        out = self.branch.output_shape(input_shape)
        short = (
            tuple(input_shape)
            if self.shortcut is None
            else self.shortcut.output_shape(input_shape)
        )
        if out != short:
            raise ValueError(
                f"residual mismatch: branch {out} vs shortcut {short} for input {input_shape}"
            )
        return out

    def flops_per_example(self, input_shape: Shape) -> int:
        total = self.branch.flops_per_example(input_shape)
        if self.shortcut is not None:
            total += self.shortcut.flops_per_example(input_shape)
        # the add and the ReLU
        total += 2 * int(np.prod(self.output_shape(input_shape)))
        return total

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        main = self.branch.forward(x)
        short = x if self.shortcut is None else self.shortcut.forward(x)
        if self._memory is None and out is None:
            pre = main + short
            self._relu_mask = pre > 0
            return np.where(self._relu_mask, pre, 0.0)
        pre = self._buf("pre", main.shape, np.float64)
        np.add(main, short, out=pre)
        mask = self._buf("mask", main.shape, np.bool_)
        np.greater(pre, 0, out=mask)
        self._relu_mask = mask
        y = out if out is not None else self._buf("y", main.shape, np.float64)
        np.maximum(pre, 0.0, out=y)
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._relu_mask is None:
            raise RuntimeError("backward called before forward")
        if self._memory is None and out is None:
            dpre = np.where(self._relu_mask, grad_out, 0.0)
            self._relu_mask = None
            dx = self.branch.backward(dpre)
            if self.shortcut is None:
                dx = dx + dpre
            else:
                dx = dx + self.shortcut.backward(dpre)
            return dx
        mask = self._relu_mask
        dpre = self._buf("dpre", grad_out.shape, np.float64)
        # mask-multiply + ``+= 0.0`` == np.where(mask, grad, 0.0) bitwise for
        # finite gradients (the add rewrites -0.0 to the +0.0 where produces)
        np.multiply(grad_out, mask, out=dpre)
        dpre += 0.0
        self._relu_mask = None
        dbranch = self.branch.backward(dpre)
        other = dpre if self.shortcut is None else self.shortcut.backward(dpre)
        if out is not None:
            np.add(dbranch, other, out=out)
            return out
        # Sum in place into the branch's gradient buffer (a persistent slot
        # of its first layer, dead until that layer's next backward): one
        # fewer memory stream than writing a third buffer, same bits.
        np.add(dbranch, other, out=dbranch)
        return dbranch
