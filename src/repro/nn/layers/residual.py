"""Residual blocks (He et al. 2016), the building unit of ResNet-50.

A :class:`Residual` wraps a main branch and an optional projection shortcut;
the elementwise sum and the final ReLU live here.  Both basic (two 3×3) and
bottleneck (1×1 → 3×3 → 1×1) branch builders are provided in
``repro.nn.models.resnet``.
"""

from __future__ import annotations

import numpy as np

from .base import Module, Shape

__all__ = ["Residual"]


class Residual(Module):
    """``y = ReLU(branch(x) + shortcut(x))``.

    ``shortcut=None`` means identity, which requires the branch to be
    shape-preserving (checked at ``output_shape`` time).
    """

    def __init__(self, branch: Module, shortcut: Module | None = None):
        super().__init__()
        self.branch = branch
        self.shortcut = shortcut
        self._relu_mask: np.ndarray | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        out = self.branch.output_shape(input_shape)
        short = (
            tuple(input_shape)
            if self.shortcut is None
            else self.shortcut.output_shape(input_shape)
        )
        if out != short:
            raise ValueError(
                f"residual mismatch: branch {out} vs shortcut {short} for input {input_shape}"
            )
        return out

    def flops_per_example(self, input_shape: Shape) -> int:
        total = self.branch.flops_per_example(input_shape)
        if self.shortcut is not None:
            total += self.shortcut.flops_per_example(input_shape)
        # the add and the ReLU
        total += 2 * int(np.prod(self.output_shape(input_shape)))
        return total

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.branch.forward(x)
        short = x if self.shortcut is None else self.shortcut.forward(x)
        pre = main + short
        self._relu_mask = pre > 0
        return np.where(self._relu_mask, pre, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._relu_mask is None:
            raise RuntimeError("backward called before forward")
        dpre = np.where(self._relu_mask, grad_out, 0.0)
        self._relu_mask = None
        dx = self.branch.backward(dpre)
        if self.shortcut is None:
            dx = dx + dpre
        else:
            dx = dx + self.shortcut.backward(dpre)
        return dx
