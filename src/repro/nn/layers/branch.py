"""Parallel branches concatenated along the channel axis — the Inception
module's skeleton (GoogLeNet is the model FireCaffe scaled, the starting
point of the related-work lineage this paper extends)."""

from __future__ import annotations

import numpy as np

from .base import Module, Shape

__all__ = ["ConcatBranches"]


class ConcatBranches(Module):
    """``y = concat_channels(branch_i(x) for i)``.

    All branches must produce identical spatial dimensions; channel counts
    add.  The backward pass splits the incoming gradient at the recorded
    channel boundaries and sums the branch input-gradients.
    """

    def __init__(self, *branches: Module):
        super().__init__()
        if not branches:
            raise ValueError("need at least one branch")
        self.branches: list[Module] = list(branches)
        self._splits: list[int] | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        shapes = [b.output_shape(input_shape) for b in self.branches]
        spatial = {s[1:] for s in shapes}
        if len(spatial) != 1:
            raise ValueError(f"branch spatial shapes differ: {shapes}")
        channels = sum(s[0] for s in shapes)
        return (channels, *shapes[0][1:])

    def flops_per_example(self, input_shape: Shape) -> int:
        return sum(b.flops_per_example(input_shape) for b in self.branches)

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        outs = [b.forward(x) for b in self.branches]
        self._splits = [o.shape[1] for o in outs]
        if self._memory is None and out is None:
            return np.concatenate(outs, axis=1)
        n = outs[0].shape[0]
        shape = (n, sum(self._splits), *outs[0].shape[2:])
        y = out if out is not None else self._buf("y", shape, np.float64)
        np.concatenate(outs, axis=1, out=y)
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._splits is None:
            raise RuntimeError("backward called before forward")
        buffered = self._memory is not None or out is not None
        dx = None
        lo = 0
        for i, (branch, width) in enumerate(zip(self.branches, self._splits)):
            g = grad_out[:, lo : lo + width]
            if buffered:
                gbuf = self._buf(f"g{i}", g.shape, np.float64)
                np.copyto(gbuf, g)
                contrib = branch.backward(gbuf)
                if dx is None:
                    dx = out if out is not None else self._buf("dx", contrib.shape, np.float64)
                    np.copyto(dx, contrib)
                else:
                    dx += contrib
            else:
                contrib = branch.backward(np.ascontiguousarray(g))
                dx = contrib if dx is None else dx + contrib
            lo += width
        self._splits = None
        return dx
