"""Pooling layers: max, average, and global average (ResNet's head)."""

from __future__ import annotations

import numpy as np

from .base import Module, Shape
from .conv import col2im_clipped, conv_output_hw, im2col

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache: tuple | None = None
        self._xpad_primed: np.ndarray | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        oh, ow = conv_output_hw(h, w, self.kernel_size, self.kernel_size, self.stride, self.padding)
        return (c, oh, ow)

    def flops_per_example(self, input_shape: Shape) -> int:
        c, oh, ow = self.output_shape(input_shape)
        return c * oh * ow * (self.kernel_size * self.kernel_size - 1)

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        if self._memory is None and out is None:
            if p > 0:
                # pad with -inf so padded positions never win the max
                x = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=-np.inf)
            hp, wp = x.shape[2], x.shape[3]
            # Reuse im2col per channel: treat channels as batch for the unfold.
            cols, (oh, ow) = im2col(x.reshape(n * c, 1, hp, wp), k, k, s, 0)
            cols = cols.reshape(n, c, k * k, oh * ow)
            argmax = cols.argmax(axis=2)
            out = np.take_along_axis(cols, argmax[:, :, None, :], axis=2)[:, :, 0, :]
            self._cache = ((n, c, h, w), argmax, (oh, ow))
            return out.reshape(n, c, oh, ow)
        hp, wp = h + 2 * p, w + 2 * p
        if p > 0:
            xp = self._buf("xpad", (n, c, hp, wp), x.dtype)
            if self._xpad_primed is not xp:
                # -inf border written once; the slot is exclusive to this
                # layer, so it survives untouched between steps
                xp[...] = -np.inf
                self._xpad_primed = xp
            xp[:, :, p:-p, p:-p] = x
            xw = xp
        else:
            xw = x
        oh, ow = conv_output_hw(hp, wp, k, k, s, 0)
        cols = self._buf("cols", (n * c, k * k, oh * ow), x.dtype)
        im2col(xw.reshape(n * c, 1, hp, wp), k, k, s, 0, out=cols)
        cols4 = cols.reshape(n, c, k * k, oh * ow)
        argmax = self._buf("argmax", (n, c, oh * ow), np.intp)
        np.argmax(cols4, axis=2, out=argmax)
        y = out if out is not None else self._buf("y", (n, c, oh, ow), x.dtype)
        # amax == the value take_along_axis(argmax) extracts, bit for bit
        np.amax(cols4, axis=2, out=y.reshape(n, c, oh * ow))
        self._cache = ((n, c, h, w), argmax, (oh, ow))
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        (n, c, h, w), argmax, (oh, ow) = self._cache
        k, s, p = self.kernel_size, self.stride, self.padding
        from .conv import col2im

        hp, wp = h + 2 * p, w + 2 * p
        if self._memory is None and out is None:
            dcols = np.zeros((n, c, k * k, oh * ow))
            go = grad_out.reshape(n, c, 1, oh * ow)
            np.put_along_axis(dcols, argmax[:, :, None, :], go, axis=2)
            dx = col2im(dcols.reshape(n * c, k * k, oh * ow), (n * c, 1, hp, wp), k, k, s, 0)
            dx = dx.reshape(n, c, hp, wp)
            if p > 0:
                dx = dx[:, :, p:-p, p:-p]
            self._cache = None
            return dx
        dcols = self._scratch((n, c, k * k, oh * ow), np.float64)
        dcols[...] = 0.0
        go = grad_out.reshape(n, c, 1, oh * ow)
        np.put_along_axis(dcols, argmax[:, :, None, :], go, axis=2)
        if p > 0 and s < k:
            dx = out if out is not None else self._buf("dx", (n, c, h, w), np.float64)
            col2im_clipped(
                dcols.reshape(n * c, k * k, oh * ow), (n * c, 1, h, w), k, k, s, p,
                out=dx.reshape(n * c, 1, h, w),
            )
            self._drop(dcols)
            self._cache = None
            return dx
        pad_buf = self._buf("dx_pad", (n * c, 1, hp, wp), np.float64)
        dxv = col2im(
            dcols.reshape(n * c, k * k, oh * ow), (n * c, 1, hp, wp), k, k, s, 0,
            out=pad_buf,
        )
        self._drop(dcols)
        dxv = dxv.reshape(n, c, hp, wp)
        self._cache = None
        if p > 0:
            dx = out if out is not None else self._buf("dx", (n, c, h, w), np.float64)
            np.copyto(dx, dxv[:, :, p:-p, p:-p])
            return dx
        if out is not None:
            np.copyto(out, dxv)
            return out
        return dxv


class AvgPool2D(Module):
    """Average pooling with a square window (zero-padded positions count)."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._x_shape: tuple | None = None
        self._xpad_primed: np.ndarray | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        oh, ow = conv_output_hw(h, w, self.kernel_size, self.kernel_size, self.stride, self.padding)
        return (c, oh, ow)

    def flops_per_example(self, input_shape: Shape) -> int:
        c, oh, ow = self.output_shape(input_shape)
        return c * oh * ow * self.kernel_size * self.kernel_size

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        if self._memory is None and out is None:
            cols, (oh, ow) = im2col(x.reshape(n * c, 1, h, w), k, k, s, p)
            out = cols.reshape(n, c, k * k, oh * ow).mean(axis=2)
            self._x_shape = x.shape
            self._ohw = (oh, ow)
            return out.reshape(n, c, oh, ow)
        hp, wp = h + 2 * p, w + 2 * p
        if p > 0:
            xp = self._buf("xpad", (n, c, hp, wp), x.dtype)
            if self._xpad_primed is not xp:
                xp[...] = 0.0
                self._xpad_primed = xp
            xp[:, :, p:-p, p:-p] = x
            xw = xp
        else:
            xw = x
        oh, ow = conv_output_hw(hp, wp, k, k, s, 0)
        cols = self._buf("cols", (n * c, k * k, oh * ow), x.dtype)
        im2col(xw.reshape(n * c, 1, hp, wp), k, k, s, 0, out=cols)
        y = out if out is not None else self._buf("y", (n, c, oh, ow), x.dtype)
        cols.reshape(n, c, k * k, oh * ow).mean(axis=2, out=y.reshape(n, c, oh * ow))
        self._x_shape = x.shape
        self._ohw = (oh, ow)
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        oh, ow = self._ohw
        k, s, p = self.kernel_size, self.stride, self.padding
        from .conv import col2im

        if self._memory is None and out is None:
            go = grad_out.reshape(n * c, 1, oh * ow) / (k * k)
            dcols = np.broadcast_to(go, (n * c, k * k, oh * ow))
            dx = col2im(np.ascontiguousarray(dcols), (n * c, 1, h, w), k, k, s, p)
            self._x_shape = None
            return dx.reshape(n, c, h, w)
        go = self._scratch((n * c, 1, oh * ow), np.float64)
        np.divide(grad_out.reshape(n * c, 1, oh * ow), k * k, out=go)
        dcols = self._scratch((n * c, k * k, oh * ow), np.float64)
        dcols[...] = go
        self._drop(go)
        if p > 0 and s < k:
            dx = out if out is not None else self._buf("dx", (n, c, h, w), np.float64)
            col2im_clipped(
                dcols, (n * c, 1, h, w), k, k, s, p, out=dx.reshape(n * c, 1, h, w)
            )
            self._drop(dcols)
            self._x_shape = None
            return dx
        hp, wp = h + 2 * p, w + 2 * p
        pad_buf = self._buf("dx_pad", (n * c, 1, hp, wp), np.float64)
        dxv = col2im(dcols, (n * c, 1, h, w), k, k, s, p, out=pad_buf)
        self._drop(dcols)
        self._x_shape = None
        if p > 0:
            dx = out if out is not None else self._buf("dx", (n, c, h, w), np.float64)
            np.copyto(dx.reshape(n * c, 1, h, w), dxv)
            return dx
        if out is not None:
            np.copyto(out, dxv.reshape(n, c, h, w))
            return out
        return dxv.reshape(n, c, h, w)


class GlobalAvgPool2D(Module):
    """Average over all spatial positions, producing ``(N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        return (c,)

    def flops_per_example(self, input_shape: Shape) -> int:
        return int(np.prod(input_shape))

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        self._x_shape = x.shape
        if self._memory is None and out is None:
            return x.mean(axis=(2, 3))
        n, c = x.shape[0], x.shape[1]
        y = out if out is not None else self._buf("y", (n, c), x.dtype)
        x.mean(axis=(2, 3), out=y)
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        if self._memory is None and out is None:
            dx = np.broadcast_to(grad_out[:, :, None, None], (n, c, h, w)) / (h * w)
            self._x_shape = None
            return np.ascontiguousarray(dx)
        dx = out if out is not None else self._buf("dx", (n, c, h, w), grad_out.dtype)
        dx[...] = grad_out[:, :, None, None]
        dx /= h * w
        self._x_shape = None
        return dx
