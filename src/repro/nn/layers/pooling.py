"""Pooling layers: max, average, and global average (ResNet's head)."""

from __future__ import annotations

import numpy as np

from .base import Module, Shape
from .conv import conv_output_hw, im2col

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache: tuple | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        oh, ow = conv_output_hw(h, w, self.kernel_size, self.kernel_size, self.stride, self.padding)
        return (c, oh, ow)

    def flops_per_example(self, input_shape: Shape) -> int:
        c, oh, ow = self.output_shape(input_shape)
        return c * oh * ow * (self.kernel_size * self.kernel_size - 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        if p > 0:
            # pad with -inf so padded positions never win the max
            x = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=-np.inf)
        hp, wp = x.shape[2], x.shape[3]
        # Reuse im2col per channel: treat channels as batch for the unfold.
        cols, (oh, ow) = im2col(x.reshape(n * c, 1, hp, wp), k, k, s, 0)
        cols = cols.reshape(n, c, k * k, oh * ow)
        argmax = cols.argmax(axis=2)
        out = np.take_along_axis(cols, argmax[:, :, None, :], axis=2)[:, :, 0, :]
        self._cache = ((n, c, h, w), argmax, (oh, ow))
        return out.reshape(n, c, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        (n, c, h, w), argmax, (oh, ow) = self._cache
        k, s, p = self.kernel_size, self.stride, self.padding
        dcols = np.zeros((n, c, k * k, oh * ow))
        go = grad_out.reshape(n, c, 1, oh * ow)
        np.put_along_axis(dcols, argmax[:, :, None, :], go, axis=2)
        from .conv import col2im

        hp, wp = h + 2 * p, w + 2 * p
        dx = col2im(dcols.reshape(n * c, k * k, oh * ow), (n * c, 1, hp, wp), k, k, s, 0)
        dx = dx.reshape(n, c, hp, wp)
        if p > 0:
            dx = dx[:, :, p:-p, p:-p]
        self._cache = None
        return dx


class AvgPool2D(Module):
    """Average pooling with a square window (zero-padded positions count)."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._x_shape: tuple | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        oh, ow = conv_output_hw(h, w, self.kernel_size, self.kernel_size, self.stride, self.padding)
        return (c, oh, ow)

    def flops_per_example(self, input_shape: Shape) -> int:
        c, oh, ow = self.output_shape(input_shape)
        return c * oh * ow * self.kernel_size * self.kernel_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, (oh, ow) = im2col(x.reshape(n * c, 1, h, w), k, k, s, p)
        out = cols.reshape(n, c, k * k, oh * ow).mean(axis=2)
        self._x_shape = x.shape
        self._ohw = (oh, ow)
        return out.reshape(n, c, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        oh, ow = self._ohw
        k, s, p = self.kernel_size, self.stride, self.padding
        go = grad_out.reshape(n * c, 1, oh * ow) / (k * k)
        dcols = np.broadcast_to(go, (n * c, k * k, oh * ow))
        from .conv import col2im

        dx = col2im(np.ascontiguousarray(dcols), (n * c, 1, h, w), k, k, s, p)
        self._x_shape = None
        return dx.reshape(n, c, h, w)


class GlobalAvgPool2D(Module):
    """Average over all spatial positions, producing ``(N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        return (c,)

    def flops_per_example(self, input_shape: Shape) -> int:
        return int(np.prod(input_shape))

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        dx = np.broadcast_to(grad_out[:, :, None, None], (n, c, h, w)) / (h * w)
        self._x_shape = None
        return np.ascontiguousarray(dx)
