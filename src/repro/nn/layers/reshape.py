"""Shape-manipulation layers."""

from __future__ import annotations

import numpy as np

from .base import Module, Shape

__all__ = ["Flatten"]


class Flatten(Module):
    """Collapse all per-example dimensions into one feature vector."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        self._x_shape = x.shape
        y = x.reshape(x.shape[0], -1)
        if out is not None:
            np.copyto(out, y)
            return out
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        dx = grad_out.reshape(self._x_shape)
        self._x_shape = None
        if out is not None:
            np.copyto(out, dx)
            return out
        return dx
