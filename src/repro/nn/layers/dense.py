"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from ..initializers import Initializer, xavier, zeros
from ..tensor import Parameter
from .base import Module, Shape

__all__ = ["Dense"]


class Dense(Module):
    """Affine map ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: Initializer = xavier,
        bias_init: Initializer = zeros,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init((in_features, out_features), rng))
        self.bias = Parameter(bias_init((out_features,), rng), weight_decay=0.0) if bias else None
        self._x: np.ndarray | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 1 or input_shape[0] != self.in_features:
            raise ValueError(
                f"{self.name or 'Dense'}: expected ({self.in_features},), got {input_shape}"
            )
        return (self.out_features,)

    def flops_per_example(self, input_shape: Shape) -> int:
        flops = 2 * self.in_features * self.out_features
        if self.bias is not None:
            flops += self.out_features
        return flops

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        self._x = x
        if self._memory is None and out is None:
            out = x @ self.weight.data
            if self.bias is not None:
                out += self.bias.data
            return out
        y = out if out is not None else self._buf("y", (x.shape[0], self.out_features), x.dtype)
        np.matmul(x, self.weight.data, out=y)
        if self.bias is not None:
            y += self.bias.data
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        if self._memory is None and out is None:
            self.weight.grad += self._x.T @ grad_out
            if self.bias is not None:
                self.bias.grad += grad_out.sum(axis=0)
            dx = grad_out @ self.weight.data.T
            self._x = None
            return dx
        dw = self._scratch((self.in_features, self.out_features), np.float64)
        np.matmul(self._x.T, grad_out, out=dw)
        self.weight.grad += dw
        self._drop(dw)
        if self.bias is not None:
            db = self._scratch((self.out_features,), np.float64)
            np.sum(grad_out, axis=0, out=db)
            self.bias.grad += db
            self._drop(db)
        dx = out if out is not None else self._buf("dx", self._x.shape, grad_out.dtype)
        np.matmul(grad_out, self.weight.data.T, out=dx)
        self._x = None
        return dx
