"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from ..initializers import Initializer, xavier, zeros
from ..tensor import Parameter
from .base import Module, Shape

__all__ = ["Dense"]


class Dense(Module):
    """Affine map ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_init: Initializer = xavier,
        bias_init: Initializer = zeros,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init((in_features, out_features), rng))
        self.bias = Parameter(bias_init((out_features,), rng), weight_decay=0.0) if bias else None
        self._x: np.ndarray | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 1 or input_shape[0] != self.in_features:
            raise ValueError(
                f"{self.name or 'Dense'}: expected ({self.in_features},), got {input_shape}"
            )
        return (self.out_features,)

    def flops_per_example(self, input_shape: Shape) -> int:
        flops = 2 * self.in_features * self.out_features
        if self.bias is not None:
            flops += self.out_features
        return flops

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = x @ self.weight.data
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ grad_out
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        dx = grad_out @ self.weight.data.T
        self._x = None
        return dx
