"""Inverted dropout (AlexNet's classifier uses p=0.5)."""

from __future__ import annotations

import numpy as np

from ..tensor import Workspace
from .base import Module, Shape

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: at train time zero each unit with probability ``p``
    and scale survivors by ``1/(1-p)``; identity at eval time.

    The mask RNG is owned by the layer so that replicated workers can be
    seeded identically (sequential consistency requires every replica to draw
    the same masks for the same global batch).  Call :meth:`reseed` to align
    replicas.

    The mask is drawn into a persistent per-layer buffer
    (``Generator.random(out=...)`` consumes the identical stream as
    ``rng.random(shape)``), so steady-state steps never reallocate it; with a
    bound memory context the output lives in an arena slot too.
    """

    _fusion_source = True  # buffered forward writes ``out`` via plain ufuncs

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: np.ndarray | None = None
        self._ws = Workspace()

    def reseed(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    def output_shape(self, input_shape: Shape) -> Shape:
        return tuple(input_shape)

    def flops_per_example(self, input_shape: Shape) -> int:
        return int(np.prod(input_shape))

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            if out is not None:
                np.copyto(out, x)
                return out
            return x
        keep = 1.0 - self.p
        buffered = self._memory is not None or out is not None
        if buffered:
            mask = self._buf("mask", x.shape, np.float64)
            sel = self._buf("sel", x.shape, np.bool_)
        else:
            mask = self._ws.get("mask", x.shape, np.float64)
            sel = self._ws.get("sel", x.shape, np.bool_)
        self.rng.random(out=mask)
        np.less(mask, keep, out=sel)
        np.divide(sel, keep, out=mask)
        self._mask = mask
        if not buffered:
            return x * mask
        y = out if out is not None else self._buf("y", x.shape, np.float64)
        np.multiply(x, mask, out=y)
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._mask is None:
            if out is not None:
                np.copyto(out, grad_out)
                return out
            return grad_out
        mask = self._mask
        self._mask = None
        if self._memory is None and out is None:
            return grad_out * mask
        dx = out if out is not None else self._buf("dx", grad_out.shape, grad_out.dtype)
        np.multiply(grad_out, mask, out=dx)
        return dx
