"""Inverted dropout (AlexNet's classifier uses p=0.5)."""

from __future__ import annotations

import numpy as np

from .base import Module, Shape

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout: at train time zero each unit with probability ``p``
    and scale survivors by ``1/(1-p)``; identity at eval time.

    The mask RNG is owned by the layer so that replicated workers can be
    seeded identically (sequential consistency requires every replica to draw
    the same masks for the same global batch).  Call :meth:`reseed` to align
    replicas.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def reseed(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    def output_shape(self, input_shape: Shape) -> Shape:
        return tuple(input_shape)

    def flops_per_example(self, input_shape: Shape) -> int:
        return int(np.prod(input_shape))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        dx = grad_out * self._mask
        self._mask = None
        return dx
