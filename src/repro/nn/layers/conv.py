"""2-D convolution via im2col / col2im.

Following the optimisation guidance for numerical Python, the convolution is
expressed as one large GEMM per layer (``im2col`` + matrix multiply) instead
of nested Python loops — the same lowering Caffe uses, which also makes the
flop accounting below exactly the paper's "flops per image" convention.

Data layout is channels-first (``N, C, H, W``); weights are
``(C_out, C_in/groups, KH, KW)`` as in Caffe.

Hot-path structure (measured by ``repro.bench``, guarded by the parity tests
in ``tests/nn/test_conv_parity.py``):

* :func:`im2col_view` exposes the zero-copy strided patch view; the public
  :func:`im2col` materialises it into a caller-supplied ``out=`` buffer so
  steady-state iterations reuse one workspace instead of reallocating.
* :func:`col2im` takes a single vectorised scatter when the windows cannot
  overlap (``stride >= kernel``) and falls back to the per-offset
  slice-add loop otherwise.
* :class:`Conv2D` skips ``im2col``/``col2im`` entirely for 1×1 kernels
  (bottleneck and shortcut convolutions are plain strided GEMMs), drives
  the GEMMs through ``np.matmul`` for small problems and through
  path-cached einsum (:func:`repro.nn.tensor.cached_einsum`) for large
  ones — both choices are functions of the operand shapes alone, so the
  numerics of a given layer geometry never depend on runtime state.
"""

from __future__ import annotations

import numpy as np

from ..initializers import Initializer, he_normal, zeros
from ..tensor import Parameter, Workspace, cached_einsum
from .base import Module, Shape

__all__ = ["Conv2D", "im2col", "im2col_view", "col2im", "col2im_clipped", "conv_output_hw"]

# Backward-GEMM strategy crossover (total MACs): below this, batched
# ``np.matmul`` with folded batch axes wins; above it, einsum's tensordot
# contraction order is faster.  Shape-only, so replays are deterministic.
_BATCHED_MATMUL_MAX_MACS = 1 << 25


def conv_output_hw(
    h: int, w: int, kh: int, kw: int, stride: int, pad: int
) -> tuple[int, int]:
    """Output spatial size of a convolution / pooling window."""
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"window {kh}x{kw} stride {stride} pad {pad} does not fit input {h}x{w}"
        )
    return oh, ow


def im2col_view(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Zero-copy patch view ``(N, C, KH, KW, OH, OW)`` of ``x``.

    The view is read-only (it aliases ``x`` — or its padded copy — with
    overlapping strides, so writes would corrupt neighbouring patches).
    Consumers that can digest strided operands (einsum, slice reductions)
    avoid the big column copy entirely; everyone else goes through
    :func:`im2col`.
    """
    n, c, h, w = x.shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    sn, sc, sh, sw = x.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    patches = np.lib.stride_tricks.as_strided(
        x, shape=shape, strides=strides, writeable=False
    )
    return patches, (oh, ow)


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N, C*KH*KW, OH*OW)`` patch columns.

    Returns the column tensor and the output spatial size.  One vectorised
    copy of the strided patch view — no Python-level loops over pixels.
    ``out`` supplies a preallocated destination of exactly the column shape
    (and ``x``'s dtype), so per-iteration callers can reuse one workspace
    buffer instead of paying allocation and page-fault cost every step.
    """
    n, c, _, _ = x.shape
    patches, (oh, ow) = im2col_view(x, kh, kw, stride, pad)
    cols_shape = (n, c * kh * kw, oh * ow)
    if out is None:
        out = np.empty(cols_shape, dtype=x.dtype)
    elif out.shape != cols_shape or out.dtype != x.dtype:
        raise ValueError(
            f"out has shape {out.shape}/{out.dtype}, expected {cols_shape}/{x.dtype}"
        )
    out.reshape(n, c, kh, kw, oh, ow)[...] = patches
    return out, (oh, ow)


def col2im_clipped(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    out: np.ndarray,
) -> np.ndarray:
    """Scatter-add columns straight into an *unpadded* image buffer.

    Equivalent to ``col2im(...)`` followed by dropping the padding border,
    but never materialises the padded canvas: each kernel offset's slice is
    clipped to the image interior, so the border terms the padded version
    would discard are simply never written.  Per pixel the surviving
    contributions arrive in the same ``(i, j)`` offset order as the canvas
    version, so the accumulated values are bitwise identical.
    """
    n, c, h, w = x_shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    out[...] = 0.0
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        o_lo = -(-max(pad - i, 0) // stride)
        o_hi = min((h - 1 - i + pad) // stride, oh - 1)
        r0 = i + stride * o_lo - pad
        rows = slice(r0, r0 + stride * (o_hi - o_lo) + 1, stride)
        for j in range(kw):
            q_lo = -(-max(pad - j, 0) // stride)
            q_hi = min((w - 1 - j + pad) // stride, ow - 1)
            c0 = j + stride * q_lo - pad
            out[:, :, rows, c0 : c0 + stride * (q_hi - q_lo) + 1 : stride] += cols6[
                :, :, i, j, o_lo : o_hi + 1, q_lo : q_hi + 1
            ]
    return out


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image.

    ``cols`` has shape ``(N, C*KH*KW, OH*OW)``.  Overlapping patches sum,
    which is exactly the backward pass of the unfold.  When the windows
    cannot overlap (``stride >= kernel``, which includes every 1×1
    convolution) each image pixel receives at most one column element, so
    the scatter-add collapses to a single vectorised assignment into a
    strided view — bitwise identical to the general loop, since adding one
    term to zero is exact.

    ``out`` supplies a reusable destination of the *padded* shape
    ``(N, C, H+2p, W+2p)``; it is zeroed here, so its prior contents never
    leak into the scatter-add.  When ``pad > 0`` the returned array is the
    unpadded interior view of ``out``.
    """
    n, c, h, w = x_shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    if out is None:
        out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    else:
        if out.shape != (n, c, hp, wp) or out.dtype != cols.dtype:
            raise ValueError(
                f"out has shape {out.shape}/{out.dtype}, "
                f"expected {(n, c, hp, wp)}/{cols.dtype}"
            )
        out[...] = 0.0
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    if stride >= kh and stride >= kw:
        # Non-overlapping fast branch: one strided scatter, no loop.
        sn, sc, sh, sw = out.strides
        target = np.lib.stride_tricks.as_strided(
            out,
            shape=(n, c, kh, kw, oh, ow),
            strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        )
        target[...] = cols6
    else:
        # Scatter-add per kernel offset: KH*KW slice-adds, fully vectorised.
        for i in range(kh):
            hi = i + stride * oh
            for j in range(kw):
                wj = j + stride * ow
                out[:, :, i:hi:stride, j:wj:stride] += cols6[:, :, i, j, :, :]
    if pad > 0:
        out = out[:, :, pad:-pad, pad:-pad]
    return out


class Conv2D(Module):
    """Standard 2-D convolution with optional grouping.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts; ``out_channels`` must be divisible by ``groups`` and
        ``in_channels`` as well (AlexNet's original two-tower layers use
        ``groups=2``).
    kernel_size, stride, padding:
        Square window geometry.
    bias:
        ResNet convolutions that feed BatchNorm omit the bias.
    fast_paths:
        Enables the 1×1 im2col-free route and workspace reuse.  The general
        route is kept selectable so the parity tests can assert both produce
        bitwise-identical results; production code never disables it.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        weight_init: Initializer = he_normal,
        bias_init: Initializer = zeros,
        rng: np.random.Generator | None = None,
        fast_paths: bool = True,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.fast_paths = bool(fast_paths)
        wshape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(weight_init(wshape, rng))
        self.bias = Parameter(bias_init((out_channels,), rng), weight_decay=0.0) if bias else None
        self._cache: tuple | None = None
        self._workspace = Workspace()
        self._xpad_primed: np.ndarray | None = None
        self._fused_x: np.ndarray | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"{self.name or 'Conv2D'}: expected {self.in_channels} channels, got {c}")
        oh, ow = conv_output_hw(h, w, self.kernel_size, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, oh, ow)

    def flops_per_example(self, input_shape: Shape) -> int:
        _, oh, ow = self.output_shape(input_shape)
        k2cin = self.kernel_size * self.kernel_size * (self.in_channels // self.groups)
        macs = oh * ow * self.out_channels * k2cin
        flops = 2 * macs
        if self.bias is not None:
            flops += oh * ow * self.out_channels
        return flops

    def _is_pointwise(self) -> bool:
        """1×1 unpadded kernels need no patch extraction at all."""
        return self.fast_paths and self.kernel_size == 1 and self.padding == 0

    def input_slot(self, x_shape, dtype):
        """Interior view of the persistent padded-input slot.

        A fusion-capable producer (``Module._fusion_source``) writes our
        input directly into this view; ``forward`` then recognises the
        handoff (``x is self._fused_x``) and skips the interior copy.  The
        zero border is primed here so the producer's write completes the
        padded image.
        """
        if (
            self._memory is None
            or len(x_shape) != 4
            or self.padding == 0
            or self._is_pointwise()
            or np.dtype(dtype) != np.float64
            or x_shape[1] != self.in_channels
        ):
            return None
        n, c, h, w = x_shape
        p = self.padding
        xpad = self._buf("xpad", (n, c, h + 2 * p, w + 2 * p), np.float64)
        if self._xpad_primed is not xpad:
            xpad[...] = 0.0
            self._xpad_primed = xpad
        fused = self._fused_x
        if fused is None or fused.base is not xpad:
            fused = xpad[:, :, p:-p, p:-p]
            self._fused_x = fused
        return fused

    def forward(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p, g = self.kernel_size, self.stride, self.padding, self.groups
        cg = c // g
        og = self.out_channels // g
        buffered = self._memory is not None or out is not None
        oh, ow = conv_output_hw(h, w, k, k, s, p)
        if self._is_pointwise():
            # The "columns" of a 1×1 kernel are the input pixels themselves
            # (stride just subsamples them) — no im2col copy.
            if s == 1:
                cols_g = x.reshape(n, g, cg, oh * ow)
            elif buffered:
                xs = self._buf("xs", (n, c, oh, ow), x.dtype)
                xs[...] = x[:, :, ::s, ::s]
                cols_g = xs.reshape(n, g, cg, oh * ow)
            else:
                cols_g = x[:, :, ::s, ::s].reshape(n, g, cg, oh * ow)
        else:
            if buffered:
                cols = self._buf("cols", (n, c * k * k, oh * ow), x.dtype)
                if p > 0:
                    # Persistent pre-padded input slot: the zero border is
                    # written once (the slot is exclusive to this layer, so
                    # it survives across steps) and each step only copies
                    # the interior — strictly less traffic than np.pad.
                    # When a fused producer already wrote the interior
                    # (``input_slot``), even that copy is skipped.
                    xpad = self._buf("xpad", (n, c, h + 2 * p, w + 2 * p), x.dtype)
                    if x is not self._fused_x:
                        if self._xpad_primed is not xpad:
                            xpad[...] = 0.0
                            self._xpad_primed = xpad
                        xpad[:, :, p:-p, p:-p] = x
                    im2col(xpad, k, k, s, 0, out=cols)
                else:
                    im2col(x, k, k, s, 0, out=cols)
            else:
                out_buf = (
                    self._workspace.get("cols", (n, c * k * k, oh * ow), x.dtype)
                    if self.fast_paths
                    else None
                )
                cols, _ = im2col(x, k, k, s, p, out=out_buf)
            cols_g = cols.reshape(n, g, cg * k * k, oh * ow)
        w2 = self.weight.data.reshape(g, og, cg * k * k)
        # (1, g, og, ckk) @ (n, g, ckk, L) -> (n, g, og, L): BLAS batched GEMM.
        if buffered:
            y = out if out is not None else self._buf("y", (n, self.out_channels, oh, ow), x.dtype)
            np.matmul(w2[None], cols_g, out=y.reshape(n, g, og, oh * ow))
        else:
            y = np.matmul(w2[None], cols_g)
            y = y.reshape(n, self.out_channels, oh, ow)
        if self.bias is not None:
            y += self.bias.data[None, :, None, None]
        self._cache = (x.shape, cols_g, (oh, ow))
        return y

    def backward(self, grad_out: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols_g, (oh, ow) = self._cache
        n = x_shape[0]
        k, s, p, g = self.kernel_size, self.stride, self.padding, self.groups
        cg = self.in_channels // g
        og = self.out_channels // g
        ckk = cols_g.shape[2]
        span = oh * ow
        buffered = self._memory is not None or out is not None
        go = grad_out.reshape(n, g, og, span)
        w2 = self.weight.data.reshape(g, og, ckk)
        # Gradient GEMM destinations: arena scratch/slot when planned, the
        # layer workspace when eager (same reuse forward's im2col gets), and
        # fresh arrays only on the parity-test escape hatch.
        if buffered:
            dw = self._scratch((g, og, ckk), np.float64)
            dcols = self._buf("dcols", (n, g, ckk, span), np.float64)
        elif self.fast_paths:
            dw = self._workspace.get("dw", (g, og, ckk), np.float64)
            dcols = self._workspace.get("dcols", (n, g, ckk, span), np.float64)
        else:
            dw = None
            dcols = None
        if n * g * og * ckk * span <= _BATCHED_MATMUL_MAX_MACS:
            # Fold the batch into the GEMM columns: one (og × nL)·(nL × ckk)
            # product per group beats einsum's dispatch overhead here.
            if buffered:
                t1 = self._scratch((g, og, n, span), np.float64)
                t1[...] = go.transpose(1, 2, 0, 3)
                t2 = self._scratch((g, n, span, ckk), np.float64)
                t2[...] = cols_g.transpose(1, 0, 3, 2)
                np.matmul(
                    t1.reshape(g, og, n * span), t2.reshape(g, n * span, ckk), out=dw
                )
                self._drop(t2)
                self._drop(t1)
            else:
                dw = np.matmul(
                    go.transpose(1, 2, 0, 3).reshape(g, og, n * span),
                    cols_g.transpose(1, 0, 3, 2).reshape(g, n * span, ckk),
                    out=dw,
                )
            dcols = np.matmul(w2.transpose(0, 2, 1)[None], go, out=dcols)
        else:
            # Large problems: einsum's contraction order wins; the path is
            # memoised per shape so only the first call pays for planning.
            dw = cached_einsum("ngol,ngcl->goc", go, cols_g, out=dw)
            dcols = cached_einsum("goc,ngol->ngcl", w2, go, out=dcols)
        self.weight.grad += dw.reshape(self.weight.data.shape)
        if buffered:
            self._drop(dw)
            db = None
            if self.bias is not None:
                db = self._scratch((self.out_channels,), np.float64)
                np.sum(grad_out, axis=(0, 2, 3), out=db)
                self.bias.grad += db
                self._drop(db)
        elif self.bias is not None:
            self.bias.grad += grad_out.sum(axis=(0, 2, 3))
        self._cache = None
        if self._is_pointwise():
            # Adjoint of the strided subsampling: no col2im needed.
            if s == 1:
                dxv = dcols.reshape(x_shape)
                if out is not None:
                    np.copyto(out, dxv)
                    return out
                return dxv
            if buffered:
                dx = out if out is not None else self._buf("dx", x_shape, np.float64)
                dx[...] = 0.0
            else:
                dx = np.zeros(x_shape, dtype=dcols.dtype)
            dx[:, :, ::s, ::s] = dcols.reshape(n, self.in_channels, oh, ow)
            return dx
        dcols = dcols.reshape(n, self.in_channels * k * k, span)
        if buffered:
            if p > 0 and s < k:
                # Overlapping windows: scatter-add the clipped slices
                # straight into the contiguous dx slot — no padded canvas,
                # no interior-copy afterwards (values bitwise unchanged).
                dx = out if out is not None else self._buf("dx", x_shape, np.float64)
                return col2im_clipped(dcols, x_shape, k, k, s, p, out=dx)
            pad_buf = self._buf(
                "dx_pad", (n, self.in_channels, x_shape[2] + 2 * p, x_shape[3] + 2 * p),
                np.float64,
            )
            dxv = col2im(dcols, x_shape, k, k, s, p, out=pad_buf)
            if p > 0:
                # Launder the padded interior view into a contiguous slot so
                # downstream reshapes stay allocation-free (values unchanged).
                dx = out if out is not None else self._buf("dx", x_shape, np.float64)
                np.copyto(dx, dxv)
                return dx
            if out is not None:
                np.copyto(out, dxv)
                return out
            return dxv
        if self.fast_paths:
            pad_buf = self._workspace.get(
                "dx_pad", (n, self.in_channels, x_shape[2] + 2 * p, x_shape[3] + 2 * p),
                np.float64,
            )
            return col2im(dcols, x_shape, k, k, s, p, out=pad_buf)
        return col2im(dcols, x_shape, k, k, s, p)
