"""2-D convolution via im2col / col2im.

Following the optimisation guidance for numerical Python, the convolution is
expressed as one large GEMM per layer (``im2col`` + matrix multiply) instead
of nested Python loops — the same lowering Caffe uses, which also makes the
flop accounting below exactly the paper's "flops per image" convention.

Data layout is channels-first (``N, C, H, W``); weights are
``(C_out, C_in/groups, KH, KW)`` as in Caffe.
"""

from __future__ import annotations

import numpy as np

from ..initializers import Initializer, he_normal, zeros
from ..tensor import Parameter
from .base import Module, Shape

__all__ = ["Conv2D", "im2col", "col2im", "conv_output_hw"]


def conv_output_hw(
    h: int, w: int, kh: int, kw: int, stride: int, pad: int
) -> tuple[int, int]:
    """Output spatial size of a convolution / pooling window."""
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"window {kh}x{kw} stride {stride} pad {pad} does not fit input {h}x{w}"
        )
    return oh, ow


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N, C*KH*KW, OH*OW)`` patch columns.

    Returns the column tensor and the output spatial size.  Uses a strided
    view plus one copy — no Python-level loops over pixels.
    """
    n, c, h, w = x.shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    sn, sc, sh, sw = x.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.reshape(n, c * kh * kw, oh * ow)
    return np.ascontiguousarray(cols), (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image.

    ``cols`` has shape ``(N, C*KH*KW, OH*OW)``.  Overlapping patches sum,
    which is exactly the backward pass of the unfold.
    """
    n, c, h, w = x_shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    # Scatter-add per kernel offset: KH*KW slice-adds, each fully vectorised.
    for i in range(kh):
        hi = i + stride * oh
        for j in range(kw):
            wj = j + stride * ow
            out[:, :, i:hi:stride, j:wj:stride] += cols6[:, :, i, j, :, :]
    if pad > 0:
        out = out[:, :, pad:-pad, pad:-pad]
    return out


class Conv2D(Module):
    """Standard 2-D convolution with optional grouping.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts; ``out_channels`` must be divisible by ``groups`` and
        ``in_channels`` as well (AlexNet's original two-tower layers use
        ``groups=2``).
    kernel_size, stride, padding:
        Square window geometry.
    bias:
        ResNet convolutions that feed BatchNorm omit the bias.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        weight_init: Initializer = he_normal,
        bias_init: Initializer = zeros,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        wshape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(weight_init(wshape, rng))
        self.bias = Parameter(bias_init((out_channels,), rng), weight_decay=0.0) if bias else None
        self._cache: tuple | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"{self.name or 'Conv2D'}: expected {self.in_channels} channels, got {c}")
        oh, ow = conv_output_hw(h, w, self.kernel_size, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, oh, ow)

    def flops_per_example(self, input_shape: Shape) -> int:
        _, oh, ow = self.output_shape(input_shape)
        k2cin = self.kernel_size * self.kernel_size * (self.in_channels // self.groups)
        macs = oh * ow * self.out_channels * k2cin
        flops = 2 * macs
        if self.bias is not None:
            flops += oh * ow * self.out_channels
        return flops

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p, g = self.kernel_size, self.stride, self.padding, self.groups
        cols, (oh, ow) = im2col(x, k, k, s, p)
        cg = c // g
        og = self.out_channels // g
        w2 = self.weight.data.reshape(g, og, cg * k * k)
        cols_g = cols.reshape(n, g, cg * k * k, oh * ow)
        # (g, og, ckk) @ (n, g, ckk, L) -> (n, g, og, L)
        out = np.einsum("goc,ngcl->ngol", w2, cols_g, optimize=True)
        out = out.reshape(n, self.out_channels, oh, ow)
        if self.bias is not None:
            out += self.bias.data[None, :, None, None]
        self._cache = (x.shape, cols_g, (oh, ow))
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols_g, (oh, ow) = self._cache
        n = x_shape[0]
        k, s, p, g = self.kernel_size, self.stride, self.padding, self.groups
        cg = self.in_channels // g
        og = self.out_channels // g
        go = grad_out.reshape(n, g, og, oh * ow)
        # dW: sum over batch and spatial positions.
        dw = np.einsum("ngol,ngcl->goc", go, cols_g, optimize=True)
        self.weight.grad += dw.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=(0, 2, 3))
        # dX: transpose-weight GEMM then col2im scatter.
        w2 = self.weight.data.reshape(g, og, cg * k * k)
        dcols = np.einsum("goc,ngol->ngcl", w2, go, optimize=True)
        dcols = dcols.reshape(n, self.in_channels * k * k, oh * ow)
        self._cache = None
        return col2im(dcols, x_shape, k, k, s, p)
