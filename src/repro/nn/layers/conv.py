"""2-D convolution via im2col / col2im.

Following the optimisation guidance for numerical Python, the convolution is
expressed as one large GEMM per layer (``im2col`` + matrix multiply) instead
of nested Python loops — the same lowering Caffe uses, which also makes the
flop accounting below exactly the paper's "flops per image" convention.

Data layout is channels-first (``N, C, H, W``); weights are
``(C_out, C_in/groups, KH, KW)`` as in Caffe.

Hot-path structure (measured by ``repro.bench``, guarded by the parity tests
in ``tests/nn/test_conv_parity.py``):

* :func:`im2col_view` exposes the zero-copy strided patch view; the public
  :func:`im2col` materialises it into a caller-supplied ``out=`` buffer so
  steady-state iterations reuse one workspace instead of reallocating.
* :func:`col2im` takes a single vectorised scatter when the windows cannot
  overlap (``stride >= kernel``) and falls back to the per-offset
  slice-add loop otherwise.
* :class:`Conv2D` skips ``im2col``/``col2im`` entirely for 1×1 kernels
  (bottleneck and shortcut convolutions are plain strided GEMMs), drives
  the GEMMs through ``np.matmul`` for small problems and through
  path-cached einsum (:func:`repro.nn.tensor.cached_einsum`) for large
  ones — both choices are functions of the operand shapes alone, so the
  numerics of a given layer geometry never depend on runtime state.
"""

from __future__ import annotations

import numpy as np

from ..initializers import Initializer, he_normal, zeros
from ..tensor import Parameter, Workspace, cached_einsum
from .base import Module, Shape

__all__ = ["Conv2D", "im2col", "im2col_view", "col2im", "conv_output_hw"]

# Backward-GEMM strategy crossover (total MACs): below this, batched
# ``np.matmul`` with folded batch axes wins; above it, einsum's tensordot
# contraction order is faster.  Shape-only, so replays are deterministic.
_BATCHED_MATMUL_MAX_MACS = 1 << 25


def conv_output_hw(
    h: int, w: int, kh: int, kw: int, stride: int, pad: int
) -> tuple[int, int]:
    """Output spatial size of a convolution / pooling window."""
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"window {kh}x{kw} stride {stride} pad {pad} does not fit input {h}x{w}"
        )
    return oh, ow


def im2col_view(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Zero-copy patch view ``(N, C, KH, KW, OH, OW)`` of ``x``.

    The view is read-only (it aliases ``x`` — or its padded copy — with
    overlapping strides, so writes would corrupt neighbouring patches).
    Consumers that can digest strided operands (einsum, slice reductions)
    avoid the big column copy entirely; everyone else goes through
    :func:`im2col`.
    """
    n, c, h, w = x.shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    sn, sc, sh, sw = x.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    patches = np.lib.stride_tricks.as_strided(
        x, shape=shape, strides=strides, writeable=False
    )
    return patches, (oh, ow)


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N, C*KH*KW, OH*OW)`` patch columns.

    Returns the column tensor and the output spatial size.  One vectorised
    copy of the strided patch view — no Python-level loops over pixels.
    ``out`` supplies a preallocated destination of exactly the column shape
    (and ``x``'s dtype), so per-iteration callers can reuse one workspace
    buffer instead of paying allocation and page-fault cost every step.
    """
    n, c, _, _ = x.shape
    patches, (oh, ow) = im2col_view(x, kh, kw, stride, pad)
    cols_shape = (n, c * kh * kw, oh * ow)
    if out is None:
        out = np.empty(cols_shape, dtype=x.dtype)
    elif out.shape != cols_shape or out.dtype != x.dtype:
        raise ValueError(
            f"out has shape {out.shape}/{out.dtype}, expected {cols_shape}/{x.dtype}"
        )
    out.reshape(n, c, kh, kw, oh, ow)[...] = patches
    return out, (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image.

    ``cols`` has shape ``(N, C*KH*KW, OH*OW)``.  Overlapping patches sum,
    which is exactly the backward pass of the unfold.  When the windows
    cannot overlap (``stride >= kernel``, which includes every 1×1
    convolution) each image pixel receives at most one column element, so
    the scatter-add collapses to a single vectorised assignment into a
    strided view — bitwise identical to the general loop, since adding one
    term to zero is exact.
    """
    n, c, h, w = x_shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    if stride >= kh and stride >= kw:
        # Non-overlapping fast branch: one strided scatter, no loop.
        sn, sc, sh, sw = out.strides
        target = np.lib.stride_tricks.as_strided(
            out,
            shape=(n, c, kh, kw, oh, ow),
            strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        )
        target[...] = cols6
    else:
        # Scatter-add per kernel offset: KH*KW slice-adds, fully vectorised.
        for i in range(kh):
            hi = i + stride * oh
            for j in range(kw):
                wj = j + stride * ow
                out[:, :, i:hi:stride, j:wj:stride] += cols6[:, :, i, j, :, :]
    if pad > 0:
        out = out[:, :, pad:-pad, pad:-pad]
    return out


class Conv2D(Module):
    """Standard 2-D convolution with optional grouping.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts; ``out_channels`` must be divisible by ``groups`` and
        ``in_channels`` as well (AlexNet's original two-tower layers use
        ``groups=2``).
    kernel_size, stride, padding:
        Square window geometry.
    bias:
        ResNet convolutions that feed BatchNorm omit the bias.
    fast_paths:
        Enables the 1×1 im2col-free route and workspace reuse.  The general
        route is kept selectable so the parity tests can assert both produce
        bitwise-identical results; production code never disables it.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        weight_init: Initializer = he_normal,
        bias_init: Initializer = zeros,
        rng: np.random.Generator | None = None,
        fast_paths: bool = True,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.fast_paths = bool(fast_paths)
        wshape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(weight_init(wshape, rng))
        self.bias = Parameter(bias_init((out_channels,), rng), weight_decay=0.0) if bias else None
        self._cache: tuple | None = None
        self._workspace = Workspace()

    def output_shape(self, input_shape: Shape) -> Shape:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"{self.name or 'Conv2D'}: expected {self.in_channels} channels, got {c}")
        oh, ow = conv_output_hw(h, w, self.kernel_size, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, oh, ow)

    def flops_per_example(self, input_shape: Shape) -> int:
        _, oh, ow = self.output_shape(input_shape)
        k2cin = self.kernel_size * self.kernel_size * (self.in_channels // self.groups)
        macs = oh * ow * self.out_channels * k2cin
        flops = 2 * macs
        if self.bias is not None:
            flops += oh * ow * self.out_channels
        return flops

    def _is_pointwise(self) -> bool:
        """1×1 unpadded kernels need no patch extraction at all."""
        return self.fast_paths and self.kernel_size == 1 and self.padding == 0

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p, g = self.kernel_size, self.stride, self.padding, self.groups
        cg = c // g
        og = self.out_channels // g
        if self._is_pointwise():
            # The "columns" of a 1×1 kernel are the input pixels themselves
            # (stride just subsamples them) — no im2col copy.
            oh, ow = conv_output_hw(h, w, k, k, s, p)
            xs = x if s == 1 else x[:, :, ::s, ::s]
            cols_g = xs.reshape(n, g, cg, oh * ow)
        else:
            oh, ow = conv_output_hw(h, w, k, k, s, p)
            out_buf = (
                self._workspace.get("cols", (n, c * k * k, oh * ow), x.dtype)
                if self.fast_paths
                else None
            )
            cols, _ = im2col(x, k, k, s, p, out=out_buf)
            cols_g = cols.reshape(n, g, cg * k * k, oh * ow)
        w2 = self.weight.data.reshape(g, og, cg * k * k)
        # (1, g, og, ckk) @ (n, g, ckk, L) -> (n, g, og, L): BLAS batched GEMM.
        out = np.matmul(w2[None], cols_g)
        out = out.reshape(n, self.out_channels, oh, ow)
        if self.bias is not None:
            out += self.bias.data[None, :, None, None]
        self._cache = (x.shape, cols_g, (oh, ow))
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols_g, (oh, ow) = self._cache
        n = x_shape[0]
        k, s, p, g = self.kernel_size, self.stride, self.padding, self.groups
        cg = self.in_channels // g
        og = self.out_channels // g
        ckk = cols_g.shape[2]
        span = oh * ow
        go = grad_out.reshape(n, g, og, span)
        w2 = self.weight.data.reshape(g, og, ckk)
        if n * g * og * ckk * span <= _BATCHED_MATMUL_MAX_MACS:
            # Fold the batch into the GEMM columns: one (og × nL)·(nL × ckk)
            # product per group beats einsum's dispatch overhead here.
            dw = np.matmul(
                go.transpose(1, 2, 0, 3).reshape(g, og, n * span),
                cols_g.transpose(1, 0, 3, 2).reshape(g, n * span, ckk),
            )
            dcols = np.matmul(w2.transpose(0, 2, 1)[None], go)
        else:
            # Large problems: einsum's contraction order wins; the path is
            # memoised per shape so only the first call pays for planning.
            dw = cached_einsum("ngol,ngcl->goc", go, cols_g)
            dcols = cached_einsum("goc,ngol->ngcl", w2, go)
        self.weight.grad += dw.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=(0, 2, 3))
        self._cache = None
        if self._is_pointwise():
            # Adjoint of the strided subsampling: no col2im needed.
            if s == 1:
                return dcols.reshape(x_shape)
            dx = np.zeros(x_shape, dtype=dcols.dtype)
            dx[:, :, ::s, ::s] = dcols.reshape(n, self.in_channels, oh, ow)
            return dx
        dcols = dcols.reshape(n, self.in_channels * k * k, span)
        return col2im(dcols, x_shape, k, k, s, p)
