"""Layer library for the numpy DNN substrate."""

from .activations import ReLU, Sigmoid, Tanh
from .base import Module, Sequential
from .branch import ConcatBranches
from .conv import Conv2D, col2im, conv_output_hw, im2col
from .dense import Dense
from .dropout import Dropout
from .norm import BatchNorm, LocalResponseNorm, SyncBatchNorm
from .pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .reshape import Flatten
from .residual import Residual

__all__ = [
    "Module",
    "Sequential",
    "ConcatBranches",
    "Conv2D",
    "Dense",
    "Dropout",
    "BatchNorm",
    "SyncBatchNorm",
    "LocalResponseNorm",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "Residual",
    "im2col",
    "col2im",
    "conv_output_hw",
]
