"""Loss functions.

Losses follow the same forward/backward convention as layers but take the
targets at forward time and return a scalar mean loss; ``backward`` returns
the gradient w.r.t. the logits for the *mean* loss, so gradients of a batch
of size B are automatically ``1/B``-scaled — the convention the linear
scaling rule (Goyal et al. 2017) and LARS both assume.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SoftmaxCrossEntropy", "softmax", "log_softmax"]


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax, numerically stabilised by max subtraction."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax."""
    return np.exp(log_softmax(logits))


class SoftmaxCrossEntropy:
    """Mean softmax cross-entropy over a batch with integer class targets.

    Supports optional label smoothing (an extension knob; the paper itself
    trains without it, smoothing defaults to 0).
    """

    #: bound memory context (mirrors ``Module._memory``; see repro.nn.memory)
    _memory = None

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = float(label_smoothing)
        self._cache: tuple | None = None

    def bind_memory(self, memory) -> "SoftmaxCrossEntropy":
        """Bind a memory context: logits-sized buffers become arena slots."""
        self._memory = memory
        return self

    def unbind_memory(self) -> "SoftmaxCrossEntropy":
        vars(self).pop("_memory", None)
        return self

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.int64)
        n, k = logits.shape
        if targets.shape != (n,):
            raise ValueError(f"targets shape {targets.shape} != ({n},)")
        if n == 0:
            # empty shard on a rank that must still participate in the
            # collective forward/backward (SyncBatchNorm): zero loss,
            # zero gradient
            self._cache = (np.zeros((0, k)), targets)
            return 0.0
        if targets.min() < 0 or targets.max() >= k:
            raise ValueError("target class out of range")
        mem = self._memory
        if mem is None:
            logp = log_softmax(logits)
        else:
            # log_softmax with the identical op sequence, into reusable buffers
            logp = mem.slot(self, "logp", (n, k), np.float64)
            np.subtract(logits, logits.max(axis=1, keepdims=True), out=logp)
            t = mem.scratch((n, k), np.float64)
            np.exp(logp, out=t)
            s = t.sum(axis=1, keepdims=True)
            np.log(s, out=s)
            logp -= s
            mem.release(t)
        eps = self.label_smoothing
        nll = -logp[np.arange(n), targets]
        if eps > 0.0:
            uniform = -logp.mean(axis=1)
            loss = (1.0 - eps) * nll + eps * uniform
        else:
            loss = nll
        self._cache = (logp, targets)
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        logp, targets = self._cache
        n, k = logp.shape
        if n == 0:
            self._cache = None
            return np.zeros((0, k))
        eps = self.label_smoothing
        mem = self._memory
        if mem is None:
            probs = np.exp(logp)
            target_dist = np.full((n, k), eps / k)
            target_dist[np.arange(n), targets] += 1.0 - eps
            grad = (probs - target_dist) / n
            self._cache = None
            return grad
        probs = mem.scratch((n, k), np.float64)
        np.exp(logp, out=probs)
        target_dist = mem.scratch((n, k), np.float64)
        target_dist[...] = eps / k
        target_dist[np.arange(n), targets] += 1.0 - eps
        grad = mem.slot(self, "dlogits", (n, k), np.float64)
        np.subtract(probs, target_dist, out=grad)
        grad /= n
        mem.release(target_dist)
        mem.release(probs)
        self._cache = None
        return grad

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)
