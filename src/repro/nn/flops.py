"""Parameter and flop accounting (Table 6 and the paper's headline math).

The paper's communication analysis rests on two per-model constants:

* communication per iteration ∝ model size |W| (number of parameters), and
* computation per image = forward flops per image (Table 6 quotes ~1.5 Gflop
  for AlexNet and ~7.7 Gflop for a 225×225 ResNet-50 image).

The "scaling ratio" comp/comm (flops per image / parameters) is what makes
ResNet-50 ~12.5× easier to scale than AlexNet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layers.base import Module, Shape

__all__ = [
    "ModelCost",
    "count_parameters",
    "forward_flops_per_image",
    "training_flops",
    "scaling_ratio",
    "model_cost",
    "activation_elements_per_example",
    "BYTES_PER_PARAM_FP32",
    "FWD_BWD_FLOP_FACTOR",
]

#: single-precision storage, the paper's arithmetic of record
BYTES_PER_PARAM_FP32 = 4

#: conventional estimate: backward ≈ 2× forward flops, so a training step is
#: ~3× the forward cost (Goyal et al. use the same convention)
FWD_BWD_FLOP_FACTOR = 3


@dataclass(frozen=True)
class ModelCost:
    """Static cost profile of a model at a given input resolution."""

    name: str
    parameters: int
    flops_per_image: int  # forward only
    input_shape: Shape

    @property
    def model_bytes(self) -> int:
        """Size of one parameter set (== one gradient message) in bytes."""
        return self.parameters * BYTES_PER_PARAM_FP32

    @property
    def scaling_ratio(self) -> float:
        """comp/comm ratio: forward flops per image / parameter count."""
        return self.flops_per_image / self.parameters

    def training_flops(self, n_images: int, epochs: int) -> int:
        """Total training flops at fixed epochs — independent of batch size."""
        return FWD_BWD_FLOP_FACTOR * self.flops_per_image * n_images * epochs


def count_parameters(model: Module) -> int:
    """Total trainable scalar count of ``model``."""
    return model.num_parameters()


def forward_flops_per_image(model: Module, input_shape: Shape) -> int:
    """Forward flops to process a single example."""
    return model.flops_per_example(tuple(input_shape))


def training_flops(
    model: Module, input_shape: Shape, n_images: int, epochs: int
) -> int:
    """Total flops for ``epochs`` passes over ``n_images`` examples.

    Fixing epochs fixes this number regardless of batch size — the premise of
    Figure 6.
    """
    return FWD_BWD_FLOP_FACTOR * forward_flops_per_image(model, input_shape) * n_images * epochs


def scaling_ratio(model: Module, input_shape: Shape) -> float:
    """Computation/communication ratio as defined in Table 6."""
    return forward_flops_per_image(model, input_shape) / count_parameters(model)


def activation_elements_per_example(model: Module, input_shape: Shape) -> int:
    """Scalars of activation storage one example needs through a forward pass.

    Sums every layer's per-example output size (plus the input itself) —
    the training-memory estimate behind Figure 3's out-of-memory point,
    since backprop keeps all of them live.
    """
    from .layers.base import Sequential

    total = int(np.prod(input_shape))
    shape = tuple(input_shape)

    def walk(mod: Module, shape: Shape) -> Shape:
        nonlocal total
        if isinstance(mod, Sequential):
            for child in mod.layers:
                shape = walk(child, shape)
            return shape
        out = mod.output_shape(shape)
        total += int(np.prod(out))
        return out

    walk(model, shape)
    return total


def model_cost(model: Module, input_shape: Shape, name: str = "") -> ModelCost:
    """Bundle the static cost numbers the performance model consumes."""
    return ModelCost(
        name=name or type(model).__name__,
        parameters=count_parameters(model),
        flops_per_image=forward_flops_per_image(model, input_shape),
        input_shape=tuple(input_shape),
    )
