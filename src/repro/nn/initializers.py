"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so that a
model replicated onto P simulated workers is bit-identical everywhere — the
prerequisite for the sequential-consistency tests in ``tests/cluster``.

The schemes match what the paper's stacks used: Caffe's ``gaussian`` /
``xavier`` fillers for AlexNet and MSRA (He) initialisation for ResNet.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Initializer",
    "zeros",
    "ones",
    "constant",
    "gaussian",
    "uniform",
    "xavier",
    "he_normal",
    "he_uniform",
    "lecun_normal",
    "fan_in_out",
]

Initializer = Callable[[Sequence[int], np.random.Generator], np.ndarray]


def fan_in_out(shape: Sequence[int]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional shapes.

    Dense weights are ``(in, out)``; convolution weights are
    ``(out_channels, in_channels, kh, kw)`` following Caffe's layout.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    fan_out = shape[0] * receptive
    fan_in = shape[1] * receptive
    return fan_in, fan_out


def zeros(shape: Sequence[int], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros filler (the default bias initialiser)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Sequence[int], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-ones filler (BatchNorm scale)."""
    return np.ones(shape, dtype=np.float64)


def constant(value: float) -> Initializer:
    """Caffe-style constant filler (AlexNet initialises some biases to 0.1)."""

    def init(shape: Sequence[int], rng: np.random.Generator | None = None) -> np.ndarray:
        return np.full(shape, float(value), dtype=np.float64)

    return init


def gaussian(std: float = 0.01, mean: float = 0.0) -> Initializer:
    """Caffe ``gaussian`` filler with fixed standard deviation."""

    def init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(mean, std, size=tuple(shape)).astype(np.float64)

    return init


def uniform(low: float = -0.05, high: float = 0.05) -> Initializer:
    """Uniform filler over [low, high)."""

    def init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(low, high, size=tuple(shape)).astype(np.float64)

    return init


def xavier(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Caffe ``xavier`` filler: U(−a, a) with a = sqrt(3 / fan_in)."""
    fan_in, _ = fan_in_out(shape)
    a = np.sqrt(3.0 / max(fan_in, 1))
    return rng.uniform(-a, a, size=tuple(shape)).astype(np.float64)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """MSRA initialisation: N(0, sqrt(2 / fan_in)); the ResNet paper's choice."""
    fan_in, _ = fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=tuple(shape)).astype(np.float64)


def he_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He initialisation, uniform variant: U(−a, a), a = sqrt(6/fan_in)."""
    fan_in, _ = fan_in_out(shape)
    a = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-a, a, size=tuple(shape)).astype(np.float64)


def lecun_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """LeCun initialisation: N(0, sqrt(1/fan_in))."""
    fan_in, _ = fan_in_out(shape)
    std = np.sqrt(1.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=tuple(shape)).astype(np.float64)
