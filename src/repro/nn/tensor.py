"""Trainable parameters and gradient bookkeeping.

The framework is deliberately eager and explicit: every layer owns
:class:`Parameter` objects, ``forward`` caches what ``backward`` needs, and
``backward`` accumulates gradients into ``Parameter.grad``.  There is no
autograd tape — backprop is hand-derived per layer and verified by
finite-difference checks in ``repro.nn.gradcheck``.

Gradients accumulate (``+=``) rather than overwrite so a parameter that is
shared between layers, or a batch that is processed in several micro-batch
chunks, sums its contributions exactly the way a large-batch step requires.
Call :meth:`Parameter.zero_grad` (or ``Module.zero_grad``) between steps.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter", "Workspace", "cached_einsum"]

# einsum recomputes its contraction path on every call; for the small
# per-layer contractions of the proxy models that bookkeeping rivals the
# arithmetic.  Paths depend only on (equation, operand shapes), so they are
# memoised here and shared by every layer.
_EINSUM_PATHS: dict[tuple, list] = {}


def cached_einsum(equation: str, *operands: np.ndarray, out: np.ndarray | None = None):
    """``np.einsum`` with the contraction path memoised per (equation, shapes).

    Numerically identical to ``np.einsum(..., optimize=True)`` — the path
    only chooses the order of pairwise contractions, and for a fixed key the
    same path is replayed every call.
    """
    key = (equation,) + tuple(op.shape for op in operands)
    path = _EINSUM_PATHS.get(key)
    if path is None:
        path = np.einsum_path(equation, *operands, optimize=True)[0]
        _EINSUM_PATHS[key] = path
    return np.einsum(equation, *operands, optimize=path, out=out)


class Workspace:
    """Reusable scratch buffers keyed by (tag, shape, dtype).

    Hot-path kernels (``im2col`` columns, flattened gradient buckets) fill
    the same-shaped temporary every iteration; allocating it fresh each time
    pays page-fault and allocator cost proportional to the buffer size.  A
    workspace hands back the *same* array on every request with a matching
    key, so steady-state iterations allocate nothing.

    Buffers are returned uninitialised (like ``np.empty``) and must be fully
    overwritten by the caller.  Not thread-safe; simulated ranks each own
    their model, and each model layer owns its workspace.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}

    def get(self, tag: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Return a reusable uninitialised array of ``shape``/``dtype``."""
        key = (tag, shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            buf = self._buffers[key] = np.empty(shape, dtype=dtype)
        return buf

    def clear(self) -> None:
        """Drop every cached buffer (frees the memory)."""
        self._buffers.clear()


class Parameter:
    """A named trainable array with an accumulated gradient.

    Parameters
    ----------
    data:
        Initial value.  Stored as ``float64`` by default; the simulated
        cluster relies on deterministic, well-conditioned arithmetic and the
        paper's single-precision claims are modelled in ``repro.perfmodel``
        rather than by degrading numerics here.
    name:
        Dotted path assigned by the owning module tree (e.g.
        ``"features.0.weight"``).  Used by optimisers for per-layer rules
        (LARS excludes biases/BN params via the name) and by the cluster
        layer for deterministic parameter ordering.
    weight_decay:
        Per-parameter multiplier applied to the global weight-decay
        coefficient.  The paper's recipes (and the reference LARS
        implementation) do not decay biases or BatchNorm scale/shift, which
        layers express by constructing those parameters with
        ``weight_decay=0.0``.
    """

    __slots__ = ("data", "grad", "name", "weight_decay")

    def __init__(self, data: np.ndarray, name: str = "", weight_decay: float = 1.0):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.weight_decay = float(weight_decay)

    # -- gradient management -------------------------------------------------
    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero (in place)."""
        self.grad[...] = 0.0

    def accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient (micro-batch accumulation)."""
        self.grad += grad

    # -- introspection -------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of trainable scalars."""
        return self.data.size

    def copy(self) -> "Parameter":
        """Deep copy (used by workers to replicate the model)."""
        p = Parameter(self.data.copy(), name=self.name, weight_decay=self.weight_decay)
        p.grad = self.grad.copy()
        return p

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Parameter(name={self.name!r}, shape={self.data.shape}, wd={self.weight_decay})"
