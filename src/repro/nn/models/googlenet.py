"""GoogLeNet / Inception-v1 (Szegedy et al. 2015).

FireCaffe — the related-work system the paper's introduction starts from —
demonstrated cluster-scale training on GoogLeNet (128 K20s, batch 1K), so
the model zoo carries it too: the full 224×224 architecture for cost
accounting (≈6.8 M parameters, ≈3 Gflop/image — an even more extreme
comp/comm ratio than ResNet-50) plus a width-scaled micro variant.

The auxiliary classifier heads are omitted (they only matter for the
original's vanishing-gradient workaround; parameter/flop accounting of the
main tower matches the numbers used in scaling discussions).
"""

from __future__ import annotations

import numpy as np

from ..initializers import xavier
from ..layers import (
    BatchNorm,
    ConcatBranches,
    Conv2D,
    Dense,
    Dropout,
    GlobalAvgPool2D,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Sequential,
)

__all__ = ["googlenet", "micro_googlenet", "inception_module"]


def _conv_relu(in_c, out_c, k, stride, pad, rng) -> list:
    return [
        Conv2D(in_c, out_c, k, stride=stride, padding=pad,
               weight_init=xavier, rng=rng),
        ReLU(),
    ]


def inception_module(
    in_c: int,
    c1: int,
    c3r: int,
    c3: int,
    c5r: int,
    c5: int,
    pool_proj: int,
    rng: np.random.Generator,
) -> ConcatBranches:
    """One Inception block: 1×1 / 3×3(reduced) / 5×5(reduced) / pool-proj."""
    return ConcatBranches(
        Sequential(*_conv_relu(in_c, c1, 1, 1, 0, rng)),
        Sequential(*_conv_relu(in_c, c3r, 1, 1, 0, rng),
                   *_conv_relu(c3r, c3, 3, 1, 1, rng)),
        Sequential(*_conv_relu(in_c, c5r, 1, 1, 0, rng),
                   *_conv_relu(c5r, c5, 5, 1, 2, rng)),
        Sequential(MaxPool2D(3, 1, padding=1),
                   *_conv_relu(in_c, pool_proj, 1, 1, 0, rng)),
    )


#: (c1, c3r, c3, c5r, c5, pool_proj) per inception block, Szegedy Table 1
_INCEPTION_CFG = [
    ("3a", 64, 96, 128, 16, 32, 32),
    ("3b", 128, 128, 192, 32, 96, 64),
    ("pool", None, None, None, None, None, None),
    ("4a", 192, 96, 208, 16, 48, 64),
    ("4b", 160, 112, 224, 24, 64, 64),
    ("4c", 128, 128, 256, 24, 64, 64),
    ("4d", 112, 144, 288, 32, 64, 64),
    ("4e", 256, 160, 320, 32, 128, 128),
    ("pool", None, None, None, None, None, None),
    ("5a", 256, 160, 320, 32, 128, 128),
    ("5b", 384, 192, 384, 48, 128, 128),
]


def googlenet(num_classes: int = 1000, dropout: float = 0.4, seed: int = 0) -> Sequential:
    """Full Inception-v1 main tower for 3×224×224 inputs (~6.8 M params)."""
    rng = np.random.default_rng(seed)
    layers: list = [
        *_conv_relu(3, 64, 7, 2, 3, rng),
        MaxPool2D(3, 2, padding=1),
        LocalResponseNorm(),
        *_conv_relu(64, 64, 1, 1, 0, rng),
        *_conv_relu(64, 192, 3, 1, 1, rng),
        LocalResponseNorm(),
        MaxPool2D(3, 2, padding=1),
    ]
    in_c = 192
    for name, c1, c3r, c3, c5r, c5, pp in _INCEPTION_CFG:
        if name == "pool":
            layers.append(MaxPool2D(3, 2, padding=1))
            continue
        layers.append(inception_module(in_c, c1, c3r, c3, c5r, c5, pp, rng))
        in_c = c1 + c3 + c5 + pp
    layers += [GlobalAvgPool2D()]
    if dropout > 0:
        layers += [Dropout(dropout, rng=np.random.default_rng(seed + 1))]
    layers += [Dense(in_c, num_classes, rng=rng)]
    model = Sequential(*layers)
    model.assign_names("googlenet")
    return model


def micro_googlenet(
    num_classes: int = 10,
    in_channels: int = 3,
    width: int = 8,
    seed: int = 0,
) -> Sequential:
    """Width-scaled Inception proxy: stem + two inception blocks + head."""
    rng = np.random.default_rng(seed)
    w = width
    layers: list = [
        Conv2D(in_channels, 2 * w, 3, padding=1, weight_init=xavier, rng=rng),
        BatchNorm(2 * w),
        ReLU(),
        MaxPool2D(2, 2),
        inception_module(2 * w, w, w, 2 * w, w // 2 or 1, w, w, rng),
    ]
    in_c = w + 2 * w + w + w
    layers += [
        MaxPool2D(2, 2),
        inception_module(in_c, 2 * w, w, 2 * w, w // 2 or 1, w, w, rng),
    ]
    in_c = 2 * w + 2 * w + w + w
    layers += [GlobalAvgPool2D(), Dense(in_c, num_classes, rng=rng)]
    model = Sequential(*layers)
    model.assign_names("micro_googlenet")
    return model
