"""AlexNet variants.

Three flavours are provided:

* :func:`alexnet` — Caffe's ``bvlc_alexnet`` (single column, grouped conv2/4/5,
  LRN after conv1/conv2).  ~61 M parameters / ~1.5 Gflop per 227×227 image,
  the numbers Table 6 quotes.
* :func:`alexnet_bn` — B. Ginsburg's refined model the paper uses for batch
  size 32K: every LRN is removed and BatchNorm is inserted after each
  convolution (the paper: "we changed local response norm in AlexNet to
  batch norm").
* :func:`micro_alexnet` — a width/resolution-scaled member of the same family
  (conv → norm → ReLU → pool stacks feeding a dropout-regularised MLP head)
  used for the laptop-scale convergence experiments.  ``norm`` selects
  ``"lrn"``/``"bn"``/``"none"`` so the Table 5 vs Table 7 contrast (plain
  AlexNet vs AlexNet-BN) can be reproduced at proxy scale.
"""

from __future__ import annotations

import numpy as np

from ..initializers import constant, gaussian, zeros
from ..layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Sequential,
)

__all__ = ["alexnet", "alexnet_bn", "micro_alexnet"]


def _alexnet_trunk(rng: np.random.Generator, batch_norm: bool) -> list:
    """Shared conv trunk; ``batch_norm`` switches LRN → BN per the paper."""

    def norm(channels: int, after_early_conv: bool):
        if batch_norm:
            return [BatchNorm(channels)]
        # original AlexNet applies LRN only after conv1 and conv2
        return [LocalResponseNorm(size=5, alpha=1e-4, beta=0.75)] if after_early_conv else []

    g = gaussian(0.01)
    layers: list = []
    # conv1: 96 x 11x11 / 4
    layers += [Conv2D(3, 96, 11, stride=4, weight_init=g, rng=rng, bias=not batch_norm)]
    layers += norm(96, True)
    layers += [ReLU(), MaxPool2D(3, 2)]
    # conv2: 256 x 5x5 pad 2, groups 2
    layers += [
        Conv2D(96, 256, 5, padding=2, groups=2, weight_init=g,
               bias_init=constant(0.1) if not batch_norm else zeros,
               rng=rng, bias=not batch_norm)
    ]
    layers += norm(256, True)
    layers += [ReLU(), MaxPool2D(3, 2)]
    # conv3/4/5
    layers += [Conv2D(256, 384, 3, padding=1, weight_init=g, rng=rng, bias=not batch_norm)]
    layers += norm(384, False)
    layers += [ReLU()]
    layers += [
        Conv2D(384, 384, 3, padding=1, groups=2, weight_init=g,
               bias_init=constant(0.1) if not batch_norm else zeros,
               rng=rng, bias=not batch_norm)
    ]
    layers += norm(384, False)
    layers += [ReLU()]
    layers += [
        Conv2D(384, 256, 3, padding=1, groups=2, weight_init=g,
               bias_init=constant(0.1) if not batch_norm else zeros,
               rng=rng, bias=not batch_norm)
    ]
    layers += norm(256, False)
    layers += [ReLU(), MaxPool2D(3, 2)]
    return layers


def _alexnet_head(
    rng: np.random.Generator, in_features: int, num_classes: int, dropout: float
) -> list:
    g005 = gaussian(0.005)
    g001 = gaussian(0.01)
    layers: list = [Flatten()]
    layers += [Dense(in_features, 4096, weight_init=g005, bias_init=constant(0.1), rng=rng), ReLU()]
    if dropout > 0:
        layers += [Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))]
    layers += [Dense(4096, 4096, weight_init=g005, bias_init=constant(0.1), rng=rng), ReLU()]
    if dropout > 0:
        layers += [Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))]
    layers += [Dense(4096, num_classes, weight_init=g001, rng=rng)]
    return layers


def alexnet(
    num_classes: int = 1000,
    dropout: float = 0.5,
    seed: int = 0,
) -> Sequential:
    """Full-size Caffe AlexNet for 3×227×227 inputs (~61 M parameters)."""
    rng = np.random.default_rng(seed)
    trunk = _alexnet_trunk(rng, batch_norm=False)
    model = Sequential(*trunk)
    feat = int(np.prod(model.output_shape((3, 227, 227))))
    for layer in _alexnet_head(rng, feat, num_classes, dropout):
        model.append(layer)
    model.assign_names("alexnet")
    return model


def alexnet_bn(
    num_classes: int = 1000,
    dropout: float = 0.5,
    seed: int = 0,
) -> Sequential:
    """AlexNet-BN (Ginsburg's refined model): BN after every convolution."""
    rng = np.random.default_rng(seed)
    trunk = _alexnet_trunk(rng, batch_norm=True)
    model = Sequential(*trunk)
    feat = int(np.prod(model.output_shape((3, 227, 227))))
    for layer in _alexnet_head(rng, feat, num_classes, dropout):
        model.append(layer)
    model.assign_names("alexnet_bn")
    return model


def micro_alexnet(
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 32,
    width: int = 16,
    hidden: int = 128,
    norm: str = "bn",
    dropout: float = 0.0,
    seed: int = 0,
) -> Sequential:
    """Width/resolution-scaled AlexNet-family proxy for laptop training.

    Architecture: two conv→norm→ReLU→pool stages and one conv→norm→ReLU
    stage (mirroring AlexNet's 5-conv trunk compressed to 3), then the
    dropout-regularised two-layer MLP head.  ``norm``:

    * ``"lrn"`` — plays the role of the original AlexNet (Table 5 regime),
    * ``"bn"``  — plays AlexNet-BN (Table 7 / batch-32K regime),
    * ``"none"`` — ablation.
    """
    if norm not in ("lrn", "bn", "none"):
        raise ValueError(f"unknown norm {norm!r}")
    rng = np.random.default_rng(seed)

    def norm_layers(channels: int) -> list:
        if norm == "bn":
            return [BatchNorm(channels)]
        if norm == "lrn":
            return [LocalResponseNorm(size=5)]
        return []

    layers: list = []
    c = in_channels
    for stage, (out_c, pool) in enumerate(
        [(width, True), (2 * width, True), (2 * width, False)]
    ):
        layers += [Conv2D(c, out_c, 3, padding=1, rng=rng, bias=(norm != "bn"))]
        layers += norm_layers(out_c)
        layers += [ReLU()]
        if pool:
            layers += [MaxPool2D(2, 2)]
        c = out_c
    model = Sequential(*layers)
    feat = int(np.prod(model.output_shape((in_channels, image_size, image_size))))
    model.append(Flatten())
    model.append(Dense(feat, hidden, rng=rng))
    model.append(ReLU())
    if dropout > 0:
        model.append(Dropout(dropout, rng=np.random.default_rng(seed + 1)))
    model.append(Dense(hidden, num_classes, rng=rng))
    model.assign_names("micro_alexnet")
    return model
