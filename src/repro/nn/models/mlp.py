"""Small multilayer perceptrons — used heavily by the test-suite and by the
sequential-consistency experiments, where a tiny deterministic model makes
bitwise comparisons cheap."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..layers import BatchNorm, Dense, Flatten, ReLU, Sequential, SyncBatchNorm

__all__ = ["mlp"]


def mlp(
    in_features: int,
    hidden: Sequence[int],
    num_classes: int,
    batch_norm: bool | str = False,
    flatten_input: bool = False,
    seed: int = 0,
) -> Sequential:
    """Fully-connected classifier ``in → hidden… → num_classes``.

    Parameters
    ----------
    flatten_input:
        Prepend a Flatten layer so image-shaped batches can be fed directly.
    batch_norm:
        ``True`` inserts BatchNorm after every hidden affine layer;
        ``"sync"`` inserts :class:`SyncBatchNorm` (cross-rank statistics on
        a simulated cluster, plain BN when run serially).
    """
    if batch_norm not in (False, True, "sync"):
        raise ValueError(f"batch_norm must be False, True or 'sync', got {batch_norm!r}")
    rng = np.random.default_rng(seed)
    layers: list = [Flatten()] if flatten_input else []
    prev = in_features
    for h in hidden:
        layers.append(Dense(prev, h, rng=rng))
        if batch_norm == "sync":
            layers.append(SyncBatchNorm(h))
        elif batch_norm:
            layers.append(BatchNorm(h))
        layers.append(ReLU())
        prev = h
    layers.append(Dense(prev, num_classes, rng=rng))
    model = Sequential(*layers)
    model.assign_names("mlp")
    return model
