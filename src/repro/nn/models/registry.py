"""Model registry: names → constructors, plus the static cost profiles the
performance model uses for the full-size paper models (Table 6)."""

from __future__ import annotations

from typing import Callable

from ..flops import ModelCost, model_cost
from ..layers import Sequential
from .alexnet import alexnet, alexnet_bn, micro_alexnet
from .googlenet import googlenet, micro_googlenet
from .mlp import mlp
from .resnet import micro_resnet, resnet18, resnet34, resnet50

__all__ = ["MODELS", "build_model", "paper_model_cost", "PAPER_INPUT_SHAPES"]

MODELS: dict[str, Callable[..., Sequential]] = {
    "alexnet": alexnet,
    "alexnet_bn": alexnet_bn,
    "googlenet": googlenet,
    "micro_googlenet": micro_googlenet,
    "micro_alexnet": micro_alexnet,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "resnet50": resnet50,
    "micro_resnet": micro_resnet,
    "mlp": mlp,
}

#: input resolutions the paper's flop numbers refer to
PAPER_INPUT_SHAPES = {
    "alexnet": (3, 227, 227),
    "alexnet_bn": (3, 227, 227),
    "googlenet": (3, 224, 224),
    "resnet18": (3, 224, 224),
    "resnet34": (3, 224, 224),
    "resnet50": (3, 224, 224),
}

_COST_CACHE: dict[str, ModelCost] = {}


def build_model(name: str, **kwargs) -> Sequential:
    """Instantiate a registered model by name."""
    if name not in MODELS:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODELS)}")
    return MODELS[name](**kwargs)


def paper_model_cost(name: str) -> ModelCost:
    """Cost profile (params, flops/image) of a full-size paper model.

    Instantiating ResNet-50 just to count flops is wasteful, so results are
    cached per process.
    """
    if name not in PAPER_INPUT_SHAPES:
        raise KeyError(f"{name!r} is not a full-size paper model")
    if name not in _COST_CACHE:
        model = build_model(name)
        _COST_CACHE[name] = model_cost(model, PAPER_INPUT_SHAPES[name], name=name)
    return _COST_CACHE[name]
