"""ResNet family (He et al. 2016).

* :func:`resnet50` / :func:`resnet18` / :func:`resnet34` — full-size ImageNet
  architectures.  ResNet-50 comes out at ~25.5 M parameters and ~7.7 Gflop
  per 224×224 image, matching Table 6.
* :func:`micro_resnet` — a CIFAR-style member of the family (3 stages of
  basic blocks, width-scalable) used for the laptop-scale convergence
  experiments (Figures 1/4 and Table 10 proxies).
"""

from __future__ import annotations

import numpy as np

from ..initializers import he_normal
from ..layers import (
    BatchNorm,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    MaxPool2D,
    ReLU,
    Residual,
    Sequential,
)

__all__ = ["resnet18", "resnet34", "resnet50", "micro_resnet"]


def _conv_bn(
    in_c: int, out_c: int, k: int, stride: int, pad: int, rng: np.random.Generator
) -> list:
    """conv (no bias) followed by BN — ResNet's atomic unit."""
    return [
        Conv2D(in_c, out_c, k, stride=stride, padding=pad, bias=False,
               weight_init=he_normal, rng=rng),
        BatchNorm(out_c),
    ]


def _basic_block(in_c: int, out_c: int, stride: int, rng: np.random.Generator) -> Residual:
    """Two 3×3 convolutions (ResNet-18/34 and the CIFAR variant)."""
    branch = Sequential(
        *_conv_bn(in_c, out_c, 3, stride, 1, rng),
        ReLU(),
        *_conv_bn(out_c, out_c, 3, 1, 1, rng),
    )
    shortcut = None
    if stride != 1 or in_c != out_c:
        shortcut = Sequential(*_conv_bn(in_c, out_c, 1, stride, 0, rng))
    return Residual(branch, shortcut)


def _bottleneck_block(
    in_c: int, mid_c: int, stride: int, rng: np.random.Generator, expansion: int = 4
) -> Residual:
    """1×1 reduce → 3×3 → 1×1 expand (ResNet-50/101/152)."""
    out_c = mid_c * expansion
    branch = Sequential(
        *_conv_bn(in_c, mid_c, 1, 1, 0, rng),
        ReLU(),
        *_conv_bn(mid_c, mid_c, 3, stride, 1, rng),
        ReLU(),
        *_conv_bn(mid_c, out_c, 1, 1, 0, rng),
    )
    shortcut = None
    if stride != 1 or in_c != out_c:
        shortcut = Sequential(*_conv_bn(in_c, out_c, 1, stride, 0, rng))
    return Residual(branch, shortcut)


def _imagenet_resnet(
    stage_blocks: list[int],
    bottleneck: bool,
    num_classes: int,
    seed: int,
    name: str,
) -> Sequential:
    rng = np.random.default_rng(seed)
    layers: list = [
        *_conv_bn(3, 64, 7, 2, 3, rng),
        ReLU(),
        MaxPool2D(3, 2, padding=1),
    ]
    widths = [64, 128, 256, 512]
    expansion = 4 if bottleneck else 1
    in_c = 64
    for stage, (n_blocks, mid_c) in enumerate(zip(stage_blocks, widths)):
        for b in range(n_blocks):
            stride = 2 if (stage > 0 and b == 0) else 1
            if bottleneck:
                layers.append(_bottleneck_block(in_c, mid_c, stride, rng, expansion))
                in_c = mid_c * expansion
            else:
                layers.append(_basic_block(in_c, mid_c, stride, rng))
                in_c = mid_c
    layers += [GlobalAvgPool2D(), Dense(in_c, num_classes, rng=rng)]
    model = Sequential(*layers)
    model.assign_names(name)
    return model


def resnet18(num_classes: int = 1000, seed: int = 0) -> Sequential:
    """ResNet-18 for 3×224×224 inputs (~11.7 M parameters)."""
    return _imagenet_resnet([2, 2, 2, 2], False, num_classes, seed, "resnet18")


def resnet34(num_classes: int = 1000, seed: int = 0) -> Sequential:
    """ResNet-34 for 3×224×224 inputs (~21.8 M parameters)."""
    return _imagenet_resnet([3, 4, 6, 3], False, num_classes, seed, "resnet34")


def resnet50(num_classes: int = 1000, seed: int = 0) -> Sequential:
    """ResNet-50 for 3×224×224 inputs (~25.5 M parameters, ~7.7 Gflop/image)."""
    return _imagenet_resnet([3, 4, 6, 3], True, num_classes, seed, "resnet50")


def micro_resnet(
    num_classes: int = 10,
    in_channels: int = 3,
    width: int = 8,
    blocks_per_stage: int = 1,
    seed: int = 0,
) -> Sequential:
    """CIFAR-style ResNet proxy: 3 stages of basic blocks, widths w/2w/4w.

    ``width=16, blocks_per_stage=3`` is the classic ResNet-20; the defaults
    are smaller still for fast laptop runs.  Expects square inputs of at
    least 8×8 (three stride-2 stages with a stem that keeps resolution).
    """
    rng = np.random.default_rng(seed)
    layers: list = [*_conv_bn(in_channels, width, 3, 1, 1, rng), ReLU()]
    in_c = width
    for stage, mid_c in enumerate([width, 2 * width, 4 * width]):
        for b in range(blocks_per_stage):
            stride = 2 if (stage > 0 and b == 0) else 1
            layers.append(_basic_block(in_c, mid_c, stride, rng))
            in_c = mid_c
    layers += [GlobalAvgPool2D(), Dense(in_c, num_classes, rng=rng)]
    model = Sequential(*layers)
    model.assign_names("micro_resnet")
    return model
