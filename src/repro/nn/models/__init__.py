"""Model zoo: the paper's models at full size plus laptop-scale proxies."""

from .alexnet import alexnet, alexnet_bn, micro_alexnet
from .googlenet import googlenet, inception_module, micro_googlenet
from .mlp import mlp
from .registry import MODELS, PAPER_INPUT_SHAPES, build_model, paper_model_cost
from .resnet import micro_resnet, resnet18, resnet34, resnet50

__all__ = [
    "alexnet",
    "alexnet_bn",
    "micro_alexnet",
    "googlenet",
    "micro_googlenet",
    "inception_module",
    "resnet18",
    "resnet34",
    "resnet50",
    "micro_resnet",
    "mlp",
    "MODELS",
    "PAPER_INPUT_SHAPES",
    "build_model",
    "paper_model_cost",
]
