"""Graph-wide memory planning: arena allocator + static activation plan.

Large-batch training ("ImageNet Training in Minutes", You et al. 2018) is
an exercise in per-iteration efficiency: once communication is overlapped
(PR 4), the remaining steady-state tax in this numpy substrate is the
allocator — every layer's ``forward``/``backward`` conjures fresh ndarrays
whose size scales with the global batch.  This module removes that tax:

* :class:`Arena` — a size-bucketed freelist of flat ndarrays.  ``acquire``
  rounds the request up to a power-of-two bucket and reuses a free buffer
  of that bucket when one exists; ``release`` returns a buffer to its
  bucket.  Cumulative ``bytes_allocated``, current ``in_use_bytes`` and
  high-water ``peak_bytes`` make "zero allocations in steady state" a
  checkable invariant rather than a hope.
* :class:`MemoryContext` — the binding between a model and an arena.
  Layers request *slots* (persistent, keyed by ``(module, tag, shape,
  dtype)``: activations, masks, gradient outputs — anything whose lifetime
  crosses a layer-call boundary) and *scratch* (acquired and released
  inside one layer call: GEMM staging, reduction temporaries — these are
  where the freelist earns real reuse, because consecutive layer calls
  recycle the same buckets).
* :class:`MemoryPlan` — a static analyser.  It shape-infers the layer
  graph once (per-layer rules mirror the exact slot/scratch requests the
  buffered code paths make), assigns each buffer a liveness interval in
  forward/backward tick order, and replays the whole request stream
  through a dry-run arena.  Because prediction and measurement share the
  same bucket accounting, the predicted peak is the measured peak — the
  closed-form ``repro.perfmodel.memory`` predictor is pinned to it by
  test.

The escape hatch is simply *not binding*: with no :class:`MemoryContext`
attached, every layer runs its original allocating code path bit-for-bit
unchanged (``static_memory=False``, the default everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import counter as _counter
from ..obs.metrics import gauge as _gauge

__all__ = [
    "Arena",
    "MemoryContext",
    "MemoryPlan",
    "PlannedBuffer",
    "bucket_nbytes",
    "plan_training_step",
]

#: smallest bucket the arena hands out (bytes)
MIN_BUCKET_BYTES = 64

#: cache-coloring stride and cycle length.  Power-of-two buckets come back
#: from the allocator at addresses congruent modulo large powers of two, so
#: without an offset every big buffer maps onto the same cache sets and
#: multi-stream ufuncs thrash (heap-allocated eager temporaries get this
#: stagger for free).  Each fresh bucket is shifted by the next multiple of
#: one page + one cache line, restoring the stagger.
_COLOR_STRIDE_BYTES = 4096 + 64
_COLOR_CYCLE = 16


def bucket_nbytes(nbytes: int) -> int:
    """Round a byte count up to the arena's bucket size (power of two)."""
    if nbytes <= MIN_BUCKET_BYTES:
        return MIN_BUCKET_BYTES
    return 1 << (int(nbytes) - 1).bit_length()


class Arena:
    """Size-bucketed freelist of reusable flat ndarrays.

    Buffers are allocated as flat 1-D arrays of the bucket size and handed
    out as reshaped views of a prefix, so one bucket serves every shape
    that rounds up to it.  ``release`` finds the owning flat buffer by
    walking the view's ``base`` chain — callers hand back exactly the
    array ``acquire`` returned (or a reshape of it).
    """

    def __init__(self) -> None:
        self._free: dict[tuple[np.dtype, int], list] = {}
        # id(flat root) -> [flat, (dtype, bucket), in_use, {shape: view}]
        self._owned: dict[int, list] = {}
        # id(handed-out view) -> the same record.  Views are cached on the
        # record for the buffer's lifetime, so their ids stay unique and
        # ``release`` resolves them with one dict hit instead of a base walk.
        self._recs: dict[int, list] = {}
        self.bytes_allocated = 0  # cumulative, fresh allocations only
        self.pool_bytes = 0  # total owned by the arena
        self.in_use_bytes = 0
        self.peak_bytes = 0
        self.acquires = 0
        self.releases = 0
        self.allocations = 0
        self._color = 0
        # (shape, dtype) -> (freelist key, element count): steady state
        # re-requests the same few signatures every step
        self._sig: dict = {}

    # -- override points shared with the dry-run arena ------------------------
    def _new_flat(self, dt: np.dtype, bucket: int):
        # Big buckets get a page-plus-line color offset; small ones stay
        # within a page, where one cache line of stagger is enough.
        stride = _COLOR_STRIDE_BYTES if bucket >= 65536 else 64
        off = self._color * stride // dt.itemsize
        self._color = (self._color + 1) % _COLOR_CYCLE
        base = np.empty(off + bucket // dt.itemsize, dtype=dt)
        return base[off:]

    def _view(self, flat, shape: tuple, n: int):
        return flat[:n].reshape(shape)

    def _root_of(self, arr):
        base = arr
        while getattr(base, "base", None) is not None:
            base = base.base
        return base

    def _on_alloc(self, bucket: int) -> None:
        _counter("nn.bytes_allocated").inc(bucket)
        _gauge("nn.peak_arena_bytes").set(float(self.peak_bytes))

    # -- allocation interface --------------------------------------------------
    def acquire(self, shape, dtype=np.float64):
        """A writable, uninitialised array of ``shape``/``dtype``."""
        sig = self._sig.get((shape, dtype)) if type(shape) is tuple else None
        if sig is None:
            shape = tuple(int(s) for s in shape)
            dt = np.dtype(dtype)
            n = 1
            for s in shape:
                n *= s
            if n == 0:
                # zero-size arrays (empty shards) cost nothing; don't pool them
                return np.empty(shape, dtype=dt)
            key = (dt, bucket_nbytes(n * dt.itemsize))
            sig = (key, n)
            self._sig[(shape, dtype)] = sig
        key, n = sig
        bucket = key[1]
        self.acquires += 1
        free = self._free.get(key)
        if free:
            rec = free.pop()
            rec[2] = True
            self.in_use_bytes += bucket
            if self.in_use_bytes > self.peak_bytes:
                self.peak_bytes = self.in_use_bytes
            view = rec[3].get(shape)
            if view is None:
                view = self._view(rec[0], shape, n)
                rec[3][shape] = view
                self._recs[id(view)] = rec
            return view
        flat = self._new_flat(key[0], bucket)
        view = self._view(flat, shape, n)
        rec = [flat, key, True, {shape: view}]
        self._recs[id(view)] = rec
        self._owned[id(self._root_of(flat))] = rec
        self.allocations += 1
        self.bytes_allocated += bucket
        self.pool_bytes += bucket
        self.in_use_bytes += bucket
        if self.in_use_bytes > self.peak_bytes:
            self.peak_bytes = self.in_use_bytes
        self._on_alloc(bucket)
        return view

    def release(self, arr) -> None:
        """Return an acquired array's buffer to its freelist."""
        if getattr(arr, "size", 1) == 0:
            return
        rec = self._recs.get(id(arr))
        if rec is None:
            # reshaped handle: resolve through the view's base chain
            rec = self._owned.get(id(self._root_of(arr)))
            if rec is None:
                raise ValueError("array was not acquired from this arena")
        if not rec[2]:
            raise ValueError("double release of an arena buffer")
        rec[2] = False
        key = rec[1]
        # the record keeps rec[0] (the color-offset flat view, not the root
        # allocation), so reacquisitions keep the original coloring offset
        self._free.setdefault(key, []).append(rec)
        self.releases += 1
        self.in_use_bytes -= key[1]

    def stats(self) -> dict:
        """Snapshot of the accounting counters (plain ints)."""
        return {
            "bytes_allocated": self.bytes_allocated,
            "pool_bytes": self.pool_bytes,
            "in_use_bytes": self.in_use_bytes,
            "peak_bytes": self.peak_bytes,
            "acquires": self.acquires,
            "releases": self.releases,
            "allocations": self.allocations,
        }


class _PhantomFlat:
    """Stand-in for a flat buffer in the dry-run arena (no memory)."""

    __slots__ = ()
    base = None


class _PhantomView:
    """Stand-in for an acquired view; remembers its flat owner."""

    __slots__ = ("base", "size")

    def __init__(self, flat: _PhantomFlat, size: int):
        self.base = flat
        self.size = size


class _DryArena(Arena):
    """Arena that performs the full bucket accounting without allocating.

    :class:`MemoryPlan` replays a model's buffer request stream through
    this class, so predicted byte counts use *the same code* as the live
    arena — the predictor cannot drift from the measurement.
    """

    def _new_flat(self, dt, bucket):
        return _PhantomFlat()

    def _view(self, flat, shape, n):
        return _PhantomView(flat, n)

    def _on_alloc(self, bucket):
        pass  # planning must not touch the live metrics registry


class MemoryContext:
    """Binds modules to an :class:`Arena` (see ``Module.bind_memory``).

    ``slot`` returns the persistent buffer for ``(owner, tag, shape,
    dtype)``, acquiring it on first request; slots are never recycled
    while the context lives, so a slot's contents survive from the moment
    a layer writes it until the layer's backward consumes it, with no
    aliasing analysis required.  ``scratch``/``release`` wrap the arena
    for strictly call-scoped temporaries.
    """

    def __init__(self, arena: Arena | None = None):
        self.arena = arena if arena is not None else Arena()
        self._slots: dict = {}

    def slot(self, owner, tag: str, shape, dtype=np.float64):
        key = (id(owner), tag, tuple(shape), np.dtype(dtype))
        buf = self._slots.get(key)
        if buf is None:
            buf = self.arena.acquire(shape, dtype)
            self._slots[key] = buf
        return buf

    def scratch(self, shape, dtype=np.float64):
        return self.arena.acquire(shape, dtype)

    def release(self, buf) -> None:
        self.arena.release(buf)

    def close(self) -> None:
        """Release every slot back to the arena (the pool stays warm)."""
        for buf in self._slots.values():
            self.arena.release(buf)
        self._slots.clear()

    @property
    def bytes_allocated(self) -> int:
        return self.arena.bytes_allocated

    @property
    def peak_bytes(self) -> int:
        return self.arena.peak_bytes


# ---------------------------------------------------------------------------
# Static planning
# ---------------------------------------------------------------------------

_F64 = np.dtype(np.float64)
_BOOL = np.dtype(np.bool_)
_INTP = np.dtype(np.intp)

# events: ("slot", tag, shape, dtype) / ("scratch", tag, shape, dtype) /
#         ("free", tag) — tags are unique per owner within one call


@dataclass(frozen=True)
class PlannedBuffer:
    """One planned arena request with its liveness interval.

    ``tick`` counts layer-calls in execution order (forward calls first,
    then backward calls in reverse).  Slots stay live from their first
    write to the owner's backward (``end``); scratch lives inside one
    call (``end == start``).
    """

    owner: str
    tag: str
    kind: str  # "slot" | "scratch"
    shape: tuple
    dtype: str
    phase: str  # "forward" | "backward"
    start: int
    end: int

    @property
    def nbytes(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n * np.dtype(self.dtype).itemsize

    @property
    def bucket(self) -> int:
        return bucket_nbytes(self.nbytes)


def _prod(shape) -> int:
    n = 1
    for s in shape:
        n *= s
    return n


# -- per-layer buffer rules ---------------------------------------------------
#
# Each rule mirrors, request for request and in source order, what the
# layer's buffered code path asks of the MemoryContext.  tests pin the
# mirror: the plan's dry-run peak must equal the live arena's measured
# peak, so a rule that forgets a request fails the predictor test.


def _rule_relu(layer, shp, training):
    fwd = [("slot", "mask", shp, _BOOL), ("slot", "y", shp, _F64)]
    bwd = [("slot", "dx", shp, _F64)]
    return shp, fwd, bwd


def _rule_sigmoid(layer, shp, training):
    fwd = [
        ("slot", "pos", shp, _BOOL),
        ("slot", "neg", shp, _BOOL),
        ("scratch", "t", shp, _F64),
        ("slot", "y", shp, _F64),
        ("scratch", "u", shp, _F64),
        ("free", "u"),
        ("free", "t"),
    ]
    bwd = [
        ("slot", "dx", shp, _F64),
        ("scratch", "t", shp, _F64),
        ("free", "t"),
    ]
    return shp, fwd, bwd


def _rule_tanh(layer, shp, training):
    fwd = [("slot", "y", shp, _F64)]
    bwd = [
        ("scratch", "t", shp, _F64),
        ("slot", "dx", shp, _F64),
        ("free", "t"),
    ]
    return shp, fwd, bwd


def _rule_dense(layer, shp, training):
    n = shp[0]
    out_shp = (n, layer.out_features)
    fwd = [("slot", "y", out_shp, _F64)]
    bwd = [
        ("scratch", "dw", (layer.in_features, layer.out_features), _F64),
        ("free", "dw"),
    ]
    if layer.bias is not None:
        bwd += [("scratch", "db", (layer.out_features,), _F64), ("free", "db")]
    bwd.append(("slot", "dx", shp, _F64))
    return out_shp, fwd, bwd


def _rule_conv(layer, shp, training):
    from .layers.conv import _BATCHED_MATMUL_MAX_MACS, conv_output_hw

    n, c, h, w = shp
    k, s, p, g = layer.kernel_size, layer.stride, layer.padding, layer.groups
    cg = c // g
    og = layer.out_channels // g
    oh, ow = conv_output_hw(h, w, k, k, s, p)
    span = oh * ow
    pointwise = layer._is_pointwise()
    ckk = cg if pointwise else cg * k * k
    fwd = []
    if pointwise:
        if s != 1:
            fwd.append(("slot", "xs", (n, c, oh, ow), _F64))
    else:
        fwd.append(("slot", "cols", (n, c * k * k, span), _F64))
        if p > 0:
            fwd.append(("slot", "xpad", (n, c, h + 2 * p, w + 2 * p), _F64))
    fwd.append(("slot", "y", (n, layer.out_channels, oh, ow), _F64))
    out_shp = (n, layer.out_channels, oh, ow)

    bwd = [
        ("scratch", "dw", (g, og, ckk), _F64),
        ("slot", "dcols", (n, g, ckk, span), _F64),
    ]
    if n * g * og * ckk * span <= _BATCHED_MATMUL_MAX_MACS:
        bwd += [
            ("scratch", "t1", (g, og, n, span), _F64),
            ("scratch", "t2", (g, n, span, ckk), _F64),
            ("free", "t2"),
            ("free", "t1"),
        ]
    bwd.append(("free", "dw"))
    if layer.bias is not None:
        bwd += [("scratch", "db", (layer.out_channels,), _F64), ("free", "db")]
    if pointwise:
        if s != 1:
            bwd.append(("slot", "dx", shp, _F64))
    elif p > 0 and s < k:
        bwd.append(("slot", "dx", shp, _F64))
    else:
        bwd.append(("slot", "dx_pad", (n, c, h + 2 * p, w + 2 * p), _F64))
        if p > 0:
            bwd.append(("slot", "dx", shp, _F64))
    return out_shp, fwd, bwd


def _rule_maxpool(layer, shp, training):
    from .layers.conv import conv_output_hw

    n, c, h, w = shp
    k, s, p = layer.kernel_size, layer.stride, layer.padding
    hp, wp = h + 2 * p, w + 2 * p
    oh, ow = conv_output_hw(h, w, k, k, s, p)
    span = oh * ow
    fwd = []
    if p > 0:
        fwd.append(("slot", "xpad", (n, c, hp, wp), _F64))
    fwd += [
        ("slot", "cols", (n * c, k * k, span), _F64),
        ("slot", "argmax", (n, c, span), _INTP),
        ("slot", "y", (n, c, oh, ow), _F64),
    ]
    if p > 0 and s < k:
        bwd = [
            ("scratch", "dcols", (n, c, k * k, span), _F64),
            ("slot", "dx", shp, _F64),
            ("free", "dcols"),
        ]
    else:
        bwd = [
            ("scratch", "dcols", (n, c, k * k, span), _F64),
            ("slot", "dx_pad", (n * c, 1, hp, wp), _F64),
            ("free", "dcols"),
        ]
        if p > 0:
            bwd.append(("slot", "dx", shp, _F64))
    return (n, c, oh, ow), fwd, bwd


def _rule_avgpool(layer, shp, training):
    from .layers.conv import conv_output_hw

    n, c, h, w = shp
    k, s, p = layer.kernel_size, layer.stride, layer.padding
    hp, wp = h + 2 * p, w + 2 * p
    oh, ow = conv_output_hw(h, w, k, k, s, p)
    span = oh * ow
    fwd = []
    if p > 0:
        fwd.append(("slot", "xpad", (n, c, hp, wp), _F64))
    fwd += [
        ("slot", "cols", (n * c, k * k, span), _F64),
        ("slot", "y", (n, c, oh, ow), _F64),
    ]
    bwd = [
        ("scratch", "go", (n * c, 1, span), _F64),
        ("scratch", "dcols", (n * c, k * k, span), _F64),
        ("free", "go"),
    ]
    if p > 0 and s < k:
        bwd += [("slot", "dx", shp, _F64), ("free", "dcols")]
    else:
        bwd.append(("slot", "dx_pad", (n * c, 1, hp, wp), _F64))
        bwd.append(("free", "dcols"))
        if p > 0:
            bwd.append(("slot", "dx", shp, _F64))
    return (n, c, oh, ow), fwd, bwd


def _rule_gap(layer, shp, training):
    n, c = shp[0], shp[1]
    fwd = [("slot", "y", (n, c), _F64)]
    bwd = [("slot", "dx", shp, _F64)]
    return (n, c), fwd, bwd


def _rule_flatten(layer, shp, training):
    return (shp[0], _prod(shp[1:])), [], []


def _rule_batchnorm(layer, shp, training):
    fwd = [("slot", "xhat", shp, _F64), ("slot", "y", shp, _F64)]
    bwd = [
        ("scratch", "t", shp, _F64),
        ("scratch", "dxh", shp, _F64),
        ("slot", "dx", shp, _F64),
        ("free", "dxh"),
        ("free", "t"),
    ]
    return shp, fwd, bwd


def _rule_dropout(layer, shp, training):
    if not training or layer.p == 0.0:
        return shp, [], []
    fwd = [
        ("slot", "mask", shp, _F64),
        ("slot", "sel", shp, _BOOL),
        ("slot", "y", shp, _F64),
    ]
    bwd = [("slot", "dx", shp, _F64)]
    return shp, fwd, bwd


def _window_sum_events(shp, prefix):
    n, c = shp[0], shp[1]
    csum_shp = (n, c + 1, *shp[2:])
    return [
        ("scratch", f"{prefix}csum", csum_shp, _F64),
        ("scratch", f"{prefix}th", shp, _F64),
        ("scratch", f"{prefix}tl", shp, _F64),
        ("free", f"{prefix}tl"),
        ("free", f"{prefix}th"),
        ("free", f"{prefix}csum"),
    ]


def _rule_lrn(layer, shp, training):
    fwd = (
        [
            ("scratch", "sq", shp, _F64),
            ("scratch", "ssum", shp, _F64),
        ]
        + _window_sum_events(shp, "f")
        + [
            ("free", "sq"),
            ("slot", "denom", shp, _F64),
            ("free", "ssum"),
            ("scratch", "t", shp, _F64),
            ("slot", "y", shp, _F64),
            ("free", "t"),
        ]
    )
    bwd = (
        [
            ("scratch", "dpow", shp, _F64),
            ("scratch", "t", shp, _F64),
            ("scratch", "tsum", shp, _F64),
        ]
        + _window_sum_events(shp, "b")
        + [
            ("free", "t"),
            ("slot", "dx", shp, _F64),
            ("free", "dpow"),
            ("scratch", "t2", shp, _F64),
            ("free", "tsum"),
            ("free", "t2"),
        ]
    )
    return shp, fwd, bwd


def _fusion_input_conv(mod, shp):
    """The Conv2D whose padded-input slot absorbs ``mod``'s input.

    Static mirror of the live ``Module.input_slot`` delegation chain: a
    Sequential hands its first layer's slot out, a Residual its branch's,
    and a non-pointwise padded Conv2D owns one.  Returns ``None`` when no
    fusion applies (mirroring ``input_slot`` returning ``None``).
    """
    from .layers.base import Sequential
    from .layers.conv import Conv2D
    from .layers.residual import Residual

    if isinstance(mod, Sequential):
        return _fusion_input_conv(mod.layers[0], shp) if mod.layers else None
    if isinstance(mod, Residual):
        return _fusion_input_conv(mod.branch, shp)
    if (
        isinstance(mod, Conv2D)
        and len(shp) == 4
        and mod.padding > 0
        and not mod._is_pointwise()
        and shp[1] == mod.in_channels
    ):
        return mod
    return None


def _loss_events(n, k):
    fwd = [
        ("slot", "logp", (n, k), _F64),
        ("scratch", "t", (n, k), _F64),
        ("free", "t"),
    ]
    bwd = [
        ("scratch", "probs", (n, k), _F64),
        ("scratch", "td", (n, k), _F64),
        ("slot", "dlogits", (n, k), _F64),
        ("free", "td"),
        ("free", "probs"),
    ]
    return fwd, bwd


def _layer_rules():
    from .layers.activations import ReLU, Sigmoid, Tanh
    from .layers.conv import Conv2D
    from .layers.dense import Dense
    from .layers.dropout import Dropout
    from .layers.norm import BatchNorm, LocalResponseNorm, SyncBatchNorm
    from .layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
    from .layers.reshape import Flatten

    return {
        ReLU: _rule_relu,
        Sigmoid: _rule_sigmoid,
        Tanh: _rule_tanh,
        Dense: _rule_dense,
        Conv2D: _rule_conv,
        MaxPool2D: _rule_maxpool,
        AvgPool2D: _rule_avgpool,
        GlobalAvgPool2D: _rule_gap,
        Flatten: _rule_flatten,
        BatchNorm: _rule_batchnorm,
        SyncBatchNorm: _rule_batchnorm,
        Dropout: _rule_dropout,
        LocalResponseNorm: _rule_lrn,
    }


@dataclass
class MemoryPlan:
    """Static activation/grad memory plan for one training-step shape.

    Built once per ``(model, batch_size)``; ``peak_bytes`` etc. come from
    replaying the planned request stream through a dry-run arena with the
    real bucket accounting, so they are exact predictions of what a live
    :class:`Arena` reports after a planned step — the invariant
    ``tests/perfmodel/test_memory_predictor.py`` pins.
    """

    input_shape: tuple
    batch_size: int
    buffers: list[PlannedBuffer] = field(default_factory=list)
    peak_bytes: int = 0
    pool_bytes: int = 0
    slot_bytes: int = 0
    scratch_bucket_bytes: int = 0
    n_ticks: int = 0

    @classmethod
    def build(cls, model, input_shape, batch_size, loss=None, training=True):
        """Shape-infer ``model`` (and optionally its loss) into a plan.

        ``input_shape`` is per-example (channels-first, no batch dim), the
        same convention as ``Module.output_shape``.
        """
        from .layers.base import Sequential
        from .layers.branch import ConcatBranches
        from .layers.residual import Residual

        rules = _layer_rules()
        shp = (int(batch_size), *tuple(input_shape))
        fwd_stream: list = []  # (owner, event)
        anon = [0]
        names: dict[int, str] = {}

        def owner_name(mod):
            nm = names.get(id(mod))
            if nm is None:
                if getattr(mod, "name", ""):
                    nm = mod.name
                else:
                    anon[0] += 1
                    nm = f"{type(mod).__name__}#{anon[0]}"
                names[id(mod)] = nm
            return nm

        def walk(mod, shp, fused=False):
            """Emit forward events; return (out_shape, backward events).

            ``fused`` marks a producer whose output goes straight into a
            successor conv's padded-input slot (the live ``Sequential``
            fusion): its ``y`` slot request is elided, exactly as the
            buffered code skips ``_buf("y", ...)`` when handed ``out=``.
            """
            if isinstance(mod, Sequential):
                bwds = []
                layers = mod.layers
                last = len(layers) - 1
                for i, layer in enumerate(layers):
                    child_fused = False
                    if i < last and layer._fusion_source:
                        nshp = (shp[0], *layer.output_shape(tuple(shp[1:])))
                        conv = _fusion_input_conv(layers[i + 1], nshp)
                        if conv is not None:
                            # the successor's padded slot is acquired by
                            # input_slot() before the producer runs
                            n, c, h, w = nshp
                            p = conv.padding
                            fwd_stream.append(
                                (
                                    owner_name(conv),
                                    ("slot", "xpad", (n, c, h + 2 * p, w + 2 * p), _F64),
                                )
                            )
                            child_fused = True
                    shp, b = walk(layer, shp, child_fused)
                    bwds.append(b)
                return shp, [e for b in reversed(bwds) for e in b]
            if isinstance(mod, Residual):
                name = owner_name(mod)
                out_shp, b_branch = walk(mod.branch, shp)
                b_short = []
                if mod.shortcut is not None:
                    _, b_short = walk(mod.shortcut, shp)
                tags = [("pre", _F64), ("mask", _BOOL)]
                if not fused:
                    tags.append(("y", _F64))
                for tag, dt in tags:
                    fwd_stream.append((name, ("slot", tag, out_shp, dt)))
                bwd = [(name, ("slot", "dpre", out_shp, _F64))]
                bwd += b_branch + b_short
                # the input gradient is summed in place into the branch's
                # own gradient buffer — no extra slot
                return out_shp, bwd
            if isinstance(mod, ConcatBranches):
                name = owner_name(mod)
                outs, branch_bwds = [], []
                for br in mod.branches:
                    o, b = walk(br, shp)
                    outs.append(o)
                    branch_bwds.append(b)
                n = shp[0]
                channels = sum(o[1] for o in outs)
                out_shp = (n, channels, *outs[0][2:])
                fwd_stream.append((name, ("slot", "y", out_shp, _F64)))
                bwd = []
                for i, (o, b) in enumerate(zip(outs, branch_bwds)):
                    bwd.append((name, ("slot", f"g{i}", o, _F64)))
                    bwd += b
                    if i == 0:
                        bwd.append((name, ("slot", "dx", shp, _F64)))
                return out_shp, bwd
            rule = rules.get(type(mod))
            if rule is None:
                raise ValueError(
                    f"no memory rule for layer type {type(mod).__name__}; "
                    "add one to repro.nn.memory to plan this model"
                )
            name = owner_name(mod)
            out_shp, fwd, bwd = rule(mod, shp, training)
            if fused:
                fwd = [e for e in fwd if e[:2] != ("slot", "y")]
            fwd_stream.extend((name, e) for e in fwd)
            return out_shp, [(name, e) for e in bwd]

        out_shp, bwd_stream = walk(model, shp)
        if loss is not None:
            if len(out_shp) != 2:
                raise ValueError(
                    f"loss expects (batch, classes) logits, model produces {out_shp}"
                )
            lf, lb = _loss_events(out_shp[0], out_shp[1])
            fwd_stream.extend(("loss", e) for e in lf)
            bwd_stream = [("loss", e) for e in lb] + bwd_stream

        return cls._simulate(fwd_stream, bwd_stream, tuple(input_shape), batch_size)

    @classmethod
    def _simulate(cls, fwd_stream, bwd_stream, input_shape, batch_size):
        dry = _DryArena()
        buffers: list[PlannedBuffer] = []
        slot_index: dict = {}  # slot key -> index into buffers
        tick = [0]

        def run(stream, phase):
            live: dict = {}  # (owner, tag) -> (handle, buffer index)
            last_owner = [None]
            for owner, event in stream:
                if owner != last_owner[0]:
                    tick[0] += 1
                    last_owner[0] = owner
                kind = event[0]
                if kind == "free":
                    handle, idx = live.pop((owner, event[1]))
                    dry.release(handle)
                    b = buffers[idx]
                    buffers[idx] = PlannedBuffer(
                        b.owner, b.tag, b.kind, b.shape, b.dtype, b.phase,
                        b.start, tick[0],
                    )
                    continue
                _, tag, shape, dt = event
                if kind == "slot":
                    key = (owner, tag, tuple(shape), dt)
                    if key in slot_index:
                        continue
                    dry.acquire(shape, dt)
                    slot_index[key] = len(buffers)
                    buffers.append(
                        PlannedBuffer(owner, tag, "slot", tuple(shape), dt.name,
                                      phase, tick[0], -1)
                    )
                else:
                    handle = dry.acquire(shape, dt)
                    live[(owner, tag)] = (handle, len(buffers))
                    buffers.append(
                        PlannedBuffer(owner, tag, "scratch", tuple(shape), dt.name,
                                      phase, tick[0], tick[0])
                    )
            if live:
                leaked = sorted(f"{o}.{t}" for o, t in live)
                raise RuntimeError(f"plan leaked scratch buffers: {leaked}")

        run(fwd_stream, "forward")
        run(bwd_stream, "backward")

        def replay(stream):
            live = {}
            for owner, event in stream:
                kind = event[0]
                if kind == "free":
                    dry.release(live.pop((owner, event[1])))
                elif kind == "scratch":
                    live[(owner, event[1])] = dry.acquire(event[2], event[3])
                # slots already held

        # A freed scratch bucket can be claimed by a later slot, so the pool
        # may still grow on the second step; replay until it stops.  The
        # demand profile is deterministic, so one extra pass after the slots
        # are all held reaches the fixed point — assert rather than assume.
        replay(fwd_stream)
        replay(bwd_stream)
        allocs_second = dry.allocations
        replay(fwd_stream)
        replay(bwd_stream)
        if dry.allocations != allocs_second:
            raise RuntimeError("memory plan did not reach steady state (internal error)")

        slot_bytes = sum(
            bucket_nbytes(b.nbytes) for b in buffers if b.kind == "slot"
        )
        plan = cls(
            input_shape=tuple(input_shape),
            batch_size=int(batch_size),
            buffers=buffers,
            peak_bytes=dry.peak_bytes,
            pool_bytes=dry.pool_bytes,
            slot_bytes=slot_bytes,
            scratch_bucket_bytes=dry.pool_bytes - slot_bytes,
            n_ticks=tick[0],
        )
        return plan

    @property
    def num_slots(self) -> int:
        return sum(1 for b in self.buffers if b.kind == "slot")

    def table(self, top: int | None = None) -> str:
        """Human-readable plan: buffers sorted by bucket size."""
        rows = sorted(self.buffers, key=lambda b: -b.bucket)
        if top is not None:
            rows = rows[:top]
        lines = [
            f"{'owner':<36}{'tag':<10}{'kind':<9}{'shape':<22}"
            f"{'bytes':>12}{'live':>12}"
        ]
        for b in rows:
            live = f"[{b.start},{'∞' if b.end < 0 else b.end}]"
            lines.append(
                f"{b.owner:<36}{b.tag:<10}{b.kind:<9}{str(b.shape):<22}"
                f"{b.bucket:>12}{live:>12}"
            )
        lines.append(
            f"peak {self.peak_bytes} B = slots {self.slot_bytes} B "
            f"+ scratch {self.scratch_bucket_bytes} B "
            f"({self.num_slots} slots, {self.n_ticks} ticks)"
        )
        return "\n".join(lines)


def plan_training_step(model, input_shape, batch_size, loss=None) -> MemoryPlan:
    """Convenience wrapper: plan a full forward+backward training step."""
    return MemoryPlan.build(model, input_shape, batch_size, loss=loss, training=True)
