"""Finite-difference gradient checking utilities.

Every layer's hand-derived backward pass is validated against central
differences; these helpers are also exported for downstream users who add
custom layers.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .layers.base import Module
from .losses import SoftmaxCrossEntropy

__all__ = ["numeric_gradient", "check_layer_gradients", "relative_error"]


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max elementwise relative error with an absolute floor."""
    num = np.abs(a - b)
    den = np.maximum(np.abs(a) + np.abs(b), 1e-8)
    return float((num / den).max()) if num.size else 0.0


def numeric_gradient(
    f: Callable[[], float], x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. array ``x``.

    ``f`` must read ``x`` afresh on each call (the helper perturbs ``x`` in
    place and restores it).
    """
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2.0 * eps)
    return grad


def check_layer_gradients(
    layer: Module,
    x: np.ndarray,
    *,
    eps: float = 1e-5,
    tol: float = 1e-5,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """Verify input and parameter gradients of ``layer`` at input ``x``.

    Uses the scalar objective ``sum(layer(x) * R)`` with a fixed random
    projection ``R``, so the analytic gradient under test is
    ``layer.backward(R)``.  Returns the relative error per checked quantity
    and raises ``AssertionError`` when any exceeds ``tol``.
    """
    rng = rng if rng is not None else np.random.default_rng(123)
    x = np.asarray(x, dtype=np.float64)
    out = layer.forward(x.copy())
    proj = rng.normal(size=out.shape)

    def objective() -> float:
        return float(np.sum(layer.forward(x.copy()) * proj))

    layer.zero_grad()
    layer.forward(x.copy())
    dx = layer.backward(proj.copy())

    errors: dict[str, float] = {}
    dx_num = numeric_gradient(objective, x, eps=eps)
    errors["input"] = relative_error(dx, dx_num)
    for p in layer.parameters():
        dp_num = numeric_gradient(objective, p.data, eps=eps)
        errors[p.name or f"param{id(p)}"] = relative_error(p.grad, dp_num)

    bad = {k: v for k, v in errors.items() if v > tol}
    if bad:
        raise AssertionError(f"gradient check failed: {bad}")
    return errors


def check_model_loss_gradients(
    model: Module,
    x: np.ndarray,
    targets: np.ndarray,
    *,
    eps: float = 1e-5,
    tol: float = 1e-4,
    max_entries: int = 40,
    rng: np.random.Generator | None = None,
) -> dict[str, float]:
    """Spot-check dLoss/dParam of a full model against central differences.

    Checking every coordinate of a model is quadratic in parameter count, so
    for each parameter a random subset of at most ``max_entries`` coordinates
    is verified.
    """
    rng = rng if rng is not None else np.random.default_rng(7)
    loss_fn = SoftmaxCrossEntropy()

    def objective() -> float:
        return loss_fn.forward(model.forward(x.copy()), targets)

    model.zero_grad()
    loss_fn.forward(model.forward(x.copy()), targets)
    model.backward(loss_fn.backward())

    errors: dict[str, float] = {}
    for p in model.parameters():
        flat = p.data.ravel()
        gflat = p.grad.ravel()
        idx = rng.choice(flat.size, size=min(max_entries, flat.size), replace=False)
        num = np.zeros(len(idx))
        for j, i in enumerate(idx):
            orig = flat[i]
            flat[i] = orig + eps
            fp = objective()
            flat[i] = orig - eps
            fm = objective()
            flat[i] = orig
            num[j] = (fp - fm) / (2.0 * eps)
        errors[p.name] = relative_error(gflat[idx], num)

    bad = {k: v for k, v in errors.items() if v > tol}
    if bad:
        raise AssertionError(f"model gradient check failed: {bad}")
    return errors
