"""``repro.nn`` — from-scratch numpy DNN substrate.

Provides the layers, losses, models and cost accounting the reproduction is
built on.  Backprop is hand-derived per layer and validated by the
finite-difference checkers in :mod:`repro.nn.gradcheck`.
"""

from . import models
from .flops import (
    BYTES_PER_PARAM_FP32,
    FWD_BWD_FLOP_FACTOR,
    ModelCost,
    activation_elements_per_example,
    count_parameters,
    forward_flops_per_image,
    model_cost,
    scaling_ratio,
    training_flops,
)
from .gradcheck import check_layer_gradients, numeric_gradient, relative_error
from .layers import (
    AvgPool2D,
    ConcatBranches,
    BatchNorm,
    SyncBatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LocalResponseNorm,
    MaxPool2D,
    Module,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    Tanh,
)
from .losses import SoftmaxCrossEntropy, log_softmax, softmax
from .memory import (
    Arena,
    MemoryContext,
    MemoryPlan,
    bucket_nbytes,
    plan_training_step,
)
from .tensor import Parameter

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "ConcatBranches",
    "Conv2D",
    "Dense",
    "Dropout",
    "BatchNorm",
    "SyncBatchNorm",
    "LocalResponseNorm",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "Residual",
    "SoftmaxCrossEntropy",
    "softmax",
    "log_softmax",
    "ModelCost",
    "model_cost",
    "count_parameters",
    "forward_flops_per_image",
    "training_flops",
    "scaling_ratio",
    "activation_elements_per_example",
    "BYTES_PER_PARAM_FP32",
    "FWD_BWD_FLOP_FACTOR",
    "check_layer_gradients",
    "numeric_gradient",
    "relative_error",
    "Arena",
    "MemoryContext",
    "MemoryPlan",
    "bucket_nbytes",
    "plan_training_step",
    "models",
]
