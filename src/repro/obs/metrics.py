"""Metrics registry: counters, gauges, log-bucketed histograms, timers.

A metric *series* is (name, labels) — ``counter("comm.messages",
kind="send")`` and ``kind="isend"`` are independent series under one name,
mirroring the Prometheus data model the repo's CI consumers understand.
Series are created on first touch and live in a :class:`MetricsRegistry`;
:meth:`MetricsRegistry.snapshot` freezes everything into a flat
JSON-serialisable payload (schema-versioned, validated by
:func:`validate_metrics_snapshot`) and :meth:`MetricsRegistry.to_csv` emits
the same data as a spreadsheet-friendly table.

Histograms use **fixed log-spaced buckets** (default: 1 µs → 100 s, four
buckets per decade) so latency distributions from very different scales —
a 20 µs span close vs an 8 ms allreduce — land in comparable, mergeable
bins; bucket edges are part of the snapshot so two snapshots can be diffed
bin-for-bin.

Like tracing, the registry is **off by default**: the module-level helpers
(:func:`counter`, :func:`gauge`, :func:`histogram`, :func:`observe`) return
shared no-op instruments on a single attribute check when disabled, so
instrumented hot paths cost one branch.
"""

from __future__ import annotations

import io
import json
import math
import threading
import time
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimerMetric",
    "MetricsRegistry",
    "MetricsSchemaError",
    "log_spaced_buckets",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "observe",
    "validate_metrics_snapshot",
]

METRICS_SCHEMA_VERSION = 1


class MetricsSchemaError(ValueError):
    """A snapshot payload does not conform to the metrics schema."""


def log_spaced_buckets(
    lo: float = 1e-6, hi: float = 100.0, per_decade: int = 4
) -> tuple[float, ...]:
    """Logarithmically spaced bucket edges from ``lo`` to ``hi`` inclusive.

    Edges are rounded to three significant digits so they serialise cleanly
    and two independently constructed registries agree bit-for-bit.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    decades = math.log10(hi / lo)
    n = int(round(decades * per_decade))
    edges = [lo * 10 ** (k / per_decade) for k in range(n + 1)]
    rounded = tuple(float(f"{e:.3g}") for e in edges)
    return rounded


#: default latency edges: 1 µs → 100 s, 4 buckets per decade (33 edges)
DEFAULT_BUCKETS = log_spaced_buckets()


class Counter:
    """Monotonically increasing count (messages, retransmits, faults)."""

    __slots__ = ("name", "labels", "_value", "_lock")
    kind = "counter"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> dict:
        return {"name": self.name, "type": "counter", "labels": self.labels,
                "value": self._value}


class Gauge:
    """Last-written value with running min/max (queue depths, wait times)."""

    __slots__ = ("name", "labels", "_value", "_min", "_max", "_count", "_lock")
    kind = "gauge"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._count = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._value = value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            self._count += 1

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            self._min = min(self._min, self._value)
            self._max = max(self._max, self._value)
            self._count += 1

    @property
    def value(self) -> float:
        return self._value

    def as_dict(self) -> dict:
        return {
            "name": self.name, "type": "gauge", "labels": self.labels,
            "value": self._value, "count": self._count,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
        }


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max.

    ``counts`` has ``len(edges) + 1`` slots: slot 0 counts observations
    below ``edges[0]`` (underflow), slot ``i`` counts ``edges[i-1] <= v <
    edges[i]``, and the last slot counts ``v >= edges[-1]`` (overflow).
    """

    __slots__ = ("name", "labels", "edges", "counts", "_count", "_sum",
                 "_min", "_max", "_lock")
    kind = "histogram"

    def __init__(self, name: str, labels: dict, edges: tuple[float, ...] | None = None):
        edges = tuple(edges) if edges is not None else DEFAULT_BUCKETS
        if len(edges) < 1 or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("edges must be strictly increasing and non-empty")
        self.name = name
        self.labels = labels
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_right(self.edges, value)
        with self._lock:
            self.counts[idx] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the ``q``-quantile (0 < q <= 1)."""
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        if self._count == 0:
            return float("nan")
        target = math.ceil(q * self._count)
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return self.edges[min(i, len(self.edges) - 1)]
        return self.edges[-1]

    def as_dict(self) -> dict:
        return {
            "name": self.name, "type": "histogram", "labels": self.labels,
            "edges": list(self.edges), "counts": list(self.counts),
            "count": self._count, "sum": self._sum,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
        }


class TimerMetric:
    """Reusable context manager observing elapsed seconds into a histogram.

    Uses ``time.perf_counter_ns`` so sub-50 µs regions are not quantised
    away.  Reentrant across threads is *not* supported (one start slot); use
    one TimerMetric per call site or thread.
    """

    __slots__ = ("histogram", "_start_ns")
    kind = "timer"

    def __init__(self, histogram_: Histogram):
        self.histogram = histogram_
        self._start_ns = 0

    def __enter__(self) -> "TimerMetric":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        self.histogram.observe((time.perf_counter_ns() - self._start_ns) * 1e-9)
        return False


class _NullInstrument:
    """Shared no-op counter/gauge/histogram/timer for disabled registries."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_INSTRUMENT = _NullInstrument()


def _series_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Thread-safe home of every metric series.

    ``enabled`` gates the module-level helpers only — a registry handle
    obtained directly always records, which is what tests and the bench
    harness use to keep global state untouched.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._series: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels: dict, *args):
        key = _series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    series = cls(name, labels, *args)
                    self._series[key] = series
        if not isinstance(series, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(series).__name__}"
            )
        return series

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, edges: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, edges)

    def timer(self, name: str, **labels) -> TimerMetric:
        """Fresh timer context manager over the named histogram series."""
        return TimerMetric(self.histogram(name, **labels))

    # -- export -----------------------------------------------------------------
    def series(self) -> list:
        with self._lock:
            return list(self._series.values())

    def snapshot(self) -> dict:
        """Schema-versioned JSON-serialisable dump of every series."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "metrics": sorted(
                (s.as_dict() for s in self.series()),
                key=lambda d: (d["name"], sorted(d["labels"].items())),
            ),
        }

    def to_json(self, path: str | None = None) -> str:
        payload = self.snapshot()
        validate_metrics_snapshot(payload)
        text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def to_csv(self, path: str | None = None) -> str:
        """Flat ``name,type,labels,field,value`` table of every series."""
        buf = io.StringIO()
        buf.write("name,type,labels,field,value\r\n")
        for d in self.snapshot()["metrics"]:
            labels = ";".join(f"{k}={v}" for k, v in sorted(d["labels"].items()))
            scalar_fields = {
                k: v for k, v in d.items()
                if k not in ("name", "type", "labels") and not isinstance(v, list)
            }
            for fname, value in sorted(scalar_fields.items()):
                buf.write(f"{d['name']},{d['type']},{labels},{fname},{value}\r\n")
        text = buf.getvalue()
        if path is not None:
            with open(path, "w", newline="") as fh:
                fh.write(text)
        return text

    def reset(self) -> None:
        with self._lock:
            self._series.clear()


def validate_metrics_snapshot(payload: dict) -> None:
    """Raise :class:`MetricsSchemaError` unless ``payload`` conforms."""
    if not isinstance(payload, dict):
        raise MetricsSchemaError("payload must be an object")
    if payload.get("schema_version") != METRICS_SCHEMA_VERSION:
        raise MetricsSchemaError(
            f"schema_version {payload.get('schema_version')!r} unsupported "
            f"(expected {METRICS_SCHEMA_VERSION})"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, list):
        raise MetricsSchemaError("'metrics' must be an array")
    for i, d in enumerate(metrics):
        if not isinstance(d, dict):
            raise MetricsSchemaError(f"metric {i} must be an object")
        if not isinstance(d.get("name"), str) or not d["name"]:
            raise MetricsSchemaError(f"metric {i}: missing name")
        if d.get("type") not in ("counter", "gauge", "histogram"):
            raise MetricsSchemaError(f"metric {i}: unknown type {d.get('type')!r}")
        if not isinstance(d.get("labels"), dict):
            raise MetricsSchemaError(f"metric {i}: labels must be an object")
        if d["type"] == "histogram":
            edges, counts = d.get("edges"), d.get("counts")
            if not isinstance(edges, list) or not isinstance(counts, list):
                raise MetricsSchemaError(f"metric {i}: histogram needs edges+counts")
            if len(counts) != len(edges) + 1:
                raise MetricsSchemaError(
                    f"metric {i}: counts must have len(edges)+1 slots"
                )
            if sum(counts) != d.get("count"):
                raise MetricsSchemaError(f"metric {i}: count != sum(counts)")
        elif not isinstance(d.get("value"), (int, float)):
            raise MetricsSchemaError(f"metric {i}: value must be a number")


# ---------------------------------------------------------------------------
# Process-wide default registry
# ---------------------------------------------------------------------------

_REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide registry the instrumented hot paths record into."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one)."""
    global _REGISTRY
    prev, _REGISTRY = _REGISTRY, registry
    return prev


def counter(name: str, **labels):
    """Default-registry counter series; shared no-op when disabled."""
    reg = _REGISTRY
    if not reg.enabled:
        return NULL_INSTRUMENT
    return reg.counter(name, **labels)


def gauge(name: str, **labels):
    reg = _REGISTRY
    if not reg.enabled:
        return NULL_INSTRUMENT
    return reg.gauge(name, **labels)


def histogram(name: str, **labels):
    reg = _REGISTRY
    if not reg.enabled:
        return NULL_INSTRUMENT
    return reg.histogram(name, **labels)


def timer(name: str, **labels):
    reg = _REGISTRY
    if not reg.enabled:
        return NULL_INSTRUMENT
    return reg.timer(name, **labels)


def observe(name: str, value: float, **labels) -> None:
    """Observe ``value`` into the named default-registry histogram."""
    reg = _REGISTRY
    if reg.enabled:
        reg.histogram(name, **labels).observe(value)
