"""Level-filtered console output for the CLI and experiment drivers.

A deliberate sliver of a logging framework: four levels, one process-wide
:class:`Console`, streams resolved at call time (so pytest's ``capsys`` and
shell redirection both see exactly what a bare ``print`` would have
written).  At the default ``info`` level the output is **byte-identical**
to the ``print(...)`` calls it replaced — the experiment drivers' golden
outputs in EXPERIMENTS.md stay regenerable — while ``--quiet`` silences
progress chatter and ``--verbose`` surfaces debug detail without touching
the stdlib ``logging`` module's global state.
"""

from __future__ import annotations

import sys

__all__ = ["Console", "LEVELS", "get_console", "set_console",
           "configure_verbosity"]

#: ordered severity levels; messages below the console's level are dropped
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class Console:
    """Minimal leveled writer.

    ``info``/``debug`` go to stdout, ``warning``/``error`` to stderr.
    ``info`` prints the message verbatim; the other levels prefix their
    severity so redirected logs stay greppable.
    """

    def __init__(self, level: str = "info"):
        self.set_level(level)

    def set_level(self, level: str) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; expected one of {sorted(LEVELS)}")
        self.level = level
        self._threshold = LEVELS[level]

    def is_enabled_for(self, level: str) -> bool:
        return LEVELS[level] >= self._threshold

    def debug(self, message: str = "") -> None:
        if self._threshold <= LEVELS["debug"]:
            print(f"[debug] {message}", file=sys.stdout)

    def info(self, message: str = "") -> None:
        if self._threshold <= LEVELS["info"]:
            print(message, file=sys.stdout)

    def warning(self, message: str = "") -> None:
        if self._threshold <= LEVELS["warning"]:
            print(f"warning: {message}", file=sys.stderr)

    def error(self, message: str = "") -> None:
        if self._threshold <= LEVELS["error"]:
            print(f"error: {message}", file=sys.stderr)


_CONSOLE = Console()


def get_console() -> Console:
    """The process-wide console the CLI and experiment drivers write to."""
    return _CONSOLE


def set_console(console: Console) -> Console:
    """Swap the process-wide console (returns the previous one)."""
    global _CONSOLE
    prev, _CONSOLE = _CONSOLE, console
    return prev


def configure_verbosity(quiet: bool = False, verbose: bool = False) -> Console:
    """Map the CLI's ``--quiet``/``--verbose`` flags onto the console level.

    ``--quiet`` wins when both are given (scripting callers pass it to get
    machine-parseable output only).
    """
    console = get_console()
    if quiet:
        console.set_level("warning")
    elif verbose:
        console.set_level("debug")
    else:
        console.set_level("info")
    return console
