"""repro.obs — telemetry: tracing, metrics, events, console.

The paper's headline claims are wall-clock claims, and validating them
requires seeing where each iteration's time goes — compute vs. allreduce
vs. straggler wait, the breakdown Goyal et al. 2017 and Akiba et al. 2017
publish alongside their scaling results.  This package is the cross-cutting
layer that produces that breakdown for every engine in the repo:

:mod:`repro.obs.trace`
    Nested span tracer with a Chrome trace-event exporter
    (``chrome://tracing`` / Perfetto); instrumented across the serial
    trainer, the sync-SGD worker loop, the collectives, and the loader.
:mod:`repro.obs.metrics`
    Counter/Gauge/Histogram/Timer registry with labeled series,
    log-spaced latency buckets, and JSON/CSV snapshot export.
:mod:`repro.obs.events`
    Event bus the fault injector, failure detector, and checkpoint-restore
    paths publish to; events mirror into the trace as instant marks.
:mod:`repro.obs.console`
    Level-filtered stdout/stderr writer behind the CLI's
    ``--quiet``/``--verbose`` flags.

Everything is **opt-in behind one switch**: :func:`enable` /
:func:`disable` (or ``repro train --trace ...`` on the CLI).  Disabled,
every instrumentation point collapses to a single attribute check — the
``obs.span.disabled`` microbenchmark and the bench CI gate enforce the
"near-zero overhead" contract (train-step regression < 3 %).
"""

from __future__ import annotations

import time

from . import console, events, metrics, trace
from .console import Console, configure_verbosity, get_console
from .events import Event, EventBus, get_event_bus, publish
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimerMetric,
    counter,
    gauge,
    get_registry,
    histogram,
    log_spaced_buckets,
    observe,
)
from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    get_tracer,
    instant,
    set_tracer,
    span,
    validate_chrome_trace,
)

__all__ = [
    "trace", "metrics", "events", "console",
    "Tracer", "Span", "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "TimerMetric", "EventBus", "Event", "Console",
    "enable", "disable", "is_enabled", "reset",
    "span", "instant", "timed", "counter", "gauge", "histogram", "observe",
    "publish", "get_tracer", "set_tracer", "get_registry", "get_event_bus", "get_console",
    "configure_verbosity", "log_spaced_buckets", "validate_chrome_trace",
    "export_trace", "export_metrics",
]


# module aliases so enable()'s keyword names can mirror the component names
_trace_mod, _metrics_mod, _events_mod = trace, metrics, events


def enable(tracing: bool = True, metrics: bool = True, events: bool = True) -> None:
    """Switch the telemetry subsystem on component by component.

    ``obs.enable()`` turns everything on; ``obs.enable(tracing=False)``
    records metrics and events without buffering spans, etc.
    """
    _trace_mod.get_tracer().enabled = bool(tracing)
    _metrics_mod.get_registry().enabled = bool(metrics)
    _events_mod.get_event_bus().enabled = bool(events)


def disable() -> None:
    """Switch every telemetry component off (the default state)."""
    trace.get_tracer().enabled = False
    metrics.get_registry().enabled = False
    events.get_event_bus().enabled = False


def is_enabled() -> bool:
    """True when any telemetry component is recording."""
    return (
        trace.get_tracer().enabled
        or metrics.get_registry().enabled
        or events.get_event_bus().enabled
    )


def reset() -> None:
    """Drop all recorded spans, metric series, and buffered events."""
    trace.get_tracer().clear()
    metrics.get_registry().reset()
    events.get_event_bus().clear()


class _TimedSpan:
    """Span *and* latency-histogram observation in one context manager.

    The histogram series is ``<name>_s`` (seconds) with optional low-
    cardinality ``hist_labels`` — span attributes like ``iteration`` stay
    out of the metric key space so a long run cannot explode the registry.
    """

    __slots__ = ("_name", "_hist_labels", "_cm", "_start_ns", "_registry")

    def __init__(self, tracer, registry, name, hist_labels, attrs):
        self._name = name
        self._hist_labels = hist_labels
        self._registry = registry if registry.enabled else None
        self._cm = tracer.span(name, **attrs) if tracer.enabled else None
        self._start_ns = 0

    def __enter__(self) -> "_TimedSpan":
        if self._cm is not None:
            self._cm.__enter__()
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = (time.perf_counter_ns() - self._start_ns) * 1e-9
        if self._registry is not None:
            self._registry.histogram(
                self._name + "_s", **(self._hist_labels or {})
            ).observe(elapsed)
        if self._cm is not None:
            self._cm.__exit__(exc_type, exc, tb)
        return False


def timed(name: str, hist_labels: dict | None = None, **attrs):
    """Time a region into both the trace and the ``<name>_s`` histogram.

    No-op (shared null context manager) when both tracing and metrics are
    disabled — this is the one helper the hot paths call.
    """
    tracer = trace.get_tracer()
    registry = metrics.get_registry()
    if not (tracer.enabled or registry.enabled):
        return NULL_SPAN
    return _TimedSpan(tracer, registry, name, hist_labels, attrs)


def export_trace(path: str, thread_names: dict[int, str] | None = None) -> None:
    """Write the default tracer's Chrome trace-event JSON to ``path``."""
    trace.get_tracer().export_chrome(path, thread_names=thread_names)


def export_metrics(path: str, fmt: str = "json") -> None:
    """Write the default registry snapshot to ``path`` (``json`` or ``csv``)."""
    if fmt == "json":
        metrics.get_registry().to_json(path)
    elif fmt == "csv":
        metrics.get_registry().to_csv(path)
    else:
        raise ValueError(f"unknown metrics format {fmt!r}; expected json or csv")
