"""Structured span tracing with a Chrome trace-event exporter.

A :class:`Span` is one timed region — a train step, an allreduce, a batch
fetch — with a name, wall-clock bounds (``time.perf_counter_ns``), the
thread that ran it, free-form attributes, and its position in the per-thread
nesting stack.  A :class:`Tracer` collects finished spans and instant events
thread-safely; :func:`to_chrome_trace` serialises them to the Chrome
trace-event JSON format, loadable in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_ (one track per simulated rank thread,
nesting rendered from time containment).

Overhead discipline: tracing is **off by default** and every module-level
helper (:func:`span`, :func:`instant`) bails out on a single attribute check
when disabled, returning a shared no-op context manager — no allocation, no
locking, no clock read.  The hot paths instrumented across the repo
(``Trainer.train_step``, the sync-SGD worker loop, the fabric) therefore pay
only that check; the ``obs.span.disabled`` microbenchmark and the CI
regression gate keep it that way.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "TraceSchemaError",
    "get_tracer",
    "set_tracer",
    "span",
    "instant",
    "current_span",
    "to_chrome_trace",
    "validate_chrome_trace",
]


class TraceSchemaError(ValueError):
    """A payload does not conform to the Chrome trace-event schema."""


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    name: str
    start_ns: int
    end_ns: int | None = None
    tid: int = 0
    attrs: dict = field(default_factory=dict)
    #: name of the enclosing span on the same thread (None at top level)
    parent: str | None = None
    #: nesting depth on the owning thread (0 = top level)
    depth: int = 0

    @property
    def duration_ns(self) -> int:
        """Span length in nanoseconds (0 while still open)."""
        return 0 if self.end_ns is None else self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns * 1e-9


@dataclass
class InstantEvent:
    """A zero-duration mark (fault injections, checkpoints, verdicts)."""

    name: str
    time_ns: int
    tid: int = 0
    attrs: dict = field(default_factory=dict)


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled.

    Reentrant and reusable by construction (it has no state), so one module
    instance serves every disabled call site concurrently.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        """No-op attribute update (mirrors :class:`_LiveSpan.set`)."""


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one :class:`Span` into its tracer.

    Exception-safe: the span is always closed and recorded, and an escaping
    exception is noted in the span's attributes (``error`` = exception type)
    before being re-raised.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_: Span):
        self._tracer = tracer
        self._span = span_

    def set(self, **attrs) -> None:
        """Attach or update attributes on the running span."""
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Thread-safe collector of spans and instant events.

    Parameters
    ----------
    enabled:
        Initial state; flip :attr:`enabled` at any time (the switch is a
        plain attribute read on the hot path).
    max_events:
        Optional cap on retained spans+instants; the oldest half is dropped
        when the cap is hit, so a runaway loop cannot exhaust memory.
    """

    def __init__(self, enabled: bool = False, max_events: int | None = None):
        self.enabled = bool(enabled)
        self.max_events = max_events
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._instants: list[InstantEvent] = []
        self._local = threading.local()
        #: thread ident -> thread name, captured as spans are opened so the
        #: exporter can label each rank's track (threads may be gone by then)
        self._thread_names: dict[int, str] = {}
        #: perf_counter origin so exported timestamps start near zero
        self.origin_ns = time.perf_counter_ns()

    # -- recording --------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> "_LiveSpan | _NullSpan":
        """Open a nested span; use as ``with tracer.span("x", k=v): ...``."""
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        ident = threading.get_ident()
        if ident not in self._thread_names:
            self._thread_names[ident] = threading.current_thread().name
        s = Span(
            name=name,
            start_ns=time.perf_counter_ns(),
            tid=ident,
            attrs=attrs,
            parent=parent.name if parent is not None else None,
            depth=len(stack),
        )
        stack.append(s)
        return _LiveSpan(self, s)

    def _finish(self, s: Span) -> None:
        s.end_ns = time.perf_counter_ns()
        stack = self._stack()
        # Pop back to this span even if an inner span leaked (exception
        # unwinding closes outer spans first via __exit__ ordering, but a
        # hand-held context manager could be closed out of order).
        while stack and stack[-1] is not s:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            self._spans.append(s)
            self._trim()

    def instant(self, name: str, **attrs) -> None:
        """Record a zero-duration mark (no-op while disabled)."""
        if not self.enabled:
            return
        ev = InstantEvent(
            name=name,
            time_ns=time.perf_counter_ns(),
            tid=threading.get_ident(),
            attrs=attrs,
        )
        with self._lock:
            self._instants.append(ev)
            self._trim()

    def _trim(self) -> None:
        if self.max_events is None:
            return
        if len(self._spans) + len(self._instants) > self.max_events:
            self._spans = self._spans[len(self._spans) // 2 :]
            self._instants = self._instants[len(self._instants) // 2 :]

    # -- inspection -------------------------------------------------------------
    def current_span(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def spans(self) -> list[Span]:
        """Snapshot of finished spans (recording order)."""
        with self._lock:
            return list(self._spans)

    @property
    def instants(self) -> list[InstantEvent]:
        with self._lock:
            return list(self._instants)

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, name: str) -> list[Span]:
        """Finished spans whose direct parent span was called ``name``."""
        return [s for s in self.spans if s.parent == name]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._instants.clear()
        self.origin_ns = time.perf_counter_ns()

    # -- export -----------------------------------------------------------------
    def to_chrome(self, thread_names: dict[int, str] | None = None) -> dict:
        """Chrome trace-event payload for everything recorded so far."""
        with self._lock:
            spans = list(self._spans)
            instants = list(self._instants)
        if thread_names is None:
            thread_names = dict(self._thread_names)
        return to_chrome_trace(
            spans, instants, origin_ns=self.origin_ns, thread_names=thread_names
        )

    def export_chrome(self, path: str, thread_names: dict[int, str] | None = None) -> None:
        """Write the Chrome trace-event JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(thread_names), fh, indent=1)
            fh.write("\n")


# ---------------------------------------------------------------------------
# Chrome trace-event serialisation
# ---------------------------------------------------------------------------

def _json_safe(value):
    """Coerce attribute values to JSON-serialisable types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    try:  # numpy scalars expose item() without an explicit numpy import here
        return value.item()
    except AttributeError:
        return repr(value)


def to_chrome_trace(
    spans: list[Span],
    instants: list[InstantEvent] | None = None,
    origin_ns: int = 0,
    thread_names: dict[int, str] | None = None,
) -> dict:
    """Serialise spans/instants to the Chrome trace-event *object* format.

    Spans become complete (``"ph": "X"``) events with microsecond ``ts`` /
    ``dur``; instants become thread-scoped ``"ph": "i"`` marks; thread names
    become ``thread_name`` metadata records so Perfetto labels each rank's
    track.  Timestamps are relative to ``origin_ns`` so traces start at ~0.
    """
    events: list[dict] = []
    tids = sorted(
        {s.tid for s in spans} | {e.tid for e in (instants or [])}
    )
    # Chrome wants small integer tids; map thread idents stably.
    tid_map = {ident: i for i, ident in enumerate(tids)}
    for ident, small in tid_map.items():
        name = (thread_names or {}).get(ident)
        if name:
            events.append({
                "ph": "M",
                "pid": 0,
                "tid": small,
                "name": "thread_name",
                "args": {"name": name},
            })
    for s in spans:
        events.append({
            "ph": "X",
            "pid": 0,
            "tid": tid_map.get(s.tid, 0),
            "name": s.name,
            "cat": s.name.split(".", 1)[0],
            "ts": (s.start_ns - origin_ns) / 1e3,
            "dur": (s.duration_ns) / 1e3,
            "args": _json_safe(s.attrs),
        })
    for ev in instants or []:
        events.append({
            "ph": "i",
            "s": "t",
            "pid": 0,
            "tid": tid_map.get(ev.tid, 0),
            "name": ev.name,
            "cat": "event",
            "ts": (ev.time_ns - origin_ns) / 1e3,
            "args": _json_safe(ev.attrs),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


_PHASES_WITH_DUR = {"X"}
_KNOWN_PHASES = {"X", "i", "M", "B", "E", "C"}


def validate_chrome_trace(payload: dict) -> None:
    """Raise :class:`TraceSchemaError` unless ``payload`` is a valid Chrome
    trace-event object (the subset this exporter emits plus the common
    begin/end/counter phases)."""
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise TraceSchemaError("payload must be an object with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise TraceSchemaError("'traceEvents' must be an array")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise TraceSchemaError(f"event {i} must be an object")
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            raise TraceSchemaError(f"event {i}: unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise TraceSchemaError(f"event {i}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise TraceSchemaError(f"event {i}: {key} must be an integer")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise TraceSchemaError(f"event {i}: ts must be non-negative")
        if ph in _PHASES_WITH_DUR:
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceSchemaError(f"event {i}: dur must be non-negative")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            raise TraceSchemaError(f"event {i}: instant scope must be t/p/g")
        if "args" in ev and not isinstance(ev["args"], dict):
            raise TraceSchemaError(f"event {i}: args must be an object")


# ---------------------------------------------------------------------------
# Process-wide default tracer
# ---------------------------------------------------------------------------

_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumented hot path records into."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer (returns the previous one)."""
    global _TRACER
    prev, _TRACER = _TRACER, tracer
    return prev


def span(name: str, **attrs):
    """Open a span on the default tracer; no-op while tracing is disabled."""
    t = _TRACER
    if not t.enabled:
        return NULL_SPAN
    return t.span(name, **attrs)


def instant(name: str, **attrs) -> None:
    """Record an instant mark on the default tracer (no-op when disabled)."""
    t = _TRACER
    if t.enabled:
        t.instant(name, **attrs)


def current_span() -> Span | None:
    """Innermost open span of the calling thread on the default tracer."""
    return _TRACER.current_span()
