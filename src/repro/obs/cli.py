"""Command implementations behind ``repro trace <export|summary|validate>``.

Kept out of :mod:`repro.cli` (mirroring :mod:`repro.bench.runner`) so the
telemetry machinery stays importable and testable on its own, and so the
CLI only pays the import cost when a trace subcommand actually runs.

``repro trace export`` runs a small *traced* sync-SGD job — a 4-rank MLP on
Gaussian blobs over the Omni-Path α-β profile, with a seeded fault plan
armed (message loss + one straggler) — and writes the Chrome trace-event
JSON plus an optional metrics snapshot.  The resulting file opens directly
in ``chrome://tracing`` or Perfetto and shows the nested
``trainer.train_step`` → ``cluster.grad_sync`` → ``comm.allreduce`` spans
per rank thread with fault marks on the same timeline.
"""

from __future__ import annotations

import argparse
import json
from collections import Counter as _TallyCounter

from . import disable, enable, export_metrics, export_trace, reset
from .console import get_console
from .metrics import MetricsSchemaError, validate_metrics_snapshot
from .trace import TraceSchemaError, get_tracer, validate_chrome_trace

__all__ = ["add_trace_parser", "cmd_trace", "run_traced_demo",
           "check_overlap_speedup"]

DEFAULT_TRACE_OUT = "trace.json"


def add_trace_parser(sub) -> None:
    """Attach the ``trace`` subcommand (``export``/``summary``/``validate``)."""
    p = sub.add_parser("trace", help="capture, summarise, or validate traces")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    exp = trace_sub.add_parser(
        "export",
        help="run a small traced sync-SGD job and write the Chrome trace JSON",
    )
    exp.add_argument("--out", default=DEFAULT_TRACE_OUT,
                     help=f"trace output path (default: {DEFAULT_TRACE_OUT})")
    exp.add_argument("--metrics-out", default=None,
                     help="also write a metrics snapshot (JSON) here")
    exp.add_argument("--world", type=int, default=4, help="simulated ranks")
    exp.add_argument("--epochs", type=int, default=2)
    exp.add_argument("--batch", type=int, default=32, help="global batch size")
    exp.add_argument("--examples", type=int, default=96, help="dataset size")
    exp.add_argument("--algorithm", default="ring",
                     choices=["tree", "ring", "rhd"])
    exp.add_argument("--drop-prob", type=float, default=0.02,
                     help="per-message loss probability of the armed fault plan")
    exp.add_argument("--straggler-mult", type=float, default=1.5,
                     help="slowdown of the straggling rank (1.0 disables)")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--bucket-bytes", type=int, default=None, metavar="N",
                     help="bucket the gradient exchange into ~N-byte buckets")
    exp.add_argument("--overlap", action="store_true",
                     help="overlap bucketed allreduces with backward compute "
                          "(the trace then shows cluster.bucket_sync spans)")
    exp.add_argument("--check-overlap-speedup", action="store_true",
                     help="also run the fault-free overlapped and monolithic "
                          "variants and fail unless overlap reduces "
                          "simulated_seconds (CI smoke of the overlap path)")

    summ = trace_sub.add_parser("summary", help="per-span-name statistics of a trace file")
    summ.add_argument("file", help="Chrome trace-event JSON to summarise")

    val = trace_sub.add_parser(
        "validate",
        help="schema-check trace/metrics JSON files; exit 1 on violation",
    )
    val.add_argument("files", nargs="+", help="trace or metrics JSON files")


def run_traced_demo(
    world: int = 4,
    epochs: int = 2,
    batch: int = 32,
    examples: int = 96,
    algorithm: str = "ring",
    drop_prob: float = 0.02,
    straggler_mult: float = 1.5,
    seed: int = 0,
    bucket_bytes: int | None = None,
    overlap: bool = False,
):
    """Run the small fault-armed sync-SGD job ``trace export`` captures.

    Telemetry must already be enabled; returns the :class:`ClusterResult`.
    The straggler guarantees at least one fault event lands in the trace
    even when the seeded message-loss draw stays quiet.
    """
    from ..cluster import SyncSGDConfig, train_sync_sgd
    from ..core import SGD, ConstantLR
    from ..data import gaussian_blobs
    from ..faults import FaultPlan
    from ..nn.models import mlp
    from ..perfmodel import network

    x, y = gaussian_blobs(examples, num_classes=3, dim=8, seed=seed)

    def builder():
        return mlp(8, [12], 3, seed=seed + 1)

    stragglers = {1 % world: straggler_mult} if straggler_mult != 1.0 else {}
    plan = FaultPlan(seed=seed, drop_prob=drop_prob, stragglers=stragglers)
    config = SyncSGDConfig(
        world=world,
        epochs=epochs,
        batch_size=batch,
        algorithm=algorithm,
        profile=network("opa"),
        compute_time=lambda k: 1e-4 * k,
        shuffle_seed=seed,
        fault_plan=plan,
        recv_timeout=10.0,
        bucket_bytes=bucket_bytes,
        overlap=overlap,
    )
    return train_sync_sgd(
        builder,
        lambda p: SGD(p, momentum=0.9, weight_decay=0.0005),
        ConstantLR(0.1),
        x, y, x[: examples // 3], y[: examples // 3],
        config,
    )


def check_overlap_speedup(
    world: int = 4, algorithm: str = "tree", seed: int = 0
) -> tuple[float, float]:
    """Fault-free overlap-vs-monolithic comparison for CI smoke.

    Runs the same sync-SGD job twice — monolithic blocking exchange vs
    overlapped 16 KiB buckets — on a bandwidth-heavy α-β profile where
    backward compute can hide most of the allreduce.  The model is the
    micro ResNet proxy: its ~30 similar-sized tensors bucket evenly, the
    regime where overlap pays (one huge tensor would collapse the plan to
    a single exposed bucket).  Returns ``(monolithic_seconds,
    overlapped_seconds)``.  Fault-free so the comparison is exactly
    reproducible.
    """
    from ..cluster import SyncSGDConfig, train_sync_sgd
    from ..comm import NetworkProfile
    from ..core import SGD, ConstantLR
    from ..nn.models import micro_resnet
    import numpy as np

    rng = np.random.default_rng(seed)
    x = rng.normal(size=(32, 3, 8, 8))
    y = rng.integers(0, 10, size=32)

    def builder():
        return micro_resnet(num_classes=10, seed=seed + 1)

    base = dict(
        world=world, epochs=1, batch_size=32, algorithm=algorithm,
        profile=NetworkProfile(alpha=1e-5, beta=1e-8),
        compute_time=lambda k: 2.5e-3 * k, shuffle_seed=seed,
    )
    opt = lambda p: SGD(p, momentum=0.9)  # noqa: E731
    sims = []
    for overlap in (False, True):
        cfg = SyncSGDConfig(
            **base, overlap=overlap,
            bucket_bytes=(1 << 14) if overlap else None,
        )
        res = train_sync_sgd(builder, opt, ConstantLR(0.1),
                             x, y, x[:8], y[:8], cfg)
        sims.append(res.simulated_seconds)
    return sims[0], sims[1]


def _cmd_export(args: argparse.Namespace) -> int:
    console = get_console()
    if args.world < 1:
        raise SystemExit("error: --world must be >= 1")
    enable()
    reset()
    try:
        result = run_traced_demo(
            world=args.world,
            epochs=args.epochs,
            batch=args.batch,
            examples=args.examples,
            algorithm=args.algorithm,
            drop_prob=args.drop_prob,
            straggler_mult=args.straggler_mult,
            seed=args.seed,
            bucket_bytes=args.bucket_bytes,
            overlap=args.overlap,
        )
        export_trace(args.out)
        if args.metrics_out:
            export_metrics(args.metrics_out)
    finally:
        disable()
    if args.check_overlap_speedup:
        mono_s, overlap_s = check_overlap_speedup(
            world=args.world, algorithm=args.algorithm, seed=args.seed
        )
        if not overlap_s < mono_s:
            console.error(
                f"overlap did not beat monolithic: {overlap_s:.6f}s vs "
                f"{mono_s:.6f}s simulated"
            )
            return 1
        console.info(
            f"overlap check: {mono_s:.4f}s monolithic -> {overlap_s:.4f}s "
            f"overlapped ({1 - overlap_s / mono_s:.1%} faster, simulated)"
        )
    tracer = get_tracer()
    console.info(
        f"traced {args.world}-rank sync-SGD run: "
        f"final test accuracy {result.final_test_accuracy:.4f}, "
        f"{result.messages} messages, "
        f"{len(tracer.spans)} spans, {len(tracer.instants)} events"
    )
    console.info(f"wrote {args.out} (open in chrome://tracing or ui.perfetto.dev)")
    if args.metrics_out:
        console.info(f"wrote {args.metrics_out}")
    reset()
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    console = get_console()
    with open(args.file) as fh:
        payload = json.load(fh)
    try:
        validate_chrome_trace(payload)
    except TraceSchemaError as exc:
        console.error(f"{args.file}: {exc}")
        return 1
    durations: dict[str, list[float]] = {}
    instants: _TallyCounter = _TallyCounter()
    for ev in payload["traceEvents"]:
        if ev["ph"] == "X":
            durations.setdefault(ev["name"], []).append(ev["dur"])
        elif ev["ph"] == "i":
            instants[ev["name"]] += 1
    console.info(f"{'span':<28}{'count':>8}{'total_ms':>12}{'mean_us':>12}")
    for name, durs in sorted(durations.items(), key=lambda kv: -sum(kv[1])):
        total_us = sum(durs)
        console.info(
            f"{name:<28}{len(durs):>8}{total_us / 1e3:>12.3f}"
            f"{total_us / len(durs):>12.1f}"
        )
    if instants:
        console.info("")
        console.info(f"{'instant event':<28}{'count':>8}")
        for name, count in instants.most_common():
            console.info(f"{name:<28}{count:>8}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    console = get_console()
    status = 0
    for path in args.files:
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            console.error(f"{path}: {exc}")
            status = 1
            continue
        try:
            if isinstance(payload, dict) and "traceEvents" in payload:
                validate_chrome_trace(payload)
                kind = "trace"
            else:
                validate_metrics_snapshot(payload)
                kind = "metrics"
        except (TraceSchemaError, MetricsSchemaError) as exc:
            console.error(f"{path}: {exc}")
            status = 1
            continue
        console.info(f"{path}: ok ({kind})")
    return status


def cmd_trace(args: argparse.Namespace) -> int:
    """Dispatch ``repro trace <export|summary|validate>``."""
    commands = {"export": _cmd_export, "summary": _cmd_summary,
                "validate": _cmd_validate}
    return commands[args.trace_command](args)
