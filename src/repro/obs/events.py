"""Event bus: fault, detector, and checkpoint activity on one timeline.

PR 1's failure machinery (injector, failure detector, elastic restart) and
the checkpoint path each kept their own private accounting; this bus gives
them one publication point so a fault shows up *in the same trace* as the
compute it perturbed — the view you need to answer "why was iteration 412
slow" (a retransmit storm looks identical to a straggler in aggregate
counters, and completely different on a timeline).

``publish(kind, **fields)`` is a no-op on a single attribute check while
observability is disabled.  When enabled, each event is timestamped,
appended to a bounded ring buffer, forwarded to every subscriber, and —
when tracing is also on — mirrored into the tracer as an instant mark so
it lands in the exported Chrome trace.

Event kinds published by the instrumented paths
-----------------------------------------------
``fault.message_loss``     frame(s) lost/corrupted; retransmit delay priced
``fault.delay``            injected network delay
``fault.straggle``         straggler multiplier stretched a compute phase
``fault.kill``             a rank's fail-stop crash fired
``fault.link_down``        retransmit budget exhausted, link declared dead
``detector.verdict``       failure-detector diagnosis after a recv timeout
``checkpoint.save``        recovery snapshot captured (and optionally on disk)
``recovery.restart``       elastic restart with the surviving ranks
``recovery.abort``         failed step could not be recovered; job aborted
``trainer.epoch``          serial-trainer epoch boundary (loss/accuracy)
``cluster.epoch``          sync-SGD epoch boundary (accuracy, simulated time)
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from . import trace as _trace

__all__ = ["Event", "EventBus", "get_event_bus", "set_event_bus",
           "publish", "subscribe", "unsubscribe"]


@dataclass(frozen=True)
class Event:
    """One published occurrence: a kind, a wall-clock stamp, and fields."""

    kind: str
    time_ns: int
    fields: dict = field(default_factory=dict)


class EventBus:
    """Bounded, thread-safe publish/subscribe hub.

    Parameters
    ----------
    enabled:
        Initial state of the single-branch fast-path switch.
    maxlen:
        Ring-buffer capacity; the oldest events fall off first, so a noisy
        fault sweep cannot exhaust memory.
    """

    def __init__(self, enabled: bool = False, maxlen: int = 10_000):
        self.enabled = bool(enabled)
        self._events: deque[Event] = deque(maxlen=maxlen)
        self._subscribers: list[Callable[[Event], None]] = []
        self._lock = threading.Lock()

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        """Register ``fn`` to be called synchronously on every publish."""
        with self._lock:
            self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        with self._lock:
            try:
                self._subscribers.remove(fn)
            except ValueError:
                pass

    def publish(self, kind: str, **fields) -> Event | None:
        """Record and fan out one event (no-op while disabled)."""
        if not self.enabled:
            return None
        ev = Event(kind=kind, time_ns=time.perf_counter_ns(), fields=fields)
        with self._lock:
            self._events.append(ev)
            subscribers = list(self._subscribers)
        # mirror into the trace timeline so Perfetto shows the fault mark
        # nested among the spans it interrupted
        _trace.instant(kind, **fields)
        for fn in subscribers:
            fn(ev)
        return ev

    def events(self, kind: str | None = None) -> list[Event]:
        """Snapshot of buffered events, optionally filtered by kind prefix."""
        with self._lock:
            evs = list(self._events)
        if kind is None:
            return evs
        return [e for e in evs if e.kind == kind or e.kind.startswith(kind + ".")]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


_BUS = EventBus(enabled=False)


def get_event_bus() -> EventBus:
    """The process-wide bus the fault/checkpoint paths publish to."""
    return _BUS


def set_event_bus(bus: EventBus) -> EventBus:
    """Swap the process-wide bus (returns the previous one)."""
    global _BUS
    prev, _BUS = _BUS, bus
    return prev


def publish(kind: str, **fields) -> Event | None:
    """Publish on the default bus; single-branch no-op while disabled."""
    bus = _BUS
    if not bus.enabled:
        return None
    return bus.publish(kind, **fields)


def subscribe(fn: Callable[[Event], None]) -> Callable[[Event], None]:
    return _BUS.subscribe(fn)


def unsubscribe(fn: Callable[[Event], None]) -> None:
    _BUS.unsubscribe(fn)
