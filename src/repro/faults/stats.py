"""Fault accounting: per-run counters and the structured abort report."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["FaultStats", "FaultReport", "TrainingAborted"]


@dataclass
class FaultStats:
    """What the faults cost, in events and simulated seconds.

    Attached to :class:`repro.cluster.sync_sgd.ClusterResult` so experiments
    can report fault overhead next to time-to-accuracy.  Counter updates go
    through the ``count_*`` methods, which are thread-safe (rank threads
    report concurrently).
    """

    messages_dropped: int = 0
    messages_delayed: int = 0
    messages_corrupted: int = 0
    retransmits: int = 0
    timeouts_fired: int = 0
    ranks_killed: int = 0
    recoveries: int = 0
    straggler_seconds: float = 0.0
    retransmit_seconds: float = 0.0
    #: simulated progress discarded at restarts (failure time − checkpoint time)
    lost_seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def count_loss(
        self, drop_rounds: int, corrupt_rounds: int, delay: float
    ) -> None:
        """One message that lost ``drop_rounds + corrupt_rounds`` frames
        before getting through (each lost frame = one ack-timeout + one
        retransmit costing ``delay`` total simulated seconds)."""
        rounds = drop_rounds + corrupt_rounds
        with self._lock:
            self.messages_dropped += drop_rounds
            self.messages_corrupted += corrupt_rounds
            self.retransmits += rounds
            self.timeouts_fired += rounds
            self.retransmit_seconds += delay

    def count_delay(self, seconds: float) -> None:
        with self._lock:
            self.messages_delayed += 1
            self.retransmit_seconds += seconds

    def count_straggle(self, seconds: float) -> None:
        with self._lock:
            self.straggler_seconds += seconds

    def count_kill(self) -> None:
        with self._lock:
            self.ranks_killed += 1

    def count_timeout(self) -> None:
        with self._lock:
            self.timeouts_fired += 1

    def merge(self, other: "FaultStats") -> None:
        """Accumulate ``other`` (one attempt's counters) into this record."""
        with self._lock:
            self.messages_dropped += other.messages_dropped
            self.messages_delayed += other.messages_delayed
            self.messages_corrupted += other.messages_corrupted
            self.retransmits += other.retransmits
            self.timeouts_fired += other.timeouts_fired
            self.ranks_killed += other.ranks_killed
            self.recoveries += other.recoveries
            self.straggler_seconds += other.straggler_seconds
            self.retransmit_seconds += other.retransmit_seconds
            self.lost_seconds += other.lost_seconds

    def summary(self) -> str:
        return (
            f"dropped={self.messages_dropped} corrupted={self.messages_corrupted} "
            f"delayed={self.messages_delayed} retransmits={self.retransmits} "
            f"timeouts={self.timeouts_fired} killed={self.ranks_killed} "
            f"recoveries={self.recoveries} "
            f"lost={self.lost_seconds:.3g}s straggle={self.straggler_seconds:.3g}s "
            f"retransmit={self.retransmit_seconds:.3g}s"
        )


@dataclass
class FaultReport:
    """Structured post-mortem of a failed (or recovered) training run."""

    #: ``"recovered"`` | ``"aborted"``
    outcome: str
    #: why the run could not simply continue
    cause: str
    #: ranks confirmed dead by the transport, in original numbering
    dead_ranks: list[int] = field(default_factory=list)
    #: global iteration at which the failure was detected (best effort)
    failed_at_iteration: int | None = None
    #: epoch the survivors restarted from (None when aborted)
    restarted_from_epoch: int | None = None
    world_before: int = 0
    world_after: int = 0
    stats: FaultStats | None = None

    def format(self) -> str:
        lines = [
            f"FaultReport: {self.outcome} ({self.cause})",
            f"  dead ranks: {self.dead_ranks or 'none'}",
            f"  world: {self.world_before} -> {self.world_after}",
        ]
        if self.failed_at_iteration is not None:
            lines.append(f"  failed at iteration: {self.failed_at_iteration}")
        if self.restarted_from_epoch is not None:
            lines.append(f"  restarted from epoch: {self.restarted_from_epoch}")
        if self.stats is not None:
            lines.append(f"  stats: {self.stats.summary()}")
        return "\n".join(lines)


class TrainingAborted(RuntimeError):
    """A cluster run hit a fault it was not allowed (or able) to survive."""

    def __init__(self, report: FaultReport):
        self.report = report
        super().__init__(report.format())
