"""Declarative, seedable fault plans.

A :class:`FaultPlan` is pure data: *what* can go wrong, with what
probability or at what point.  The :class:`repro.faults.injector.FaultInjector`
turns a plan into deterministic per-message / per-rank decisions; the same
plan + seed always yields the same fault sequence regardless of thread
scheduling, which is what makes fault experiments reproducible.

Fault taxonomy (mirrors what production runs at the paper's scale hit):

==============  ============================================================
fault           model
==============  ============================================================
message loss    each message dropped i.i.d. with ``drop_prob``; the reliable
                link layer retransmits with exponential backoff, so values
                are preserved but time is lost.
message delay   with ``delay_prob`` a message's arrival is pushed back by
                ``delay_seconds`` (congestion / adaptive routing).
corruption      with ``corrupt_prob`` the payload's frame is damaged; the
                checksum catches it and the link treats it as a loss.
straggler       ``stragglers[rank]`` multiplies that rank's compute time
                (thermal throttling, OS jitter, a slow KNL tile).
crash           ``kills[rank]`` is the global training iteration at whose
                start the rank fail-stops (process dies, never speaks
                again).
==============  ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..comm.reliable import RetransmitPolicy

__all__ = ["FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector needs to decide the fault sequence.

    Probabilities are per *message*; ``stragglers`` and ``kills`` are keyed
    by rank id within the current world (after an elastic restart the
    surviving ranks are renumbered ``0..P'−1`` and consumed kills do not
    re-fire).
    """

    seed: int = 0
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay_seconds: float = 0.0
    corrupt_prob: float = 0.0
    stragglers: Mapping[int, float] = field(default_factory=dict)
    kills: Mapping[int, int] = field(default_factory=dict)
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)

    def __post_init__(self):
        for name in ("drop_prob", "delay_prob", "corrupt_prob"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1); got {p}")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        for rank, mult in self.stragglers.items():
            if mult < 1.0:
                raise ValueError(
                    f"straggler multiplier for rank {rank} must be >= 1 "
                    f"(got {mult}); use the perfmodel for faster ranks"
                )
        for rank, iteration in self.kills.items():
            if rank < 0 or iteration < 0:
                raise ValueError(
                    f"kills maps rank -> iteration, both non-negative "
                    f"(got {rank} -> {iteration})"
                )

    @property
    def lossy(self) -> bool:
        """True if any per-message fault can fire (loss/delay/corruption)."""
        return (
            self.drop_prob > 0.0 or self.delay_prob > 0.0 or self.corrupt_prob > 0.0
        )

    @property
    def any_faults(self) -> bool:
        return self.lossy or bool(self.stragglers) or bool(self.kills)

    def without_rank(self, dead: set[int], world: int) -> "FaultPlan":
        """Plan for the surviving world after ``dead`` ranks crashed.

        Survivors keep their relative order and are renumbered densely;
        straggler multipliers follow the rank they were attached to, and
        already-fired kills are dropped (a rank dies once).
        """
        survivors = [r for r in range(world) if r not in dead]
        renumber = {old: new for new, old in enumerate(survivors)}
        return FaultPlan(
            seed=self.seed,
            drop_prob=self.drop_prob,
            delay_prob=self.delay_prob,
            delay_seconds=self.delay_seconds,
            corrupt_prob=self.corrupt_prob,
            stragglers={
                renumber[r]: m for r, m in self.stragglers.items() if r in renumber
            },
            kills={
                renumber[r]: i for r, i in self.kills.items() if r in renumber
            },
            retransmit=self.retransmit,
        )
