"""``repro.faults`` — deterministic fault injection and accounting.

The pieces, bottom-up:

* :class:`FaultPlan` — declarative, seedable description of what goes
  wrong (message loss/corruption/delay, stragglers, rank crashes);
* :class:`FaultInjector` — turns a plan into deterministic per-message and
  per-rank decisions, installed as a hook inside
  :class:`repro.comm.SimulatedFabric`;
* :class:`FaultStats` — what the faults cost (events and simulated
  seconds), surfaced on :class:`repro.cluster.ClusterResult`;
* :class:`FaultReport` / :class:`TrainingAborted` — structured post-mortem
  when a run recovers from, or dies to, an unsurvivable fault.

Recovery itself (timeouts, failure detection, checkpoint-restore with
P−1 ranks) lives in :mod:`repro.comm` and :mod:`repro.cluster.sync_sgd`;
see ``docs/architecture.md`` ("Failure model & recovery").
"""

from .injector import FaultInjector
from .plan import FaultPlan
from .stats import FaultReport, FaultStats, TrainingAborted

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "FaultReport",
    "TrainingAborted",
]
