"""Deterministic fault injection over the simulated fabric.

The injector sits inside :class:`repro.comm.fabric.SimulatedFabric` as a
send hook: for every message it decides — deterministically, from the plan
seed and a per-channel message counter — whether the frame is lost,
corrupted (checksum-detected, hence also lost), or delayed, and prices the
reliable-link recovery (ack-timeout + exponential backoff + retransmit)
into the message's arrival time.  Determinism is per *channel*: the n-th
message from rank ``src`` to rank ``dst`` always experiences the same
fault, regardless of thread interleaving, so a seeded run is exactly
reproducible.

Rank-level faults (stragglers, crashes) are queried by the communicator and
the training loop respectively.
"""

from __future__ import annotations

import threading
from collections import defaultdict

import numpy as np

from ..comm.errors import RetransmitExhausted
from ..obs.events import publish as _publish
from ..obs.metrics import counter as _counter, get_registry as _get_registry
from .plan import FaultPlan
from .stats import FaultStats

__all__ = ["FaultInjector"]


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-message and per-rank decisions."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = FaultStats()
        # per-(src, dst) message counters; each channel is written only by
        # the src thread, but defaultdict growth needs a lock
        self._counters: dict[tuple[int, int], int] = defaultdict(int)
        self._counter_lock = threading.Lock()
        self._fired_kills: set[int] = set()
        self._kill_lock = threading.Lock()

    # -- per-message faults -----------------------------------------------------
    def _channel_rng(self, src: int, dst: int) -> np.random.Generator:
        with self._counter_lock:
            n = self._counters[(src, dst)]
            self._counters[(src, dst)] = n + 1
        return np.random.default_rng((self.plan.seed, src, dst, n))

    def decide_send(self, src: int, dst: int) -> float:
        """Extra arrival delay for this message, in simulated seconds.

        Raises :class:`RetransmitExhausted` if the frame is lost more times
        than the retransmit policy allows (the link gives up on the peer).
        """
        plan = self.plan
        if not plan.lossy:
            return 0.0
        rng = self._channel_rng(src, dst)
        policy = plan.retransmit
        extra = 0.0

        drop_rounds = corrupt_rounds = 0
        p_loss = plan.drop_prob + plan.corrupt_prob
        if p_loss > 0.0:
            while True:
                u = rng.random()
                if u >= p_loss:
                    break  # frame delivered, ack returns
                if drop_rounds + corrupt_rounds > policy.max_retries:
                    self.stats.count_loss(
                        drop_rounds, corrupt_rounds, policy.total_delay(
                            drop_rounds + corrupt_rounds
                        )
                    )
                    _publish("fault.link_down", src=src, dst=dst,
                             retries=drop_rounds + corrupt_rounds)
                    if _get_registry().enabled:
                        _counter("faults.retransmits").inc(
                            drop_rounds + corrupt_rounds
                        )
                    raise RetransmitExhausted(
                        src, dst, 0, drop_rounds + corrupt_rounds
                    )
                if u < plan.drop_prob:
                    drop_rounds += 1
                else:
                    corrupt_rounds += 1
        lost = drop_rounds + corrupt_rounds
        if lost:
            delay = policy.total_delay(lost)
            self.stats.count_loss(drop_rounds, corrupt_rounds, delay)
            extra += delay
            _publish("fault.message_loss", src=src, dst=dst,
                     dropped=drop_rounds, corrupted=corrupt_rounds,
                     retransmit_delay_s=delay)
            if _get_registry().enabled:
                _counter("faults.retransmits").inc(lost)

        if plan.delay_prob > 0.0 and rng.random() < plan.delay_prob:
            self.stats.count_delay(plan.delay_seconds)
            extra += plan.delay_seconds
            _publish("fault.delay", src=src, dst=dst,
                     delay_s=plan.delay_seconds)
        return extra

    # -- per-rank faults --------------------------------------------------------
    def compute_multiplier(self, rank: int) -> float:
        """Straggler slowdown for ``rank`` (1.0 = healthy)."""
        return float(self.plan.stragglers.get(rank, 1.0))

    def record_straggle(self, extra_seconds: float) -> None:
        self.stats.count_straggle(extra_seconds)
        _publish("fault.straggle", extra_seconds=extra_seconds)

    def should_kill(self, rank: int, iteration: int) -> bool:
        """True exactly once per rank, at the first iteration >= the plan's
        kill point (``>=`` so a post-restore replay still fires a pending
        kill that lands inside the replayed window)."""
        target = self.plan.kills.get(rank)
        if target is None or iteration < target:
            return False
        with self._kill_lock:
            if rank in self._fired_kills:
                return False
            self._fired_kills.add(rank)
        self.stats.count_kill()
        _publish("fault.kill", rank=rank, iteration=iteration)
        if _get_registry().enabled:
            _counter("faults.kills").inc()
        return True
