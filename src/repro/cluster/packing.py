"""Gradient packing: flatten all parameter gradients into one buffer.

Production stacks fuse gradient tensors into large buckets before the
allreduce so the α (latency) term is paid once per iteration rather than
once per layer; the paper's communication analysis (|W| bytes per iteration,
one logical message) assumes exactly this.  ``flatten``/``unflatten`` give
the simulated cluster the same wire format.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.tensor import Parameter

__all__ = ["flatten_grads", "unflatten_grads", "flatten_params", "unflatten_params"]


def _flatten(arrays: Sequence[np.ndarray], out: np.ndarray | None = None) -> np.ndarray:
    if not arrays:
        raise ValueError("nothing to flatten")
    total = sum(a.size for a in arrays)
    if out is None:
        # single preallocation + one fill pass; np.concatenate would first
        # materialise a temp list of per-array copies for non-contiguous
        # inputs, doubling the transient footprint at |W| scale
        out = np.empty(total, dtype=arrays[0].dtype)
    elif out.shape != (total,):
        raise ValueError(f"out buffer has shape {out.shape}, expected ({total},)")
    offset = 0
    for a in arrays:
        flat = a.reshape(-1)
        out[offset : offset + flat.size] = flat
        offset += flat.size
    return out


def _unflatten_into(flat: np.ndarray, targets: Sequence[np.ndarray]) -> None:
    total = sum(t.size for t in targets)
    if flat.size != total:
        raise ValueError(f"flat buffer has {flat.size} elements, expected {total}")
    offset = 0
    for t in targets:
        t[...] = flat[offset : offset + t.size].reshape(t.shape)
        offset += t.size


def flatten_grads(
    params: Sequence[Parameter], out: np.ndarray | None = None
) -> np.ndarray:
    """One contiguous float64 buffer holding every gradient, in order.

    ``out`` lets the per-iteration caller reuse one bucket buffer instead of
    reallocating |W| floats every step (the same buffer-reuse discipline
    production gradient-fusion stacks apply).
    """
    return _flatten([p.grad for p in params], out=out)


def unflatten_grads(flat: np.ndarray, params: Sequence[Parameter]) -> None:
    """Write ``flat`` back into the gradients (in place)."""
    _unflatten_into(flat, [p.grad for p in params])


def flatten_params(
    params: Sequence[Parameter], out: np.ndarray | None = None
) -> np.ndarray:
    """One contiguous buffer of the parameter *values* (weight broadcast)."""
    return _flatten([p.data for p in params], out=out)


def unflatten_params(flat: np.ndarray, params: Sequence[Parameter]) -> None:
    _unflatten_into(flat, [p.data for p in params])
