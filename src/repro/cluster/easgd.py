"""Elastic Averaging SGD (Zhang, Choromanska & LeCun 2015) — the other
asynchronous-family baseline the paper cites.

Workers hold independent replicas that explore freely for ``tau`` local SGD
steps, then exchange an *elastic* pull with a center variable x̃ kept by the
master:

    x_i ← x_i − α (x_i − x̃)          (worker pulled toward center)
    x̃  ← x̃ + α Σ_i (x_i − x̃)        (center pulled toward workers)

Unlike synchronous SGD, the replicas are *not* kept identical — exploration
is the point — so EASGD is not sequentially consistent; it trades exactness
for reduced communication frequency (one exchange per τ steps instead of
per step).  This implementation is the synchronous-round variant (EASGD's
deterministic form), running on the simulated fabric with the master-worker
topology of Figure 2(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..comm import Communicator, NetworkProfile, run_cluster
from ..core.metrics import top1_accuracy
from ..core.optimizer import Optimizer
from ..core.schedules import ConstantLR, Schedule
from ..nn.layers.base import Module
from ..nn.losses import SoftmaxCrossEntropy
from .packing import flatten_params, unflatten_params
from .sharding import epoch_permutation, shard_batch

__all__ = ["EASGDConfig", "EASGDResult", "train_easgd"]


@dataclass(frozen=True)
class EASGDConfig:
    """Elastic-averaging configuration.

    ``alpha`` is the elastic coefficient (the paper's stability condition
    needs α·P < 1 — validated here); ``tau`` the communication period in
    local steps.
    """

    world: int
    epochs: int
    batch_size: int  # per-worker batch
    alpha: float = 0.05
    tau: int = 4
    profile: NetworkProfile | None = None
    shuffle_seed: int = 0

    def __post_init__(self):
        if self.world < 2:
            raise ValueError("EASGD needs a master and at least one worker")
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if self.alpha * (self.world - 1) >= 1:
            raise ValueError("stability requires alpha * workers < 1")
        if self.tau <= 0:
            raise ValueError("tau must be positive")


@dataclass
class EASGDResult:
    center_accuracy: float = 0.0
    worker_accuracies: list[float] = field(default_factory=list)
    #: mean L2 distance worker→center at the end (exploration spread)
    consensus_distance: float = 0.0
    rounds: int = 0
    simulated_seconds: float = 0.0
    messages: int = 0


def train_easgd(
    model_builder: Callable[[], Module],
    optimizer_builder: Callable[[Sequence], Optimizer],
    schedule: Schedule | float,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    config: EASGDConfig,
) -> EASGDResult:
    """Run synchronous-round EASGD: rank 0 is the center, ranks 1..P−1 are
    exploring workers, each training on its own shard of the data."""
    sched = ConstantLR(schedule) if isinstance(schedule, (int, float)) else schedule
    n = len(x_train)
    n_workers = config.world - 1

    def worker(comm: Communicator):
        model = model_builder()
        params = model.parameters()

        if comm.rank == 0:
            # master: hold the center variable, answer elastic rounds until
            # every worker has signalled completion (workers may run
            # different round counts when shards are uneven)
            center = flatten_params(params)
            rounds = 0
            active = set(range(1, config.world))
            while active:
                msgs = {src: comm.recv(src, tag=1) for src in sorted(active)}
                finished = {s for s, m in msgs.items() if isinstance(m, str)}
                active -= finished
                arrays = {s: m for s, m in msgs.items() if not isinstance(m, str)}
                if arrays:
                    diffs = {s: m - center for s, m in arrays.items()}
                    for src, xi in arrays.items():
                        comm.send(src, xi - config.alpha * diffs[src], tag=2)
                    center = center + config.alpha * sum(diffs.values())
                    rounds += 1
            unflatten_params(center, params)
            model.eval()
            preds = [model.forward(x_test[lo : lo + 512])
                     for lo in range(0, len(x_test), 512)]
            acc = top1_accuracy(np.concatenate(preds), y_test)
            return {"center_acc": acc, "rounds": rounds, "center": center}

        # worker: local SGD with periodic elastic exchange
        optimizer = optimizer_builder(params)
        loss_fn = SoftmaxCrossEntropy()
        iteration = 0
        for epoch in range(config.epochs):
            order = epoch_permutation(n, epoch, config.shuffle_seed)
            my_stream = shard_batch(order, n_workers, comm.rank - 1)
            for lo in range(0, len(my_stream), config.batch_size):
                idx = my_stream[lo : lo + config.batch_size]
                if len(idx) == 0:
                    continue
                model.train()
                optimizer.zero_grad()
                logits = model.forward(x_train[idx])
                loss_fn.forward(logits, y_train[idx])
                model.backward(loss_fn.backward())
                optimizer.step(sched(iteration))
                iteration += 1
                if iteration % config.tau == 0:
                    comm.send(0, flatten_params(params), tag=1)
                    pulled = comm.recv(0, tag=2)
                    unflatten_params(pulled, params)
        # final exchange so the center sees the last state, then stop
        comm.send(0, flatten_params(params), tag=1)
        pulled = comm.recv(0, tag=2)
        unflatten_params(pulled, params)
        comm.send(0, "done", tag=1)

        model.eval()
        preds = [model.forward(x_test[lo : lo + 512])
                 for lo in range(0, len(x_test), 512)]
        acc = top1_accuracy(np.concatenate(preds), y_test)
        return {"worker_acc": acc, "state": flatten_params(params)}

    results, fabric = run_cluster(config.world, worker, profile=config.profile)
    master = results[0]
    workers = results[1:]
    center = master["center"]
    dists = [float(np.linalg.norm(w["state"] - center)) for w in workers]
    return EASGDResult(
        center_accuracy=master["center_acc"],
        worker_accuracies=[w["worker_acc"] for w in workers],
        consensus_distance=float(np.mean(dists)),
        rounds=master["rounds"],
        simulated_seconds=fabric.makespan,
        messages=fabric.stats.messages,
    )
