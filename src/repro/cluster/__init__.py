"""``repro.cluster`` — distributed training on the simulated cluster.

Synchronous data-parallel SGD (the paper's algorithm, allreduce and
master-worker variants) and the asynchronous parameter-server baseline it is
contrasted with.
"""

from .bucketing import Bucket, BucketedExchange, BucketPlan
from .compression import (
    CompressionStats,
    Compressor,
    NoCompression,
    OneBitCompressor,
    TopKCompressor,
    UniformQuantizer,
    compressed_allreduce,
)
from .easgd import EASGDConfig, EASGDResult, train_easgd
from .model_parallel import ColumnParallelDense, RowParallelDense, partition_bounds
from .packing import flatten_grads, flatten_params, unflatten_grads, unflatten_params
from .param_server import ParamServerConfig, ParamServerResult, train_param_server
from .sharding import epoch_permutation, shard_batch, shard_sizes, shard_slice
from .sync_sgd import ClusterResult, SyncSGDConfig, train_sync_sgd

__all__ = [
    "SyncSGDConfig",
    "ClusterResult",
    "train_sync_sgd",
    "Bucket",
    "BucketPlan",
    "BucketedExchange",
    "EASGDConfig",
    "EASGDResult",
    "train_easgd",
    "ParamServerConfig",
    "ParamServerResult",
    "train_param_server",
    "Compressor",
    "NoCompression",
    "OneBitCompressor",
    "TopKCompressor",
    "UniformQuantizer",
    "compressed_allreduce",
    "CompressionStats",
    "ColumnParallelDense",
    "RowParallelDense",
    "partition_bounds",
    "shard_batch",
    "shard_sizes",
    "shard_slice",
    "epoch_permutation",
    "flatten_grads",
    "unflatten_grads",
    "flatten_params",
    "unflatten_params",
]
