"""Deterministic batch sharding for data-parallel training.

Every rank derives the same global epoch permutation from the shared seed
(:meth:`repro.core.trainer.Trainer.epoch_permutation` uses the identical
construction), slices out the same global batch, and takes its own
contiguous shard — no data ever moves over the fabric, matching the paper's
setup where each machine stores its partition locally.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["shard_slice", "shard_batch", "shard_sizes", "epoch_permutation"]


@lru_cache(maxsize=8)
def _cached_permutation(n: int, epoch: int, seed: int) -> np.ndarray:
    perm = np.random.default_rng((seed, epoch)).permutation(n)
    perm.setflags(write=False)  # shared across callers — must stay immutable
    return perm


def epoch_permutation(n: int, epoch: int, seed: int) -> np.ndarray:
    """Global shuffle for ``epoch`` — identical on every rank and identical
    to the serial trainer's, which is what makes the sequential-consistency
    comparison meaningful.

    Every rank of a simulated cluster (and every loader sharing the seed)
    asks for the same permutation each epoch, so the result is memoised in
    a small per-process LRU and returned as a *read-only* array: one rank
    pays the shuffle, the other P−1 get the cached copy for free.
    """
    return _cached_permutation(int(n), int(epoch), int(seed))


def shard_sizes(batch: int, world: int) -> list[int]:
    """Split ``batch`` examples across ``world`` ranks as evenly as possible.

    The first ``batch % world`` ranks get one extra example; sizes therefore
    differ by at most 1 and sum exactly to ``batch``.
    """
    if batch < 0 or world <= 0:
        raise ValueError("batch must be >= 0 and world > 0")
    base, extra = divmod(batch, world)
    return [base + (1 if r < extra else 0) for r in range(world)]


def shard_slice(batch: int, world: int, rank: int) -> slice:
    """Index range of ``rank``'s shard within a global batch of ``batch``."""
    if not 0 <= rank < world:
        raise ValueError(f"rank {rank} out of range")
    sizes = shard_sizes(batch, world)
    lo = sum(sizes[:rank])
    return slice(lo, lo + sizes[rank])


def shard_batch(
    global_indices: np.ndarray, world: int, rank: int
) -> np.ndarray:
    """This rank's slice of a global batch's example indices."""
    return global_indices[shard_slice(len(global_indices), world, rank)]
