"""Bucketed gradient exchange with communication/computation overlap.

The paper's communication model charges the full |W|-byte allreduce
*serially after* compute, but the production stacks it cites (Goyal et
al. 2017; the MLSL stack behind You et al.'s runs) hide most of that cost:
gradients are fused into ~megabyte *buckets* in reverse-backward order and
each bucket's allreduce launches the moment backward has produced its
gradients, overlapping with the differentiation of the remaining (earlier)
layers.

Two pieces:

* :class:`BucketPlan` — a static partition of the model's parameters, in
  reverse ``parameters()`` order (the order backward finalises gradients),
  into ~``bucket_bytes`` buckets, each with a persistent flat float64
  buffer reused every step (no per-iteration |W| allocation).
* :class:`BucketedExchange` — the per-rank driver.  In overlap mode it
  installs gradient-ready hooks on the leaf modules
  (:meth:`repro.nn.layers.base.Module.register_grad_ready_hook`); as soon
  as every parameter of bucket *k* is final — and all earlier buckets have
  launched, preserving the collective program-order contract — it charges
  that slice of backward compute and launches a nonblocking
  ``iallreduce``.  ``finish_step`` flush-launches whatever backward never
  reached (empty shards), waits the buckets in plan order, and unpacks the
  reduced gradients.  In blocking mode (``overlap=False`` with a bucket
  size) the same plan runs as sequential per-bucket blocking allreduces —
  bucketed wire traffic without the overlap.

Simulated-time accounting: launches charge compute through
``Communicator.compute`` (forward = 1/3 of the step, backward split across
buckets by element count) so straggler multipliers still apply, while the
allreduces run on their own pipeline clocks; the rank clock only absorbs
the completion times at the final waits.  A step therefore costs
``max(compute, comm-critical-path)`` — the overlap regime — and the gap is
reported as ``exposed_seconds`` vs ``busy_seconds`` (their ratio is the
overlap efficiency the obs gauge exports).

Bitwise semantics: bucketing only partitions the flat gradient vector.
For the ``tree`` and ``rhd`` algorithms the per-element reduction tree is
independent of the partition, so bucketed results are *bit-identical* to
the monolithic exchange.  ``ring`` assigns chunks to starting ranks by
buffer position, so its summation order changes with the partition —
results agree to summation-reassociation tolerance (~1e-12), exactly the
variation a world-size change already introduces.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..comm.communicator import Communicator
from ..nn.layers.base import Module
from ..nn.tensor import Parameter
from ..obs import timed as _timed
from ..obs.metrics import gauge as _gauge, observe as _observe
from ..perfmodel.overlap import DEFAULT_BUCKET_BYTES, greedy_partition

__all__ = ["Bucket", "BucketPlan", "BucketedExchange", "DEFAULT_BUCKET_BYTES"]


class Bucket:
    """One fused gradient segment with its persistent flat buffer."""

    def __init__(self, index: int, params: Sequence[Parameter]):
        self.index = index
        self.params = tuple(params)
        self.size = sum(p.size for p in self.params)
        self.nbytes = sum(p.data.nbytes for p in self.params)
        self.buffer = np.empty(self.size, dtype=np.float64)

    def pack(self, weight: float = 1.0) -> np.ndarray:
        """Gather the parameters' gradients into the persistent buffer."""
        offset = 0
        buf = self.buffer
        for p in self.params:
            flat = p.grad.reshape(-1)
            buf[offset : offset + flat.size] = flat
            offset += flat.size
        if weight != 1.0:
            buf *= weight
        return buf

    def unpack(self, flat: np.ndarray) -> None:
        """Scatter the reduced buffer back into the parameters' gradients."""
        offset = 0
        for p in self.params:
            p.grad[...] = flat[offset : offset + p.size].reshape(p.grad.shape)
            offset += p.size


class BucketPlan:
    """Reverse-backward partition of a parameter list into gradient buckets.

    Bucket 0 holds the *last* parameters of ``params`` — the gradients
    backward finalises first — so launches naturally follow readiness.
    The greedy boundary rule is shared with the perfmodel predictor
    (:func:`repro.perfmodel.overlap.greedy_partition`), keeping analytic
    and simulated bucket schedules identical.
    """

    def __init__(self, params: Sequence[Parameter], bucket_bytes: int | None = None):
        self.params = list(params)
        if not self.params:
            raise ValueError("cannot build a bucket plan without parameters")
        self.bucket_bytes = (
            DEFAULT_BUCKET_BYTES if bucket_bytes is None else int(bucket_bytes)
        )
        rev = self.params[::-1]
        groups = greedy_partition([p.data.nbytes for p in rev], self.bucket_bytes)
        self.buckets: list[Bucket] = []
        cursor = 0
        for i, group in enumerate(groups):
            self.buckets.append(Bucket(i, rev[cursor : cursor + len(group)]))
            cursor += len(group)
        self.total_size = sum(b.size for b in self.buckets)
        #: param id → bucket index (hooks resolve readiness through this)
        self.bucket_of: dict[int, int] = {
            id(p): b.index for b in self.buckets for p in b.params
        }

    def __len__(self) -> int:
        return len(self.buckets)

    @property
    def bucket_nbytes(self) -> list[int]:
        """Per-bucket wire bytes in launch order (predictor input)."""
        return [b.nbytes for b in self.buckets]

    @classmethod
    def from_model(cls, model: Module, bucket_bytes: int | None = None) -> "BucketPlan":
        return cls(model.parameters(), bucket_bytes=bucket_bytes)


class BucketedExchange:
    """Per-rank driver of the bucketed (optionally overlapped) exchange."""

    def __init__(
        self,
        comm: Communicator,
        plan: BucketPlan,
        algorithm: str = "tree",
        overlap: bool = True,
        compressor=None,
    ):
        if overlap and compressor is not None:
            raise ValueError(
                "compressed exchange is blocking per bucket; use overlap=False"
            )
        self.comm = comm
        self.plan = plan
        self.algorithm = algorithm
        self.overlap = overlap
        self.compressor = compressor
        #: cumulative simulated seconds this rank was blocked on gradient comm
        self.exposed_seconds = 0.0
        #: cumulative simulated seconds of allreduce occupancy (sum of buckets)
        self.busy_seconds = 0.0
        self.steps = 0
        self._hooked: list[Module] = []
        # per-step state
        self._weight = 1.0
        self._bwd_seconds = 0.0
        self._pending = [len(b.params) for b in plan.buckets]
        self._seen: set[int] = set()
        self._next_launch = len(plan.buckets)  # nothing launchable until begin_step
        self._requests: list = [None] * len(plan.buckets)

    # -- overlap hooks -------------------------------------------------------
    def install_hooks(self, model: Module) -> None:
        """Register gradient-ready hooks on every leaf module owning a
        planned parameter; each firing may launch one or more buckets."""
        for module in model.modules():
            own = [
                p for p in vars(module).values()
                if isinstance(p, Parameter) and id(p) in self.plan.bucket_of
            ]
            if own:
                module.register_grad_ready_hook(self._on_grad_ready)
                self._hooked.append(module)

    def remove_hooks(self) -> None:
        for module in self._hooked:
            module.remove_grad_ready_hook()
        self._hooked.clear()

    def _on_grad_ready(self, module: Module) -> None:
        for p in vars(module).values():
            if not isinstance(p, Parameter):
                continue
            bucket_idx = self.plan.bucket_of.get(id(p))
            if bucket_idx is None or id(p) in self._seen:
                continue
            self._seen.add(id(p))
            self._pending[bucket_idx] -= 1
        # launch every consecutive fully-ready bucket, in plan order — the
        # collective program-order contract requires identical launch
        # sequences on every rank
        while (
            self._next_launch < len(self.plan.buckets)
            and self._pending[self._next_launch] == 0
        ):
            self._launch(self._next_launch)

    # -- step lifecycle ------------------------------------------------------
    def begin_step(self, weight: float, compute_seconds: float) -> None:
        """Reset per-step state and charge the forward pass.

        ``compute_seconds`` is the rank's full forward+backward budget for
        the step; a third is charged here (forward), the rest is spread
        across bucket launches proportional to their element counts, so the
        simulated launch times mirror when backward would really produce
        each bucket.  Straggler multipliers apply via ``comm.compute``.
        """
        self._weight = weight
        t_fwd = compute_seconds / 3.0
        self._bwd_seconds = compute_seconds - t_fwd
        self._pending = [len(b.params) for b in self.plan.buckets]
        self._seen = set()
        self._next_launch = 0
        self._requests = [None] * len(self.plan.buckets)
        if t_fwd > 0.0:
            self.comm.compute(t_fwd)

    def _launch(self, index: int) -> None:
        bucket = self.plan.buckets[index]
        if self._bwd_seconds > 0.0:
            self.comm.compute(
                self._bwd_seconds * bucket.size / self.plan.total_size
            )
        flat = bucket.pack(self._weight)
        self._requests[index] = self.comm.iallreduce(
            flat, algorithm=self.algorithm, copy=False
        )
        self._next_launch = index + 1

    def finish_step(self) -> None:
        """Flush, wait, and unpack every bucket; account overlap quality.

        Buckets backward never reached (empty shard: no backward ran, the
        zeroed gradients still participate so the collective matches) are
        launched here first, in plan order.
        """
        while self._next_launch < len(self.plan.buckets):
            self._launch(self._next_launch)
        compute_end = self.comm.time
        with _timed("cluster.bucket_sync", rank=self.comm.rank,
                    buckets=len(self.plan.buckets)):
            for bucket, req in zip(self.plan.buckets, self._requests):
                total = req.wait()
                bucket.unpack(total)
                _observe("cluster.bucket_latency_s", req.sim_latency,
                         rank=self.comm.rank)
        exposed = self.comm.time - compute_end
        busy = sum(req.sim_latency for req in self._requests)
        self.exposed_seconds += exposed
        self.busy_seconds += busy
        self.steps += 1
        if busy > 0.0:
            _gauge("cluster.overlap_efficiency", rank=self.comm.rank).set(
                1.0 - exposed / busy
            )

    # -- blocking bucketed path ---------------------------------------------
    def sync_blocking(self, weight: float) -> None:
        """Sequential per-bucket blocking exchange (``overlap=False``).

        Same plan, same wire partitioning (so fault plans see per-bucket
        messages), but every allreduce — or per-bucket compressed exchange —
        completes before the next launches; comm time is fully exposed.
        """
        start = self.comm.time
        with _timed("cluster.bucket_sync", rank=self.comm.rank,
                    buckets=len(self.plan.buckets)):
            for bucket in self.plan.buckets:
                flat = bucket.pack(weight)
                if self.compressor is not None:
                    from .compression import compressed_allreduce

                    total = compressed_allreduce(self.comm, flat, self.compressor)
                else:
                    total = self.comm.allreduce(flat, algorithm=self.algorithm)
                bucket.unpack(total)
        elapsed = self.comm.time - start
        self.exposed_seconds += elapsed
        self.busy_seconds += elapsed
        self.steps += 1
