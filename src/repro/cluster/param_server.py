"""Asynchronous parameter server (Downpour-style) — the baseline the paper
argues *against*.

The Background section contrasts synchronous SGD with the master-worker
asynchronous scheme: "At each step, the master only communicates with one
worker... first-come-first-serve"; asynchronous methods "are not guaranteed
to be stable on large-scale systems".  This module reproduces that scheme as
a deterministic discrete-event simulation so the sync-vs-async stability
experiment is runnable (and seed-reproducible) on one machine.

Event model per worker cycle:

1. fetch — the server's current weights travel server→worker
   (α + β·|W| seconds);
2. compute — the worker computes a gradient on its next mini-batch against
   those (by now possibly stale) weights, taking ``compute_time`` seconds
   ± jitter drawn from a seeded RNG;
3. push — the gradient travels worker→server; the server applies updates
   strictly in arrival order (FCFS), one at a time.

Staleness of an update = number of server updates applied between the
worker's fetch and its gradient's arrival — the quantity that grows with
worker count and drives divergence at scale.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..comm.fabric import NetworkProfile
from ..core.metrics import top1_accuracy
from ..core.optimizer import Optimizer
from ..core.schedules import ConstantLR, Schedule
from ..nn.layers.base import Module
from ..nn.losses import SoftmaxCrossEntropy
from .packing import flatten_grads, flatten_params, unflatten_grads, unflatten_params

__all__ = ["ParamServerConfig", "ParamServerResult", "train_param_server"]


@dataclass(frozen=True)
class ParamServerConfig:
    """Async-training configuration.

    ``total_updates`` bounds the run (the async scheme has no global epoch
    barrier, so a fixed update budget replaces the epoch count —
    ``E·n/B`` updates equals the synchronous run's total iteration count).
    """

    workers: int
    total_updates: int
    batch_size: int  # per-worker batch
    compute_time: float = 1.0  # mean seconds per gradient
    compute_jitter: float = 0.1  # relative uniform jitter
    profile: NetworkProfile | None = None
    seed: int = 0
    eval_every: int = 0  # evaluate each k updates (0 = only at the end)

    def __post_init__(self):
        if self.workers <= 0 or self.total_updates <= 0 or self.batch_size <= 0:
            raise ValueError("workers, total_updates and batch_size must be positive")
        if not 0.0 <= self.compute_jitter < 1.0:
            raise ValueError("compute_jitter must be in [0, 1)")


@dataclass
class ParamServerResult:
    updates_applied: int = 0
    simulated_seconds: float = 0.0
    staleness: list[int] = field(default_factory=list)
    final_test_accuracy: float = 0.0
    #: (update index, simulated time, test accuracy) at eval points
    accuracy_curve: list[tuple[int, float, float]] = field(default_factory=list)
    diverged: bool = False

    @property
    def mean_staleness(self) -> float:
        return float(np.mean(self.staleness)) if self.staleness else 0.0

    @property
    def max_staleness(self) -> int:
        return max(self.staleness, default=0)


def train_param_server(
    model_builder: Callable[[], Module],
    optimizer_builder: Callable[[Sequence], Optimizer],
    schedule: Schedule | float,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    config: ParamServerConfig,
) -> ParamServerResult:
    """Run the asynchronous parameter-server simulation."""
    sched = ConstantLR(schedule) if isinstance(schedule, (int, float)) else schedule
    profile = config.profile if config.profile is not None else NetworkProfile.ideal()

    server_model = model_builder()
    optimizer = optimizer_builder(server_model.parameters())
    shadow = model_builder()  # reusable replica for stale-gradient evaluation
    loss_fn = SoftmaxCrossEntropy()
    params = server_model.parameters()
    model_bytes = int(sum(p.size for p in params)) * 8

    n = len(x_train)
    batch_rngs = [np.random.default_rng((config.seed, w)) for w in range(config.workers)]
    jitter_rng = np.random.default_rng((config.seed, "jitter".__hash__() & 0x7FFFFFFF))

    result = ParamServerResult()
    version = 0  # number of updates applied so far

    def gradient_on(weights_flat: np.ndarray, worker: int) -> np.ndarray:
        """Gradient of the mean loss on the worker's next batch at the given
        (possibly stale) weights."""
        unflatten_params(weights_flat, shadow.parameters())
        idx = batch_rngs[worker].integers(0, n, size=config.batch_size)
        shadow.train()
        shadow.zero_grad()
        logits = shadow.forward(x_train[idx])
        loss_fn.forward(logits, y_train[idx])
        shadow.backward(loss_fn.backward())
        return flatten_grads(shadow.parameters())

    def compute_duration() -> float:
        j = config.compute_jitter
        scale = 1.0 + (jitter_rng.uniform(-j, j) if j > 0 else 0.0)
        return config.compute_time * scale

    def evaluate() -> float:
        server_model.eval()
        preds = []
        for lo in range(0, len(x_test), 512):
            preds.append(server_model.forward(x_test[lo : lo + 512]))
        server_model.train()
        return top1_accuracy(np.concatenate(preds), y_test)

    # Event heap: (arrival_time, tiebreak, worker, gradient, fetch_version).
    # Gradients are computed eagerly at fetch time (weights are only known
    # then); staleness accrues until the arrival event is processed.
    events: list[tuple[float, int, int, np.ndarray, int]] = []
    tiebreak = 0
    server_free_at = 0.0

    def schedule_cycle(worker: int, start_time: float) -> None:
        nonlocal tiebreak
        fetch_done = start_time + profile.transfer_time(model_bytes)
        grad = gradient_on(flatten_params(params), worker)
        arrival = fetch_done + compute_duration() + profile.transfer_time(model_bytes)
        heapq.heappush(events, (arrival, tiebreak, worker, grad, version))
        tiebreak += 1

    for w in range(config.workers):
        schedule_cycle(w, 0.0)

    while result.updates_applied < config.total_updates and events:
        arrival, _, worker, grad, fetch_version = heapq.heappop(events)
        apply_time = max(arrival, server_free_at)
        server_free_at = apply_time  # update cost itself treated as instant

        unflatten_grads(grad, params)
        lr = sched(result.updates_applied)
        optimizer.step(lr)
        version += 1
        result.updates_applied += 1
        result.staleness.append(version - 1 - fetch_version)
        result.simulated_seconds = apply_time

        if not all(np.isfinite(p.data).all() for p in params):
            result.diverged = True
            break

        if config.eval_every and result.updates_applied % config.eval_every == 0:
            result.accuracy_curve.append(
                (result.updates_applied, apply_time, evaluate())
            )

        if result.updates_applied < config.total_updates:
            schedule_cycle(worker, apply_time)

    result.final_test_accuracy = 0.0 if result.diverged else evaluate()
    return result
