"""Gradient compression — the bandwidth-side alternative the paper cites.

The paper's Background cites Seide et al.'s 1-bit SGD as the other route to
shrinking the |W|·E·n/B communication term: instead of growing B, shrink the
bytes per message.  This module implements the standard compressors with
error feedback so the large-batch approach can be *compared* against them
(``benchmarks/test_ablation_compression.py``):

* :class:`OneBitCompressor` — sign quantisation with a per-tensor scale and
  local error feedback (Seide et al. 2014).
* :class:`TopKCompressor` — magnitude sparsification with error feedback.
* :class:`UniformQuantizer` — b-bit uniform quantisation (no feedback
  needed at moderate b; deterministic rounding keeps replicas identical).
* :class:`NoCompression` — the identity baseline.

``compressed_allreduce`` runs the allgather-decompress-sum pattern: every
rank broadcasts its compressed contribution and reduces locally, so all
replicas see bit-identical results (sequential consistency of the
*compressed* algorithm — the compression error itself is the accuracy cost,
which the ablation measures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comm.communicator import Communicator

__all__ = [
    "Compressor",
    "NoCompression",
    "OneBitCompressor",
    "TopKCompressor",
    "UniformQuantizer",
    "compressed_allreduce",
    "CompressionStats",
]


@dataclass
class CompressionStats:
    """Accumulated wire accounting for one worker's compressor."""

    raw_bytes: int = 0
    compressed_bytes: int = 0

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.compressed_bytes if self.compressed_bytes else 1.0

    def record(self, raw: int, compressed: int) -> None:
        self.raw_bytes += raw
        self.compressed_bytes += compressed


class Compressor:
    """Base compressor: flat float64 gradient → wire payload → approximation.

    Stateful: error-feedback compressors accumulate the quantisation
    residual locally and add it to the next gradient, which is what makes
    1-bit/top-k training converge.
    """

    def __init__(self) -> None:
        self.stats = CompressionStats()

    def compress(self, grad: np.ndarray):
        raise NotImplementedError

    def decompress(self, payload, n: int) -> np.ndarray:
        raise NotImplementedError

    def payload_nbytes(self, payload) -> int:
        raise NotImplementedError

    def roundtrip(self, grad: np.ndarray) -> np.ndarray:
        """compress→decompress (what the receiving ranks reconstruct)."""
        payload = self.compress(grad)
        return self.decompress(payload, grad.size)


class NoCompression(Compressor):
    """Identity baseline: full fp64 gradients on the wire."""

    def compress(self, grad: np.ndarray):
        self.stats.record(grad.nbytes, grad.nbytes)
        return grad.copy()

    def decompress(self, payload, n: int) -> np.ndarray:
        return payload

    def payload_nbytes(self, payload) -> int:
        return payload.nbytes


class OneBitCompressor(Compressor):
    """1-bit SGD: transmit sign(g + residual) and one scale per tensor.

    The scale is the mean magnitude of the feedback-corrected gradient, so
    the reconstruction ``scale·sign`` is the least-squares 1-bit fit; the
    residual (what the bit could not express) feeds back into the next step.
    Wire cost: 1 bit per element + 8 bytes of scale.
    """

    def __init__(self) -> None:
        super().__init__()
        self.residual: np.ndarray | None = None

    def compress(self, grad: np.ndarray):
        if self.residual is None:
            self.residual = np.zeros_like(grad)
        corrected = grad + self.residual
        scale = float(np.mean(np.abs(corrected))) if corrected.size else 0.0
        bits = np.signbit(corrected)  # True = negative
        reconstruction = np.where(bits, -scale, scale)
        self.residual = corrected - reconstruction
        packed = np.packbits(bits)
        self.stats.record(grad.nbytes, packed.nbytes + 8)
        return (scale, packed)

    def decompress(self, payload, n: int) -> np.ndarray:
        scale, packed = payload
        bits = np.unpackbits(packed, count=n).astype(bool)
        return np.where(bits, -scale, scale).astype(np.float64)

    def payload_nbytes(self, payload) -> int:
        scale, packed = payload
        return packed.nbytes + 8


class TopKCompressor(Compressor):
    """Keep the k largest-magnitude coordinates; the rest feed back.

    Wire cost: k × (4-byte index + 8-byte value).
    """

    def __init__(self, k: int):
        super().__init__()
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = int(k)
        self.residual: np.ndarray | None = None

    def compress(self, grad: np.ndarray):
        if self.residual is None:
            self.residual = np.zeros_like(grad)
        corrected = grad + self.residual
        k = min(self.k, corrected.size)
        idx = np.argpartition(np.abs(corrected), -k)[-k:]
        idx = np.sort(idx)  # deterministic order
        values = corrected[idx].copy()
        self.residual = corrected.copy()
        self.residual[idx] = 0.0
        self.stats.record(grad.nbytes, k * 12)
        return (idx.astype(np.int64), values)

    def decompress(self, payload, n: int) -> np.ndarray:
        idx, values = payload
        out = np.zeros(n)
        out[idx] = values
        return out

    def payload_nbytes(self, payload) -> int:
        idx, values = payload
        return idx.size * 4 + values.nbytes


class UniformQuantizer(Compressor):
    """b-bit uniform quantisation over the tensor's dynamic range.

    Deterministic round-to-nearest; with b ≥ 8 the residual is negligible
    so no feedback is kept (matching fp16/int8 gradient compression in
    production stacks).  Wire cost: b bits per element + 16 bytes of range.
    """

    def __init__(self, bits: int = 8):
        super().__init__()
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        self.bits = int(bits)

    def compress(self, grad: np.ndarray):
        lo = float(grad.min()) if grad.size else 0.0
        hi = float(grad.max()) if grad.size else 0.0
        levels = (1 << self.bits) - 1
        span = hi - lo
        if span == 0.0:
            codes = np.zeros(grad.shape, dtype=np.uint16)
        else:
            codes = np.rint((grad - lo) / span * levels).astype(np.uint16)
        nbytes = (grad.size * self.bits + 7) // 8 + 16
        self.stats.record(grad.nbytes, nbytes)
        return (lo, hi, codes)

    def decompress(self, payload, n: int) -> np.ndarray:
        lo, hi, codes = payload
        levels = (1 << self.bits) - 1
        if hi == lo:
            return np.full(n, lo)
        return lo + codes.astype(np.float64) / levels * (hi - lo)

    def payload_nbytes(self, payload) -> int:
        lo, hi, codes = payload
        return (codes.size * self.bits + 7) // 8 + 16


def compressed_allreduce(
    comm: Communicator, grad: np.ndarray, compressor: Compressor
) -> np.ndarray:
    """Sum compressed gradients across ranks (allgather-decompress-sum).

    Every rank compresses its contribution, all payloads circulate on the
    ring, and each rank reconstructs and sums them in rank order — so the
    result is bit-identical everywhere and wire traffic is the compressed
    size instead of |W| (the fabric sees the true payload bytes).
    """
    n = grad.size
    payload = compressor.compress(grad.ravel())
    gathered = comm.allgather(payload)
    total = np.zeros(n)
    for p in gathered:
        total += compressor.decompress(p, n)
    return total.reshape(grad.shape)
