"""Model parallelism (Figure 2(b)).

The paper describes partitioning the network itself across machines so that
"only those nodes with edges that cross partition boundaries will need to
have their state communicated", and notes that model parallelism "can get
the same solution as the single-machine case".  This module implements the
standard two flavours of partitioned affine layers and a partitioned MLP,
and the test-suite verifies that exactness claim against the serial layers.

* :class:`ColumnParallelDense` — splits the *output* features: rank r holds
  the column block ``W[:, r]``; the forward allgathers the partial outputs,
  the backward allreduces the input gradient (each rank holds only its
  block's contribution).
* :class:`RowParallelDense` — splits the *input* features: rank r holds the
  row block ``W[r, :]`` and consumes the matching slice of the input; the
  forward allreduces the partial outputs.

Composing column→row pairs gives the classic pattern with a single
communication point per pair (the row layer's output reduction) — each rank
consumes exactly the activation slice the previous column layer produced
locally.
"""

from __future__ import annotations

import numpy as np

from ..comm.communicator import Communicator
from ..nn.initializers import Initializer, xavier, zeros
from ..nn.layers.base import Module, Shape
from ..nn.tensor import Parameter

__all__ = [
    "ColumnParallelDense",
    "RowParallelDense",
    "partition_bounds",
]


def partition_bounds(total: int, world: int, rank: int) -> tuple[int, int]:
    """Contiguous near-even partition of ``total`` features: rank's [lo, hi).

    The first ``total % world`` ranks take one extra feature; concatenating
    all blocks in rank order reconstructs the full axis.
    """
    if world <= 0 or not 0 <= rank < world:
        raise ValueError("invalid world/rank")
    base, extra = divmod(total, world)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def _block_of(full: np.ndarray, axis: int, world: int, rank: int) -> np.ndarray:
    lo, hi = partition_bounds(full.shape[axis], world, rank)
    index = [slice(None)] * full.ndim
    index[axis] = slice(lo, hi)
    return full[tuple(index)]


class ColumnParallelDense(Module):
    """Dense layer with output features partitioned across ranks.

    Construction is *deterministic in the full weight*: every rank draws the
    identical full ``(in, out)`` matrix from the shared seed and keeps only
    its column block, so a model-parallel model is bit-comparable to the
    serial one (and to any other world size).

    ``gather_output=True`` (default) returns the full output on every rank
    (one allgather); with ``False`` the caller receives only the local block
    — used when the next layer is a :class:`RowParallelDense`, which wants
    exactly that slice (no communication at the boundary).
    """

    def __init__(
        self,
        comm: Communicator,
        in_features: int,
        out_features: int,
        bias: bool = True,
        gather_output: bool = True,
        weight_init: Initializer = xavier,
        bias_init: Initializer = zeros,
        seed: int = 0,
    ):
        super().__init__()
        self.comm = comm
        self.in_features = in_features
        self.out_features = out_features
        self.gather_output = gather_output
        rng = np.random.default_rng(seed)
        full_w = weight_init((in_features, out_features), rng)
        full_b = bias_init((out_features,), rng) if bias else None
        self.lo, self.hi = partition_bounds(out_features, comm.size, comm.rank)
        self.weight = Parameter(full_w[:, self.lo : self.hi])
        self.bias = (
            Parameter(full_b[self.lo : self.hi], weight_decay=0.0) if bias else None
        )
        self._x: np.ndarray | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        if input_shape != (self.in_features,):
            raise ValueError(f"expected ({self.in_features},), got {input_shape}")
        out = self.out_features if self.gather_output else self.hi - self.lo
        return (out,)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        local = x @ self.weight.data
        if self.bias is not None:
            local = local + self.bias.data
        if not self.gather_output:
            return local
        pieces = self.comm.allgather(local)
        return np.concatenate(pieces, axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        if self.gather_output:
            grad_local = grad_out[:, self.lo : self.hi]
        else:
            grad_local = grad_out
        self.weight.grad += self._x.T @ grad_local
        if self.bias is not None:
            self.bias.grad += grad_local.sum(axis=0)
        # each rank contributes its block's share of dX; the sum over
        # ranks is the full dX = dY @ W.T (boundary-crossing traffic)
        partial_dx = grad_local @ self.weight.data.T
        dx = self.comm.allreduce(partial_dx)
        self._x = None
        return dx


class RowParallelDense(Module):
    """Dense layer with input features partitioned across ranks.

    ``input_is_partitioned=True`` means the caller supplies only this rank's
    input slice (the natural hand-off from a non-gathering column layer);
    otherwise the layer slices the full input itself.  The forward output is
    an allreduce of the partial products — full and identical on every rank.
    """

    def __init__(
        self,
        comm: Communicator,
        in_features: int,
        out_features: int,
        bias: bool = True,
        input_is_partitioned: bool = False,
        weight_init: Initializer = xavier,
        bias_init: Initializer = zeros,
        seed: int = 0,
    ):
        super().__init__()
        self.comm = comm
        self.in_features = in_features
        self.out_features = out_features
        self.input_is_partitioned = input_is_partitioned
        rng = np.random.default_rng(seed)
        full_w = weight_init((in_features, out_features), rng)
        self.lo, self.hi = partition_bounds(in_features, comm.size, comm.rank)
        self.weight = Parameter(full_w[self.lo : self.hi, :])
        # the bias is applied once (post-reduction) — owned by rank 0's
        # arithmetic but replicated so every rank applies it identically
        full_b = bias_init((out_features,), rng) if bias else None
        self.bias = Parameter(full_b, weight_decay=0.0) if bias else None
        self._x_local: np.ndarray | None = None

    def output_shape(self, input_shape: Shape) -> Shape:
        expected = (
            (self.hi - self.lo,) if self.input_is_partitioned else (self.in_features,)
        )
        if input_shape != expected:
            raise ValueError(f"expected {expected}, got {input_shape}")
        return (self.out_features,)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x_local = x if self.input_is_partitioned else x[:, self.lo : self.hi]
        self._x_local = x_local
        partial = x_local @ self.weight.data
        out = self.comm.allreduce(partial)
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_local is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x_local.T @ grad_out
        if self.bias is not None:
            # every rank sees the full grad_out (the output was allreduced),
            # so the replicated bias gets its complete gradient locally and
            # all replicas update identically — no further reduction needed
            self.bias.grad += grad_out.sum(axis=0)
        dx_local = grad_out @ self.weight.data.T
        self._x_local = None
        if self.input_is_partitioned:
            return dx_local
        # reassemble the full input gradient from the per-rank slices
        pieces = self.comm.allgather(dx_local)
        return np.concatenate(pieces, axis=1)
