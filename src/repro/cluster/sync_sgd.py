"""Synchronous data-parallel SGD on the simulated cluster.

This is the algorithm the paper scales: every rank holds a full model
replica, computes gradients on its shard of the global batch, the gradients
are summed across ranks (allreduce, or gather-update-broadcast through a
master — Figure 2(a)), and every replica applies the *same* update.

Sequential consistency — the property the paper leans on ("all valid
parallel implementations of the algorithm match the behavior of the
sequential version") — holds by construction: the allreduced gradient is the
same global-batch mean the serial trainer computes, every rank sees a
bit-identical copy, and the optimiser arithmetic is identical.  Tests verify
P-worker runs match the serial large-batch run to fp tolerance.  The one
deliberate exception is BatchNorm, whose statistics are per-shard (exactly
as in the paper's Caffe/MLSL stacks); models without BN match the serial run
to ~1e-10, models with BN agree only statistically.

Simulated time: ranks advance their logical clocks by a caller-supplied
``compute_time(n_local_examples)`` before communicating, and the fabric
charges α-β time for every message, so ``ClusterResult.simulated_seconds``
is the α-β-γ critical path of the whole training run — the quantity
Tables 2/8/9 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..comm import Communicator, NetworkProfile, run_cluster
from ..core.metrics import EpochRecord, top1_accuracy
from ..core.optimizer import Optimizer
from ..core.schedules import ConstantLR, Schedule
from ..nn.layers.base import Module
from ..nn.layers.norm import SyncBatchNorm
from ..nn.losses import SoftmaxCrossEntropy
from .packing import flatten_grads, flatten_params, unflatten_grads, unflatten_params
from .sharding import epoch_permutation, shard_batch

__all__ = ["SyncSGDConfig", "ClusterResult", "train_sync_sgd"]


@dataclass(frozen=True)
class SyncSGDConfig:
    """Cluster-run configuration.

    Parameters
    ----------
    world:
        Number of simulated ranks P.
    epochs, batch_size:
        Fixed-epoch budget and *global* batch size (split across ranks).
    mode:
        ``"allreduce"`` — decentralised gradient allreduce (production);
        ``"master"`` — Figure 2(a): gradients reduce to rank 0, rank 0
        updates, new weights broadcast.
    algorithm:
        Allreduce algorithm (``tree``/``ring``/``rhd``) for allreduce mode
        and for the reduce/bcast trees in master mode.
    profile:
        α-β network profile; ``None`` = free network (pure correctness).
    compute_time:
        Maps a rank's local example count to simulated seconds of
        forward+backward work (plug in ``repro.perfmodel`` here).  ``None``
        charges no compute time.
    compressor_factory:
        Optional ``() -> Compressor`` enabling compressed gradient exchange
        (allreduce mode only): each rank keeps its own stateful compressor
        (error feedback is per-worker) and the wire carries compressed
        payloads.  ``None`` = full-precision exchange.
    shuffle_seed:
        Must match the serial trainer's for consistency comparisons.
    eval_every:
        Evaluate on rank 0 every k epochs (1 = every epoch).
    """

    world: int
    epochs: int
    batch_size: int
    mode: str = "allreduce"
    algorithm: str = "tree"
    profile: NetworkProfile | None = None
    compute_time: Callable[[int], float] | None = None
    compressor_factory: Callable[[], object] | None = None
    shuffle_seed: int = 0
    eval_every: int = 1
    #: restart support: epoch to resume from plus the states to load (every
    #: rank loads the same snapshot — replicas are identical by construction)
    start_epoch: int = 0
    initial_model_state: dict | None = None
    initial_optimizer_state: dict | None = None

    def __post_init__(self):
        if self.world <= 0:
            raise ValueError("world must be positive")
        if self.mode not in ("allreduce", "master"):
            raise ValueError(f"unknown mode {self.mode!r}")
        from ..comm.collectives import ALLREDUCE_ALGORITHMS

        if self.algorithm not in ALLREDUCE_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"available: {sorted(ALLREDUCE_ALGORITHMS)}"
            )
        if self.algorithm == "rhd" and self.world & (self.world - 1):
            raise ValueError("rhd allreduce requires a power-of-two world")
        if self.batch_size < self.world:
            raise ValueError(
                f"global batch {self.batch_size} smaller than world {self.world}"
            )
        if not 0 <= self.start_epoch < self.epochs:
            raise ValueError("start_epoch must be in [0, epochs)")
        if self.compressor_factory is not None and self.mode != "allreduce":
            raise ValueError("compressed exchange requires allreduce mode")


@dataclass
class ClusterResult:
    """Outcome of a simulated cluster training run."""

    history: list[EpochRecord] = field(default_factory=list)
    simulated_seconds: float = 0.0
    messages: int = 0
    comm_bytes: int = 0
    #: (epoch, simulated seconds at epoch end, test accuracy) — Figure 7
    time_curve: list[tuple[int, float, float]] = field(default_factory=list)
    final_state: dict | None = None
    #: rank 0's optimiser state (identical on every rank in allreduce mode) —
    #: together with ``final_state`` this is a complete restart checkpoint
    final_optimizer_state: dict | None = None

    @property
    def final_test_accuracy(self) -> float:
        return self.history[-1].test_accuracy if self.history else 0.0

    @property
    def peak_test_accuracy(self) -> float:
        return max((r.test_accuracy for r in self.history), default=0.0)

    def time_to_accuracy(self, target: float) -> float | None:
        """Simulated seconds until test accuracy first reaches ``target``."""
        for _, t, acc in self.time_curve:
            if acc >= target:
                return t
        return None


def _sync_gradient_allreduce(
    comm: Communicator,
    model: Module,
    weight: float,
    algorithm: str,
    compressor=None,
) -> None:
    """Decentralised mode: allreduce shard-weighted gradients in place,
    optionally through a gradient compressor (1-bit / top-k / quantised)."""
    params = model.parameters()
    flat = flatten_grads(params) * weight
    if compressor is not None:
        from .compression import compressed_allreduce

        total = compressed_allreduce(comm, flat, compressor)
    else:
        total = comm.allreduce(flat, algorithm=algorithm)
    unflatten_grads(total, params)


def _sync_gradient_master(
    comm: Communicator,
    model: Module,
    optimizer: Optimizer,
    weight: float,
    lr: float,
) -> None:
    """Figure 2(a) mode: reduce to master, master updates, weights broadcast.

    Only rank 0's optimiser state advances; worker replicas just load the
    broadcast weights, exactly like parameter-server-style sync SGD.
    """
    params = model.parameters()
    flat = flatten_grads(params) * weight
    total = comm.reduce(flat, root=0)
    if comm.rank == 0:
        unflatten_grads(total, params)
        optimizer.step(lr)
        new_weights = flatten_params(params)
    else:
        new_weights = None
    new_weights = comm.bcast(new_weights, root=0)
    if comm.rank != 0:
        unflatten_params(new_weights, params)


def train_sync_sgd(
    model_builder: Callable[[], Module],
    optimizer_builder: Callable[[Sequence], Optimizer],
    schedule: Schedule | float,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    config: SyncSGDConfig,
) -> ClusterResult:
    """Run synchronous data-parallel SGD on a simulated cluster.

    ``model_builder`` must be deterministic (same weights every call) — each
    rank builds its own replica and consistency depends on identical
    initialisation, mirroring a real cluster's synchronised weight init.
    """
    sched = ConstantLR(schedule) if isinstance(schedule, (int, float)) else schedule
    n = len(x_train)
    loss_fn_proto = SoftmaxCrossEntropy

    def worker(comm: Communicator):
        model = model_builder()
        optimizer = optimizer_builder(model.parameters())
        loss_fn = loss_fn_proto()
        if config.initial_model_state is not None:
            model.load_state_dict(config.initial_model_state)
        if config.initial_optimizer_state is not None:
            optimizer.load_state_dict(config.initial_optimizer_state)
        iteration = config.start_epoch * -(-n // config.batch_size)
        history: list[EpochRecord] = []
        time_curve: list[tuple[int, float, float]] = []

        # SyncBatchNorm layers need this rank's communicator; their presence
        # switches the gradient protocol to pre-scaling (see below).
        sync_bn = [m for m in model.modules() if isinstance(m, SyncBatchNorm)]
        for bn in sync_bn:
            bn.set_comm(comm)
        uses_sync_bn = bool(sync_bn)
        compressor = (
            config.compressor_factory() if config.compressor_factory else None
        )

        for epoch in range(config.start_epoch, config.epochs):
            order = epoch_permutation(n, epoch, config.shuffle_seed)
            loss_sum = 0.0
            correct_sum = 0.0
            seen = 0
            for lo in range(0, n, config.batch_size):
                global_idx = order[lo : lo + config.batch_size]
                local_idx = shard_batch(global_idx, config.world, comm.rank)
                gbs = len(global_idx)
                lr = sched(iteration)
                # local loss gradients are means over the shard; weighting
                # by |shard|/|global batch| makes the cross-rank sum the
                # exact global-batch mean even when shards are uneven
                weight = len(local_idx) / gbs

                model.train()
                optimizer.zero_grad()
                # With SyncBatchNorm every rank must join the collective
                # forward/backward, even on an empty shard, and the loss
                # gradient is pre-scaled so BN's global reductions see
                # consistent per-example 1/N scaling.
                if len(local_idx) > 0 or uses_sync_bn:
                    xb, yb = x_train[local_idx], y_train[local_idx]
                    logits = model.forward(xb)
                    batch_loss = loss_fn.forward(logits, yb)
                    grad = loss_fn.backward()
                    if uses_sync_bn:
                        grad = grad * weight
                    model.backward(grad)
                    if len(local_idx) > 0:
                        loss_sum += batch_loss * len(local_idx)
                        correct_sum += top1_accuracy(logits, yb) * len(local_idx)
                        seen += len(local_idx)
                        if config.compute_time is not None:
                            comm.compute(config.compute_time(len(local_idx)))
                combine_weight = 1.0 if uses_sync_bn else weight

                if config.mode == "allreduce":
                    _sync_gradient_allreduce(comm, model, combine_weight,
                                             config.algorithm, compressor)
                    optimizer.step(lr)
                else:
                    _sync_gradient_master(comm, model, optimizer, combine_weight, lr)
                iteration += 1

            # per-epoch metric aggregation: one tiny allreduce
            stats = comm.allreduce(np.array([loss_sum, correct_sum, float(seen)]))
            if comm.rank == 0:
                test_acc = float("nan")
                if (epoch + 1) % config.eval_every == 0 or epoch == config.epochs - 1:
                    model.eval()
                    preds = []
                    for elo in range(0, len(x_test), 512):
                        preds.append(model.forward(x_test[elo : elo + 512]))
                    test_acc = top1_accuracy(np.concatenate(preds), y_test)
                history.append(
                    EpochRecord(
                        epoch=epoch + 1,
                        train_loss=stats[0] / max(stats[2], 1.0),
                        train_accuracy=stats[1] / max(stats[2], 1.0),
                        test_accuracy=test_acc,
                        learning_rate=sched(max(iteration - 1, 0)),
                        iterations=-(-n // config.batch_size),
                    )
                )
                time_curve.append((epoch + 1, comm.time, test_acc))

        if comm.rank == 0:
            return {
                "history": history,
                "time_curve": time_curve,
                "state": model.state_dict(),
                "optimizer_state": optimizer.state_dict(),
            }
        return None

    results, fabric = run_cluster(config.world, worker, profile=config.profile)
    root = results[0]
    return ClusterResult(
        history=root["history"],
        simulated_seconds=fabric.makespan,
        messages=fabric.stats.messages,
        comm_bytes=fabric.stats.bytes,
        time_curve=root["time_curve"],
        final_state=root["state"],
        final_optimizer_state=root["optimizer_state"],
    )
