"""Synchronous data-parallel SGD on the simulated cluster.

This is the algorithm the paper scales: every rank holds a full model
replica, computes gradients on its shard of the global batch, the gradients
are summed across ranks (allreduce, or gather-update-broadcast through a
master — Figure 2(a)), and every replica applies the *same* update.

Sequential consistency — the property the paper leans on ("all valid
parallel implementations of the algorithm match the behavior of the
sequential version") — holds by construction: the allreduced gradient is the
same global-batch mean the serial trainer computes, every rank sees a
bit-identical copy, and the optimiser arithmetic is identical.  Tests verify
P-worker runs match the serial large-batch run to fp tolerance.  The one
deliberate exception is BatchNorm, whose statistics are per-shard (exactly
as in the paper's Caffe/MLSL stacks); models without BN match the serial run
to ~1e-10, models with BN agree only statistically.

Simulated time: ranks advance their logical clocks by a caller-supplied
``compute_time(n_local_examples)`` before communicating, and the fabric
charges α-β time for every message, so ``ClusterResult.simulated_seconds``
is the α-β-γ critical path of the whole training run — the quantity
Tables 2/8/9 report.

Fault tolerance (``docs/architecture.md``, "Failure model & recovery"):
supplying a :class:`repro.faults.FaultPlan` in the config arms the fault
injector and the recovery machinery.  Message loss/corruption/delay are
absorbed by the reliable link layer (values exact, time lost); a rank crash
is detected by the survivors (transport dead-set + recv timeouts + the
failure detector), the attempt is halted in bounded time, and training
restarts from the latest periodic checkpoint with the surviving P−k ranks
and re-sharded batches — or aborts cleanly with a structured
:class:`repro.faults.FaultReport` when recovery is disabled or impossible.
Because the global-batch gradient is a sum over shards, re-sharding across
fewer ranks preserves the mathematics: a recovered run (no BatchNorm)
matches the fault-free run to floating-point associativity tolerance
(~1e-12) from the restored epoch onward, and a lossy run at the same world
size is bitwise identical (retransmission costs time, never values).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from threading import Lock
from typing import Callable, Sequence

import numpy as np

from ..comm import (
    ClusterHalted,
    Communicator,
    FabricTimeout,
    FailureDetector,
    NetworkProfile,
    PeerDeadError,
    PeerStatus,
    RankKilled,
    RetransmitExhausted,
    run_cluster,
)
from ..core.metrics import EpochRecord, top1_accuracy
from ..core.optimizer import Optimizer
from ..core.schedules import ConstantLR, Schedule
from ..faults import (
    FaultInjector,
    FaultPlan,
    FaultReport,
    FaultStats,
    TrainingAborted,
)
from ..nn.layers.base import Module
from ..nn.layers.norm import SyncBatchNorm
from ..nn.losses import SoftmaxCrossEntropy
from ..nn.memory import MemoryContext
from ..obs import timed as _timed
from ..obs.events import publish as _publish
from ..obs.metrics import gauge as _gauge
from .packing import flatten_grads, flatten_params, unflatten_grads, unflatten_params
from .sharding import epoch_permutation, shard_batch

__all__ = ["SyncSGDConfig", "ClusterResult", "train_sync_sgd"]


@dataclass(frozen=True)
class SyncSGDConfig:
    """Cluster-run configuration.

    Parameters
    ----------
    world:
        Number of simulated ranks P.
    epochs, batch_size:
        Fixed-epoch budget and *global* batch size (split across ranks).
    mode:
        ``"allreduce"`` — decentralised gradient allreduce (production);
        ``"master"`` — Figure 2(a): gradients reduce to rank 0, rank 0
        updates, new weights broadcast.
    algorithm:
        Allreduce algorithm (``tree``/``ring``/``rhd``) for allreduce mode
        and for the reduce/bcast trees in master mode.
    profile:
        α-β network profile; ``None`` = free network (pure correctness).
    compute_time:
        Maps a rank's local example count to simulated seconds of
        forward+backward work (plug in ``repro.perfmodel`` here).  ``None``
        charges no compute time.
    compressor_factory:
        Optional ``() -> Compressor`` enabling compressed gradient exchange
        (allreduce mode only): each rank keeps its own stateful compressor
        (error feedback is per-worker) and the wire carries compressed
        payloads.  ``None`` = full-precision exchange.
    bucket_bytes:
        Split the gradient exchange into ~this many bytes per bucket
        (allreduce mode only); ``None`` with ``overlap=False`` keeps the
        monolithic single-message exchange.  See
        :mod:`repro.cluster.bucketing`.
    overlap:
        Overlap gradient communication with backward compute: each
        bucket's allreduce launches as soon as backward finalises its
        gradients, so per-step simulated time is ``max(compute, comm)``
        instead of their sum.  Implies bucketing (default 1 MiB buckets
        when ``bucket_bytes`` is unset).  Results are bit-identical to the
        monolithic exchange for the ``tree``/``rhd`` algorithms; ``ring``
        agrees to summation-order tolerance (~1e-12).  Incompatible with
        ``compressor_factory`` (compression is blocking per bucket).
    static_memory:
        Each rank binds a :class:`repro.nn.MemoryContext` to its replica
        and loss, so steady-state steps run allocation-free out of a
        per-rank arena.  Results are bitwise identical to the eager run
        (``False``, the escape hatch).
    shuffle_seed:
        Must match the serial trainer's for consistency comparisons.
    eval_every:
        Evaluate on rank 0 every k epochs (1 = every epoch).
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; arms fault injection and
        the recovery machinery below.
    recv_timeout:
        Wall-clock seconds a blocking receive waits before raising the
        typed ``FabricTimeout`` (``None`` = the communicator default).
    checkpoint_every:
        Epochs between recovery snapshots while a fault plan is armed.
    checkpoint_dir:
        When set, rank 0 also writes each snapshot to disk (atomically, via
        :func:`repro.util.checkpoint.save_checkpoint`) and recovery
        restores through the on-disk file — the full crash-restart path.
    on_failure:
        ``"recover"`` — restart from the latest snapshot with the surviving
        ranks; ``"abort"`` — raise :class:`repro.faults.TrainingAborted`
        carrying a structured :class:`repro.faults.FaultReport`.
    max_recoveries:
        Elastic restarts allowed before giving up and aborting.
    restart_overhead_seconds:
        Simulated seconds charged per recovery (failure detection +
        respawn + checkpoint reload on a real cluster).
    """

    world: int
    epochs: int
    batch_size: int
    mode: str = "allreduce"
    algorithm: str = "tree"
    profile: NetworkProfile | None = None
    compute_time: Callable[[int], float] | None = None
    compressor_factory: Callable[[], object] | None = None
    bucket_bytes: int | None = None
    overlap: bool = False
    static_memory: bool = False
    shuffle_seed: int = 0
    eval_every: int = 1
    #: restart support: epoch to resume from plus the states to load (every
    #: rank loads the same snapshot — replicas are identical by construction)
    start_epoch: int = 0
    initial_model_state: dict | None = None
    initial_optimizer_state: dict | None = None
    # -- fault tolerance ----------------------------------------------------
    fault_plan: FaultPlan | None = None
    recv_timeout: float | None = None
    checkpoint_every: int = 1
    checkpoint_dir: str | os.PathLike | None = None
    on_failure: str = "recover"
    max_recoveries: int = 8
    restart_overhead_seconds: float = 0.0

    def __post_init__(self):
        if self.world < 1:
            raise ValueError(
                f"world must be >= 1 (got {self.world}); "
                "use world=1 for a single-rank run"
            )
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1 (got {self.epochs})")
        if self.mode not in ("allreduce", "master"):
            raise ValueError(
                f"unknown mode {self.mode!r}; expected 'allreduce' or 'master'"
            )
        from ..comm.collectives import ALLREDUCE_ALGORITHMS

        if self.algorithm not in ALLREDUCE_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"available: {sorted(ALLREDUCE_ALGORITHMS)}"
            )
        if self.algorithm == "rhd" and self.world & (self.world - 1):
            raise ValueError(
                f"rhd allreduce requires a power-of-two world (got "
                f"{self.world}); pick algorithm='tree' or 'ring'"
            )
        if self.batch_size < self.world:
            raise ValueError(
                f"global batch {self.batch_size} smaller than world "
                f"{self.world}: some ranks would never see data — shrink "
                "world or grow the batch"
            )
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1 (got {self.eval_every})")
        if not 0 <= self.start_epoch < self.epochs:
            raise ValueError("start_epoch must be in [0, epochs)")
        if self.compressor_factory is not None and self.mode != "allreduce":
            raise ValueError("compressed exchange requires allreduce mode")
        if self.bucket_bytes is not None and self.bucket_bytes <= 0:
            raise ValueError(
                f"bucket_bytes must be positive (got {self.bucket_bytes})"
            )
        if (self.bucket_bytes is not None or self.overlap) and self.mode != "allreduce":
            raise ValueError("bucketed/overlapped exchange requires allreduce mode")
        if self.overlap and self.compressor_factory is not None:
            raise ValueError(
                "overlap is incompatible with compressed exchange "
                "(compression is blocking per bucket: set overlap=False)"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1 epoch (got {self.checkpoint_every})"
            )
        if self.on_failure not in ("recover", "abort"):
            raise ValueError(
                f"unknown on_failure {self.on_failure!r}; "
                "expected 'recover' or 'abort'"
            )
        if self.max_recoveries < 0:
            raise ValueError("max_recoveries must be non-negative")
        if self.recv_timeout is not None and self.recv_timeout <= 0:
            raise ValueError(
                f"recv_timeout must be positive (got {self.recv_timeout})"
            )
        if self.restart_overhead_seconds < 0:
            raise ValueError("restart_overhead_seconds must be non-negative")


@dataclass
class ClusterResult:
    """Outcome of a simulated cluster training run."""

    history: list[EpochRecord] = field(default_factory=list)
    simulated_seconds: float = 0.0
    messages: int = 0
    comm_bytes: int = 0
    #: (epoch, simulated seconds at epoch end, test accuracy) — Figure 7
    time_curve: list[tuple[int, float, float]] = field(default_factory=list)
    final_state: dict | None = None
    #: rank 0's optimiser state (identical on every rank in allreduce mode) —
    #: together with ``final_state`` this is a complete restart checkpoint
    final_optimizer_state: dict | None = None
    #: fault accounting (None when no fault plan was armed)
    fault_stats: FaultStats | None = None
    #: one report per survived failure, in order
    fault_reports: list[FaultReport] = field(default_factory=list)
    #: elastic restarts performed
    recoveries: int = 0
    #: ranks still alive at the end (== world when nothing died)
    final_world: int = 0
    #: rank 0's simulated seconds spent *blocked* on gradient communication
    #: (the part of the α-β cost overlap could not hide)
    exposed_comm_seconds: float = 0.0
    #: rank 0's total gradient-allreduce occupancy in simulated seconds
    #: (sum over buckets; == exposed for every blocking exchange)
    comm_busy_seconds: float = 0.0

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of gradient communication hidden under compute."""
        if self.comm_busy_seconds <= 0.0:
            return 0.0
        return 1.0 - self.exposed_comm_seconds / self.comm_busy_seconds

    @property
    def final_test_accuracy(self) -> float:
        return self.history[-1].test_accuracy if self.history else 0.0

    @property
    def peak_test_accuracy(self) -> float:
        return max((r.test_accuracy for r in self.history), default=0.0)

    def time_to_accuracy(self, target: float) -> float | None:
        """Simulated seconds until test accuracy first reaches ``target``."""
        for _, t, acc in self.time_curve:
            if acc >= target:
                return t
        return None


class _SnapshotStore:
    """Thread-safe holder of the latest recovery snapshot (rank 0 writes,
    the controller reads after the attempt's threads have joined)."""

    def __init__(self):
        self._lock = Lock()
        self._latest: dict | None = None

    def push(self, snapshot: dict) -> None:
        with self._lock:
            self._latest = snapshot

    @property
    def latest(self) -> dict | None:
        with self._lock:
            return self._latest


def _sync_gradient_allreduce(
    comm: Communicator,
    model: Module,
    weight: float,
    algorithm: str,
    compressor=None,
    bucket: np.ndarray | None = None,
) -> None:
    """Decentralised mode: allreduce shard-weighted gradients in place,
    optionally through a gradient compressor (1-bit / top-k / quantised).

    ``bucket`` is the rank's reusable flat gradient buffer (|W| floats);
    supplying it avoids reallocating the bucket every iteration."""
    params = model.parameters()
    flat = flatten_grads(params, out=bucket)
    if weight != 1.0:
        flat *= weight
    if compressor is not None:
        from .compression import compressed_allreduce

        total = compressed_allreduce(comm, flat, compressor)
    else:
        total = comm.allreduce(flat, algorithm=algorithm)
    unflatten_grads(total, params)


def _sync_gradient_master(
    comm: Communicator,
    model: Module,
    optimizer: Optimizer,
    weight: float,
    lr: float,
    grad_bucket: np.ndarray | None = None,
    param_bucket: np.ndarray | None = None,
) -> None:
    """Figure 2(a) mode: reduce to master, master updates, weights broadcast.

    Only rank 0's optimiser state advances; worker replicas just load the
    broadcast weights, exactly like parameter-server-style sync SGD.

    ``grad_bucket``/``param_bucket`` are reusable |W| flat buffers for the
    gradient reduce and the weight broadcast — same buffer-reuse discipline
    as the allreduce path (the fabric copies payloads on send, so reuse
    across iterations is safe).
    """
    params = model.parameters()
    flat = flatten_grads(params, out=grad_bucket)
    flat *= weight
    total = comm.reduce(flat, root=0)
    if comm.rank == 0:
        unflatten_grads(total, params)
        optimizer.step(lr)
        new_weights = flatten_params(params, out=param_bucket)
    else:
        new_weights = None
    new_weights = comm.bcast(new_weights, root=0)
    if comm.rank != 0:
        unflatten_params(new_weights, params)


def train_sync_sgd(
    model_builder: Callable[[], Module],
    optimizer_builder: Callable[[Sequence], Optimizer],
    schedule: Schedule | float,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    config: SyncSGDConfig,
) -> ClusterResult:
    """Run synchronous data-parallel SGD on a simulated cluster.

    ``model_builder`` must be deterministic (same weights every call) — each
    rank builds its own replica and consistency depends on identical
    initialisation, mirroring a real cluster's synchronised weight init.

    With a :class:`repro.faults.FaultPlan` armed, the run survives message
    loss (retransmit), stragglers (slow ranks), and rank crashes (elastic
    restart from the latest snapshot with P−k ranks); an unsurvivable
    failure raises :class:`repro.faults.TrainingAborted`.
    """
    sched = ConstantLR(schedule) if isinstance(schedule, (int, float)) else schedule
    n = len(x_train)
    loss_fn_proto = SoftmaxCrossEntropy
    fault_tolerant = config.fault_plan is not None

    def make_worker(
        world: int,
        start_epoch: int,
        model_state: dict | None,
        opt_state: dict | None,
        injector: FaultInjector | None,
        store: _SnapshotStore | None,
        cfg: SyncSGDConfig,
    ):
        iters_per_epoch = -(-n // cfg.batch_size)

        def body(comm: Communicator):
            model = model_builder()
            optimizer = optimizer_builder(model.parameters())
            loss_fn = loss_fn_proto()
            memory = None
            if cfg.static_memory:
                memory = MemoryContext()
                model.bind_memory(memory)
                loss_fn.bind_memory(memory)
            if model_state is not None:
                model.load_state_dict(model_state)
            if opt_state is not None:
                optimizer.load_state_dict(opt_state)
            iteration = start_epoch * iters_per_epoch
            history: list[EpochRecord] = []
            time_curve: list[tuple[int, float, float]] = []
            # gradient-exchange accounting for the monolithic path (the
            # bucketed exchange keeps its own running totals)
            exposed_total = 0.0
            busy_total = 0.0

            # SyncBatchNorm layers need this rank's communicator; their
            # presence switches the gradient protocol to pre-scaling.
            sync_bn = [m for m in model.modules() if isinstance(m, SyncBatchNorm)]
            for bn in sync_bn:
                bn.set_comm(comm)
            uses_sync_bn = bool(sync_bn)
            compressor = (
                cfg.compressor_factory() if cfg.compressor_factory else None
            )
            # Reusable flat gradient bucket (one |W| buffer per rank); master
            # mode also reuses a |W| buffer for the weight broadcast.
            grad_bucket = np.empty(
                sum(p.size for p in model.parameters()), dtype=np.float64
            )
            param_bucket = (
                np.empty_like(grad_bucket) if cfg.mode == "master" else None
            )
            # Bucketed (optionally overlapped) gradient exchange — see
            # repro.cluster.bucketing.  The monolithic path below stays
            # byte-identical when neither bucket_bytes nor overlap is set.
            exchange = None
            if cfg.mode == "allreduce" and (cfg.overlap or cfg.bucket_bytes is not None):
                from .bucketing import BucketedExchange, BucketPlan

                exchange = BucketedExchange(
                    comm,
                    BucketPlan.from_model(model, bucket_bytes=cfg.bucket_bytes),
                    algorithm=cfg.algorithm,
                    overlap=cfg.overlap,
                    compressor=compressor,
                )
                if cfg.overlap:
                    exchange.install_hooks(model)

            for epoch in range(start_epoch, cfg.epochs):
                order = epoch_permutation(n, epoch, cfg.shuffle_seed)
                loss_sum = 0.0
                correct_sum = 0.0
                seen = 0
                for lo in range(0, n, cfg.batch_size):
                    if injector is not None and injector.should_kill(
                        comm.rank, iteration
                    ):
                        raise RankKilled(comm.rank, iteration)
                    global_idx = order[lo : lo + cfg.batch_size]
                    local_idx = shard_batch(global_idx, world, comm.rank)
                    gbs = len(global_idx)
                    lr = sched(iteration)
                    # local loss gradients are means over the shard;
                    # weighting by |shard|/|global batch| makes the
                    # cross-rank sum the exact global-batch mean even when
                    # shards are uneven
                    weight = len(local_idx) / gbs
                    combine_weight = 1.0 if uses_sync_bn else weight
                    overlapping = exchange is not None and cfg.overlap

                    with _timed("trainer.train_step", rank=comm.rank,
                                iteration=iteration, epoch=epoch):
                        step_seconds = (
                            cfg.compute_time(len(local_idx))
                            if cfg.compute_time is not None and len(local_idx) > 0
                            else 0.0
                        )
                        with _timed("cluster.compute", rank=comm.rank,
                                    examples=len(local_idx)):
                            model.train()
                            optimizer.zero_grad()
                            if overlapping:
                                # charges forward time now; backward time is
                                # charged per bucket as the hooks launch
                                exchange.begin_step(combine_weight, step_seconds)
                            # With SyncBatchNorm every rank must join the
                            # collective forward/backward, even on an empty
                            # shard, and the loss gradient is pre-scaled so
                            # BN's global reductions see consistent
                            # per-example 1/N scaling.
                            if len(local_idx) > 0 or uses_sync_bn:
                                xb, yb = x_train[local_idx], y_train[local_idx]
                                logits = model.forward(xb)
                                batch_loss = loss_fn.forward(logits, yb)
                                grad = loss_fn.backward()
                                if uses_sync_bn:
                                    if memory is None:
                                        grad = grad * weight
                                    else:
                                        grad *= weight  # in the arena slot
                                model.backward(grad)
                                if len(local_idx) > 0:
                                    loss_sum += batch_loss * len(local_idx)
                                    correct_sum += (
                                        top1_accuracy(logits, yb) * len(local_idx)
                                    )
                                    seen += len(local_idx)
                                    if (not overlapping
                                            and cfg.compute_time is not None):
                                        comm.compute(step_seconds)

                        # Simulated seconds this rank spends in the gradient
                        # exchange: its own send cost plus any wait for
                        # slower peers — the straggler-wait signal.
                        sync_start = comm.time
                        with _timed("cluster.grad_sync", rank=comm.rank,
                                    mode=cfg.mode):
                            if cfg.mode == "allreduce":
                                if overlapping:
                                    exchange.finish_step()
                                elif exchange is not None:
                                    exchange.sync_blocking(combine_weight)
                                else:
                                    _sync_gradient_allreduce(
                                        comm, model, combine_weight,
                                        cfg.algorithm, compressor,
                                        bucket=grad_bucket)
                                optimizer.step(lr)
                            else:
                                _sync_gradient_master(
                                    comm, model, optimizer, combine_weight,
                                    lr, grad_bucket=grad_bucket,
                                    param_bucket=param_bucket)
                        sync_elapsed = comm.time - sync_start
                        if exchange is None:
                            exposed_total += sync_elapsed
                            busy_total += sync_elapsed
                        _gauge("cluster.straggler_wait_s",
                               rank=comm.rank).set(sync_elapsed)
                    iteration += 1

                # per-epoch metric aggregation: one tiny allreduce
                stats = comm.allreduce(
                    np.array([loss_sum, correct_sum, float(seen)])
                )
                if comm.rank == 0:
                    test_acc = float("nan")
                    if (epoch + 1) % cfg.eval_every == 0 or epoch == cfg.epochs - 1:
                        model.eval()
                        preds = []
                        for elo in range(0, len(x_test), 512):
                            preds.append(model.forward(x_test[elo : elo + 512]))
                        test_acc = top1_accuracy(np.concatenate(preds), y_test)
                    history.append(
                        EpochRecord(
                            epoch=epoch + 1,
                            train_loss=stats[0] / max(stats[2], 1.0),
                            train_accuracy=stats[1] / max(stats[2], 1.0),
                            test_accuracy=test_acc,
                            learning_rate=sched(max(iteration - 1, 0)),
                            iterations=iters_per_epoch,
                        )
                    )
                    time_curve.append((epoch + 1, comm.time, test_acc))
                    _publish("cluster.epoch", epoch=epoch + 1,
                             test_accuracy=test_acc, sim_seconds=comm.time)
                    if (
                        store is not None
                        and (epoch + 1) % cfg.checkpoint_every == 0
                        and epoch + 1 < cfg.epochs
                    ):
                        snapshot = {
                            "next_epoch": epoch + 1,
                            "model_state": model.state_dict(),
                            "optimizer_state": optimizer.state_dict(),
                            "sim_time": comm.time,
                            "history": list(history),
                            "time_curve": list(time_curve),
                            "path": None,
                        }
                        if cfg.checkpoint_dir is not None:
                            path = os.path.join(
                                os.fspath(cfg.checkpoint_dir),
                                f"ckpt_epoch{epoch + 1:04d}.npz",
                            )
                            from ..util.checkpoint import save_checkpoint

                            save_checkpoint(path, model, optimizer,
                                            iteration=iteration)
                            snapshot["path"] = path
                        store.push(snapshot)
                        _publish("checkpoint.save", epoch=epoch + 1,
                                 path=snapshot["path"], sim_seconds=comm.time)

            if comm.rank == 0:
                if exchange is not None:
                    exposed_total = exchange.exposed_seconds
                    busy_total = exchange.busy_seconds
                return {
                    "history": history,
                    "time_curve": time_curve,
                    "state": model.state_dict(),
                    "optimizer_state": optimizer.state_dict(),
                    "exposed_comm_seconds": exposed_total,
                    "comm_busy_seconds": busy_total,
                }
            return None

        if not fault_tolerant:
            return body

        def worker(comm: Communicator):
            comm.detector = FailureDetector(comm.fabric, comm.rank)
            try:
                return body(comm)
            except RankKilled as exc:
                # fail-stop crash: the dying process's connections reset
                comm.fabric.mark_dead(comm.rank)
                return {"fault": "killed", "rank": comm.rank,
                        "iteration": exc.iteration}
            except FabricTimeout as exc:
                injector.stats.count_timeout()
                verdict = comm.detector.diagnose_timeout(exc)
                comm.fabric.halt(
                    f"rank {comm.rank}: peer {exc.src} {verdict} "
                    f"(recv timeout)"
                )
                return {"fault": "aborted", "rank": comm.rank,
                        "cause": f"timeout waiting for rank {exc.src} "
                                 f"({verdict})",
                        "suspect": exc.src if verdict == PeerStatus.SUSPECT
                        else None}
            except PeerDeadError as exc:
                comm.fabric.halt(f"rank {comm.rank}: peer {exc.src} dead")
                return {"fault": "aborted", "rank": comm.rank,
                        "cause": f"peer rank {exc.src} dead", "suspect": None}
            except RetransmitExhausted as exc:
                comm.fabric.halt(
                    f"rank {comm.rank}: link to rank {exc.dst} down"
                )
                return {"fault": "aborted", "rank": comm.rank,
                        "cause": f"retransmits to rank {exc.dst} exhausted",
                        "suspect": exc.dst}
            except ClusterHalted as exc:
                return {"fault": "halted", "rank": comm.rank,
                        "cause": exc.reason}

        return worker

    # ---- fault-free fast path: one attempt, exceptions propagate -------------
    if not fault_tolerant:
        worker = make_worker(config.world, config.start_epoch,
                             config.initial_model_state,
                             config.initial_optimizer_state,
                             injector=None, store=None, cfg=config)
        results, fabric = run_cluster(config.world, worker,
                                      profile=config.profile,
                                      recv_timeout=config.recv_timeout)
        root = results[0]
        return ClusterResult(
            history=root["history"],
            simulated_seconds=fabric.makespan,
            messages=fabric.stats.messages,
            comm_bytes=fabric.stats.bytes,
            time_curve=root["time_curve"],
            final_state=root["state"],
            final_optimizer_state=root["optimizer_state"],
            final_world=config.world,
            exposed_comm_seconds=root["exposed_comm_seconds"],
            comm_busy_seconds=root["comm_busy_seconds"],
        )

    # ---- fault-tolerant controller: attempts + elastic recovery --------------
    total_stats = FaultStats()
    reports: list[FaultReport] = []
    plan = config.fault_plan
    cfg = config
    world = config.world
    start_epoch = config.start_epoch
    model_state = config.initial_model_state
    opt_state = config.initial_optimizer_state
    prior_history: list[EpochRecord] = []
    prior_curve: list[tuple[int, float, float]] = []
    time_offset = 0.0
    total_messages = 0
    total_bytes = 0
    recoveries = 0

    while True:
        injector = FaultInjector(plan)
        store = _SnapshotStore()
        worker = make_worker(world, start_epoch, model_state, opt_state,
                             injector, store, cfg)
        results, fabric = run_cluster(world, worker, profile=cfg.profile,
                                      injector=injector,
                                      recv_timeout=cfg.recv_timeout)
        total_stats.merge(injector.stats)
        total_messages += fabric.stats.messages
        total_bytes += fabric.stats.bytes

        markers = [r for r in results if isinstance(r, dict) and "fault" in r]
        if not markers:
            root = results[0]
            history = prior_history + root["history"]
            curve = prior_curve + [
                (e, time_offset + t, a) for e, t, a in root["time_curve"]
            ]
            return ClusterResult(
                history=history,
                simulated_seconds=time_offset + fabric.makespan,
                messages=total_messages,
                comm_bytes=total_bytes,
                time_curve=curve,
                final_state=root["state"],
                final_optimizer_state=root["optimizer_state"],
                fault_stats=total_stats,
                fault_reports=reports,
                recoveries=recoveries,
                final_world=world,
                exposed_comm_seconds=root["exposed_comm_seconds"],
                comm_busy_seconds=root["comm_busy_seconds"],
            )

        # -- the attempt failed: diagnose -----------------------------------
        dead = sorted(fabric.dead_ranks)
        killed = [m for m in markers if m["fault"] == "killed"]
        failed_iter = min((m["iteration"] for m in killed), default=None)
        causes = sorted({m["cause"] for m in markers if m["fault"] == "aborted"})
        cause = (
            f"rank(s) {dead} crashed" if dead
            else "; ".join(causes) or "unknown fault"
        )
        snap = store.latest
        survivors = world - len(dead)

        recoverable = (
            cfg.on_failure == "recover"
            and recoveries < cfg.max_recoveries
            and survivors >= 1
            and len(dead) > 0  # a pure timeout with no confirmed death is
            # indistinguishable from a partitioned-but-alive peer: restarting
            # would fork the cluster, so abort instead
        )
        if not recoverable:
            report = FaultReport(
                outcome="aborted",
                cause=cause if cfg.on_failure != "abort"
                else f"on_failure='abort': {cause}",
                dead_ranks=dead,
                failed_at_iteration=failed_iter,
                world_before=world,
                world_after=survivors,
                stats=total_stats,
            )
            reports.append(report)
            _publish("recovery.abort", cause=report.cause,
                     dead_ranks=list(dead), world_before=world,
                     world_after=survivors)
            raise TrainingAborted(report)

        # -- elastic restart from the latest snapshot ------------------------
        recoveries += 1
        total_stats.recoveries += 1
        snap_time = snap["sim_time"] if snap else 0.0
        total_stats.lost_seconds += max(fabric.makespan - snap_time, 0.0)
        if snap is not None:
            if snap["path"] is not None:
                # exercise the real crash-restart path: reload through the
                # on-disk atomic checkpoint rather than the in-memory copy
                from ..util.checkpoint import load_checkpoint

                ckpt_model = model_builder()
                ckpt_opt = optimizer_builder(ckpt_model.parameters())
                load_checkpoint(snap["path"], ckpt_model, ckpt_opt)
                model_state = ckpt_model.state_dict()
                opt_state = ckpt_opt.state_dict()
            else:
                model_state = snap["model_state"]
                opt_state = snap["optimizer_state"]
            start_epoch = snap["next_epoch"]
            prior_history = prior_history + snap["history"]
            prior_curve = prior_curve + [
                (e, time_offset + t, a) for e, t, a in snap["time_curve"]
            ]
        # else: no snapshot yet — restart the attempt from its own start
        # state (model_state/opt_state/start_epoch are unchanged)
        time_offset += fabric.makespan + cfg.restart_overhead_seconds

        new_world = survivors
        new_algorithm = cfg.algorithm
        if new_algorithm == "rhd" and new_world & (new_world - 1):
            # rhd needs a power-of-two world; fall back to the tree
            new_algorithm = "tree"
        reports.append(
            FaultReport(
                outcome="recovered",
                cause=cause,
                dead_ranks=dead,
                failed_at_iteration=failed_iter,
                restarted_from_epoch=start_epoch,
                world_before=world,
                world_after=new_world,
            )
        )
        _publish("recovery.restart", cause=cause, dead_ranks=list(dead),
                 restarted_from_epoch=start_epoch, world_before=world,
                 world_after=new_world)
        plan = plan.without_rank(set(dead), world)
        world = new_world
        cfg = replace(cfg, world=world, algorithm=new_algorithm,
                      start_epoch=start_epoch)
