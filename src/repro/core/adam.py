"""Adam (Kingma & Ba 2015) — the adaptive-moment baseline.

Not used by the paper itself, but the natural contrast for the LARS/LAMB
ablations: Adam adapts *per coordinate* while LARS adapts *per layer*, and
at very large batch Adam needs LAMB's layer-wise correction (see
``repro.core.lamb``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.tensor import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with decoupled per-parameter weight-decay multipliers.

    ``decoupled=True`` applies AdamW-style decay (decay added to the update,
    not the moments); ``False`` reproduces the original L2-in-gradient form.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        decoupled: bool = True,
    ):
        super().__init__(params)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.decoupled = bool(decoupled)

    def _adam_direction(self, p: Parameter, state: dict) -> np.ndarray:
        """Bias-corrected m̂/(√v̂+ε), the shared core of Adam and LAMB."""
        wd = self.weight_decay * p.weight_decay
        g = p.grad if (self.decoupled or not wd) else p.grad + wd * p.data
        m = state.get("m")
        v = state.get("v")
        if m is None:
            m = state["m"] = np.zeros_like(p.data)
            v = state["v"] = np.zeros_like(p.data)
        m *= self.beta1
        m += (1 - self.beta1) * g
        v *= self.beta2
        v += (1 - self.beta2) * g * g
        t = state.get("t", 0) + 1
        state["t"] = t
        mhat = m / (1 - self.beta1**t)
        vhat = v / (1 - self.beta2**t)
        direction = mhat / (np.sqrt(vhat) + self.eps)
        if self.decoupled and wd:
            direction = direction + wd * p.data
        return direction

    def apply_update(self, p: Parameter, state: dict, lr: float) -> None:
        p.data -= lr * self._adam_direction(p, state)
