"""Batch-size schedules — "increase the batch size instead of decaying the
learning rate" (Smith et al. 2018), the natural follow-on to this paper's
large-batch programme.

The equivalence argument mirrors the linear-scaling rule in reverse: SGD's
update noise scales like η/B, so decaying η by k and growing B by k move the
optimisation along the same noise-decay path while *gaining* the large-batch
communication benefits of Table 2 as training progresses.

:class:`BatchSizeSchedule` maps epoch → global batch; the trainer extension
``fit_with_batch_schedule`` consumes it.  The iteration-indexed LR schedule
is unchanged — combining a constant LR with a doubling batch reproduces the
effect of a step-decayed LR at fixed batch (verified in the tests).
"""

from __future__ import annotations

import math

__all__ = ["BatchSizeSchedule", "ConstantBatch", "SteppedBatchGrowth"]


class BatchSizeSchedule:
    """Epoch → global batch size."""

    def batch_at(self, epoch: int) -> int:
        raise NotImplementedError

    def __call__(self, epoch: int) -> int:
        b = int(self.batch_at(int(epoch)))
        if b <= 0:
            raise ValueError(f"schedule produced invalid batch {b} at epoch {epoch}")
        return b


class ConstantBatch(BatchSizeSchedule):
    def __init__(self, batch: int):
        if batch <= 0:
            raise ValueError("batch must be positive")
        self.batch = int(batch)

    def batch_at(self, epoch: int) -> int:
        return self.batch


class SteppedBatchGrowth(BatchSizeSchedule):
    """Multiply the batch by ``factor`` at each milestone epoch, capped.

    ``SteppedBatchGrowth(64, milestones=[30, 60, 80], factor=10)`` is the
    Smith et al. ImageNet recipe shape: 64 → 640 → 6400 → (cap).
    """

    def __init__(
        self,
        base_batch: int,
        milestones: list[int],
        factor: float = 2.0,
        max_batch: int | None = None,
    ):
        if base_batch <= 0:
            raise ValueError("base_batch must be positive")
        if factor <= 1.0:
            raise ValueError("factor must exceed 1")
        self.base_batch = int(base_batch)
        self.milestones = sorted(int(m) for m in milestones)
        self.factor = float(factor)
        self.max_batch = int(max_batch) if max_batch is not None else None

    def batch_at(self, epoch: int) -> int:
        growths = sum(1 for m in self.milestones if epoch >= m)
        b = self.base_batch * self.factor**growths
        if self.max_batch is not None:
            b = min(b, self.max_batch)
        return max(1, math.floor(b))
