"""Optimiser base class.

Optimisers mutate :class:`repro.nn.Parameter` data in place from the
accumulated gradients.  The learning rate is supplied per step by a
:class:`repro.core.schedules.Schedule` (or a constant), so the warmup /
poly-decay logic composes with any optimiser.

The update is deliberately factored as

    step(lr) -> for each parameter: apply_update(param, state, lr)

so the synchronous data-parallel trainer can run the *identical* update code
after an allreduce — sequential consistency then holds by construction and is
verified by the tests rather than assumed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.tensor import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class: per-parameter state plus an in-place update rule."""

    def __init__(self, params: Sequence[Parameter]):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        # state is keyed by position, not name, so unnamed params work too
        self.state: list[dict[str, np.ndarray]] = [dict() for _ in self.params]
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self, lr: float) -> None:
        """Apply one update with global learning rate ``lr``."""
        if not np.isfinite(lr) or lr < 0:
            raise ValueError(f"invalid learning rate {lr}")
        for p, st in zip(self.params, self.state):
            self.apply_update(p, st, lr)
        self.step_count += 1

    def apply_update(self, p: Parameter, state: dict, lr: float) -> None:
        raise NotImplementedError

    # -- replication support (simulated cluster) ------------------------------
    def state_dict(self) -> dict:
        """Snapshot of optimiser state for checkpoint/replication."""
        def copy_value(v):
            return v.copy() if isinstance(v, np.ndarray) else v

        return {
            "step_count": self.step_count,
            "state": [
                {k: copy_value(v) for k, v in st.items()} for st in self.state
            ],
        }

    def load_state_dict(self, snapshot: dict) -> None:
        self.step_count = int(snapshot["step_count"])
        if len(snapshot["state"]) != len(self.state):
            raise ValueError("state length mismatch")
        self.state = [
            {
                k: (np.asarray(v).copy() if isinstance(v, np.ndarray) else v)
                for k, v in st.items()
            }
            for st in snapshot["state"]
        ]
