"""LARS — Layer-wise Adaptive Rate Scaling (You, Gitman & Ginsburg 2017).

This is the paper's enabling algorithm.  Plain SGD applies one global
learning rate to every layer, but the ratio ‖w‖/‖∇w‖ varies by orders of
magnitude across the layers of a deep network; with the very large learning
rates the linear scaling rule demands at batch 16K–32K, layers with a small
ratio diverge first and training collapses (Table 5).  LARS gives each layer
a *local* learning rate proportional to that ratio:

    local_lr  = η · ‖w‖ / (‖∇w‖ + β·‖w‖)          (trust ratio)
    v ← m·v + γ(t) · local_lr · (∇w + β·w)          (momentum on scaled grad)
    w ← w − v

where γ(t) is the global schedule (warmup + poly decay), η ("trust
coefficient") ≈ 0.001–0.02, and β is the weight decay.  The normalisation
makes each layer's update magnitude ≈ γ·η·‖w‖ — independent of the gradient
scale, hence stable at extreme batch sizes.

Following the reference implementation (NVCaffe 0.16), parameters whose
gradient norms are meaningless for the ratio — biases and BatchNorm
scale/shift — skip the trust-ratio scaling and fall back to the plain
momentum-SGD update (their ``Parameter.weight_decay`` is 0, which is the
marker the paper's stack uses too).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.tensor import Parameter
from .optimizer import Optimizer

__all__ = ["LARS", "trust_ratio"]


def trust_ratio(
    weight_norm: float, grad_norm: float, weight_decay: float, eps: float = 1e-9
) -> float:
    """The LARS local-LR multiplier ‖w‖ / (‖∇w‖ + β·‖w‖).

    Degenerate cases return 1.0 (no scaling): a zero-weight layer has no
    meaningful scale yet, and a zero-gradient, zero-decay layer would divide
    by zero.
    """
    denom = grad_norm + weight_decay * weight_norm
    if weight_norm <= eps or denom <= eps:
        return 1.0
    return weight_norm / denom


class LARS(Optimizer):
    """LARS optimiser.

    Parameters
    ----------
    trust_coefficient:
        η above.  The LARS paper uses 0.001 for ResNet-50; AlexNet-BN at 32K
        works with ~0.01–0.02.  Exposed per recipe.
    momentum, weight_decay:
        As in :class:`repro.core.sgd.SGD` (paper: 0.9 / 0.0005).
    exclude_from_adaptation:
        Predicate deciding which parameters skip trust-ratio scaling.  The
        default excludes any parameter with ``weight_decay == 0`` — biases
        and BatchNorm γ/β in this code base.
    clip_trust:
        Optional upper bound on the local LR multiplier (an extension knob
        used by some later implementations; ``None`` reproduces the paper).
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        trust_coefficient: float = 0.001,
        momentum: float = 0.9,
        weight_decay: float = 0.0005,
        exclude_from_adaptation=None,
        clip_trust: float | None = None,
    ):
        super().__init__(params)
        if trust_coefficient <= 0:
            raise ValueError("trust_coefficient must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.trust_coefficient = float(trust_coefficient)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.exclude = (
            exclude_from_adaptation
            if exclude_from_adaptation is not None
            else (lambda p: p.weight_decay == 0.0)
        )
        self.clip_trust = clip_trust

    def local_lr(self, p: Parameter) -> float:
        """Trust-ratio multiplier for parameter ``p`` at its current state."""
        if self.exclude(p):
            return 1.0
        wd = self.weight_decay * p.weight_decay
        ratio = trust_ratio(
            float(np.linalg.norm(p.data)), float(np.linalg.norm(p.grad)), wd
        )
        scaled = self.trust_coefficient * ratio
        if self.clip_trust is not None:
            scaled = min(scaled, self.clip_trust)
        return scaled

    def trust_ratios(self) -> dict[str, float]:
        """Per-parameter local-LR multipliers at the current gradients.

        The diagnostic view behind the LARS paper's motivation: ‖w‖/‖∇w‖
        spans orders of magnitude across layers, so the returned values do
        too.  Excluded parameters (biases/BN) report 1.0.  Keys are
        parameter names (positional index for unnamed parameters).
        """
        return {
            p.name or f"param{i}": self.local_lr(p) / (
                self.trust_coefficient if not self.exclude(p) else 1.0
            )
            for i, p in enumerate(self.params)
        }

    def apply_update(self, p: Parameter, state: dict, lr: float) -> None:
        wd = self.weight_decay * p.weight_decay
        g = p.grad + wd * p.data if wd else p.grad
        scale = lr * self.local_lr(p)
        v = state.get("momentum")
        if v is None:
            v = state["momentum"] = np.zeros_like(p.data)
        v *= self.momentum
        v += scale * g
        p.data -= v
