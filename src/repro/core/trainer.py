"""Single-process training loop.

This is the serial reference implementation: the simulated cluster in
:mod:`repro.cluster` must match it step-for-step (sequential consistency).
It also powers the laptop-scale convergence experiments (Tables 5/7/10,
Figures 1/4/5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..nn.layers.base import Module
from ..nn.losses import SoftmaxCrossEntropy
from ..nn.memory import MemoryContext
from ..obs import timed as _timed
from ..obs.events import publish as _publish
from .metrics import EpochRecord, RunningMean, top1_accuracy
from .optimizer import Optimizer
from .schedules import ConstantLR, Schedule

__all__ = ["Trainer", "TrainResult", "iterations_per_epoch"]


def iterations_per_epoch(n_examples: int, batch_size: int) -> int:
    """ceil(n/B): every example is touched once per epoch (paper's definition
    of an epoch; the final short batch is kept, not dropped)."""
    if n_examples <= 0 or batch_size <= 0:
        raise ValueError("n_examples and batch_size must be positive")
    return -(-n_examples // batch_size)


@dataclass
class TrainResult:
    """Full training history plus summary statistics."""

    history: list[EpochRecord] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> float:
        return self.history[-1].test_accuracy if self.history else 0.0

    @property
    def peak_test_accuracy(self) -> float:
        """The paper reports *peak* top-1 accuracy (Tables 8/9)."""
        return max((r.test_accuracy for r in self.history), default=0.0)

    @property
    def total_iterations(self) -> int:
        return sum(r.iterations for r in self.history)

    def accuracy_curve(self) -> list[tuple[int, float]]:
        return [(r.epoch, r.test_accuracy) for r in self.history]

    def epochs_to_accuracy(self, target: float) -> int | None:
        """First epoch whose test accuracy reaches ``target`` (Figure 7)."""
        for r in self.history:
            if r.test_accuracy >= target:
                return r.epoch
        return None


class Trainer:
    """Serial mini-batch trainer.

    Parameters
    ----------
    model, optimizer:
        The network and its update rule.
    schedule:
        Iteration-indexed LR schedule; a plain float is wrapped in
        :class:`ConstantLR`.
    loss:
        Defaults to mean softmax cross-entropy.
    shuffle_seed:
        Epoch shuffling is derived deterministically from this seed so that
        serial and simulated-cluster runs see identical batch streams.
    static_memory:
        Bind a :class:`repro.nn.MemoryContext` to the model and loss so
        steady-state steps run allocation-free out of a persistent arena
        (bitwise-identical results; ``False`` is the eager escape hatch).
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        schedule: Schedule | float,
        loss: SoftmaxCrossEntropy | None = None,
        shuffle_seed: int = 0,
        static_memory: bool = False,
    ):
        self.model = model
        self.optimizer = optimizer
        self.schedule = ConstantLR(schedule) if isinstance(schedule, (int, float)) else schedule
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.shuffle_seed = int(shuffle_seed)
        self.iteration = 0
        self.memory: MemoryContext | None = None
        if static_memory:
            self.memory = MemoryContext()
            self.model.bind_memory(self.memory)
            self.loss.bind_memory(self.memory)

    def arena_stats(self) -> dict | None:
        """Arena accounting snapshot, or ``None`` when running eager."""
        return self.memory.arena.stats() if self.memory is not None else None

    # -- single step -----------------------------------------------------------
    def train_step(
        self, x: np.ndarray, y: np.ndarray, micro_batch_size: int | None = None
    ) -> tuple[float, float]:
        """One forward/backward/update on batch (x, y).

        ``micro_batch_size`` enables gradient accumulation: the batch is
        processed in chunks whose loss gradients are weighted by
        |chunk|/|batch| and summed before one optimiser step — how a memory-
        limited device runs a batch larger than Figure 3's OOM point.  For
        models without BatchNorm this is *exactly* the full-batch step (the
        same argument as the cluster's sequential consistency); BatchNorm
        statistics become per-micro-batch, the "ghost batch norm" effect.

        Returns (mean loss, top-1 train accuracy on the batch).
        """
        n = len(x)
        chunk = n if micro_batch_size is None else int(micro_batch_size)
        if chunk <= 0:
            raise ValueError("micro_batch_size must be positive")
        with _timed("trainer.train_step", iteration=self.iteration, batch=n):
            self.model.train()
            self.optimizer.zero_grad()
            loss_sum = 0.0
            correct = 0.0
            for lo in range(0, n, chunk):
                xb, yb = x[lo : lo + chunk], y[lo : lo + chunk]
                logits = self.model.forward(xb)
                loss_val = self.loss.forward(logits, yb)
                weight = len(xb) / n
                if self.memory is None:
                    self.model.backward(self.loss.backward() * weight)
                else:
                    # scale the loss gradient in its arena slot; x * 1.0 == x
                    # bitwise, so the weight==1 fast case stays identical too
                    grad = self.loss.backward()
                    if weight != 1.0:
                        grad *= weight
                    self.model.backward(grad)
                loss_sum += loss_val * len(xb)
                correct += top1_accuracy(logits, yb) * len(xb)
            lr = self.schedule(self.iteration)
            self.optimizer.step(lr)
            self.iteration += 1
        return loss_sum / n, correct / n

    # -- evaluation --------------------------------------------------------------
    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> float:
        """Top-1 accuracy over a held-out set, batched to bound memory."""
        with _timed("trainer.evaluate", examples=len(x)):
            self.model.eval()
            correct = RunningMean()
            for lo in range(0, len(x), batch_size):
                xb, yb = x[lo : lo + batch_size], y[lo : lo + batch_size]
                logits = self.model.forward(xb)
                correct.update(top1_accuracy(logits, yb), weight=len(xb))
            self.model.train()
            return correct.mean

    # -- epoch ordering ----------------------------------------------------------
    def epoch_permutation(self, n: int, epoch: int) -> np.ndarray:
        """Deterministic shuffle for ``epoch`` (shared with cluster runs)."""
        rng = np.random.default_rng((self.shuffle_seed, epoch))
        return rng.permutation(n)

    def fit_with_batch_schedule(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: np.ndarray,
        y_test: np.ndarray,
        epochs: int,
        batch_schedule,
        callback: Callable[[EpochRecord], None] | None = None,
    ) -> TrainResult:
        """Train with an epoch-indexed batch-size schedule (Smith et al.'s
        "increase the batch size instead of decaying the learning rate" —
        the follow-on to the paper's large-batch programme).

        ``batch_schedule`` maps epoch → global batch
        (:class:`repro.core.batch_schedule.BatchSizeSchedule` or any
        callable).  Each epoch simply runs :meth:`fit`'s inner loop at that
        epoch's batch size.
        """
        n = len(x_train)
        result = TrainResult()
        for epoch in range(epochs):
            batch_size = min(int(batch_schedule(epoch)), n)
            with _timed("trainer.epoch", epoch=epoch + 1, batch_size=batch_size):
                order = self.epoch_permutation(n, epoch)
                loss_avg, acc_avg = RunningMean(), RunningMean()
                iters = 0
                lr_last = 0.0
                for lo in range(0, n, batch_size):
                    idx = order[lo : lo + batch_size]
                    lr_last = self.schedule(self.iteration)
                    loss_val, acc = self.train_step(x_train[idx], y_train[idx])
                    loss_avg.update(loss_val, weight=len(idx))
                    acc_avg.update(acc, weight=len(idx))
                    iters += 1
                record = EpochRecord(
                    epoch=epoch + 1,
                    train_loss=loss_avg.mean,
                    train_accuracy=acc_avg.mean,
                    test_accuracy=self.evaluate(x_test, y_test),
                    learning_rate=lr_last,
                    iterations=iters,
                )
            _publish("trainer.epoch", epoch=record.epoch,
                     train_loss=record.train_loss,
                     test_accuracy=record.test_accuracy)
            result.history.append(record)
            if callback is not None:
                callback(record)
        return result

    # -- full loop -----------------------------------------------------------------
    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: np.ndarray,
        y_test: np.ndarray,
        epochs: int,
        batch_size: int,
        callback: Callable[[EpochRecord], None] | None = None,
        micro_batch_size: int | None = None,
    ) -> TrainResult:
        """Train for ``epochs`` full passes with global batch ``batch_size``.

        ``micro_batch_size`` forwards to :meth:`train_step`'s gradient
        accumulation — how a memory-limited device runs large batches.
        """
        n = len(x_train)
        result = TrainResult()
        for epoch in range(epochs):
            with _timed("trainer.epoch", epoch=epoch + 1, batch_size=batch_size):
                order = self.epoch_permutation(n, epoch)
                loss_avg, acc_avg = RunningMean(), RunningMean()
                iters = 0
                lr_last = 0.0
                for lo in range(0, n, batch_size):
                    idx = order[lo : lo + batch_size]
                    lr_last = self.schedule(self.iteration)
                    loss_val, acc = self.train_step(
                        x_train[idx], y_train[idx],
                        micro_batch_size=micro_batch_size,
                    )
                    loss_avg.update(loss_val, weight=len(idx))
                    acc_avg.update(acc, weight=len(idx))
                    iters += 1
                record = EpochRecord(
                    epoch=epoch + 1,
                    train_loss=loss_avg.mean,
                    train_accuracy=acc_avg.mean,
                    test_accuracy=self.evaluate(x_test, y_test),
                    learning_rate=lr_last,
                    iterations=iters,
                )
            _publish("trainer.epoch", epoch=record.epoch,
                     train_loss=record.train_loss,
                     test_accuracy=record.test_accuracy)
            result.history.append(record)
            if callback is not None:
                callback(record)
        return result
