"""Momentum SGD with weight decay — the paper's baseline optimiser.

The update follows Caffe's convention (the paper's software stack), where the
learning rate multiplies the gradient *inside* the momentum buffer:

    v ← m·v + lr·(∇w + λ·w)
    w ← w − v

with momentum m = 0.9 and weight decay λ = 0.0005 throughout the paper's
experiments.  Per-parameter ``weight_decay`` multipliers (0 for biases and
BatchNorm scale/shift) are honoured.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.tensor import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Caffe-style momentum SGD.

    Parameters
    ----------
    momentum:
        Heavy-ball coefficient; 0 disables the buffer entirely.
    weight_decay:
        L2 coefficient λ, scaled per parameter by ``Parameter.weight_decay``.
    nesterov:
        Nesterov-style lookahead (extension; the paper uses plain momentum).
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        momentum: float = 0.9,
        weight_decay: float = 0.0005,
        nesterov: bool = False,
    ):
        super().__init__(params)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = bool(nesterov)

    def apply_update(self, p: Parameter, state: dict, lr: float) -> None:
        wd = self.weight_decay * p.weight_decay
        g = p.grad + wd * p.data if wd else p.grad
        if self.momentum:
            v = state.get("momentum")
            if v is None:
                v = state["momentum"] = np.zeros_like(p.data)
            v *= self.momentum
            v += lr * g
            if self.nesterov:
                p.data -= self.momentum * v + lr * g
            else:
                p.data -= v
        else:
            p.data -= lr * g
