"""Learning-rate schedules: the linear scaling rule, gradual warmup, and
Caffe's polynomial decay — the exact combination the paper trains with.

A :class:`Schedule` maps an iteration index (0-based) to a learning rate.
The paper's recipe for every experiment is::

    warmup(w_epochs) -> poly(power=2) over the remaining iterations

with the peak learning rate set by the linear scaling rule
(Krizhevsky 2014 / Goyal et al. 2017): scale the batch from B to kB, scale
the LR from η to kη.
"""

from __future__ import annotations

import math

__all__ = [
    "Schedule",
    "ConstantLR",
    "PolynomialDecay",
    "StepDecay",
    "GradualWarmup",
    "linear_scaled_lr",
    "sqrt_scaled_lr",
    "paper_schedule",
]


class Schedule:
    """Iteration → learning-rate map."""

    def lr_at(self, iteration: int) -> float:
        raise NotImplementedError

    def __call__(self, iteration: int) -> float:
        lr = self.lr_at(int(iteration))
        if lr < 0 or not math.isfinite(lr):
            raise ValueError(f"schedule produced invalid lr {lr} at t={iteration}")
        return lr


class ConstantLR(Schedule):
    """Fixed learning rate (the paper's "regular" rule for small batches)."""

    def __init__(self, lr: float):
        if lr < 0:
            raise ValueError("lr must be non-negative")
        self.lr = float(lr)

    def lr_at(self, iteration: int) -> float:
        return self.lr


class PolynomialDecay(Schedule):
    """Caffe ``poly`` policy: lr(t) = base · (1 − t/T)^power.

    The paper uses power = 2 everywhere ("we use poly learning rate policy,
    and the poly power is 2").  At t ≥ T the LR is clamped to 0.
    """

    def __init__(self, base_lr: float, total_steps: int, power: float = 2.0):
        if base_lr < 0:
            raise ValueError("base_lr must be non-negative")
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.base_lr = float(base_lr)
        self.total_steps = int(total_steps)
        self.power = float(power)

    def lr_at(self, iteration: int) -> float:
        frac = min(iteration, self.total_steps) / self.total_steps
        return self.base_lr * (1.0 - frac) ** self.power


class StepDecay(Schedule):
    """Classic step policy (÷10 at milestones) — the He et al. baseline rule,
    provided for the augmentation-baseline comparisons."""

    def __init__(self, base_lr: float, milestones: list[int], gamma: float = 0.1):
        self.base_lr = float(base_lr)
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)

    def lr_at(self, iteration: int) -> float:
        drops = sum(1 for m in self.milestones if iteration >= m)
        return self.base_lr * self.gamma**drops


class GradualWarmup(Schedule):
    """Goyal et al.'s gradual warmup wrapped around any base schedule.

    For the first ``warmup_steps`` iterations the LR ramps linearly from
    ``start_lr`` to the base schedule's value at the handoff point; from then
    on the base schedule (queried at ``t − warmup_steps`` by default, so its
    decay horizon covers the post-warmup phase) takes over.  The ramp is
    continuous at the handoff by construction.
    """

    def __init__(
        self,
        base: Schedule,
        warmup_steps: int,
        start_lr: float = 0.0,
        rebase: bool = True,
    ):
        if warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")
        self.base = base
        self.warmup_steps = int(warmup_steps)
        self.start_lr = float(start_lr)
        self.rebase = bool(rebase)

    def _base_at(self, iteration: int) -> float:
        t = iteration - self.warmup_steps if self.rebase else iteration
        return self.base.lr_at(max(t, 0))

    def lr_at(self, iteration: int) -> float:
        if self.warmup_steps == 0 or iteration >= self.warmup_steps:
            return self._base_at(iteration)
        target = self._base_at(self.warmup_steps)
        frac = (iteration + 1) / self.warmup_steps
        return self.start_lr + frac * (target - self.start_lr)


def linear_scaled_lr(base_lr: float, base_batch: int, batch: int) -> float:
    """Linear scaling rule: B → kB implies η → kη (Krizhevsky 2014)."""
    if base_batch <= 0 or batch <= 0:
        raise ValueError("batch sizes must be positive")
    return base_lr * (batch / base_batch)


def sqrt_scaled_lr(base_lr: float, base_batch: int, batch: int) -> float:
    """Square-root scaling (Krizhevsky's alternative; extension knob)."""
    if base_batch <= 0 or batch <= 0:
        raise ValueError("batch sizes must be positive")
    return base_lr * math.sqrt(batch / base_batch)


def paper_schedule(
    peak_lr: float,
    total_iterations: int,
    warmup_iterations: int = 0,
    power: float = 2.0,
) -> Schedule:
    """The paper's composite schedule: gradual warmup into poly(power) decay."""
    decay_steps = max(total_iterations - warmup_iterations, 1)
    poly = PolynomialDecay(peak_lr, decay_steps, power=power)
    if warmup_iterations == 0:
        return poly
    return GradualWarmup(poly, warmup_iterations)
