"""Accuracy metrics and streaming averages."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["top_k_accuracy", "top1_accuracy", "RunningMean", "EpochRecord"]


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose target is among the k largest logits."""
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.shape != (logits.shape[0],):
        raise ValueError("logits must be (N, C) and targets (N,)")
    if not 1 <= k <= logits.shape[1]:
        raise ValueError(f"k={k} out of range for {logits.shape[1]} classes")
    if k == 1:
        pred = logits.argmax(axis=1)
        return float(np.mean(pred == targets))
    topk = np.argpartition(logits, -k, axis=1)[:, -k:]
    return float(np.mean(np.any(topk == targets[:, None], axis=1)))


def top1_accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 test accuracy — the paper's only reported metric."""
    return top_k_accuracy(logits, targets, k=1)


class RunningMean:
    """Numerically simple streaming mean with per-item weights."""

    def __init__(self) -> None:
        self.total = 0.0
        self.weight = 0.0

    def update(self, value: float, weight: float = 1.0) -> None:
        self.total += float(value) * float(weight)
        self.weight += float(weight)

    @property
    def mean(self) -> float:
        """Weighted mean of the values seen so far.

        Returns ``nan`` when no weight has been accumulated: the mean of an
        empty stream is undefined, and a silent ``0.0`` is indistinguishable
        from a genuine zero average (e.g. 0% accuracy), which let empty-eval
        bugs pass unnoticed.  ``nan`` propagates loudly through downstream
        arithmetic and fails ``==`` comparisons in tests.
        """
        return self.total / self.weight if self.weight else float("nan")

    def reset(self) -> None:
        self.total = 0.0
        self.weight = 0.0


@dataclass
class EpochRecord:
    """One row of training history."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: float
    learning_rate: float
    iterations: int

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
            "test_accuracy": self.test_accuracy,
            "learning_rate": self.learning_rate,
            "iterations": self.iterations,
        }
