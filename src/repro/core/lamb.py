"""LAMB (You et al. 2019) — the successor this paper's line of work led to.

The paper's conclusion points at scaling batch sizes further; the same first
author followed up with LAMB, which applies the LARS trust-ratio idea to the
Adam direction instead of the raw gradient:

    r      = m̂ / (√v̂ + ε) + λ·w          (Adam direction + decoupled decay)
    ratio  = ‖w‖ / ‖r‖                    (layer-wise trust ratio)
    w     ← w − γ(t) · ratio · r

Included as the repository's "future work" extension: the large-batch
ablation bench compares SGD / LARS / LAMB under the same schedules.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn.tensor import Parameter
from .adam import Adam

__all__ = ["LAMB"]


class LAMB(Adam):
    """Layer-wise adaptive moments for batch training.

    Parameters follow :class:`Adam`; ``exclude_from_adaptation`` mirrors
    :class:`repro.core.lars.LARS` (biases and BN parameters take the plain
    Adam step).
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-6,
        weight_decay: float = 0.0,
        exclude_from_adaptation=None,
        clip_ratio: float = 10.0,
    ):
        super().__init__(params, beta1=beta1, beta2=beta2, eps=eps,
                         weight_decay=weight_decay, decoupled=True)
        self.exclude = (
            exclude_from_adaptation
            if exclude_from_adaptation is not None
            else (lambda p: p.weight_decay == 0.0)
        )
        if clip_ratio <= 0:
            raise ValueError("clip_ratio must be positive")
        self.clip_ratio = float(clip_ratio)

    def apply_update(self, p: Parameter, state: dict, lr: float) -> None:
        direction = self._adam_direction(p, state)
        if self.exclude(p):
            p.data -= lr * direction
            return
        w_norm = float(np.linalg.norm(p.data))
        r_norm = float(np.linalg.norm(direction))
        if w_norm > 0 and r_norm > 0:
            ratio = min(w_norm / r_norm, self.clip_ratio)
        else:
            ratio = 1.0
        p.data -= lr * ratio * direction
