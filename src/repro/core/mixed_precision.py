"""Mixed-precision training, simulated — FP32 master weights + FP16
gradients with (dynamic) loss scaling.

Context in the paper: NVIDIA's 2-hour DGX-1 AlexNet figure used
half-precision, "whose cost is half of the standard single-precision
operation", while all the paper's own runs are fp32.  This module makes the
comparison runnable: :class:`MixedPrecisionOptimizer` wraps any optimiser
and reproduces fp16's numerical behaviour on our fp64 substrate by
round-tripping gradients through ``np.float16``:

* small gradients **underflow to zero** in fp16 (the failure mode),
* **loss scaling** multiplies the loss by S so gradients land in fp16's
  range, then unscales before the update (the standard fix),
* **dynamic scaling** grows S while steps succeed and halves it on
  overflow (skipping the bad step), as in production AMP stacks.
"""

from __future__ import annotations

import numpy as np

from ..nn.tensor import Parameter
from .optimizer import Optimizer

__all__ = ["MixedPrecisionOptimizer", "fp16_roundtrip"]

#: largest finite value of IEEE half precision
FP16_MAX = 65504.0


def fp16_roundtrip(x: np.ndarray) -> np.ndarray:
    """Quantise through IEEE fp16: values < ~6e-8 flush to zero, values
    beyond ±65504 become ±inf — exactly half precision's behaviour."""
    with np.errstate(over="ignore"):  # overflow to inf is the point
        return x.astype(np.float16).astype(np.float64)


class MixedPrecisionOptimizer(Optimizer):
    """Wrap an optimiser with simulated fp16 gradient storage + loss scaling.

    Protocol (matching AMP): the training loop scales the *loss gradient*
    by ``scale`` before backprop (use :meth:`scale_loss_grad`); the wrapper
    then (1) quantises the accumulated gradients to fp16 — this is where
    gradients would have lived on a half-precision device —, (2) checks for
    inf/nan, (3) unscales into fp32 and delegates the actual update to the
    inner optimiser's master weights.

    ``dynamic=True`` doubles the scale every ``growth_interval`` successful
    steps and halves it (skipping the update) on overflow.
    """

    def __init__(
        self,
        inner: Optimizer,
        init_scale: float = 2.0**10,
        dynamic: bool = True,
        growth_interval: int = 100,
        min_scale: float = 1.0,
        max_scale: float = 2.0**24,
    ):
        super().__init__(inner.params)
        if init_scale <= 0:
            raise ValueError("init_scale must be positive")
        self.inner = inner
        self.scale = float(init_scale)
        self.dynamic = bool(dynamic)
        self.growth_interval = int(growth_interval)
        self.min_scale = float(min_scale)
        self.max_scale = float(max_scale)
        self.successful_steps = 0
        self.skipped_steps = 0

    def scale_loss_grad(self, grad: np.ndarray) -> np.ndarray:
        """Apply the loss scale to the loss gradient before backprop."""
        return grad * self.scale

    def step(self, lr: float) -> None:
        """Quantise grads to fp16, detect overflow, unscale, update."""
        quantised = [fp16_roundtrip(p.grad) for p in self.params]
        overflow = any(not np.isfinite(q).all() for q in quantised)
        if overflow:
            self.skipped_steps += 1
            if self.dynamic:
                self.scale = max(self.scale / 2.0, self.min_scale)
            # skip the update entirely (production AMP behaviour)
            for p in self.params:
                p.zero_grad()
            self.step_count += 1
            return
        for p, q in zip(self.params, quantised):
            p.grad[...] = q / self.scale
        self.inner.step(lr)
        self.successful_steps += 1
        self.step_count += 1
        if self.dynamic and self.successful_steps % self.growth_interval == 0:
            self.scale = min(self.scale * 2.0, self.max_scale)

    def apply_update(self, p: Parameter, state: dict, lr: float) -> None:
        raise NotImplementedError("MixedPrecisionOptimizer overrides step()")

    def state_dict(self) -> dict:
        snap = self.inner.state_dict()
        snap["mp_scale"] = self.scale
        snap["mp_successful"] = self.successful_steps
        snap["mp_skipped"] = self.skipped_steps
        return snap

    def load_state_dict(self, snapshot: dict) -> None:
        self.scale = float(snapshot.pop("mp_scale", self.scale))
        self.successful_steps = int(snapshot.pop("mp_successful", 0))
        self.skipped_steps = int(snapshot.pop("mp_skipped", 0))
        self.inner.load_state_dict(snapshot)
