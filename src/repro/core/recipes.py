"""The paper's training recipes as data.

Tables 5 and 7 and the Figure 4 caption pin down every hyper-parameter the
paper trains with; this module encodes them and provides builders that turn a
recipe + dataset size into an optimiser and schedule.

Two rules generate the peak learning rate:

* ``"regular"``  — the hand-tuned baseline LR for the baseline batch.
* ``"linear"``   — linear scaling from (base_batch, base_lr) to the target
  batch (the Goyal et al. rule, used with and without LARS).

The ``scale_to`` helper re-targets a recipe at a proxy dataset: batch sizes
are scaled by n_proxy/n_paper so the *iterations-per-epoch regime* (the thing
that makes large-batch training hard) is preserved on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..nn.tensor import Parameter
from .lars import LARS
from .optimizer import Optimizer
from .schedules import Schedule, linear_scaled_lr, paper_schedule
from .sgd import SGD
from .trainer import iterations_per_epoch

__all__ = ["Recipe", "build_optimizer", "build_schedule", "PAPER_RECIPES", "scale_to"]

#: ImageNet-1k training-set size — the `n` in every analytic formula
IMAGENET_TRAIN_SIZE = 1_281_167


@dataclass(frozen=True)
class Recipe:
    """A complete large-batch training configuration."""

    name: str
    model: str  # registry name of the intended full-size model
    batch_size: int
    epochs: int
    base_lr: float  # LR at base_batch; peak LR follows from lr_rule
    base_batch: int = 512
    lr_rule: str = "linear"  # "regular" | "linear"
    warmup_epochs: float = 0.0
    use_lars: bool = False
    trust_coefficient: float = 0.001
    momentum: float = 0.9
    weight_decay: float = 0.0005
    poly_power: float = 2.0
    dataset_size: int = IMAGENET_TRAIN_SIZE

    def __post_init__(self):
        if self.lr_rule not in ("regular", "linear"):
            raise ValueError(f"unknown lr_rule {self.lr_rule!r}")
        if self.batch_size <= 0 or self.base_batch <= 0:
            raise ValueError("batch sizes must be positive")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.warmup_epochs < 0:
            raise ValueError("warmup_epochs must be non-negative")

    @property
    def peak_lr(self) -> float:
        if self.lr_rule == "regular":
            return self.base_lr
        return linear_scaled_lr(self.base_lr, self.base_batch, self.batch_size)

    @property
    def iterations_per_epoch(self) -> int:
        return iterations_per_epoch(self.dataset_size, self.batch_size)

    @property
    def total_iterations(self) -> int:
        return self.epochs * self.iterations_per_epoch

    @property
    def warmup_iterations(self) -> int:
        return round(self.warmup_epochs * self.iterations_per_epoch)


def build_schedule(recipe: Recipe) -> Schedule:
    """Warmup + poly(power) schedule exactly as the recipe specifies."""
    return paper_schedule(
        recipe.peak_lr,
        recipe.total_iterations,
        recipe.warmup_iterations,
        power=recipe.poly_power,
    )


def build_optimizer(params: Sequence[Parameter], recipe: Recipe) -> Optimizer:
    """LARS or momentum-SGD per the recipe."""
    if recipe.use_lars:
        return LARS(
            params,
            trust_coefficient=recipe.trust_coefficient,
            momentum=recipe.momentum,
            weight_decay=recipe.weight_decay,
        )
    return SGD(params, momentum=recipe.momentum, weight_decay=recipe.weight_decay)


def scale_to(recipe: Recipe, dataset_size: int, min_batch: int = 2) -> Recipe:
    """Re-target a paper recipe at a proxy dataset of ``dataset_size``.

    Batch sizes scale by dataset_size / paper_dataset_size (floored at
    ``min_batch``), so iterations-per-epoch — the regime that determines
    large-batch difficulty — is preserved.  LR values and every other rule
    are untouched: peak LR still follows the linear-scaling rule from the
    *scaled* base batch, reproducing the paper's ratios.
    """
    factor = dataset_size / recipe.dataset_size
    return replace(
        recipe,
        batch_size=max(min_batch, round(recipe.batch_size * factor)),
        base_batch=max(min_batch, round(recipe.base_batch * factor)),
        dataset_size=dataset_size,
    )


def _alexnet_recipes() -> dict[str, Recipe]:
    """Tables 5, 7 and 8: AlexNet / AlexNet-BN, 100 epochs."""
    r: dict[str, Recipe] = {}
    # Table 5 — baseline and the failing linear-scaling points
    r["alexnet-b512-baseline"] = Recipe(
        "alexnet-b512-baseline", "alexnet", 512, 100, 0.02, lr_rule="regular"
    )
    r["alexnet-b1024-nowarmup"] = Recipe(
        "alexnet-b1024-nowarmup", "alexnet", 1024, 100, 0.02, lr_rule="regular"
    )
    # best non-LARS batch-4096 point the paper found: LR 0.05, warmup
    r["alexnet-b4096-tuned"] = Recipe(
        "alexnet-b4096-tuned", "alexnet", 4096, 100, 0.05,
        lr_rule="regular", warmup_epochs=5,
    )
    # Table 7 — LARS rows
    r["alexnet-b4096-lars"] = Recipe(
        "alexnet-b4096-lars", "alexnet", 4096, 100, 0.02,
        warmup_epochs=13, use_lars=True, trust_coefficient=0.01,
    )
    r["alexnet-b8192-lars"] = Recipe(
        "alexnet-b8192-lars", "alexnet", 8192, 100, 0.02,
        warmup_epochs=8, use_lars=True, trust_coefficient=0.01,
    )
    r["alexnet_bn-b32768-lars"] = Recipe(
        "alexnet_bn-b32768-lars", "alexnet_bn", 32768, 100, 0.02,
        warmup_epochs=5, use_lars=True, trust_coefficient=0.01,
    )
    return r


def _resnet_recipes() -> dict[str, Recipe]:
    """Table 9 / Figure 4: ResNet-50, 90 epochs, base LR 0.2 at batch 256."""
    r: dict[str, Recipe] = {}
    r["resnet50-b256-baseline"] = Recipe(
        "resnet50-b256-baseline", "resnet50", 256, 90, 0.2,
        base_batch=256, lr_rule="regular",
    )
    for batch in (8192, 16384, 32768, 65536):
        r[f"resnet50-b{batch}-linear"] = Recipe(
            f"resnet50-b{batch}-linear", "resnet50", batch, 90, 0.2,
            base_batch=256, warmup_epochs=5,
        )
        r[f"resnet50-b{batch}-lars"] = Recipe(
            f"resnet50-b{batch}-lars", "resnet50", batch, 90, 0.2,
            base_batch=256, warmup_epochs=5, use_lars=True,
            trust_coefficient=0.001,
        )
    # Table 1 headline: 64 epochs at 32K reaches 74.9 %
    r["resnet50-b32768-lars-64ep"] = Recipe(
        "resnet50-b32768-lars-64ep", "resnet50", 32768, 64, 0.2,
        base_batch=256, warmup_epochs=5, use_lars=True,
    )
    return r


PAPER_RECIPES: dict[str, Recipe] = {**_alexnet_recipes(), **_resnet_recipes()}
