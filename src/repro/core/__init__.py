"""``repro.core`` — the paper's contribution: LARS large-batch training.

Exports the optimisers (LARS, momentum SGD), the schedule algebra (linear
scaling rule, gradual warmup, poly decay), the serial reference trainer, and
the paper's hyper-parameter recipes encoded as data.
"""

from .adam import Adam
from .batch_schedule import BatchSizeSchedule, ConstantBatch, SteppedBatchGrowth
from .lamb import LAMB
from .lars import LARS, trust_ratio
from .metrics import EpochRecord, RunningMean, top1_accuracy, top_k_accuracy
from .mixed_precision import MixedPrecisionOptimizer, fp16_roundtrip
from .optimizer import Optimizer
from .recipes import (
    IMAGENET_TRAIN_SIZE,
    PAPER_RECIPES,
    Recipe,
    build_optimizer,
    build_schedule,
    scale_to,
)
from .schedules import (
    ConstantLR,
    GradualWarmup,
    PolynomialDecay,
    Schedule,
    StepDecay,
    linear_scaled_lr,
    paper_schedule,
    sqrt_scaled_lr,
)
from .sgd import SGD
from .trainer import TrainResult, Trainer, iterations_per_epoch

__all__ = [
    "LARS",
    "LAMB",
    "Adam",
    "SGD",
    "Optimizer",
    "MixedPrecisionOptimizer",
    "fp16_roundtrip",
    "trust_ratio",
    "Schedule",
    "ConstantLR",
    "PolynomialDecay",
    "StepDecay",
    "GradualWarmup",
    "BatchSizeSchedule",
    "ConstantBatch",
    "SteppedBatchGrowth",
    "linear_scaled_lr",
    "sqrt_scaled_lr",
    "paper_schedule",
    "Trainer",
    "TrainResult",
    "iterations_per_epoch",
    "Recipe",
    "PAPER_RECIPES",
    "build_optimizer",
    "build_schedule",
    "scale_to",
    "IMAGENET_TRAIN_SIZE",
    "top1_accuracy",
    "top_k_accuracy",
    "RunningMean",
    "EpochRecord",
]
