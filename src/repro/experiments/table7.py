"""Table 7 — LARS holds AlexNet(-BN) accuracy at batch 4K/8K/32K.

Proxy mapping (DESIGN.md §6): paper batches 512/4096/8192/32768 map to
proxy batches 8/64/128/512; warmup epochs keep the paper's fraction of the
run (13/8/5 of 100 epochs).  The 32K row uses the BN variant, exactly as the
paper switches LRN -> BN for that batch.
"""

from __future__ import annotations

from .proxy import ALEXNET_BASE_BATCH, ProxyRun, SCALES, alexnet_proxy_batch, run_proxy
from .report import ExperimentResult

__all__ = ["run"]

#: (paper batch, LR rule, warmup epochs of 100, model variant, paper accuracy)
PAPER_ROWS = [
    (512, "regular", 0, "alexnet_bn", 0.583),
    (4096, "LARS", 13, "alexnet_bn", 0.584),
    (8192, "LARS", 8, "alexnet_bn", 0.583),
    (32768, "LARS", 5, "alexnet_bn", 0.585),
]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    s = SCALES[scale]
    base_lr = 0.05
    rows = []
    for paper_batch, rule, warmup100, kind, paper_acc in PAPER_ROWS:
        batch = alexnet_proxy_batch(paper_batch)
        warmup = warmup100 / 100 * s.epochs
        if rule == "LARS":
            cfg = ProxyRun(
                kind, batch, base_lr * batch / ALEXNET_BASE_BATCH,
                warmup_epochs=warmup, use_lars=True,
            )
        else:
            cfg = ProxyRun(kind, batch, base_lr)
        res = run_proxy(cfg, scale)
        rows.append(
            {
                "paper_batch": paper_batch,
                "proxy_batch": batch,
                "lr_rule": rule,
                "warmup_epochs": round(warmup, 1),
                "paper_accuracy": paper_acc,
                "proxy_accuracy": res.peak_test_accuracy,
            }
        )
    accs = [r["proxy_accuracy"] for r in rows]
    return ExperimentResult(
        experiment="table7",
        title="LARS keeps AlexNet-BN accuracy across batch sizes",
        columns=["paper_batch", "proxy_batch", "lr_rule", "warmup_epochs",
                 "paper_accuracy", "proxy_accuracy"],
        rows=rows,
        notes=(
            "Paper: 0.583-0.585 across all batches (flat).  Proxy spread: "
            f"{max(accs) - min(accs):.3f} — the same flatness."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
