"""Table 10 / Figure 1 data — 90-epoch ResNet-50 top-1 vs batch size:
LARS ("our version") against linear-scaling-only ("Facebook").

Paper shape to reproduce:

* Facebook's linear scaling holds to 8K, drops at 16K (75.2), falls off a
  cliff at 32K (72.4) and 64K (66.0);
* LARS stays flat through 32K and degrades only mildly at 64K (73.2 vs
  75.3 baseline).

Proxy batches map 256->4 (so 8K->128, 16K->256, 32K->512, 64K->1024).
"""

from __future__ import annotations

from .proxy import ProxyRun, RESNET_BASE_BATCH, SCALES, resnet_proxy_batch, run_proxy
from .report import ExperimentResult

__all__ = ["run", "PAPER_BATCHES", "PAPER_FACEBOOK", "PAPER_OURS"]

PAPER_BATCHES = [256, 8192, 16384, 32768, 65536]
PAPER_FACEBOOK = {256: 0.763, 8192: 0.762, 16384: 0.752, 32768: 0.724, 65536: 0.660}
PAPER_OURS = {256: 0.753, 8192: 0.753, 16384: 0.753, 32768: 0.754, 65536: 0.732}


def _accuracy(kind_lars: bool, paper_batch: int, scale: str) -> float:
    s = SCALES[scale]
    batch = resnet_proxy_batch(paper_batch)
    if paper_batch == 256:
        cfg = ProxyRun("resnet", batch, 0.05)
    else:
        peak = 0.05 * batch / RESNET_BASE_BATCH
        # the paper tunes warmup per batch (5 of 90 epochs); the proxy's
        # shorter runs need a slightly larger warmup fraction, grid-tuned
        # once at the 32K-equivalent point (see EXPERIMENTS.md)
        warmup = max(2.0, 5 / 90 * s.epochs)
        cfg = ProxyRun(
            "resnet", batch, peak, warmup_epochs=warmup,
            use_lars=kind_lars, trust_coefficient=0.01,
        )
    return run_proxy(cfg, scale).peak_test_accuracy


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = []
    for pb in PAPER_BATCHES:
        rows.append(
            {
                "paper_batch": pb,
                "proxy_batch": resnet_proxy_batch(pb),
                "facebook_paper": PAPER_FACEBOOK[pb],
                "ours_paper": PAPER_OURS[pb],
                "linear_scaling_proxy": _accuracy(False, pb, scale),
                "lars_proxy": _accuracy(True, pb, scale),
            }
        )
    return ExperimentResult(
        experiment="table10",
        title="90-epoch ResNet-50 top-1 vs batch: LARS vs linear scaling",
        columns=["paper_batch", "proxy_batch", "facebook_paper", "ours_paper",
                 "linear_scaling_proxy", "lars_proxy"],
        rows=rows,
        notes=(
            "Shape check: linear scaling collapses beyond 16K-equivalent "
            "while LARS stays near baseline through 32K-equivalent and only "
            "dips at 64K-equivalent — the paper's crossover."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
