"""Figure 1 — accuracy-vs-batch curves: LARS vs Facebook's linear scaling.

Same data as Table 10, presented as the two series the figure plots, plus
the figure's headline statistic: the accuracy *gap* at very large batch.
"""

from __future__ import annotations

from ..util.plotting import ascii_plot
from .report import ExperimentResult
from .table10 import PAPER_FACEBOOK, PAPER_OURS
from .table10 import run as run_table10

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    t10 = run_table10(scale, seed)
    rows = []
    for r in t10.rows:
        rows.append(
            {
                "paper_batch": r["paper_batch"],
                "series_linear_proxy": r["linear_scaling_proxy"],
                "series_lars_proxy": r["lars_proxy"],
                "gap_proxy": r["lars_proxy"] - r["linear_scaling_proxy"],
                "gap_paper": PAPER_OURS[r["paper_batch"]] - PAPER_FACEBOOK[r["paper_batch"]],
            }
        )
    big = rows[-2]  # the 32K-equivalent point
    chart = ascii_plot(
        {
            "lars (proxy)": [(r["paper_batch"], r["series_lars_proxy"]) for r in rows],
            "noLARS (proxy)": [(r["paper_batch"], r["series_linear_proxy"]) for r in rows],
        },
        logx=True,
    )
    return ExperimentResult(
        experiment="figure1",
        title="Accuracy scaling: LARS vs linear-scaling (Figure 1 series)",
        columns=["paper_batch", "series_linear_proxy", "series_lars_proxy",
                 "gap_proxy", "gap_paper"],
        rows=rows,
        notes=(
            "At small batch the curves coincide (the paper's LARS curve even "
            "starts slightly lower); above 16K-equivalent LARS wins by a "
            f"widening margin — proxy gap at 32K-equivalent: {big['gap_proxy']:.3f} "
            f"(paper: {big['gap_paper']:.3f}).\n" + chart
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
