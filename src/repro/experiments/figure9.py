"""Figure 9 — number of messages vs batch size.

The paper: "The number of iterations is equal to the number of messages the
algorithm sent (i.e. latency overhead)."  We report the simple model plus a
*measured* column: messages counted by the simulated fabric for one epoch of
real cluster training at two batch sizes.
"""

from __future__ import annotations

from ..cluster import SyncSGDConfig, train_sync_sgd
from ..core import IMAGENET_TRAIN_SIZE, SGD, ConstantLR
from ..data import gaussian_blobs
from ..nn.models import mlp
from ..perfmodel import iterations, messages
from .figure8 import BATCHES
from .report import ExperimentResult

__all__ = ["run"]


def _measured_messages(batch: int, n: int = 256, world: int = 4) -> tuple[int, int]:
    """(iterations, fabric messages) for one epoch of real simulated training."""
    x, y = gaussian_blobs(n, num_classes=3, dim=6, seed=5)

    def builder():
        return mlp(6, [8], 3, seed=6)

    config = SyncSGDConfig(world=world, epochs=1, batch_size=batch,
                           algorithm="tree", shuffle_seed=3)
    res = train_sync_sgd(builder, lambda p: SGD(p, momentum=0.9, weight_decay=0.0),
                         ConstantLR(0.05), x, y, x[:32], y[:32], config)
    return res.history[0].iterations, res.messages


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = [
        {
            "batch_size": b,
            "iterations": iterations(100, IMAGENET_TRAIN_SIZE, b),
            "messages_simple_model": messages(100, IMAGENET_TRAIN_SIZE, b),
        }
        for b in BATCHES
    ]
    it_small, msg_small = _measured_messages(16)
    it_large, msg_large = _measured_messages(64)
    return ExperimentResult(
        experiment="figure9",
        title="Messages vs batch size (model + fabric measurement)",
        columns=["batch_size", "iterations", "messages_simple_model"],
        rows=rows,
        notes=(
            "Measured on the simulated fabric (4 ranks, 1 epoch): batch 16 "
            f"-> {it_small} iterations / {msg_small} messages; batch 64 -> "
            f"{it_large} iterations / {msg_large} messages.  Message count "
            f"scales with iterations ({msg_small / max(msg_large, 1):.1f}x vs "
            f"{it_small / max(it_large, 1):.1f}x)."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
