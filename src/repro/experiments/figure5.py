"""Figure 5 — with LARS, every batch size reaches the target accuracy in
the same number of epochs (AlexNet-BN proxy; batch 512 is the baseline)."""

from __future__ import annotations

from ..util.plotting import sparkline
from .proxy import ALEXNET_BASE_BATCH, ProxyRun, SCALES, alexnet_proxy_batch, run_proxy
from .report import ExperimentResult

__all__ = ["run"]

PAPER_BATCHES = [512, 4096, 8192, 32768]
WARMUP_OF_100 = {512: 0, 4096: 13, 8192: 8, 32768: 5}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    s = SCALES[scale]
    rows = []
    finals = {}
    for pb in PAPER_BATCHES:
        batch = alexnet_proxy_batch(pb)
        if pb == 512:
            cfg = ProxyRun("alexnet_bn", batch, 0.05)
        else:
            cfg = ProxyRun(
                "alexnet_bn", batch, 0.05 * batch / ALEXNET_BASE_BATCH,
                warmup_epochs=WARMUP_OF_100[pb] / 100 * s.epochs,
                use_lars=True,
            )
        res = run_proxy(cfg, scale)
        finals[pb] = res.peak_test_accuracy
        for rec in res.history:
            rows.append(
                {
                    "paper_batch": pb,
                    "epoch": rec.epoch,
                    "test_accuracy": rec.test_accuracy,
                }
            )
    spread = max(finals.values()) - min(finals.values())
    curves = "\n".join(
        f"  B={pb:<6} {sparkline([r['test_accuracy'] for r in rows if r['paper_batch'] == pb])}"
        for pb in PAPER_BATCHES
    )
    return ExperimentResult(
        experiment="figure5",
        title="LARS epoch-wise accuracy across batch sizes (Figure 5 series)",
        columns=["paper_batch", "epoch", "test_accuracy"],
        rows=rows,
        notes=curves + "\n" + (
            "All batch sizes converge to the same accuracy band in the same "
            f"epoch budget: final-accuracy spread {spread:.3f} "
            "(paper: every curve reaches the ~0.58 target)."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
