"""Fault sweep — cost of failures on simulated time-to-accuracy.

The paper's headline numbers (Tables 2/8/9) assume every one of 1024–2048
workers completes every allreduce of every iteration.  This sweep measures
what that assumption hides: for a grid of message-loss rates × batch sizes
(and one rank-kill scenario per batch size), how much simulated time the
reliable link's retransmits and the elastic checkpoint-restart add, and
whether accuracy survives.

Because the fault machinery is deterministic and value-preserving
(retransmit semantics; restart re-shards the same global batch), accuracy
columns should match the fault-free row exactly for the loss rows and stay
within noise for the kill rows — the *time* columns carry the damage.
"""

from __future__ import annotations

from ..cluster import SyncSGDConfig, train_sync_sgd
from ..core import SGD, ConstantLR
from ..data import gaussian_blobs
from ..faults import FaultPlan
from ..nn.models import mlp
from ..perfmodel import network
from .report import ExperimentResult

__all__ = ["run"]

_SCALE = {
    "tiny": dict(n=96, epochs=3, world=4),
    "small": dict(n=192, epochs=4, world=4),
    "medium": dict(n=384, epochs=6, world=8),
}

DROP_RATES = [0.0, 0.001, 0.01, 0.05]


def _run_one(
    n: int,
    epochs: int,
    world: int,
    batch: int,
    plan: FaultPlan | None,
    seed: int,
):
    x, y = gaussian_blobs(n, num_classes=3, dim=8, seed=seed)

    def builder():
        return mlp(8, [12], 3, seed=seed + 1)

    config = SyncSGDConfig(
        world=world,
        epochs=epochs,
        batch_size=batch,
        algorithm="ring",
        profile=network("opa"),
        compute_time=lambda k: 1e-4 * k,
        shuffle_seed=seed,
        fault_plan=plan,
        recv_timeout=10.0,
        checkpoint_every=1,
        restart_overhead_seconds=1.0 if plan and plan.kills else 0.0,
    )
    return train_sync_sgd(
        builder,
        lambda p: SGD(p, momentum=0.9, weight_decay=0.0005),
        ConstantLR(0.1),
        x, y, x[: n // 3], y[: n // 3],
        config,
    )


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    params = _SCALE.get(scale, _SCALE["small"])
    n, epochs, world = params["n"], params["epochs"], params["world"]
    batches = [world * 8, world * 16]
    rows = []
    for batch in batches:
        baseline = None
        for drop in DROP_RATES:
            plan = (
                FaultPlan(seed=seed, drop_prob=drop) if drop > 0.0 else None
            )
            res = _run_one(n, epochs, world, batch, plan, seed=seed + 11)
            if drop == 0.0:
                baseline = res.simulated_seconds
            stats = res.fault_stats
            rows.append(
                {
                    "batch_size": batch,
                    "fault": f"drop {drop:.1%}" if drop else "none",
                    "final_acc": res.final_test_accuracy,
                    "sim_seconds": res.simulated_seconds,
                    "slowdown": res.simulated_seconds / baseline,
                    "retransmits": stats.retransmits if stats else 0,
                    "recoveries": res.recoveries,
                }
            )
        # one mid-training crash: kill the last rank halfway through
        kill_iter = (epochs // 2) * (-(-n // batch))
        res = _run_one(
            n, epochs, world, batch,
            FaultPlan(seed=seed, kills={world - 1: kill_iter}),
            seed=seed + 11,
        )
        rows.append(
            {
                "batch_size": batch,
                "fault": f"kill rank {world - 1}",
                "final_acc": res.final_test_accuracy,
                "sim_seconds": res.simulated_seconds,
                "slowdown": res.simulated_seconds / baseline,
                "retransmits": res.fault_stats.retransmits,
                "recoveries": res.recoveries,
            }
        )
    return ExperimentResult(
        experiment="fault_sweep",
        title="Failure rate x batch size: degradation of time-to-accuracy",
        columns=["batch_size", "fault", "final_acc", "sim_seconds",
                 "slowdown", "retransmits", "recoveries"],
        rows=rows,
        notes=(
            "Message loss is absorbed by the reliable link (values exact, "
            "time lost to retransmits); a killed rank triggers elastic "
            "restart from the latest epoch checkpoint with P-1 ranks.  "
            "Accuracy therefore holds while simulated seconds degrade — "
            "the cost the paper's perfect-interconnect assumption hides."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
