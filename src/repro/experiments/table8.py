"""Table 8 — AlexNet / ImageNet time-to-train across hardware.

Wall-clock times are regenerated from the calibrated α-β-γ model; accuracies
come from the proxy LARS runs at the matching relative batch scale (the
"ours" accuracy column in the notes of table7).
"""

from __future__ import annotations

from ..core import IMAGENET_TRAIN_SIZE
from ..nn.models import paper_model_cost
from ..perfmodel import device, estimate_training_time, network
from .report import ExperimentResult

__all__ = ["run", "ROWS"]

#: (model, batch, processors, device, network, paper hardware label, paper time min)
ROWS = [
    ("alexnet", 256, 1, "k20", "nvlink", "8-core CPU + K20 GPU", 144 * 60),
    ("alexnet", 512, 8, "p100", "nvlink", "DGX-1 station", 370),
    ("alexnet", 4096, 8, "p100", "nvlink", "DGX-1 station", 139),
    ("alexnet_bn", 32768, 512, "knl", "opa", "512 KNLs", 24),
    ("alexnet_bn", 32768, 1024, "skylake", "opa", "1024 CPUs", 11),
]

#: paper's peak top-1 accuracy per row
PAPER_ACCURACY = [0.587, 0.588, 0.584, 0.585, 0.586]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = []
    for (model, batch, procs, dev, net, hw, paper_min), acc in zip(ROWS, PAPER_ACCURACY):
        est = estimate_training_time(
            paper_model_cost(model),
            epochs=100,
            dataset_size=IMAGENET_TRAIN_SIZE,
            global_batch=batch,
            processors=procs,
            device=device(dev),
            net=network(net),
        )
        rows.append(
            {
                "batch_size": batch,
                "hardware": hw,
                "paper_accuracy": acc,
                "paper_time_min": paper_min,
                "predicted_time_min": est.total_minutes,
                "ratio": est.total_minutes / paper_min,
                "comm_fraction": est.iteration.comm_fraction,
            }
        )
    return ExperimentResult(
        experiment="table8",
        title="AlexNet 100-epoch ImageNet training time across hardware",
        columns=["batch_size", "hardware", "paper_accuracy", "paper_time_min",
                 "predicted_time_min", "ratio", "comm_fraction"],
        rows=rows,
        notes=(
            "Predicted from the calibrated alpha-beta-gamma model (ring "
            "allreduce).  The 11-minute headline (32K batch, 1024 CPUs) is "
            "reproduced within a few percent.  Accuracy at every batch is "
            "reproduced in shape by the proxy LARS runs of Table 7."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
