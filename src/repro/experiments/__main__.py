"""Command-line entry: ``python -m repro.experiments [name ...] [--scale s]``.

With no names, every experiment runs in paper order (this is how
EXPERIMENTS.md's result blocks are regenerated).
"""

from __future__ import annotations

import argparse
import sys

from ..obs.console import configure_verbosity, get_console
from . import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*", default=[],
                        help=f"experiments to run (default: all). Known: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"],
                        help="proxy-experiment size preset")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only show warnings and errors")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also show debug output")
    args = parser.parse_args(argv)
    configure_verbosity(quiet=args.quiet, verbose=args.verbose)
    console = get_console()

    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}")
    for name in names:
        console.debug(f"running {name} (scale={args.scale})")
        result = EXPERIMENTS[name](scale=args.scale)
        console.info(result.format())
        console.info("")
    return 0


if __name__ == "__main__":
    sys.exit(main())
