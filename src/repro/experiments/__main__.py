"""Command-line entry: ``python -m repro.experiments [name ...] [--scale s]``.

With no names, every experiment runs in paper order (this is how
EXPERIMENTS.md's result blocks are regenerated).
"""

from __future__ import annotations

import argparse
import sys

from . import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*", default=[],
                        help=f"experiments to run (default: all). Known: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"],
                        help="proxy-experiment size preset")
    args = parser.parse_args(argv)

    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}")
    for name in names:
        result = EXPERIMENTS[name](scale=args.scale)
        print(result.format())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
