"""Table 1 — headline: 32K-batch ResNet-50 to 74.9 % top-1, ours vs Akiba.

The paper's row is 64 epochs in 14 minutes on 2048 KNLs vs Akiba et al.'s
15 minutes on 1024 P100s.  We regenerate the time side from the performance
model and the accuracy side from the proxy: the 64-epoch LARS run at the
32K-equivalent relative batch reaches the fraction of baseline accuracy the
paper's 74.9 %/75.3 % ratio implies.
"""

from __future__ import annotations

from ..core import IMAGENET_TRAIN_SIZE
from ..nn.models import paper_model_cost
from ..perfmodel import device, estimate_training_time, network
from .proxy import ProxyRun, RESNET_BASE_BATCH, SCALES, resnet_proxy_batch, run_proxy
from .report import ExperimentResult

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    cost = paper_model_cost("resnet50")
    ours = estimate_training_time(
        cost, epochs=64, dataset_size=IMAGENET_TRAIN_SIZE, global_batch=32768,
        processors=2048, device=device("knl"), net=network("opa"),
    )
    # proxy accuracy: a complete run with 64/90 of the epoch budget (its own
    # schedule decays fully within the shortened run, as the paper's did)
    s = SCALES[scale]
    base = run_proxy(ProxyRun("resnet", RESNET_BASE_BATCH, 0.05), scale)
    short_epochs = max(2, round(64 / 90 * s.epochs))
    big = run_proxy(
        ProxyRun(
            "resnet",
            resnet_proxy_batch(32768),
            0.05 * resnet_proxy_batch(32768) / RESNET_BASE_BATCH,
            warmup_epochs=max(2.0, 5 / 90 * short_epochs),
            use_lars=True,
            trust_coefficient=0.01,
            epochs=short_epochs,
        ),
        scale,
    )
    acc_at_short = big.peak_test_accuracy
    rows = [
        {
            "work": "Akiba et al. (paper-reported)",
            "batch": 32768,
            "accuracy": 0.749,
            "time_min": 15.0,
        },
        {
            "work": "You et al. (paper-reported)",
            "batch": 32768,
            "accuracy": 0.749,
            "time_min": 14.0,
        },
        {
            "work": "ours (perfmodel, 64 ep, 2048 KNLs)",
            "batch": 32768,
            "accuracy": acc_at_short,
            "time_min": ours.total_minutes,
        },
    ]
    return ExperimentResult(
        experiment="table1",
        title="State-of-the-art ImageNet/ResNet-50 training speed (32K batch)",
        columns=["work", "batch", "accuracy", "time_min"],
        rows=rows,
        notes=(
            "'ours' time is the 64-epoch prediction on 2048 KNLs; 'ours' "
            f"accuracy is a complete proxy LARS run with {short_epochs}/"
            f"{s.epochs} of the epoch budget (the 64/90 point), vs the proxy "
            f"baseline {base.peak_test_accuracy:.3f} — mirroring 74.9% vs 75.3%."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
