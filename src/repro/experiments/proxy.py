"""Shared machinery for the laptop-scale convergence experiments.

Mapping to the paper (DESIGN.md §6): the proxy keeps the paper's *relative*
batch scale k = B/B_baseline, which is what controls large-batch difficulty.
With the proxy baseline batch fixed at 8 for AlexNet-family runs (paper 512)
and 4 for ResNet-family runs (paper 256), the paper's batch axis maps as

    AlexNet:  512 -> 8,   4096 -> 64,  8192 -> 128, 32768 -> 512
    ResNet:   256 -> 4,   8192 -> 128, 16384 -> 256, 32768 -> 512, 65536 -> 1024

Warmup lengths keep the paper's epoch *fraction* (5/90 epochs -> the same
fraction of the proxy run).  All runs share one seeded dataset per scale and
results are memoised per process so benchmark files that share sweep points
(e.g. Table 10 and Figure 1) pay for each training run once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import LARS, SGD, Trainer, TrainResult, iterations_per_epoch, paper_schedule
from ..data import Dataset, make_dataset
from ..nn.models import micro_alexnet, micro_resnet

__all__ = [
    "ProxyRun",
    "ProxyScale",
    "SCALES",
    "proxy_dataset",
    "run_proxy",
    "alexnet_proxy_batch",
    "resnet_proxy_batch",
    "ALEXNET_BASE_BATCH",
    "RESNET_BASE_BATCH",
]

#: proxy baseline batches (paper: AlexNet 512, ResNet-50 256)
ALEXNET_BASE_BATCH = 8
RESNET_BASE_BATCH = 4


def alexnet_proxy_batch(paper_batch: int) -> int:
    """Map a paper AlexNet batch size onto the proxy axis (512 -> 8)."""
    return max(1, paper_batch * ALEXNET_BASE_BATCH // 512)


def resnet_proxy_batch(paper_batch: int) -> int:
    """Map a paper ResNet-50 batch size onto the proxy axis (256 -> 4)."""
    return max(1, paper_batch * RESNET_BASE_BATCH // 256)


@dataclass(frozen=True)
class ProxyScale:
    """Size preset for the convergence experiments."""

    name: str
    train_size: int
    test_size: int
    epochs: int
    num_classes: int = 8
    image_size: int = 12
    noise: float = 2.0
    model_width: int = 8
    hidden: int = 64


SCALES: dict[str, ProxyScale] = {
    # seconds per run — used by the test suite
    "tiny": ProxyScale("tiny", train_size=512, test_size=128, epochs=8,
                       num_classes=4, image_size=8, noise=1.5, model_width=4,
                       hidden=32),
    # ~5 s per run — the benchmark harness default; EXPERIMENTS.md numbers
    "small": ProxyScale("small", train_size=1024, test_size=256, epochs=15),
    # fuller runs for the examples
    "medium": ProxyScale("medium", train_size=4096, test_size=512, epochs=20,
                         num_classes=16, image_size=16, model_width=12,
                         hidden=96),
}

_DATASETS: dict[str, Dataset] = {}
_RESULTS: dict[tuple, TrainResult] = {}


def proxy_dataset(scale: str) -> Dataset:
    """The shared seeded dataset for ``scale`` (cached per process)."""
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; available: {sorted(SCALES)}")
    if scale not in _DATASETS:
        s = SCALES[scale]
        _DATASETS[scale] = make_dataset(
            num_classes=s.num_classes,
            image_size=s.image_size,
            train_size=s.train_size,
            test_size=s.test_size,
            noise=s.noise,
            seed=42,
        )
    return _DATASETS[scale]


@dataclass(frozen=True)
class ProxyRun:
    """One convergence-run configuration on the proxy axis.

    ``model_kind`` selects the architecture family standing in for the
    paper's model: ``"alexnet"`` (LRN variant — Table 5's regime),
    ``"alexnet_bn"`` and ``"resnet"``.
    """

    model_kind: str  # "alexnet" | "alexnet_bn" | "resnet"
    batch: int
    peak_lr: float
    warmup_epochs: float = 0.0
    use_lars: bool = False
    trust_coefficient: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 0.0005
    poly_power: float = 2.0
    seed: int = 3
    #: override the scale preset's epoch budget (e.g. the paper's 64-epoch
    #: short run of Table 1); None uses the preset
    epochs: int | None = None

    def __post_init__(self):
        if self.model_kind not in ("alexnet", "alexnet_bn", "resnet"):
            raise ValueError(f"unknown model_kind {self.model_kind!r}")
        if self.batch <= 0 or self.peak_lr < 0:
            raise ValueError("batch must be positive and peak_lr non-negative")

    def build_model(self, scale: ProxyScale):
        if self.model_kind == "resnet":
            return micro_resnet(
                num_classes=scale.num_classes,
                width=scale.model_width,
                blocks_per_stage=1,
                seed=self.seed,
            )
        norm = "lrn" if self.model_kind == "alexnet" else "bn"
        return micro_alexnet(
            num_classes=scale.num_classes,
            image_size=scale.image_size,
            width=scale.model_width,
            hidden=scale.hidden,
            norm=norm,
            seed=self.seed,
        )

    def build_optimizer(self, params):
        if self.use_lars:
            return LARS(
                params,
                trust_coefficient=self.trust_coefficient,
                momentum=self.momentum,
                weight_decay=self.weight_decay,
            )
        return SGD(params, momentum=self.momentum, weight_decay=self.weight_decay)


def run_proxy(cfg: ProxyRun, scale: str = "small") -> TrainResult:
    """Train one proxy configuration; memoised per (cfg, scale).

    Divergent runs (inf/nan loss) are expected for the mis-scaled baselines
    the paper tables show as 0.001 accuracy — fp warnings are silenced and
    the accuracy simply lands near chance.
    """
    key = (cfg, scale)
    if key in _RESULTS:
        return _RESULTS[key]
    s = SCALES[scale]
    ds = proxy_dataset(scale)
    batch = min(cfg.batch, ds.n_train)
    epochs = cfg.epochs if cfg.epochs is not None else s.epochs
    ipe = iterations_per_epoch(ds.n_train, batch)
    sched = paper_schedule(
        cfg.peak_lr,
        epochs * ipe,
        round(cfg.warmup_epochs * ipe),
        power=cfg.poly_power,
    )
    model = cfg.build_model(s)
    trainer = Trainer(model, cfg.build_optimizer(model.parameters()), sched,
                      shuffle_seed=1)
    with np.errstate(all="ignore"):
        result = trainer.fit(
            ds.x_train, ds.y_train, ds.x_test, ds.y_test,
            epochs=epochs, batch_size=batch,
        )
    _RESULTS[key] = result
    return result
