"""Figure 4 — ResNet-50 accuracy-vs-epoch curves at batch 16K and 32K,
with and without LARS.

Paper caption: base LR 0.2 (batch 256) with poly(2); both variants use a
5-epoch warmup; "the existing method does not work for Batch Size larger
than 8K.  LARS can help the large-batch to achieve the same accuracy with
baseline in the same number of epochs" (without LARS: 68 % at 16K, 56 % at
32K vs the ~73 % target).
"""

from __future__ import annotations

from ..util.plotting import sparkline
from .proxy import ProxyRun, RESNET_BASE_BATCH, SCALES, resnet_proxy_batch, run_proxy
from .report import ExperimentResult

__all__ = ["run"]

PAPER_FINAL = {  # no-LARS endpoint accuracies the paper quotes
    16384: 0.68,
    32768: 0.56,
}


def _curve(paper_batch: int, use_lars: bool, scale: str):
    s = SCALES[scale]
    batch = resnet_proxy_batch(paper_batch)
    cfg = ProxyRun(
        "resnet", batch, 0.05 * batch / RESNET_BASE_BATCH,
        warmup_epochs=max(2.0, 5 / 90 * s.epochs),
        use_lars=use_lars, trust_coefficient=0.01,
    )
    return run_proxy(cfg, scale)


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    baseline = run_proxy(ProxyRun("resnet", RESNET_BASE_BATCH, 0.05), scale)
    rows = []
    for paper_batch in (16384, 32768):
        for use_lars in (False, True):
            res = _curve(paper_batch, use_lars, scale)
            for rec in res.history:
                rows.append(
                    {
                        "paper_batch": paper_batch,
                        "lars": use_lars,
                        "epoch": rec.epoch,
                        "test_accuracy": rec.test_accuracy,
                    }
                )
    final = {
        (pb, lars_on): max(r["test_accuracy"] for r in rows
                           if r["paper_batch"] == pb and r["lars"] == lars_on)
        for pb in (16384, 32768) for lars_on in (False, True)
    }
    curves = []
    for pb in (16384, 32768):
        for use_lars in (True, False):
            series = [r["test_accuracy"] for r in rows
                      if r["paper_batch"] == pb and r["lars"] == use_lars]
            label = f"B={pb} {'LARS ' if use_lars else 'noLARS'}"
            curves.append(f"  {label:<18} {sparkline(series)}")
    return ExperimentResult(
        experiment="figure4",
        title="Accuracy vs epoch at 16K/32K-equivalent batch, +/- LARS",
        columns=["paper_batch", "lars", "epoch", "test_accuracy"],
        rows=rows,
        notes="\n".join(curves) + "\n" + (
            f"Proxy baseline {baseline.peak_test_accuracy:.3f}.  Final "
            f"accuracies — 16K: {final[(16384, False)]:.3f} w/o LARS vs "
            f"{final[(16384, True)]:.3f} with; 32K: {final[(32768, False)]:.3f} "
            f"w/o vs {final[(32768, True)]:.3f} with.  Paper endpoints w/o "
            "LARS: 0.68 (16K) and 0.56 (32K) vs ~0.73 target — same ordering."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
