"""Table 12 — 45 nm CMOS energy per operation, plus the training-energy
consequence: at fixed epochs, larger batches slash communication energy."""

from __future__ import annotations

from ..core import IMAGENET_TRAIN_SIZE
from ..nn.models import paper_model_cost
from ..perfmodel import ENERGY_TABLE_45NM, energy_ratio, training_energy
from .report import ExperimentResult

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = [
        {
            "operation": e.operation,
            "type": e.kind,
            "energy_pJ": e.picojoules,
        }
        for e in ENERGY_TABLE_45NM
    ]
    dram_vs_fmul = energy_ratio("32 bit DRAM access", "32 bit float multiply")
    c = paper_model_cost("resnet50")
    e_small = training_energy(c, 90, IMAGENET_TRAIN_SIZE, 256)
    e_large = training_energy(c, 90, IMAGENET_TRAIN_SIZE, 32768)
    return ExperimentResult(
        experiment="table12",
        title="Energy per operation, 45nm CMOS (Horowitz)",
        columns=["operation", "type", "energy_pJ"],
        rows=rows,
        notes=(
            f"DRAM access costs {dram_vs_fmul:.0f}x a float multiply. "
            "Consequence for 90-epoch ResNet-50 gradient traffic: "
            f"{e_small.comm_joules / 1e3:.1f} kJ at batch 256 vs "
            f"{e_large.comm_joules / 1e3:.2f} kJ at batch 32K "
            "(compute energy unchanged)."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
