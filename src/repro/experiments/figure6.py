"""Figure 6 — fixed epochs fix the number of floating-point operations,
independent of batch size.

Two verifications: the analytic identity (F = 3·flops/image·E·n has no B in
it), and a measured check — iterating one epoch of the real batch loader at
any batch size touches every example exactly once, so the per-epoch flop
count is constant.
"""

from __future__ import annotations

from ..core import IMAGENET_TRAIN_SIZE
from ..data import BatchLoader, proxy_dataset
from ..nn.models import paper_model_cost
from ..perfmodel import total_flops
from .report import ExperimentResult

__all__ = ["run"]

BATCHES = [256, 1024, 8192, 32768]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    cost = paper_model_cost("alexnet")
    flops = total_flops(cost, 100, IMAGENET_TRAIN_SIZE)
    ds = proxy_dataset("tiny")
    rows = []
    for b in BATCHES:
        proxy_b = max(1, b * ds.n_train // IMAGENET_TRAIN_SIZE) * 8
        loader = BatchLoader(ds.x_train, ds.y_train,
                             batch_size=min(proxy_b, ds.n_train),
                             auto_advance=False)
        touched = sum(len(yb) for _, yb in loader)
        rows.append(
            {
                "batch_size": b,
                "analytic_total_Pflops": flops / 1e15,
                "proxy_examples_per_epoch": touched,
                "epoch_flops_constant": touched == ds.n_train,
            }
        )
    return ExperimentResult(
        experiment="figure6",
        title="Total flops vs batch size at fixed epochs (constant)",
        columns=["batch_size", "analytic_total_Pflops",
                 "proxy_examples_per_epoch", "epoch_flops_constant"],
        rows=rows,
        notes=(
            "The flop budget column is identical for every batch size — "
            "'large batch can achieve the same accuracy in the fixed number "
            "of floating point operations'."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
