"""``repro.experiments`` — one driver per paper table/figure.

Each module exposes ``run(scale="small") -> ExperimentResult``; run any of
them from the command line with ``python -m repro.experiments <name>``.
"""

from . import (
    fault_sweep,
    scorecard,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
    table12,
)
from .proxy import ProxyRun, SCALES, proxy_dataset, run_proxy
from .report import ExperimentResult, format_table

#: every reproducible experiment, keyed by its paper label
EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "table8": table8.run,
    "table9": table9.run,
    "table10": table10.run,
    "table11": table11.run,
    "table12": table12.run,
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    # bonus: the analytic scorecard (not a paper table; a one-screen summary)
    "scorecard": scorecard.run,
    # bonus: failure-rate x batch-size fault-tolerance sweep
    "fault_sweep": fault_sweep.run,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "ProxyRun",
    "SCALES",
    "proxy_dataset",
    "run_proxy",
]
