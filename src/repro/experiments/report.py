"""Experiment result container and ascii-table rendering.

Every experiment driver returns an :class:`ExperimentResult` whose rows can
be printed as the same table the paper shows, usually with a ``paper``
column next to ``ours`` so the comparison is immediate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ExperimentResult", "format_table", "fmt"]


def fmt(value: Any) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # nan
            return "—"
        if abs(value) >= 1e5 or (0 < abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[dict]) -> str:
    """Render dict-rows as an aligned ascii table."""
    cells = [[fmt(r.get(c)) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
        for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells]
    return "\n".join([header, sep, *body])


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    experiment: str  # e.g. "table5", "figure1"
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def format(self) -> str:
        parts = [f"== {self.experiment}: {self.title} ==",
                 format_table(self.columns, self.rows)]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def column(self, name: str) -> list:
        return [r.get(name) for r in self.rows]

    def row_by(self, key: str, value) -> dict:
        for r in self.rows:
            if r.get(key) == value:
                return r
        raise KeyError(f"no row with {key}={value!r}")
