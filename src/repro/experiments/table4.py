"""Table 4 — state-of-the-art large-batch training (prior art).

The paper's table records that linear scaling + warmup alone holds accuracy
up to moderate batch growth (Google ×8, Amazon ×20, Facebook ×32).  We
reproduce the *claim* on the proxy: an ×8–×32 batch increase with linear
scaling and warmup (no LARS) loses little accuracy, in contrast to the
collapse beyond that range (Table 5 / Figure 1).
"""

from __future__ import annotations

from .proxy import ALEXNET_BASE_BATCH, ProxyRun, RESNET_BASE_BATCH, run_proxy
from .report import ExperimentResult

__all__ = ["run"]

#: the paper's Table 4, verbatim
PAPER_ROWS = [
    {"team": "Google (Krizhevsky 2014)", "model": "AlexNet", "baseline_batch": 128,
     "large_batch": 1024, "baseline_acc": 0.577, "large_acc": 0.567},
    {"team": "Amazon (Li 2017)", "model": "ResNet-152", "baseline_batch": 256,
     "large_batch": 5120, "baseline_acc": 0.778, "large_acc": 0.778},
    {"team": "Facebook (Goyal 2017)", "model": "ResNet-50", "baseline_batch": 256,
     "large_batch": 8192, "baseline_acc": 0.764, "large_acc": 0.7626},
]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = [dict(r, source="paper") for r in PAPER_ROWS]
    # proxy analogues of each growth factor, linear scaling + warmup, no LARS
    for team, kind, base_b, factor in [
        ("ours (proxy, x8 AlexNet-style)", "alexnet_bn", ALEXNET_BASE_BATCH, 8),
        ("ours (proxy, x20 ResNet-style)", "resnet", RESNET_BASE_BATCH, 20),
        ("ours (proxy, x32 ResNet-style)", "resnet", RESNET_BASE_BATCH, 32),
    ]:
        baseline = run_proxy(ProxyRun(kind, base_b, 0.05), scale)
        large = run_proxy(
            ProxyRun(kind, base_b * factor, 0.05 * factor, warmup_epochs=2),
            scale,
        )
        rows.append(
            {
                "team": team,
                "model": kind,
                "baseline_batch": base_b,
                "large_batch": base_b * factor,
                "baseline_acc": baseline.peak_test_accuracy,
                "large_acc": large.peak_test_accuracy,
                "source": "ours",
            }
        )
    return ExperimentResult(
        experiment="table4",
        title="State-of-the-art large-batch training (linear scaling + warmup)",
        columns=["team", "model", "baseline_batch", "large_batch",
                 "baseline_acc", "large_acc", "source"],
        rows=rows,
        notes=(
            "Linear scaling + warmup holds accuracy for ×8–×32 batch "
            "growth — on the paper's numbers and on the proxy — which is "
            "exactly the regime prior art stopped at."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
