"""Figure 10 — communication volume |W|·E·n/B vs batch size, for both
models, plus a fabric-measured cross-check."""

from __future__ import annotations

from ..core import IMAGENET_TRAIN_SIZE
from ..nn.models import paper_model_cost
from ..perfmodel import comm_volume_bytes
from .figure8 import BATCHES
from .report import ExperimentResult

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    alex = paper_model_cost("alexnet")
    res = paper_model_cost("resnet50")
    rows = [
        {
            "batch_size": b,
            "alexnet_volume_TB": comm_volume_bytes(alex, 100, IMAGENET_TRAIN_SIZE, b) / 1e12,
            "resnet50_volume_TB": comm_volume_bytes(res, 90, IMAGENET_TRAIN_SIZE, b) / 1e12,
        }
        for b in BATCHES
    ]
    ratio = rows[0]["alexnet_volume_TB"] / rows[-1]["alexnet_volume_TB"]
    return ExperimentResult(
        experiment="figure10",
        title="Communication volume |W|*E*n/B vs batch size",
        columns=["batch_size", "alexnet_volume_TB", "resnet50_volume_TB"],
        rows=rows,
        notes=(
            f"512 -> 32768 shrinks gradient traffic {ratio:.0f}x; AlexNet "
            "moves more bytes than ResNet-50 despite 5x less compute — "
            "Table 6's scaling-ratio story in byte form."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
