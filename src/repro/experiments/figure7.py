"""Figure 7 — with enough compute, the large-batch version reaches the
target accuracy in much less wall-clock time than the small batch.

The paper's instance: AlexNet-BN on one DGX-1, batch 512 needs ~6 h to hit
58 % while batch 4096 needs ~2 h — same flops, fewer+fatter iterations and
better device utilisation.

We run the *actual simulated cluster* (8 ranks, NVLink-class fabric) on the
proxy task with per-iteration compute time supplied by the calibrated
performance model, and compare simulated time-to-target-accuracy.
"""

from __future__ import annotations

from ..cluster import SyncSGDConfig, train_sync_sgd
from ..core import iterations_per_epoch, paper_schedule
from ..nn.models import paper_model_cost
from ..perfmodel import device, network
from ..perfmodel.timemodel import compute_time_per_iteration
from .proxy import ALEXNET_BASE_BATCH, ProxyRun, SCALES, proxy_dataset
from .report import ExperimentResult

__all__ = ["run"]

WORLD = 8
#: relative batch factors standing in for the paper's 512 vs 4096
SMALL_FACTOR, LARGE_FACTOR = 2, 16


def _simulate(factor: int, scale: str, use_lars: bool):
    s = SCALES[scale]
    ds = proxy_dataset(scale)
    batch = ALEXNET_BASE_BATCH * factor
    cfg = ProxyRun(
        "alexnet_bn", batch, 0.05 * factor,
        warmup_epochs=1 if factor > 2 else 0, use_lars=use_lars,
    )
    ipe = iterations_per_epoch(ds.n_train, batch)
    sched = paper_schedule(cfg.peak_lr, s.epochs * ipe, round(cfg.warmup_epochs * ipe))

    # per-iteration compute time from the calibrated P100 profile: each
    # proxy example is charged as one AlexNet image, so the utilisation
    # curve (the Figure 3 effect) is what differentiates the two runs
    cost = paper_model_cost("alexnet_bn")
    dev = device("p100")

    def compute_time(n_local: int) -> float:
        return compute_time_per_iteration(cost, float(n_local), dev)

    config = SyncSGDConfig(
        world=WORLD, epochs=s.epochs, batch_size=batch,
        algorithm="ring", profile=network("nvlink"),
        compute_time=compute_time, shuffle_seed=1,
    )
    return train_sync_sgd(
        lambda: cfg.build_model(s), cfg.build_optimizer, sched,
        ds.x_train, ds.y_train, ds.x_test, ds.y_test, config,
    )


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    small = _simulate(SMALL_FACTOR, scale, use_lars=False)
    large = _simulate(LARGE_FACTOR, scale, use_lars=True)
    target = 0.9 * max(small.peak_test_accuracy, large.peak_test_accuracy)
    rows = []
    for label, res, paper_hours in [
        (f"batch x{SMALL_FACTOR} (paper: 512, ~6h)", small, 6.2),
        (f"batch x{LARGE_FACTOR} + LARS (paper: 4096, ~2h)", large, 2.3),
    ]:
        rows.append(
            {
                "configuration": label,
                "final_accuracy": res.final_test_accuracy,
                "sim_seconds_total": res.simulated_seconds,
                "sim_seconds_to_target": res.time_to_accuracy(target),
                "paper_hours": paper_hours,
            }
        )
    speedup = (rows[0]["sim_seconds_total"] or 0) / max(rows[1]["sim_seconds_total"], 1e-12)
    return ExperimentResult(
        experiment="figure7",
        title="Time-to-accuracy: large batch beats small batch on the same cluster",
        columns=["configuration", "final_accuracy", "sim_seconds_total",
                 "sim_seconds_to_target", "paper_hours"],
        rows=rows,
        notes=(
            f"Simulated speedup {speedup:.2f}x for the large-batch run "
            "(paper: ~2.7x, 6h10m -> 2h19m) at matched accuracy; both runs "
            "execute the same number of epochs (same flops)."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
