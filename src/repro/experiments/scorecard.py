"""Reproduction scorecard — every *analytic* paper number in one table.

Collects the quantitative claims that the performance model and the cost
accounting regenerate (wall-clock rows of Tables 8/9, Table 6 constants,
iteration counts, the Figure 3 optimum) and prints paper-vs-ours with a
pass/fail verdict per row.  Convergence (accuracy) results live in the
training experiments and EXPERIMENTS.md; this is the fast, deterministic
half of the reproduction, runnable in milliseconds:

    python -m repro.experiments.scorecard
"""

from __future__ import annotations

from ..core import IMAGENET_TRAIN_SIZE
from ..nn import activation_elements_per_example
from ..nn.models import build_model, paper_model_cost
from ..perfmodel import (
    device,
    device_throughput,
    estimate_training_time,
    iterations,
    network,
)
from .report import ExperimentResult

__all__ = ["run"]

#: (label, paper value, tolerance ratio, callable producing our value)
def _rows() -> list[tuple[str, float, float]]:
    rows = []

    def add(label, paper, ours, tol=1.5):
        rows.append({"claim": label, "paper": paper, "ours": ours,
                     "ratio": ours / paper if paper else float("nan"),
                     "ok": paper / tol <= ours <= paper * tol})

    # Table 6
    alex, res = paper_model_cost("alexnet"), paper_model_cost("resnet50")
    add("AlexNet parameters (M)", 61, alex.parameters / 1e6, tol=1.05)
    add("AlexNet flops/image (G)", 1.5, alex.flops_per_image / 1e9, tol=1.15)
    add("ResNet-50 parameters (M)", 25, res.parameters / 1e6, tol=1.05)
    add("ResNet-50 flops/image (G)", 7.7, res.flops_per_image / 1e9, tol=1.15)
    add("scaling-ratio factor (R50/Alex)", 12.5,
        res.scaling_ratio / alex.scaling_ratio, tol=1.25)

    # headline wall-clock rows (minutes)
    def minutes(model, epochs, batch, procs, dev, net):
        return estimate_training_time(
            paper_model_cost(model), epochs=epochs,
            dataset_size=IMAGENET_TRAIN_SIZE, global_batch=batch,
            processors=procs, device=device(dev), net=network(net),
        ).total_minutes

    add("AlexNet-BN 32K/1024 CPUs (min)", 11,
        minutes("alexnet_bn", 100, 32768, 1024, "skylake", "opa"))
    add("AlexNet-BN 32K/512 KNLs (min)", 24,
        minutes("alexnet_bn", 100, 32768, 512, "knl", "opa"))
    add("AlexNet 512/DGX-1 (min)", 370,
        minutes("alexnet", 100, 512, 8, "p100", "nvlink"))
    add("AlexNet 4096/DGX-1 (min)", 139,
        minutes("alexnet", 100, 4096, 8, "p100", "nvlink"))
    add("ResNet-50 32K/2048 KNLs (min)", 20,
        minutes("resnet50", 90, 32768, 2048, "knl", "opa"))
    add("ResNet-50 64ep 32K/2048 KNLs (min)", 14,
        minutes("resnet50", 64, 32768, 2048, "knl", "opa"))
    add("ResNet-50 32K/1024 CPUs (min)", 48,
        minutes("resnet50", 90, 32768, 1024, "skylake", "opa"))
    add("ResNet-50 16000/1600 CPUs (min)", 31,
        minutes("resnet50", 90, 16000, 1600, "skylake", "opa"))
    add("ResNet-50 8K/256 P100s (min, Facebook)", 60,
        minutes("resnet50", 90, 8192, 256, "p100", "fdr"))
    add("ResNet-50 256/DGX-1 (min)", 21 * 60,
        minutes("resnet50", 90, 256, 8, "p100", "nvlink"))
    add("AlexNet 256/K20 (min)", 144 * 60,
        minutes("alexnet", 100, 256, 1, "k20", "nvlink"))

    # counting identities
    add("iterations @32K, 90 ep", 3600,
        iterations(90, IMAGENET_TRAIN_SIZE, 32768), tol=1.01)
    add("iterations @512, 100 ep", 250_000,
        iterations(100, 1_280_000, 512), tol=1.01)

    # Figure 3 optimum
    act = activation_elements_per_example(build_model("alexnet"), (3, 227, 227))
    feasible = [
        b for b in (128, 256, 512, 1024)
        if device_throughput(alex, b, device("m40"), act).fits_in_memory
    ]
    add("Figure 3 best feasible batch (M40)", 512, max(feasible), tol=1.01)
    return rows


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = _rows()
    passed = sum(1 for r in rows if r["ok"])
    return ExperimentResult(
        experiment="scorecard",
        title="Analytic reproduction scorecard (paper vs ours)",
        columns=["claim", "paper", "ours", "ratio", "ok"],
        rows=rows,
        notes=f"{passed}/{len(rows)} claims within tolerance (1.5x for "
              "wall-clock rows, tighter for counts).",
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
