"""Table 6 — scaling ratio (computation/communication) for AlexNet and
ResNet-50, computed from our own from-scratch model definitions."""

from __future__ import annotations

from ..nn.models import paper_model_cost
from .report import ExperimentResult

__all__ = ["run"]

#: the paper's Table 6 values
PAPER = {
    "alexnet": {"parameters": 61e6, "flops": 1.5e9, "ratio": 24.6},
    "resnet50": {"parameters": 25e6, "flops": 7.7e9, "ratio": 308.0},
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = []
    for name in ["alexnet", "resnet50"]:
        c = paper_model_cost(name)
        p = PAPER[name]
        rows.append(
            {
                "model": name,
                "parameters_M": c.parameters / 1e6,
                "paper_parameters_M": p["parameters"] / 1e6,
                "flops_per_image_G": c.flops_per_image / 1e9,
                "paper_flops_G": p["flops"] / 1e9,
                "scaling_ratio": c.scaling_ratio,
                "paper_ratio": p["ratio"],
            }
        )
    ours_factor = rows[1]["scaling_ratio"] / rows[0]["scaling_ratio"]
    return ExperimentResult(
        experiment="table6",
        title="Scaling ratio (comp/comm) for AlexNet and ResNet-50",
        columns=["model", "parameters_M", "paper_parameters_M",
                 "flops_per_image_G", "paper_flops_G", "scaling_ratio",
                 "paper_ratio"],
        rows=rows,
        notes=(
            f"ResNet-50's ratio is {ours_factor:.1f}x AlexNet's "
            "(paper: 12.5x) — why ResNet-50 weak-scales so much better. "
            "Our flop counts include BN/pool/activations; the paper counts "
            "conv+fc MACs only, hence the small systematic offset."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
