"""Table 5 — linear scaling + warmup fails for AlexNet beyond batch 1024.

The paper sweeps the base LR at batch 4096 (no LARS) and finds (a) every
setting loses accuracy vs the 58.3 % baseline, best 53.1 %, and (b) the
linearly-scaled LR (0.16) and anything near it diverges to 0.1 % accuracy.

Proxy mapping: batch 4096 is ×8 the baseline — but the proxy model is more
robust at ×8, so the sweep runs at the *difficulty-matched* ×64 point
(paper-equivalent batch 32768 for the LRN model, which the paper never got
working at all without switching to BN+LARS).  The shape to reproduce:
tuned-best < baseline, and the large linearly-scaled LRs collapse to chance.
"""

from __future__ import annotations

from .proxy import ALEXNET_BASE_BATCH, ProxyRun, run_proxy
from .report import ExperimentResult

__all__ = ["run", "SWEEP_FACTOR"]

#: relative batch factor for the sweep (difficulty-matched to paper's 4096)
SWEEP_FACTOR = 64

#: the paper's Table 5 (batch 4096 block), for side-by-side display
PAPER_SWEEP = [
    (0.01, 0.509), (0.02, 0.527), (0.03, 0.520), (0.04, 0.530),
    (0.05, 0.531), (0.06, 0.516), (0.07, 0.001), (0.16, 0.001),
]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    base_lr = 0.02  # the paper's AlexNet base LR, well-tuned on the proxy too
    baseline = run_proxy(ProxyRun("alexnet", ALEXNET_BASE_BATCH, base_lr), scale)
    batch = ALEXNET_BASE_BATCH * SWEEP_FACTOR
    rows = [
        {
            "batch": ALEXNET_BASE_BATCH,
            "peak_lr": base_lr,
            "warmup": "N/A",
            "accuracy": baseline.peak_test_accuracy,
            "role": "baseline",
        }
    ]
    linear_lr = base_lr * SWEEP_FACTOR
    # sweep fractions of the linearly-scaled LR, like the paper's 0.01..0.16
    for frac in [1 / 64, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0]:
        lr = linear_lr * frac
        res = run_proxy(
            ProxyRun("alexnet", batch, lr, warmup_epochs=2), scale
        )
        role = "linear-scaled LR" if frac == 1.0 else "tuned"
        rows.append(
            {
                "batch": batch,
                "peak_lr": lr,
                "warmup": "yes",
                "accuracy": res.peak_test_accuracy,
                "role": role,
            }
        )
    best_tuned = max(r["accuracy"] for r in rows[1:])
    return ExperimentResult(
        experiment="table5",
        title="LR sweep without LARS at large batch (AlexNet-LRN proxy)",
        columns=["batch", "peak_lr", "warmup", "accuracy", "role"],
        rows=rows,
        notes=(
            f"Baseline {baseline.peak_test_accuracy:.3f}; best tuned "
            f"large-batch {best_tuned:.3f}; linearly-scaled LR collapses "
            "to ~chance — the paper's 0.531-at-best / 0.001-at-0.07+ "
            f"pattern.  Paper sweep (batch 4096): {PAPER_SWEEP}."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
