"""Figure 3 — AlexNet throughput vs per-GPU batch size on an M40.

The paper's observations: throughput rises with batch (better GEMM
efficiency), batch 512 is the sweet spot, batch 1024 is out of memory.
"""

from __future__ import annotations

from ..nn import activation_elements_per_example
from ..nn.models import build_model, paper_model_cost
from ..perfmodel import device, throughput_curve
from .report import ExperimentResult

__all__ = ["run"]

_ACT_CACHE: dict[str, int] = {}


def _activations(name: str, shape) -> int:
    if name not in _ACT_CACHE:
        _ACT_CACHE[name] = activation_elements_per_example(build_model(name), shape)
    return _ACT_CACHE[name]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    cost = paper_model_cost("alexnet")
    act = _activations("alexnet", (3, 227, 227))
    curve = throughput_curve(cost, device("m40"), act,
                             batch_sizes=[32, 64, 128, 256, 512, 1024])
    rows = [
        {
            "batch_per_gpu": p.batch_size,
            "images_per_second": p.images_per_second if p.fits_in_memory else None,
            "utilisation": p.utilisation,
            "memory_GiB": p.memory_bytes / 2**30,
            "status": "ok" if p.fits_in_memory else "OUT OF MEMORY",
        }
        for p in curve
    ]
    best = max((r for r in rows if r["status"] == "ok"),
               key=lambda r: r["images_per_second"])
    return ExperimentResult(
        experiment="figure3",
        title="AlexNet images/s vs per-GPU batch on NVIDIA M40",
        columns=["batch_per_gpu", "images_per_second", "utilisation",
                 "memory_GiB", "status"],
        rows=rows,
        notes=(
            f"Best feasible batch: {best['batch_per_gpu']} (paper: 512); "
            "batch 1024 exceeds the M40's 12 GiB (paper: 'out of memory')."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
