"""Table 2 — iterations and total time vs batch size at fixed epochs.

The paper's table is symbolic (t_comp, t_comm); we reproduce the symbolic
rows *and* instantiate them numerically for the paper's own example
(ResNet-50 training on P100-class machines, 512 images per machine, FDR IB).
"""

from __future__ import annotations

from ..nn.models import paper_model_cost
from ..perfmodel import device, estimate_training_time, network, table2_row
from .report import ExperimentResult

__all__ = ["run"]

BATCHES = [512, 1024, 2048, 4096, 8192, 1_280_000]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    cost = paper_model_cost("resnet50")
    dev, net = device("p100"), network("fdr")
    rows = []
    for b in BATCHES:
        sym = table2_row(b, epochs=100, dataset_size=1_280_000)
        est = estimate_training_time(
            cost,
            epochs=100,
            dataset_size=1_280_000,
            global_batch=b,
            processors=sym["gpus"],
            device=dev,
            net=net,
            algorithm="tree",  # the log(P) model the paper tabulates
        )
        rows.append(
            {
                "batch_size": b,
                "epochs": 100,
                "iterations": sym["iterations"],
                "gpus": sym["gpus"],
                "iteration_time": sym["iteration_time"],
                "t_iter_seconds": est.iteration.total_seconds,
                "total_hours": est.total_hours,
            }
        )
    speedup = rows[0]["total_hours"] / rows[-2]["total_hours"]
    return ExperimentResult(
        experiment="table2",
        title="Iterations and total time vs batch size (fixed 100 epochs)",
        columns=["batch_size", "epochs", "iterations", "gpus",
                 "iteration_time", "t_iter_seconds", "total_hours"],
        rows=rows,
        notes=(
            "Iterations fall as 1/B while iteration time grows only as "
            f"log(P); 512->8192 gives a {speedup:.1f}x predicted speedup "
            "(paper: 'total time will be much less')."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
