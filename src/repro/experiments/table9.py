"""Table 9 — ResNet-50 / ImageNet time-to-train across hardware."""

from __future__ import annotations

from ..core import IMAGENET_TRAIN_SIZE
from ..nn.models import paper_model_cost
from ..perfmodel import device, estimate_training_time, network
from .report import ExperimentResult

__all__ = ["run", "ROWS"]

#: (batch, aug, epochs, procs, device, network, paper hardware, paper acc, paper min)
ROWS = [
    (256, "no", 90, 8, "p100", "nvlink", "DGX-1 station", 0.730, 21 * 60),
    (256, "yes", 90, 16, "knl", "opa", "16 KNLs", 0.753, 45 * 60),
    (8192, "no", 90, 8, "p100", "nvlink", "DGX-1 station", 0.727, 21 * 60),
    (8192, "yes", 90, 256, "p100", "fdr", "32 CPUs + 256 P100s", 0.753, 60),
    (16384, "yes", 90, 1024, "skylake", "opa", "1024 CPUs", 0.753, 52),
    (16000, "yes", 90, 1600, "skylake", "opa", "1600 CPUs", 0.753, 31),
    (32768, "no", 90, 512, "knl", "opa", "512 KNLs", 0.726, 60),
    (32768, "yes", 90, 1024, "skylake", "opa", "1024 CPUs", 0.754, 48),
    (32768, "yes", 90, 2048, "knl", "opa", "2048 KNLs", 0.754, 20),
    (32768, "yes", 64, 2048, "knl", "opa", "2048 KNLs", 0.749, 14),
]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    cost = paper_model_cost("resnet50")
    rows = []
    for batch, aug, epochs, procs, dev, net, hw, acc, paper_min in ROWS:
        est = estimate_training_time(
            cost,
            epochs=epochs,
            dataset_size=IMAGENET_TRAIN_SIZE,
            global_batch=batch,
            processors=procs,
            device=device(dev),
            net=network(net),
        )
        rows.append(
            {
                "batch_size": batch,
                "augment": aug,
                "epochs": epochs,
                "hardware": hw,
                "paper_accuracy": acc,
                "paper_time_min": paper_min,
                "predicted_time_min": est.total_minutes,
                "ratio": est.total_minutes / paper_min,
            }
        )
    return ExperimentResult(
        experiment="table9",
        title="ResNet-50 ImageNet training time across hardware",
        columns=["batch_size", "augment", "epochs", "hardware",
                 "paper_accuracy", "paper_time_min", "predicted_time_min",
                 "ratio"],
        rows=rows,
        notes=(
            "The 20-minute (90 epochs, 2048 KNLs) and 14-minute (64 epochs) "
            "headlines are reproduced by the calibrated model.  Accuracy "
            "columns are the paper's; the proxy reproduction of the "
            "accuracy-vs-batch shape is Table 10 / Figure 1."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
