"""Table 3 — standard accuracy benchmarks, with our proxy baselines.

The paper's table fixes the targets (AlexNet 58 % @ 100 epochs, ResNet-50
75.3 % @ 90 epochs).  We reproduce the table and attach the proxy baseline
each target maps onto — the reference every proxy large-batch run is
compared against.
"""

from __future__ import annotations

from ..data.datasets import TARGET_ACCURACY
from .proxy import ALEXNET_BASE_BATCH, RESNET_BASE_BATCH, ProxyRun, run_proxy
from .report import ExperimentResult

__all__ = ["run", "proxy_baselines"]


def proxy_baselines(scale: str = "small") -> dict[str, float]:
    """Peak accuracy of the proxy baseline run per model family."""
    alex = run_proxy(ProxyRun("alexnet", ALEXNET_BASE_BATCH, 0.02), scale)
    res = run_proxy(ProxyRun("resnet", RESNET_BASE_BATCH, 0.05), scale)
    return {
        "alexnet": alex.peak_test_accuracy,
        "resnet50": res.peak_test_accuracy,
    }


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    base = proxy_baselines(scale)
    rows = [
        {
            "model": "AlexNet",
            "epochs": 100,
            "paper_target_top1": TARGET_ACCURACY["alexnet"],
            "proxy_baseline_top1": base["alexnet"],
        },
        {
            "model": "ResNet-50",
            "epochs": 90,
            "paper_target_top1": TARGET_ACCURACY["resnet50"],
            "proxy_baseline_top1": base["resnet50"],
        },
    ]
    return ExperimentResult(
        experiment="table3",
        title="Standard benchmarks for ImageNet training (targets + proxy baselines)",
        columns=["model", "epochs", "paper_target_top1", "proxy_baseline_top1"],
        rows=rows,
        notes=(
            "The proxy baseline is the small-batch reference every "
            "large-batch proxy run must match (the paper's 'same accuracy "
            "in the same number of epochs' criterion)."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
