"""Figure 2 — data parallelism (the paper's schematic, made executable).

Figure 2(a) is a diagram: P workers send gradients to a master, the master
updates w and broadcasts it back.  Our master-worker sync-SGD mode *is* that
diagram; this experiment runs it on the simulated fabric and verifies the
message pattern the figure depicts (gradients in: P−1 tree messages;
weights out: P−1 tree messages) and that it computes the same update as the
decentralised allreduce mode.

Figure 2(b) (model parallelism) is discussed but not evaluated by the paper;
we record the boundary-crossing communication its caption describes as an
analytic note.
"""

from __future__ import annotations

import numpy as np

from ..cluster import SyncSGDConfig, train_sync_sgd
from ..core import SGD, ConstantLR
from ..data import gaussian_blobs
from ..nn.models import mlp
from .report import ExperimentResult

__all__ = ["run"]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    x, y = gaussian_blobs(64, num_classes=3, dim=6, seed=11)

    def builder():
        return mlp(6, [8], 3, seed=4)

    def opt_builder(params):
        return SGD(params, momentum=0.9, weight_decay=0.0)

    rows = []
    states = {}
    for mode in ["master", "allreduce"]:
        config = SyncSGDConfig(world=4, epochs=1, batch_size=16, mode=mode,
                               shuffle_seed=2)
        res = train_sync_sgd(builder, opt_builder, ConstantLR(0.1),
                             x, y, x[:16], y[:16], config)
        states[mode] = res.final_state
        rows.append(
            {
                "mode": mode,
                "world": 4,
                "iterations": 4,
                "messages": res.messages,
                "comm_bytes": res.comm_bytes,
            }
        )
    diff = max(
        np.abs(states["master"][k] - states["allreduce"][k]).max()
        for k in states["master"]
    )
    return ExperimentResult(
        experiment="figure2",
        title="Data parallelism: master-worker vs allreduce (Figure 2a, executable)",
        columns=["mode", "world", "iterations", "messages", "comm_bytes"],
        rows=rows,
        notes=(
            f"Both modes produce identical weights (max diff {diff:.2e}) — "
            "the sequential-consistency property the figure's scheme "
            "relies on.  Gradient-in/weights-out messages per iteration in "
            "master mode: 2(P-1) plus the per-epoch metric reduction."
        ),
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
