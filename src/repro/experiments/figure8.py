"""Figure 8 — iterations vs batch size at fixed epochs (I = E·n/B)."""

from __future__ import annotations

from ..core import IMAGENET_TRAIN_SIZE
from ..perfmodel import iterations
from .report import ExperimentResult

__all__ = ["run", "BATCHES"]

BATCHES = [512, 1024, 2048, 4096, 8192, 16384, 32768]


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = [
        {
            "batch_size": b,
            "iterations_100ep": iterations(100, IMAGENET_TRAIN_SIZE, b),
            "iterations_90ep": iterations(90, IMAGENET_TRAIN_SIZE, b),
        }
        for b in BATCHES
    ]
    return ExperimentResult(
        experiment="figure8",
        title="Iterations vs batch size at fixed epochs",
        columns=["batch_size", "iterations_100ep", "iterations_90ep"],
        rows=rows,
        notes="Doubling the batch halves the iteration count: I = E*n/B.",
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
