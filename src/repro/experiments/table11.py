"""Table 11 — network α/β constants, cross-checked against the simulated
fabric (one 1 MB transfer on each profile must cost exactly α + β·n)."""

from __future__ import annotations

import numpy as np

from ..comm import SimulatedFabric
from ..perfmodel import NETWORKS
from .report import ExperimentResult

__all__ = ["run"]

#: Table 11 verbatim
PAPER = {
    "Mellanox 56Gb/s FDR IB": (0.7e-6, 0.2e-9),
    "Intel 40Gb/s QDR IB": (1.2e-6, 0.3e-9),
    "Intel 10GbE NetEffect NE020": (7.2e-6, 0.9e-9),
}


def run(scale: str = "small", seed: int = 0) -> ExperimentResult:
    rows = []
    payload = np.zeros(131_072)  # 1 MiB of float64
    for key in ["fdr", "qdr", "10gbe"]:
        prof = NETWORKS[key]
        fabric = SimulatedFabric(2, prof)
        fabric.send(0, 1, payload)
        fabric.recv(1, 0)
        measured = fabric.time_of(1)
        alpha_p, beta_p = PAPER[prof.name]
        rows.append(
            {
                "network": prof.name,
                "alpha_us": prof.alpha * 1e6,
                "paper_alpha_us": alpha_p * 1e6,
                "beta_ns_per_byte": prof.beta * 1e9,
                "paper_beta_ns": beta_p * 1e9,
                "fabric_1MiB_ms": measured * 1e3,
                "model_1MiB_ms": prof.transfer_time(payload.nbytes) * 1e3,
            }
        )
    return ExperimentResult(
        experiment="table11",
        title="Interconnect alpha/beta (Table 11) and fabric round-trip check",
        columns=["network", "alpha_us", "paper_alpha_us", "beta_ns_per_byte",
                 "paper_beta_ns", "fabric_1MiB_ms", "model_1MiB_ms"],
        rows=rows,
        notes="Simulated-fabric transfer time equals alpha + beta*nbytes exactly.",
    )


if __name__ == "__main__":
    from ..obs.console import get_console

    get_console().info(run().format())
