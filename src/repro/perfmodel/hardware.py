"""Hardware profiles: the devices and interconnects the paper measures.

Sources inside the paper:

* P100 peak 10.6 Tflops, KNL-7250 peak 6 Tflops ("NVIDIA P100 GPU and Intel
  KNL" section); "the power of one P100 GPU is roughly equal to two KNLs".
* γ = 0.9·10⁻¹³ s/flop for P100 (Table 11 caption).
* Table 11: α/β for Mellanox FDR IB, Intel QDR IB, Intel 10GbE.
* Table 12: Horowitz's 45 nm CMOS energy numbers.

Two calibrated quantities turn peaks into predictions:

* ``efficiency`` — sustained fraction of peak at *saturating* local batch,
  fitted per (device, model) from the paper's own measured rows (Tables 8/9).
* ``b_half`` — half-saturation local batch of the utilisation curve
  ``util(b) = b/(b + b_half)`` (Figure 3's "larger batch makes a single GPU
  faster").  GPUs running AlexNet need large batches to fill the FC-layer
  GEMMs (b_half ≈ 128 — this is why the paper's DGX-1 AlexNet run speeds up
  2.7× from batch 512 to 4096); ResNet-50's conv-heavy work saturates almost
  immediately (the paper's DGX-1 rows show *no* speedup from batch 256 to
  8192, so b_half ≈ 2); CPUs/KNL don't rely on giant GEMM batching (b_half
  ≈ 4).

Every calibration is recorded in EXPERIMENTS.md with the paper row that
pins it down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..comm.fabric import NetworkProfile

__all__ = [
    "DeviceProfile",
    "DEVICES",
    "NETWORKS",
    "ENERGY_TABLE_45NM",
    "EnergyEntry",
    "device",
    "network",
]


@dataclass(frozen=True)
class DeviceProfile:
    """One accelerator / CPU socket.

    Parameters
    ----------
    peak_flops:
        Single-precision peak (the paper considers only fp32).
    memory_bytes:
        Device memory bound (drives the Figure 3 OOM point).
    default_efficiency / model_efficiency:
        Sustained fraction of peak at saturating batch, with per-model
        overrides keyed by registry name.
    default_b_half / model_b_half:
        Half-saturation local batch of ``util(b) = b/(b + b_half)``.
    """

    name: str
    peak_flops: float
    memory_bytes: float
    #: board/socket power under load (facility-energy model)
    tdp_watts: float = 250.0
    default_efficiency: float = 0.35
    model_efficiency: dict[str, float] = field(default_factory=dict)
    default_b_half: float = 8.0
    model_b_half: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.peak_flops <= 0 or self.memory_bytes <= 0:
            raise ValueError("peak_flops and memory_bytes must be positive")
        if not 0 < self.default_efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if self.default_b_half < 0:
            raise ValueError("b_half must be non-negative")

    def efficiency(self, model_name: str | None = None) -> float:
        if model_name is not None and model_name in self.model_efficiency:
            return self.model_efficiency[model_name]
        return self.default_efficiency

    def b_half(self, model_name: str | None = None) -> float:
        if model_name is not None and model_name in self.model_b_half:
            return self.model_b_half[model_name]
        return self.default_b_half

    def utilisation(self, local_batch: float, model_name: str | None = None) -> float:
        """Fraction of saturated throughput achieved at ``local_batch``."""
        if local_batch <= 0:
            raise ValueError("local_batch must be positive")
        h = self.b_half(model_name)
        return local_batch / (local_batch + h)

    def sustained_flops(
        self, model_name: str | None = None, local_batch: float | None = None
    ) -> float:
        """Achievable flops/s; includes the batch-utilisation curve when a
        local batch is given."""
        rate = self.peak_flops * self.efficiency(model_name)
        if local_batch is not None:
            rate *= self.utilisation(local_batch, model_name)
        return rate

    @property
    def gamma(self) -> float:
        """Time per flop at peak (the γ of the paper's α-β-γ discussion)."""
        return 1.0 / self.peak_flops


_GPU_B_HALF = {"alexnet": 128.0, "alexnet_bn": 128.0, "resnet50": 2.0}

#: Devices the paper's experiments use.  Efficiencies/b_half fitted from the
#: paper's measured rows (see EXPERIMENTS.md "calibration" for the fits).
DEVICES: dict[str, DeviceProfile] = {
    # Table 8 row 1: AlexNet b256, K20, 144 h -> 31% of 3.5T at util(256).
    "k20": DeviceProfile("NVIDIA K20", 3.5e12, 5 * 2**30, tdp_watts=225,
                         default_efficiency=0.46,
                         model_b_half=_GPU_B_HALF),
    # Figure 3's device: AlexNet throughput peaks at per-GPU batch 512.
    "m40": DeviceProfile("NVIDIA M40", 7.0e12, 12 * 2**30, tdp_watts=250,
                         default_efficiency=0.50,
                         model_b_half=_GPU_B_HALF),
    # DGX-1 = 8×P100.  AlexNet fit: b512 6h10m & b4096 2h19m (Table 8)
    # -> eff 0.95, b_half 128.  ResNet-50 fit: b256 21 h (Table 9)
    # -> eff 0.47, b_half 2 (no speedup 256 -> 8192 on the same box).
    "p100": DeviceProfile("NVIDIA P100", 10.6e12, 16 * 2**30, tdp_watts=300,
                          default_efficiency=0.47,
                          model_efficiency={"alexnet": 0.95, "alexnet_bn": 0.95,
                                            "resnet50": 0.47},
                          model_b_half=_GPU_B_HALF),
    # KNL 7250.  ResNet-50 fit: 512 KNL / b32K / 1 h -> eff 0.285;
    # AlexNet-BN fit: 512 KNL / b32K / 24 min -> eff 0.155 (FC layers are
    # memory-bound on KNL).
    "knl": DeviceProfile("Intel Xeon Phi 7250 (KNL)", 6.0e12, 384 * 2**30, tdp_watts=215,
                         default_efficiency=0.285,
                         model_efficiency={"alexnet": 0.155, "alexnet_bn": 0.155,
                                           "resnet50": 0.285},
                         default_b_half=4.0),
    # Skylake 8160.  AlexNet-BN fit: 1024 CPUs / b32K / 11 min -> eff 0.29;
    # ResNet-50 fit: 1024 CPUs / b32K / 48 min -> eff 0.26.
    "skylake": DeviceProfile("Intel Xeon Platinum 8160", 4.4e12, 192 * 2**30, tdp_watts=150,
                             default_efficiency=0.26,
                             model_efficiency={"alexnet": 0.29, "alexnet_bn": 0.29,
                                               "resnet50": 0.26},
                             default_b_half=4.0),
}

#: Table 11 verbatim, plus the fabrics the paper's clusters actually used.
NETWORKS: dict[str, NetworkProfile] = {
    "fdr": NetworkProfile(alpha=0.7e-6, beta=0.2e-9, name="Mellanox 56Gb/s FDR IB"),
    "qdr": NetworkProfile(alpha=1.2e-6, beta=0.3e-9, name="Intel 40Gb/s QDR IB"),
    "10gbe": NetworkProfile(alpha=7.2e-6, beta=0.9e-9, name="Intel 10GbE NetEffect NE020"),
    # Stampede-2's Intel Omni-Path 100 Gb/s fabric
    "opa": NetworkProfile(alpha=0.9e-6, beta=0.08e-9, name="Intel Omni-Path 100Gb/s"),
    # intra-DGX-1 NVLink mesh (effective per-GPU bandwidth)
    "nvlink": NetworkProfile(alpha=1.0e-6, beta=0.033e-9, name="NVLink (DGX-1)"),
}


@dataclass(frozen=True)
class EnergyEntry:
    """One row of Table 12."""

    operation: str
    kind: str  # "computation" | "communication"
    picojoules: float


#: Table 12 verbatim: Horowitz's 45 nm CMOS energy table.
ENERGY_TABLE_45NM: list[EnergyEntry] = [
    EnergyEntry("32 bit int add", "computation", 0.1),
    EnergyEntry("32 bit float add", "computation", 0.9),
    EnergyEntry("32 bit register access", "communication", 1.0),
    EnergyEntry("32 bit int multiply", "computation", 3.1),
    EnergyEntry("32 bit float multiply", "computation", 3.7),
    EnergyEntry("32 bit SRAM access", "communication", 5.0),
    EnergyEntry("32 bit DRAM access", "communication", 640.0),
]


def device(name: str) -> DeviceProfile:
    """Look up a device profile by short name."""
    if name not in DEVICES:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICES)}")
    return DEVICES[name]


def network(name: str) -> NetworkProfile:
    """Look up an interconnect profile by short name."""
    if name not in NETWORKS:
        raise KeyError(f"unknown network {name!r}; available: {sorted(NETWORKS)}")
    return NETWORKS[name]
