"""Communication accounting at fixed epochs — Figures 6, 8, 9 and 10.

With E epochs over n images at batch B and a model of |W| parameters:

* iterations            I = E·n/B                      (Figure 8)
* messages              ∝ I (one gradient exchange per iteration; Figure 9)
* communication volume  V = |W|·E·n/B bytes·4          (Figure 10)
* computation           F = 3·flops/image·E·n — *independent of B* (Figure 6)

The per-algorithm variants multiply by the critical-path message count of
the chosen allreduce.
"""

from __future__ import annotations

import math

from ..comm.collectives import allreduce_message_count
from ..nn.flops import BYTES_PER_PARAM_FP32, FWD_BWD_FLOP_FACTOR, ModelCost

__all__ = [
    "iterations",
    "messages",
    "comm_volume_bytes",
    "total_flops",
    "sweep_batch_sizes",
]


def iterations(epochs: int, dataset_size: int, batch_size: int) -> int:
    """I = ⌈E·n/B⌉ — the paper's E×n/B with the ragged final batch kept."""
    if epochs <= 0 or dataset_size <= 0 or batch_size <= 0:
        raise ValueError("all arguments must be positive")
    return epochs * math.ceil(dataset_size / batch_size)


def messages(
    epochs: int,
    dataset_size: int,
    batch_size: int,
    processors: int = 2,
    algorithm: str = "tree",
) -> int:
    """Messages on one rank's critical path over the whole run.

    The paper's simple model counts "number of messages = iterations"; that
    is the ``processors=2`` tree case (one exchange per iteration, up to a
    constant).  Larger P multiplies by the algorithm's per-iteration count.
    """
    per_iter = max(allreduce_message_count(processors, algorithm), 1)
    return iterations(epochs, dataset_size, batch_size) * per_iter


def comm_volume_bytes(
    cost: ModelCost, epochs: int, dataset_size: int, batch_size: int
) -> int:
    """V = |W| · E·n/B (in bytes, fp32 gradients) — Figure 10."""
    return cost.parameters * BYTES_PER_PARAM_FP32 * iterations(
        epochs, dataset_size, batch_size
    )


def total_flops(cost: ModelCost, epochs: int, dataset_size: int) -> int:
    """F = 3·flops/image·E·n — batch-size independent (Figure 6)."""
    return FWD_BWD_FLOP_FACTOR * cost.flops_per_image * epochs * dataset_size


def sweep_batch_sizes(
    cost: ModelCost,
    epochs: int,
    dataset_size: int,
    batch_sizes: list[int],
) -> list[dict]:
    """One row per batch size: the data behind Figures 6/8/9/10."""
    rows = []
    for b in batch_sizes:
        rows.append(
            {
                "batch_size": b,
                "iterations": iterations(epochs, dataset_size, b),
                "messages": messages(epochs, dataset_size, b),
                "comm_volume_bytes": comm_volume_bytes(cost, epochs, dataset_size, b),
                "total_flops": total_flops(cost, epochs, dataset_size),
            }
        )
    return rows
