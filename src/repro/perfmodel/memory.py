"""Closed-form activation-memory model for a training step.

Predicts the peak arena footprint of a planned (``static_memory=True``)
forward+backward step *without running the model*: the
:class:`repro.nn.MemoryPlan` shape-infers the layer graph, replays the
per-layer buffer request stream through a dry-run arena with the live
arena's exact bucket arithmetic, and reads off the byte counters.  Because
both sides share the bucket math by construction, the prediction is pinned
to the measured peak (``tests/perfmodel/test_memory_predictor.py`` holds it
to <5%; in practice the match is exact).

The model answers the capacity-planning questions behind Figure 3's OOM
wall: how activation bytes scale with batch size, and the largest batch a
device's memory admits for a given model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.layers.base import Module
from ..nn.losses import SoftmaxCrossEntropy
from ..nn.memory import MemoryPlan

__all__ = ["MemoryEstimate", "predict_activation_bytes", "sweep_batch_sizes", "max_batch_size"]


@dataclass(frozen=True)
class MemoryEstimate:
    """Predicted steady-state arena footprint of one training step."""

    batch_size: int
    peak_bytes: int  #: high-water mark of live bucket bytes inside a step
    pool_bytes: int  #: bytes the arena retains between steps (slots + warm freelists)
    slot_bytes: int  #: persistent per-layer slots (activations, grads, masks)
    scratch_bucket_bytes: int  #: freelist capacity the call-scoped temporaries need
    num_slots: int

    @property
    def bytes_per_example(self) -> float:
        return self.peak_bytes / max(self.batch_size, 1)


def predict_activation_bytes(
    model: Module,
    input_shape: tuple[int, ...],
    batch_size: int,
    loss: SoftmaxCrossEntropy | None = None,
) -> MemoryEstimate:
    """Closed-form peak/pool bytes for a planned training step."""
    plan = MemoryPlan.build(model, input_shape, batch_size, loss=loss)
    return MemoryEstimate(
        batch_size=int(batch_size),
        peak_bytes=plan.peak_bytes,
        pool_bytes=plan.pool_bytes,
        slot_bytes=plan.slot_bytes,
        scratch_bucket_bytes=plan.scratch_bucket_bytes,
        num_slots=plan.num_slots,
    )


def sweep_batch_sizes(
    model_builder,
    input_shape: tuple[int, ...],
    batch_sizes,
    loss_factory=SoftmaxCrossEntropy,
) -> list[MemoryEstimate]:
    """Footprint-vs-batch-size curve (the memory analogue of Figure 3).

    ``model_builder`` is called once per batch size so layer caches never
    leak between plans.
    """
    return [
        predict_activation_bytes(
            model_builder(), input_shape, b, loss=loss_factory() if loss_factory else None
        )
        for b in batch_sizes
    ]


def max_batch_size(
    model_builder,
    input_shape: tuple[int, ...],
    memory_bytes: int,
    loss_factory=SoftmaxCrossEntropy,
    limit: int = 1 << 20,
) -> int:
    """Largest batch whose planned step fits in ``memory_bytes`` (0 if none).

    Peak bytes grow monotonically with batch size (every planned buffer's
    leading dimension is the batch), so binary search applies.
    """

    def fits(b: int) -> bool:
        est = predict_activation_bytes(
            model_builder(), input_shape, b, loss=loss_factory() if loss_factory else None
        )
        return est.pool_bytes <= memory_bytes

    if not fits(1):
        return 0
    lo, hi = 1, 2
    while hi <= limit and fits(hi):
        lo, hi = hi, hi * 2
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid
    return lo
