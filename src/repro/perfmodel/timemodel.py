"""Analytic training-time model — the α-β-γ arithmetic behind Tables 1, 2,
8 and 9.

The paper's model (Table 2): with epochs E fixed, iterations = E·n/B; each
iteration costs

    t_iter = t_comp + t_comm(P)

where ``t_comp`` is the per-device forward+backward time on its local batch
B/P and ``t_comm`` the allreduce of the |W|-byte gradient (log(P)·t for the
tree algorithm the paper tabulates).  Total time = iterations × t_iter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..comm.collectives import allreduce_cost, allreduce_message_count
from ..comm.fabric import NetworkProfile
from ..nn.flops import FWD_BWD_FLOP_FACTOR, ModelCost
from .hardware import DeviceProfile

__all__ = ["IterationBreakdown", "TrainingTimeEstimate", "estimate_training_time",
           "iteration_breakdown", "overlapped_iteration_time", "table2_row",
           "weak_scaling_efficiency"]


@dataclass(frozen=True)
class IterationBreakdown:
    """One iteration's simulated cost, split into its α-β-γ terms."""

    compute_seconds: float
    comm_seconds: float
    local_batch: float
    messages_per_iteration: int

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    @property
    def comm_fraction(self) -> float:
        t = self.total_seconds
        return self.comm_seconds / t if t else 0.0


@dataclass(frozen=True)
class TrainingTimeEstimate:
    """End-to-end prediction for one (model, cluster, batch) configuration."""

    model: str
    device: str
    processors: int
    global_batch: int
    epochs: int
    iterations: int
    iteration: IterationBreakdown

    @property
    def total_seconds(self) -> float:
        return self.iterations * self.iteration.total_seconds

    @property
    def total_hours(self) -> float:
        return self.total_seconds / 3600.0

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0

    @property
    def images_per_second(self) -> float:
        return self.global_batch / self.iteration.total_seconds


def compute_time_per_iteration(
    cost: ModelCost, local_batch: float, device: DeviceProfile
) -> float:
    """Forward+backward seconds for ``local_batch`` examples on one device.

    Includes the device's batch-utilisation curve — the Figure 3 effect that
    makes small local batches disproportionately slow per image.
    """
    if local_batch <= 0:
        raise ValueError("local_batch must be positive")
    flops = FWD_BWD_FLOP_FACTOR * cost.flops_per_image * local_batch
    return flops / device.sustained_flops(cost.name, local_batch=local_batch)


def iteration_breakdown(
    cost: ModelCost,
    global_batch: int,
    processors: int,
    device: DeviceProfile,
    net: NetworkProfile,
    algorithm: str = "ring",
) -> IterationBreakdown:
    """Split one synchronous-SGD iteration into compute and comm time."""
    if processors <= 0 or global_batch <= 0:
        raise ValueError("processors and global_batch must be positive")
    local = global_batch / processors
    t_comp = compute_time_per_iteration(cost, local, device)
    t_comm = allreduce_cost(processors, cost.model_bytes, net, algorithm)
    return IterationBreakdown(
        compute_seconds=t_comp,
        comm_seconds=t_comm,
        local_batch=local,
        messages_per_iteration=allreduce_message_count(processors, algorithm),
    )


def estimate_training_time(
    cost: ModelCost,
    *,
    epochs: int,
    dataset_size: int,
    global_batch: int,
    processors: int,
    device: DeviceProfile,
    net: NetworkProfile,
    algorithm: str = "ring",
) -> TrainingTimeEstimate:
    """Predict total training time for a full fixed-epoch run."""
    if epochs <= 0 or dataset_size <= 0:
        raise ValueError("epochs and dataset_size must be positive")
    iters = math.ceil(dataset_size / global_batch) * epochs
    breakdown = iteration_breakdown(cost, global_batch, processors, device, net, algorithm)
    return TrainingTimeEstimate(
        model=cost.name,
        device=device.name,
        processors=processors,
        global_batch=global_batch,
        epochs=epochs,
        iterations=iters,
        iteration=breakdown,
    )


def table2_row(
    batch_size: int,
    epochs: int = 100,
    dataset_size: int = 1_280_000,
    batch_per_machine: int = 512,
) -> dict:
    """One symbolic row of Table 2: iterations, GPU count, t_iter structure.

    The paper fixes 512 images per machine and grows machines with the
    batch; iteration time is t_comp + log₂(P)·t_comm.
    """
    if batch_size % batch_per_machine:
        raise ValueError("Table 2 assumes batch divisible by 512 per machine")
    gpus = batch_size // batch_per_machine
    iterations = epochs * dataset_size // batch_size
    return {
        "batch_size": batch_size,
        "epochs": epochs,
        "iterations": iterations,
        "gpus": gpus,
        "log2_p": math.log2(gpus) if gpus >= 1 else 0.0,
        "iteration_time": f"tcomp + log({gpus})tcomm" if gpus > 1 else "tcomp",
        "total_time": f"{iterations} x (tcomp + log({gpus})tcomm)"
        if gpus > 1
        else f"{iterations} x tcomp",
    }


def overlapped_iteration_time(
    cost: ModelCost,
    global_batch: int,
    processors: int,
    device: DeviceProfile,
    net: NetworkProfile,
    algorithm: str = "ring",
    overlap_fraction: float = 0.8,
    buckets: int = 16,
) -> IterationBreakdown:
    """Iteration time with communication/computation overlap.

    The paper notes the synchronisation cost "can be partially ameliorated
    by overlapping communication and computation (Das et al. 2016; Goyal et
    al. 2017)": production stacks bucket the gradients and start
    allreducing finished buckets while backprop continues.  Model:

    * a fraction ``overlap_fraction`` of the backward pass can hide
      communication beneath it (the first bucket only exists after the last
      layer's gradient; the final bucket can never be hidden);
    * the gradient is split into ``buckets`` messages, so the latency term
      is paid per bucket while the bandwidth term is unchanged.

    Exposed time = t_comp + max(0, t_comm_bucketed − overlap_fraction·t_bwd)
    with t_bwd = (2/3)·t_comp (backward ≈ 2× forward).
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be in [0, 1]")
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    base = iteration_breakdown(cost, global_batch, processors, device, net, algorithm)
    bucket_bytes = cost.model_bytes / buckets
    t_comm = buckets * allreduce_cost(processors, int(bucket_bytes), net, algorithm)
    t_bwd = base.compute_seconds * (2.0 / 3.0)
    exposed = max(0.0, t_comm - overlap_fraction * t_bwd)
    return IterationBreakdown(
        compute_seconds=base.compute_seconds,
        comm_seconds=exposed,
        local_batch=base.local_batch,
        messages_per_iteration=buckets * allreduce_message_count(processors, algorithm),
    )


def weak_scaling_efficiency(
    cost: ModelCost,
    processors: int,
    batch_per_processor: int,
    device: DeviceProfile,
    net: NetworkProfile,
    algorithm: str = "ring",
) -> float:
    """Throughput per device at P processors / throughput at P=1.

    This is where Table 6's scaling ratio bites: AlexNet (ratio ~25) loses
    efficiency to the |W|-sized allreduce far sooner than ResNet-50
    (ratio ~300).
    """
    single = iteration_breakdown(cost, batch_per_processor, 1, device, net, algorithm)
    multi = iteration_breakdown(
        cost, batch_per_processor * processors, processors, device, net, algorithm
    )
    return single.total_seconds / multi.total_seconds
