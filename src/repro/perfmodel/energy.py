"""Energy accounting from Table 12 (Horowitz, 45 nm CMOS).

The paper's point: "Communication costs much more energy than computation" —
a 32-bit DRAM access (640 pJ) is ~170× a float multiply (3.7 pJ).  This
module exposes the table as data plus a coarse training-energy model that
ranks computation against data movement for a full run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.flops import FWD_BWD_FLOP_FACTOR, ModelCost
from .comm_analysis import comm_volume_bytes
from .hardware import ENERGY_TABLE_45NM, EnergyEntry

__all__ = [
    "energy_of",
    "energy_ratio",
    "EnergyBreakdown",
    "training_energy",
    "facility_energy_kwh",
    "PJ_PER_FLOP",
    "PJ_PER_WORD_MOVED",
]

_BY_NAME = {e.operation: e for e in ENERGY_TABLE_45NM}

#: average energy per flop: DNN training is a roughly even mul/add mix
PJ_PER_FLOP = (_BY_NAME["32 bit float add"].picojoules
               + _BY_NAME["32 bit float multiply"].picojoules) / 2

#: energy per 32-bit word moved across node boundaries; modelled as a DRAM
#: access on each side (NIC buffers behave like DRAM at 45 nm energy scale)
PJ_PER_WORD_MOVED = 2 * _BY_NAME["32 bit DRAM access"].picojoules


def energy_of(operation: str) -> EnergyEntry:
    """Look up one Table 12 row by its operation string."""
    if operation not in _BY_NAME:
        raise KeyError(f"unknown operation {operation!r}; rows: {sorted(_BY_NAME)}")
    return _BY_NAME[operation]


def energy_ratio(op_a: str, op_b: str) -> float:
    """How many times more energy ``op_a`` costs than ``op_b``."""
    return energy_of(op_a).picojoules / energy_of(op_b).picojoules


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules spent computing vs communicating over a training run."""

    compute_joules: float
    comm_joules: float

    @property
    def total_joules(self) -> float:
        return self.compute_joules + self.comm_joules

    @property
    def comm_fraction(self) -> float:
        t = self.total_joules
        return self.comm_joules / t if t else 0.0


def training_energy(
    cost: ModelCost, epochs: int, dataset_size: int, batch_size: int
) -> EnergyBreakdown:
    """Arithmetic vs gradient-movement energy at fixed epochs.

    Compute energy is batch-independent (Figure 6's invariance); the
    communication term shrinks as 1/B — the energy-side version of the
    paper's large-batch argument.
    """
    flops = FWD_BWD_FLOP_FACTOR * cost.flops_per_image * epochs * dataset_size
    compute_pj = flops * PJ_PER_FLOP
    words_moved = comm_volume_bytes(cost, epochs, dataset_size, batch_size) / 4
    comm_pj = words_moved * PJ_PER_WORD_MOVED
    return EnergyBreakdown(
        compute_joules=compute_pj * 1e-12, comm_joules=comm_pj * 1e-12
    )


def facility_energy_kwh(estimate, tdp_watts: float) -> float:
    """Wall-socket energy of a whole training run: P devices at TDP for the
    predicted duration.

    Takes a :class:`repro.perfmodel.TrainingTimeEstimate` (which knows the
    processor count and total time) and a per-device power; this is the
    facility-scale counterpart to :func:`training_energy`'s circuit-level
    accounting, and it makes the large-batch argument in kWh: faster runs
    on the same hardware cost proportionally less energy, and communication
    stalls burn TDP while doing no arithmetic.
    """
    if tdp_watts <= 0:
        raise ValueError("tdp_watts must be positive")
    joules = estimate.processors * tdp_watts * estimate.total_seconds
    return joules / 3.6e6
