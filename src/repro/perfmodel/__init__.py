"""``repro.perfmodel`` — analytic α-β-γ performance and energy model.

Device and interconnect profiles (Tables 11/12 as data), the fixed-epoch
training-time model (Table 2), single-device throughput (Figure 3), the
communication-accounting sweeps (Figures 6/8/9/10) and energy ranking.
"""

from .comm_analysis import (
    comm_volume_bytes,
    iterations,
    messages,
    sweep_batch_sizes,
    total_flops,
)
from .energy import (
    PJ_PER_FLOP,
    facility_energy_kwh,
    PJ_PER_WORD_MOVED,
    EnergyBreakdown,
    energy_of,
    energy_ratio,
    training_energy,
)
from .hardware import (
    DEVICES,
    ENERGY_TABLE_45NM,
    NETWORKS,
    DeviceProfile,
    EnergyEntry,
    device,
    network,
)
from . import memory
from .memory import MemoryEstimate, max_batch_size, predict_activation_bytes
from .overlap import (
    DEFAULT_BUCKET_BYTES,
    OverlapStepEstimate,
    greedy_partition,
    predict_run_seconds,
    predict_step_time,
)
from .throughput import (
    ThroughputPoint,
    device_throughput,
    throughput_curve,
    training_memory_bytes,
)
from .timemodel import (
    IterationBreakdown,
    overlapped_iteration_time,
    TrainingTimeEstimate,
    estimate_training_time,
    iteration_breakdown,
    table2_row,
    weak_scaling_efficiency,
)

__all__ = [
    "DeviceProfile",
    "DEVICES",
    "NETWORKS",
    "ENERGY_TABLE_45NM",
    "EnergyEntry",
    "device",
    "network",
    "IterationBreakdown",
    "TrainingTimeEstimate",
    "estimate_training_time",
    "iteration_breakdown",
    "overlapped_iteration_time",
    "DEFAULT_BUCKET_BYTES",
    "OverlapStepEstimate",
    "greedy_partition",
    "predict_step_time",
    "predict_run_seconds",
    "table2_row",
    "weak_scaling_efficiency",
    "ThroughputPoint",
    "device_throughput",
    "throughput_curve",
    "training_memory_bytes",
    "memory",
    "MemoryEstimate",
    "predict_activation_bytes",
    "max_batch_size",
    "iterations",
    "messages",
    "comm_volume_bytes",
    "total_flops",
    "sweep_batch_sizes",
    "EnergyBreakdown",
    "energy_of",
    "energy_ratio",
    "facility_energy_kwh",
    "training_energy",
    "PJ_PER_FLOP",
    "PJ_PER_WORD_MOVED",
]
