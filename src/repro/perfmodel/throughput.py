"""Single-device throughput vs per-device batch size — Figure 3.

The paper's observation: "In a certain range, larger batch size will make
the single GPU's speed higher... because low-level matrix computation
libraries will be more efficient"; for AlexNet on an M40 the best batch is
512 and batch 1024 is out of memory.

Model: GEMM efficiency rises with arithmetic intensity, which grows with the
batch.  We use a saturating utilisation curve

    util(b) = b / (b + b_half)

(b_half = batch at 50 % of saturated utilisation), so

    images/s(b) = sustained_flops · util(b) / (3 · flops_per_image)

and training memory = weights + gradients + momentum (3·|W| words) plus the
per-example activation footprint (forward activations are all kept for
backprop), which produces the OOM cliff.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.flops import FWD_BWD_FLOP_FACTOR, ModelCost
from .hardware import DeviceProfile

__all__ = ["ThroughputPoint", "device_throughput", "throughput_curve", "training_memory_bytes"]

#: default half-saturation batch for the utilisation curve; chosen so that
#: batch 512 sits at ~94 % utilisation (the paper's AlexNet/M40 optimum)
DEFAULT_B_HALF = 32.0

#: activation storage per scalar (fp32) plus an equal-size gradient buffer
ACTIVATION_BYTES_PER_ELEMENT = 2 * 4


@dataclass(frozen=True)
class ThroughputPoint:
    batch_size: int
    images_per_second: float
    utilisation: float
    memory_bytes: float
    fits_in_memory: bool


def training_memory_bytes(
    cost: ModelCost, batch_size: int, activation_elements: int
) -> float:
    """Device memory for one training step at ``batch_size``.

    3·|W| fp32 words (weights, gradients, momentum) + activations for every
    example in flight (kept for backward), each with a gradient buffer.
    """
    static = 3 * cost.parameters * 4
    dynamic = batch_size * activation_elements * ACTIVATION_BYTES_PER_ELEMENT
    return static + dynamic


def device_throughput(
    cost: ModelCost,
    batch_size: int,
    dev: DeviceProfile,
    activation_elements: int,
    b_half: float = DEFAULT_B_HALF,
) -> ThroughputPoint:
    """Predict one (batch, images/s) point of Figure 3."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    util = batch_size / (batch_size + b_half)
    ips = dev.sustained_flops(cost.name) * util / (
        FWD_BWD_FLOP_FACTOR * cost.flops_per_image
    )
    mem = training_memory_bytes(cost, batch_size, activation_elements)
    return ThroughputPoint(
        batch_size=batch_size,
        images_per_second=ips,
        utilisation=util,
        memory_bytes=mem,
        fits_in_memory=mem <= dev.memory_bytes,
    )


def throughput_curve(
    cost: ModelCost,
    dev: DeviceProfile,
    activation_elements: int,
    batch_sizes: list[int] | None = None,
    b_half: float = DEFAULT_B_HALF,
) -> list[ThroughputPoint]:
    """The full Figure 3 sweep (default: powers of two, 1 … 1024)."""
    if batch_sizes is None:
        batch_sizes = [2**k for k in range(0, 11)]
    return [
        device_throughput(cost, b, dev, activation_elements, b_half)
        for b in batch_sizes
    ]
