"""Closed-form predictor for overlapped bucketed gradient synchronization.

The simulated cluster (``repro.cluster.bucketing``) charges each rank
``max(compute, comm)`` per step: bucket *k* launches once backward has
produced its gradients — at ``t_fwd + t_bwd·cumfrac_k`` into the step —
and its allreduce runs on the operation's own pipeline clock, only joining
the rank clock at the final wait.  Because every rank launches bucket *k*
at the same simulated offset (symmetric shards, no faults), each bucket's
allreduce finishes exactly ``allreduce_cost`` after its launch, giving the
exact step time

    step = max(t_comp, max_k (ready_k + allreduce_cost(P, nbytes_k)))

with ``ready_k = t_fwd + t_bwd·cumfrac_k`` and ``t_fwd = fwd_fraction ·
t_comp``.  This module evaluates that expression analytically so the
bucket-size / algorithm / world sweeps of the paper's communication
analysis can be explored without running the simulator — and so the
simulator itself can be validated against the formula (the acceptance
test requires agreement within 5%; in the fault-free symmetric case they
agree to float rounding).

The same greedy partition rule the cluster layer uses lives here
(:func:`greedy_partition`), keeping the predictor and the simulator's
bucket boundaries identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..comm.collectives import allreduce_cost, allreduce_message_count
from ..comm.fabric import NetworkProfile

__all__ = [
    "greedy_partition",
    "OverlapStepEstimate",
    "predict_step_time",
    "predict_run_seconds",
]

#: forward / (forward+backward) split the simulator charges (backward ≈ 2×
#: forward, the standard convnet ratio the repo's time model already uses)
FWD_FRACTION = 1.0 / 3.0

#: bucket size used when overlap is requested without an explicit size
DEFAULT_BUCKET_BYTES = 1 << 20

#: wire bytes of the per-epoch [loss, correct, seen] stats allreduce
STATS_NBYTES = 24


def greedy_partition(sizes: list[int], bucket_bytes: int) -> list[list[int]]:
    """Partition ``sizes`` (bytes, already in launch order) into buckets.

    Greedy fill: a bucket closes as soon as it reaches ``bucket_bytes``, so
    a single tensor larger than the target gets a bucket of its own.  This
    is the exact rule ``repro.cluster.bucketing.BucketPlan`` applies.
    """
    if bucket_bytes <= 0:
        raise ValueError(f"bucket_bytes must be positive (got {bucket_bytes})")
    buckets: list[list[int]] = []
    current: list[int] = []
    filled = 0
    for size in sizes:
        current.append(size)
        filled += size
        if filled >= bucket_bytes:
            buckets.append(current)
            current, filled = [], 0
    if current:
        buckets.append(current)
    return buckets


@dataclass(frozen=True)
class OverlapStepEstimate:
    """One overlapped step, decomposed the way the simulator accounts it."""

    compute_seconds: float
    #: per-bucket (launch offset into the step, allreduce completion offset)
    bucket_times: tuple[tuple[float, float], ...]
    messages_per_step: int

    @property
    def step_seconds(self) -> float:
        last_comm = max((done for _, done in self.bucket_times), default=0.0)
        return max(self.compute_seconds, last_comm)

    @property
    def exposed_comm_seconds(self) -> float:
        """Communication the backward pass could not hide."""
        return self.step_seconds - self.compute_seconds

    @property
    def comm_busy_seconds(self) -> float:
        """Total allreduce occupancy (sum over buckets)."""
        return sum(done - ready for ready, done in self.bucket_times)

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of communication hidden under compute (1.0 = all)."""
        busy = self.comm_busy_seconds
        if busy <= 0.0:
            return 0.0
        return 1.0 - self.exposed_comm_seconds / busy


def predict_step_time(
    world: int,
    bucket_nbytes: list[int],
    profile: NetworkProfile,
    compute_seconds: float,
    algorithm: str = "tree",
    overlap: bool = True,
    fwd_fraction: float = FWD_FRACTION,
) -> OverlapStepEstimate:
    """Predict one synchronous step with bucketed gradient exchange.

    ``bucket_nbytes`` lists the wire size of each bucket in launch order
    (bucket 0 = the last layers' gradients — ready first).  With
    ``overlap=False`` every launch waits for the full backward pass, which
    reduces to the serial ``t_comp + Σ cost_k`` model.
    """
    if world < 1:
        raise ValueError(f"world must be >= 1 (got {world})")
    if compute_seconds < 0:
        raise ValueError("compute_seconds must be non-negative")
    if not 0.0 <= fwd_fraction <= 1.0:
        raise ValueError("fwd_fraction must be in [0, 1]")
    total_bytes = sum(bucket_nbytes)
    t_fwd = fwd_fraction * compute_seconds
    t_bwd = compute_seconds - t_fwd

    times: list[tuple[float, float]] = []
    produced = 0
    prev_done = 0.0
    for nbytes in bucket_nbytes:
        produced += nbytes
        if overlap:
            ready = t_fwd + t_bwd * (produced / total_bytes if total_bytes else 1.0)
        else:
            # blocking: launches serialize after the full compute pass
            ready = max(compute_seconds, prev_done)
        cost = allreduce_cost(world, nbytes, profile, algorithm) if world > 1 else 0.0
        done = ready + cost
        prev_done = done
        times.append((ready, done))

    messages = len(bucket_nbytes) * allreduce_message_count(world, algorithm)
    return OverlapStepEstimate(
        compute_seconds=compute_seconds,
        bucket_times=tuple(times),
        messages_per_step=messages,
    )


def predict_run_seconds(
    world: int,
    bucket_nbytes: list[int],
    profile: NetworkProfile,
    compute_seconds: float,
    steps: int,
    epochs: int = 1,
    algorithm: str = "tree",
    overlap: bool = True,
    fwd_fraction: float = FWD_FRACTION,
) -> float:
    """Predict ``ClusterResult.simulated_seconds`` for a fault-free run.

    ``steps`` is the *total* iteration count across all epochs; each epoch
    additionally pays one tiny tree allreduce aggregating the train metrics
    (the ``[loss, correct, seen]`` triple), which the simulator charges too.
    """
    step = predict_step_time(
        world, bucket_nbytes, profile, compute_seconds,
        algorithm=algorithm, overlap=overlap, fwd_fraction=fwd_fraction,
    ).step_seconds
    stats = allreduce_cost(world, STATS_NBYTES, profile, "tree") if world > 1 else 0.0
    return steps * step + epochs * stats
