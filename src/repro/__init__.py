"""repro — a from-scratch reproduction of *ImageNet Training in Minutes*
(You, Zhang, Hsieh, Demmel, Keutzer; ICPP 2018).

Subpackages
-----------
``repro.core``
    The paper's contribution: LARS, momentum SGD, the linear-scaling /
    warmup / poly-decay schedule algebra, the serial trainer, and the
    paper's recipes as data.
``repro.nn``
    A from-scratch numpy DNN framework with AlexNet/AlexNet-BN/ResNet-50
    definitions and the flop/parameter accounting behind Table 6.
``repro.comm``
    Simulated MPI: thread-per-rank fabric with α-β cost accounting and
    tree/ring/recursive-halving-doubling collectives.
``repro.cluster``
    Synchronous data-parallel SGD (allreduce and master-worker modes) and
    the asynchronous parameter-server baseline.
``repro.perfmodel``
    The α-β-γ analytic performance model, device/interconnect profiles
    (Tables 11/12) and the energy model.
``repro.data``
    Synthetic ImageNet proxies, augmentation regimes, sharded loaders.
``repro.experiments``
    One driver per paper table/figure (``python -m repro.experiments``).
"""

from . import cluster, comm, core, data, nn, perfmodel

__version__ = "1.0.0"

__all__ = [
    "core",
    "nn",
    "comm",
    "cluster",
    "perfmodel",
    "data",
    "__version__",
]
