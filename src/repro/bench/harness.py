"""Microbenchmark harness: registration, execution, robust statistics.

The paper's headline claim is wall-clock speed, so per-iteration cost is a
first-class, continuously-tracked quantity here (the discipline Goyal et
al. 2017 and Akiba et al. 2017 apply to large-batch training engineering).
Every benchmark pins its problem size and seeds at registration time, runs
``warmup`` untimed iterations followed by ``repeats`` timed ones, and
reports median ± MAD — robust to the one-off scheduler hiccups that make
mean ± std useless on shared CI hardware.

A benchmark is a *setup* callable returning the closure to time::

    @register("conv2d.fwd.k3s1p1", area="nn", params={"batch": 32})
    def _bench():
        layer, x = ...   # build once, outside the timed region
        return lambda: layer.forward(x)

Suites live in :mod:`repro.bench.suites`; areas map one-to-one onto the
``BENCH_<area>.json`` result files.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Callable

from ..obs.trace import get_tracer
from ..util.timing import measure, median, median_abs_deviation

__all__ = [
    "Benchmark",
    "BenchResult",
    "REGISTRY",
    "register",
    "load_suites",
    "select",
    "run_benchmark",
    "run_selected",
]

#: registered benchmark areas, in file/report order
AREAS = ("nn", "core", "comm", "cluster", "data", "overlap", "memory")


@dataclass(frozen=True)
class Benchmark:
    """One registered microbenchmark (pinned problem, fixed seeds)."""

    name: str
    area: str
    setup: Callable[[], Callable[[], object]]
    params: dict = field(default_factory=dict)
    repeats: int = 20
    warmup: int = 3
    quick_repeats: int = 5
    quick_warmup: int = 1


@dataclass
class BenchResult:
    """Timed samples plus the robust summary the JSON schema records."""

    name: str
    area: str
    params: dict
    samples: list[float]
    warmup: int

    @property
    def median_s(self) -> float:
        return median(self.samples)

    @property
    def mad_s(self) -> float:
        return median_abs_deviation(self.samples)

    @property
    def mean_s(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def min_s(self) -> float:
        return min(self.samples)

    @property
    def max_s(self) -> float:
        return max(self.samples)


REGISTRY: dict[str, Benchmark] = {}


def register(
    name: str,
    area: str,
    params: dict | None = None,
    repeats: int = 20,
    warmup: int = 3,
    quick_repeats: int = 5,
    quick_warmup: int = 1,
):
    """Decorator registering a setup callable under ``name``/``area``."""
    if area not in AREAS:
        raise ValueError(f"unknown area {area!r}; expected one of {AREAS}")

    def decorator(setup: Callable[[], Callable[[], object]]):
        if name in REGISTRY:
            raise ValueError(f"benchmark {name!r} registered twice")
        REGISTRY[name] = Benchmark(
            name=name,
            area=area,
            setup=setup,
            params=dict(params or {}),
            repeats=repeats,
            warmup=warmup,
            quick_repeats=quick_repeats,
            quick_warmup=quick_warmup,
        )
        return setup

    return decorator


def load_suites() -> None:
    """Import every suite module so its ``@register`` calls run."""
    from . import suites  # noqa: F401  (import populates REGISTRY)


def select(areas: list[str] | None = None, pattern: str | None = None) -> list[Benchmark]:
    """Registered benchmarks filtered by area list and fnmatch pattern."""
    load_suites()
    chosen = []
    for bench in REGISTRY.values():
        if areas and bench.area not in areas:
            continue
        if pattern and not fnmatch.fnmatch(bench.name, pattern):
            continue
        chosen.append(bench)
    return sorted(chosen, key=lambda b: (AREAS.index(b.area), b.name))


def run_benchmark(bench: Benchmark, quick: bool = False) -> BenchResult:
    """Set up and time one benchmark (quick mode = fewer repeats).

    When the global obs tracer is enabled (``repro bench run --trace``),
    the whole benchmark gets a ``bench.<name>`` span with per-sample child
    spans, so outlier samples are visible on the Perfetto timeline.  The
    timed closure itself is untouched when tracing is off — benchmarks pay
    nothing for the hook.
    """
    fn = bench.setup()
    repeats = bench.quick_repeats if quick else bench.repeats
    warmup = bench.quick_warmup if quick else bench.warmup
    tracer = get_tracer()
    if tracer.enabled:
        raw_fn = fn

        def fn():
            with tracer.span("bench.sample", bench=bench.name):
                return raw_fn()

        with tracer.span(f"bench.{bench.name}", area=bench.area, quick=quick):
            samples = measure(fn, repeats=repeats, warmup=warmup)
    else:
        samples = measure(fn, repeats=repeats, warmup=warmup)
    return BenchResult(
        name=bench.name,
        area=bench.area,
        params=bench.params,
        samples=samples,
        warmup=warmup,
    )


def run_selected(
    areas: list[str] | None = None,
    pattern: str | None = None,
    quick: bool = False,
    progress: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run every selected benchmark, reporting progress per benchmark."""
    results = []
    for bench in select(areas=areas, pattern=pattern):
        result = run_benchmark(bench, quick=quick)
        if progress is not None:
            stats = f"median {result.median_s * 1e3:9.3f} ms ± {result.mad_s * 1e3:7.3f}"
            progress(f"{result.name:<34} {stats} (n={len(result.samples)})")
        results.append(result)
    return results
