"""Versioned on-disk format for benchmark results: ``BENCH_<area>.json``.

One file per benchmark area keeps diffs reviewable and lets CI upload and
compare areas independently.  The payload is deliberately flat::

    {
      "schema_version": 1,
      "area": "nn",
      "quick": false,
      "created_unix": 1754460000.0,
      "env": {"python": "3.11.7", "numpy": "2.1.0", "platform": "..."},
      "results": {
        "conv2d.fwd.k3s1p1": {
          "median_s": 0.0021, "mad_s": 0.0001, "mean_s": ..., "min_s": ...,
          "max_s": ..., "repeats": 20, "warmup": 3,
          "params": {"batch": 32, ...}
        }, ...
      }
    }

``schema_version`` gates compatibility: :func:`validate_payload` rejects
files this code cannot interpret, so a future format change cannot be
silently diffed against an old baseline.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Iterable

import numpy as np

from .harness import BenchResult

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "area_filename",
    "build_payload",
    "write_area_files",
    "load_payload",
    "validate_payload",
]

SCHEMA_VERSION = 1

_REQUIRED_TOP = {"schema_version", "area", "quick", "created_unix", "env", "results"}
_REQUIRED_ENTRY = {"median_s", "mad_s", "mean_s", "min_s", "max_s", "repeats", "warmup"}


class SchemaError(ValueError):
    """A result file does not conform to the benchmark schema."""


def area_filename(area: str) -> str:
    """Canonical file name for one area's results."""
    return f"BENCH_{area}.json"


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def build_payload(area: str, results: Iterable[BenchResult], quick: bool) -> dict:
    """Schema-conforming payload for one area's results."""
    entries = {}
    for r in results:
        if r.area != area:
            raise ValueError(f"result {r.name!r} belongs to area {r.area!r}, not {area!r}")
        entries[r.name] = {
            "median_s": r.median_s,
            "mad_s": r.mad_s,
            "mean_s": r.mean_s,
            "min_s": r.min_s,
            "max_s": r.max_s,
            "repeats": len(r.samples),
            "warmup": r.warmup,
            "params": r.params,
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "area": area,
        "quick": bool(quick),
        "created_unix": time.time(),
        "env": _environment(),
        "results": entries,
    }


def write_area_files(results: Iterable[BenchResult], out_dir: str, quick: bool) -> list[str]:
    """Group ``results`` by area and write one ``BENCH_<area>.json`` each.

    Returns the written paths.  Files are valid per :func:`validate_payload`
    by construction; a round-trip validation is still run so a future editing
    mistake here fails loudly at write time rather than at compare time.
    """
    by_area: dict[str, list[BenchResult]] = {}
    for r in results:
        by_area.setdefault(r.area, []).append(r)
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for area, area_results in sorted(by_area.items()):
        payload = build_payload(area, area_results, quick)
        validate_payload(payload)
        path = os.path.join(out_dir, area_filename(area))
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return paths


def validate_payload(payload: dict) -> None:
    """Raise :class:`SchemaError` unless ``payload`` matches the schema."""
    if not isinstance(payload, dict):
        raise SchemaError("payload must be a JSON object")
    missing = _REQUIRED_TOP - payload.keys()
    if missing:
        raise SchemaError(f"missing top-level keys: {sorted(missing)}")
    version = payload["schema_version"]
    if version != SCHEMA_VERSION:
        raise SchemaError(f"schema_version {version!r} unsupported (expected {SCHEMA_VERSION})")
    if not isinstance(payload["area"], str) or not payload["area"]:
        raise SchemaError("area must be a non-empty string")
    if not isinstance(payload["results"], dict):
        raise SchemaError("results must be an object")
    for name, entry in payload["results"].items():
        if not isinstance(entry, dict):
            raise SchemaError(f"result {name!r} must be an object")
        missing = _REQUIRED_ENTRY - entry.keys()
        if missing:
            raise SchemaError(f"result {name!r} missing keys: {sorted(missing)}")
        for key in ("median_s", "mad_s", "mean_s", "min_s", "max_s"):
            value = entry[key]
            if not isinstance(value, (int, float)) or value < 0:
                raise SchemaError(f"result {name!r}: {key} must be non-negative")
        if entry["repeats"] < 1:
            raise SchemaError(f"result {name!r}: repeats must be >= 1")


def load_payload(path: str) -> dict:
    """Read and validate one ``BENCH_<area>.json`` file."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON ({exc})") from exc
    validate_payload(payload)
    return payload


def _main_check(argv: list[str]) -> int:  # pragma: no cover - tiny CLI shim
    for path in argv:
        load_payload(path)
        print(f"{path}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_main_check(sys.argv[1:]))
