"""Continuous microbenchmarks for the training hot path.

``repro bench run`` times every registered benchmark (pinned problem
sizes, fixed seeds, warmup + repeated timed runs, median ± MAD) and writes
one versioned ``BENCH_<area>.json`` per area; ``repro bench compare``
diffs two result sets against a relative-regression threshold and exits
nonzero when anything slowed past it.  CI runs the quick mode on every
push against the checked-in ``benchmarks/baseline/`` files (see
``docs/benchmarking.md``).
"""

from .compare import (
    DEFAULT_MIN_SECONDS,
    Comparison,
    compare_dirs,
    compare_payloads,
    format_report,
)
from .harness import (
    AREAS,
    REGISTRY,
    Benchmark,
    BenchResult,
    load_suites,
    register,
    run_benchmark,
    run_selected,
    select,
)
from .schema import (
    SCHEMA_VERSION,
    SchemaError,
    area_filename,
    build_payload,
    load_payload,
    validate_payload,
    write_area_files,
)

__all__ = [
    "AREAS",
    "REGISTRY",
    "Benchmark",
    "BenchResult",
    "register",
    "load_suites",
    "select",
    "run_benchmark",
    "run_selected",
    "SCHEMA_VERSION",
    "SchemaError",
    "area_filename",
    "build_payload",
    "write_area_files",
    "load_payload",
    "validate_payload",
    "DEFAULT_MIN_SECONDS",
    "Comparison",
    "compare_payloads",
    "compare_dirs",
    "format_report",
]
