"""Command implementations behind ``repro bench run`` and ``repro bench compare``.

Kept separate from :mod:`repro.cli` so the benchmark machinery stays
importable (and testable) without pulling in the full CLI, and so the CLI
only pays the import cost when the ``bench`` subcommand is actually used.
"""

from __future__ import annotations

import argparse

from .compare import DEFAULT_MIN_SECONDS, compare_dirs, format_report
from .harness import AREAS, run_selected, select
from .schema import write_area_files

__all__ = ["add_bench_parser", "cmd_bench"]

DEFAULT_OUT_DIR = "bench-results"
DEFAULT_THRESHOLD = 1.5


def add_bench_parser(sub) -> None:
    """Attach the ``bench`` subcommand (``run``/``compare``/``list``)."""
    p = sub.add_parser("bench", help="run or compare microbenchmarks")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    run = bench_sub.add_parser("run", help="run benchmarks, write BENCH_<area>.json")
    run.add_argument("--quick", action="store_true", help="fewer repeats/warmups (CI smoke mode)")
    run.add_argument(
        "--out-dir",
        default=DEFAULT_OUT_DIR,
        help=f"output directory (default: {DEFAULT_OUT_DIR}/)",
    )
    run.add_argument("--areas", default=None, help=f"comma-separated subset of {','.join(AREAS)}")
    run.add_argument(
        "--filter",
        default=None,
        metavar="GLOB",
        help="fnmatch pattern on benchmark names (e.g. 'conv2d.*')",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="capture per-benchmark/per-sample spans and write Chrome trace-event JSON here",
    )

    comp = bench_sub.add_parser("compare", help="diff two result sets; exit 1 on regression")
    comp.add_argument("baseline", help="baseline directory or BENCH_*.json file")
    comp.add_argument("new", help="new directory or BENCH_*.json file")
    comp.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"fail when new median > threshold x baseline (default: {DEFAULT_THRESHOLD})",
    )
    comp.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help=f"noise floor: medians are clamped up to this (default: {DEFAULT_MIN_SECONDS:g})",
    )

    bench_sub.add_parser("list", help="list registered benchmarks")


def _parse_areas(spec: str | None) -> list[str] | None:
    if spec is None:
        return None
    areas = [a.strip() for a in spec.split(",") if a.strip()]
    unknown = [a for a in areas if a not in AREAS]
    if unknown:
        raise SystemExit(f"error: unknown area(s) {unknown}; expected a subset of {list(AREAS)}")
    return areas


def _cmd_run(args: argparse.Namespace) -> int:
    areas = _parse_areas(args.areas)
    if args.trace:
        from ..obs import get_tracer, set_tracer
        from ..obs.trace import Tracer

        # A dedicated tracer (not the global enable()) so metrics/events
        # stay off and benchmark timings only pay for span capture.
        prev = get_tracer()
        set_tracer(Tracer(enabled=True))
    try:
        results = run_selected(areas=areas, pattern=args.filter, quick=args.quick, progress=print)
        if not results:
            print("no benchmarks matched the selection")
            return 1
        if args.trace:
            get_tracer().export_chrome(args.trace)
            print(f"wrote {args.trace}")
    finally:
        if args.trace:
            set_tracer(prev)
    paths = write_area_files(results, args.out_dir, quick=args.quick)
    for path in paths:
        print(f"wrote {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.threshold <= 1.0:
        raise SystemExit("error: --threshold must be > 1.0")
    comparisons = compare_dirs(
        args.baseline, args.new, args.threshold, min_seconds=args.min_seconds
    )
    print(format_report(comparisons))
    regressions = [c for c in comparisons if c.status == "regression"]
    return 1 if regressions else 0


def _cmd_list(args: argparse.Namespace) -> int:
    for bench in select():
        print(f"{bench.area:<8} {bench.name:<34} repeats={bench.repeats} warmup={bench.warmup}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Dispatch ``repro bench <run|compare|list>``."""
    commands = {"run": _cmd_run, "compare": _cmd_compare, "list": _cmd_list}
    return commands[args.bench_command](args)
