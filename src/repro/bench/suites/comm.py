"""Benchmarks for the simulated-cluster allreduce algorithms.

Each timed sample spins up a 4-rank thread cluster and runs several
allreduce rounds over a gradient-sized vector, so the number includes the
real synchronisation cost of the simulated fabric (mailboxes, condition
variables) — the quantity the ring/tree/RHD trade-off in the paper's
communication model is about.
"""

from __future__ import annotations

import numpy as np

from ..harness import register

_WORLD = 4
_ELEMENTS = 65_536
_ROUNDS = 4


def _allreduce_bench(algorithm: str):
    from repro.comm.collectives import allreduce_rhd, allreduce_ring, allreduce_tree
    from repro.comm.communicator import run_cluster

    fn = {"tree": allreduce_tree, "ring": allreduce_ring, "rhd": allreduce_rhd}[algorithm]

    def worker(comm):
        data = np.random.default_rng(comm.rank).normal(size=_ELEMENTS)
        for _ in range(_ROUNDS):
            data = fn(comm, data)
        return float(data[0])

    return lambda: run_cluster(_WORLD, worker)


_PARAMS = {"world": _WORLD, "elements": _ELEMENTS, "rounds": _ROUNDS}


@register(
    "allreduce.tree",
    area="comm",
    params=dict(_PARAMS, algorithm="tree"),
    repeats=10,
    quick_repeats=3,
)
def _allreduce_tree():
    return _allreduce_bench("tree")


@register(
    "allreduce.ring",
    area="comm",
    params=dict(_PARAMS, algorithm="ring"),
    repeats=10,
    quick_repeats=3,
)
def _allreduce_ring():
    return _allreduce_bench("ring")


@register(
    "allreduce.rhd",
    area="comm",
    params=dict(_PARAMS, algorithm="rhd"),
    repeats=10,
    quick_repeats=3,
)
def _allreduce_rhd():
    return _allreduce_bench("rhd")
