"""Benchmarks for gradient compression round-trips and bucket packing.

The compressors run ``compress -> decompress`` on a fixed 100k-element
gradient (error-feedback state carries across iterations, as in training);
packing benchmarks time the flatten/unflatten bucket used by every
synchronous step.
"""

from __future__ import annotations

import numpy as np

from ..harness import register

_N = 100_000


def _grad():
    return np.random.default_rng(0).normal(size=_N)


@register("compression.onebit", area="cluster", params={"elements": _N})
def _onebit():
    from repro.cluster.compression import OneBitCompressor

    comp = OneBitCompressor()
    grad = _grad()
    return lambda: comp.roundtrip(grad)


@register("compression.topk", area="cluster", params={"elements": _N, "k": _N // 100})
def _topk():
    from repro.cluster.compression import TopKCompressor

    comp = TopKCompressor(k=_N // 100)
    grad = _grad()
    return lambda: comp.roundtrip(grad)


@register("compression.quantize8", area="cluster", params={"elements": _N, "bits": 8})
def _quantize8():
    from repro.cluster.compression import UniformQuantizer

    comp = UniformQuantizer(bits=8)
    grad = _grad()
    return lambda: comp.roundtrip(grad)


def _micro_resnet_params():
    from repro.nn.models import build_model

    model = build_model("micro_resnet", num_classes=10, seed=0)
    params = model.parameters()
    rng = np.random.default_rng(0)
    for p in params:
        p.grad = rng.normal(size=p.data.shape)
    return params


@register("packing.flatten_grads", area="cluster", params={"model": "micro_resnet"})
def _flatten():
    from repro.cluster.packing import flatten_grads

    params = _micro_resnet_params()
    out = flatten_grads(params)
    return lambda: flatten_grads(params, out=out)


@register("packing.roundtrip", area="cluster", params={"model": "micro_resnet"})
def _roundtrip():
    from repro.cluster.packing import flatten_grads, unflatten_grads

    params = _micro_resnet_params()
    out = flatten_grads(params)

    def step():
        unflatten_grads(flatten_grads(params, out=out), params)

    return step
