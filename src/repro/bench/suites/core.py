"""Benchmarks for optimizer updates (SGD momentum, LARS trust-ratio) and
the obs tracer's span overhead.

LARS pays two extra norms per parameter over SGD; tracking both on the same
parameter set keeps that overhead ratio visible as the model zoo evolves.
The two ``obs.span.*`` entries pin the telemetry costs the instrumented hot
paths rely on: the disabled path must stay near-free (every ``train_step``
crosses it), and the enabled path bounds what ``--trace`` runs pay.
"""

from __future__ import annotations

import numpy as np

from ..harness import register


def _model_with_grads():
    from repro.nn.models import build_model

    model = build_model("micro_resnet", num_classes=10, seed=0)
    params = model.parameters()
    rng = np.random.default_rng(0)
    for p in params:
        p.grad = rng.normal(scale=1e-3, size=p.data.shape)
    return model, params


@register(
    "sgd.step",
    area="core",
    params={"model": "micro_resnet", "momentum": 0.9, "weight_decay": 0.0005},
    repeats=30,
)
def _sgd_step():
    from repro.core import SGD

    _, params = _model_with_grads()
    opt = SGD(params)
    return lambda: opt.step(0.01)


@register(
    "lars.step",
    area="core",
    params={
        "model": "micro_resnet",
        "trust_coefficient": 0.001,
        "momentum": 0.9,
        "weight_decay": 0.0005,
    },
    repeats=30,
)
def _lars_step():
    from repro.core import LARS

    _, params = _model_with_grads()
    opt = LARS(params)
    return lambda: opt.step(0.01)


_SPANS_PER_CALL = 1000


@register(
    "obs.span.disabled",
    area="core",
    params={"spans": _SPANS_PER_CALL, "path": "module-level timed(), tracer off"},
    repeats=30,
)
def _span_disabled():
    # The global fast path every instrumented hot loop crosses when
    # telemetry is off: one enabled check, shared no-op span.
    from repro.obs import timed

    def run():
        for _ in range(_SPANS_PER_CALL):
            with timed("bench.noop"):
                pass

    return run


@register(
    "obs.span.enabled",
    area="core",
    params={"spans": _SPANS_PER_CALL, "path": "local Tracer(enabled=True)"},
    repeats=30,
)
def _span_enabled():
    # A local tracer so the global stays disabled — leaving it enabled
    # would tax every later benchmark area (suites run in area order).
    from repro.obs.trace import Tracer

    tracer = Tracer(enabled=True)

    def run():
        tracer.clear()
        for _ in range(_SPANS_PER_CALL):
            with tracer.span("bench.noop"):
                pass

    return run
